#!/usr/bin/env python
"""Regenerate the paper's Table II interactively: FPGA prototype
throughput (fps) and GuardNN_C overhead for all DSP/precision configs.

Run:  python examples/fpga_table.py
"""

from repro.analysis.fpga import FpgaConfig, FpgaPrototypeModel, FpgaResourceModel

NETWORKS = ["alexnet", "googlenet", "resnet50", "vgg16"]
DSPS = [128, 256, 512, 1024]


def main():
    model = FpgaPrototypeModel(aes_engines=3)
    for bits in (8, 6):
        print(f"\nGuardNN_C ({bits}-bit) — throughput in fps (overhead %)")
        header = f"{'# DSPs':>8s}" + "".join(f"{n:>18s}" for n in NETWORKS)
        print(header)
        for dsps in DSPS:
            cells = []
            for net in NETWORKS:
                row = model.table_row(net, FpgaConfig(dsps, bits))
                cells.append(f"{row['guardnn_fps']:8.1f} (+{row['overhead_pct']:.2f})")
            print(f"{dsps:>8d}" + "".join(f"{c:>18s}" for c in cells))

    print("\nresource overhead at 512 DSPs / 8-bit (Section III-B):")
    resources = FpgaResourceModel()
    luts_pct, ffs_pct = resources.aes_overhead_pct()
    print(f"  one AES-128 core: {resources.aes_luts} LUTs ({luts_pct:.1f}%), "
          f"{resources.aes_ffs} FFs ({ffs_pct:.1f}%)")
    total = resources.total_overhead(aes_engines=3)
    print(f"  3 AES engines + MicroBlaze: {total['luts']} LUTs ({total['luts_pct']:.1f}%), "
          f"{total['brams']} BRAMs ({total['brams_pct']:.1f}%)")


if __name__ == "__main__":
    main()
