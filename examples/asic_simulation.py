#!/usr/bin/env python
"""ASIC simulation walk-through: reproduce Figure 3's protection-scheme
comparison for any network in the zoo, with a per-layer breakdown.

This drives the same pipeline as the benchmark harness (SCALE-Sim-style
systolic timing + tiling traffic + protection schemes) but interactively,
showing *where* the baseline's overhead comes from and why GuardNN's is
negligible.

Run:  python examples/asic_simulation.py [network]
"""

import sys

from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
from repro.accel.models import build_model, list_models
from repro.protection.guardnn import GuardNNProtection
from repro.protection.mee import BaselineMEE
from repro.protection.none import NoProtection


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    model = build_model(name)
    accel = AcceleratorModel(TPU_V1_CONFIG)
    print(f"network: {model.name}  ({model.macs(1)/1e9:.2f} GMACs, "
          f"{model.weight_elements()/1e6:.1f} M parameters)")
    print(f"accelerator: {TPU_V1_CONFIG.name} — {TPU_V1_CONFIG.num_pes} PEs, "
          f"{TPU_V1_CONFIG.sram_bytes >> 20} MB SRAM, {TPU_V1_CONFIG.freq_mhz:.0f} MHz\n")

    base = accel.run(model, NoProtection())
    print(f"{'scheme':12s} {'norm. time':>10s} {'traffic +%':>11s} {'metadata MB':>12s}")
    for scheme in (NoProtection(), GuardNNProtection(False), GuardNNProtection(True),
                   BaselineMEE()):
        run = accel.run(model, scheme)
        print(f"{run.scheme:12s} {run.normalized_to(base):>10.4f} "
              f"{100*run.traffic_increase:>10.1f}% "
              f"{run.total_metadata_bytes/1e6:>12.2f}")

    print("\nper-layer view under BP (top 8 most-delayed operations):")
    bp_run = accel.run(model, BaselineMEE())
    paired = sorted(zip(bp_run.layers, base.layers),
                    key=lambda p: p[0].total_cycles - p[1].total_cycles, reverse=True)
    print(f"{'layer':22s} {'base cyc':>12s} {'BP cyc':>12s} {'slowdown':>9s} {'bound':>8s}")
    for bp_l, np_l in paired[:8]:
        bound = "memory" if bp_l.memory_cycles >= bp_l.compute_cycles else "compute"
        slow = bp_l.total_cycles / np_l.total_cycles if np_l.total_cycles else 1.0
        print(f"{bp_l.name:22s} {np_l.total_cycles:>12,} {bp_l.total_cycles:>12,} "
              f"{slow:>9.3f} {bound:>8s}")
    print(f"\nknown networks: {', '.join(list_models())}")


if __name__ == "__main__":
    main()
