#!/usr/bin/env python
"""Attack demonstration: tampering, splicing, and replay against the
off-chip memory — and how GuardNN_CI detects all three *without* a
Merkle tree, while GuardNN_C degrades safely (garbage, never leaks).

Paper hooks: Section II-D (DNN-specific protection, MACs bound to
(value, address, VN)), Table I threat rows.

Run:  python examples/attack_detection.py
"""

import numpy as np

from repro.core.device import GuardNNDevice
from repro.core.errors import IntegrityError
from repro.core.host import HonestHost, MlpSpec
from repro.core.isa import ExportOutput, Forward, SetReadCTR
from repro.core.mpu import CHUNK_BYTES
from repro.core.session import UserSession
from repro.crypto.pki import ManufacturerCA
from repro.crypto.rng import HmacDrbg


def fresh_stack(integrity: bool):
    manufacturer = ManufacturerCA(HmacDrbg(b"attack-demo-ca"))
    device = GuardNNDevice(b"victim", manufacturer, seed=b"victim-seed",
                           dram_bytes=1 << 20)
    host = HonestHost(device)
    user = UserSession(manufacturer.root_public, HmacDrbg(b"victim-user"))
    user.authenticate_device(host.fetch_device_info())
    host.establish_session(user, enable_integrity=integrity)
    rng = np.random.default_rng(3)
    spec = MlpSpec([rng.integers(-15, 15, size=(64, 32), dtype=np.int8)])
    x = rng.integers(-15, 15, size=(8, 64), dtype=np.int8)
    host._layer_shapes = [w.shape for w in spec.weights]
    host._shift = spec.shift
    host.load_weights(user, spec)
    host.load_input(user, x)
    out_base, out_size = host.run_inference(spec, batch=8)
    return device, host, user, spec, x, out_base, out_size


def expect_detection(label, fn):
    try:
        fn()
    except IntegrityError as exc:
        print(f"  [DETECTED] {label}: {exc}")
        return True
    print(f"  [MISSED]   {label}")
    return False


def main():
    print("=== GuardNN_CI: integrity verification on ===")
    device, host, user, spec, x, out_base, out_size = fresh_stack(integrity=True)
    dram = device.untrusted_memory

    # 1. bit-flip the output region
    dram.data[out_base] ^= 0x80
    device.execute(SetReadCTR(base=out_base, size=out_size, ctr_fw=1))
    expect_detection("bit-flip in output features",
                     lambda: device.execute(ExportOutput(base=out_base, size=out_size)))
    dram.data[out_base] ^= 0x80  # undo

    # 2. splice: relocate valid weight ciphertext over the output
    blob, macs = dram.snapshot(0, CHUNK_BYTES)
    saved = dram.snapshot(out_base, CHUNK_BYTES)
    dram.data[out_base : out_base + CHUNK_BYTES] = blob
    dram.mac_store[out_base] = macs[0]
    expect_detection("splicing (relocated ciphertext+MAC)",
                     lambda: device.execute(ExportOutput(base=out_base, size=out_size)))
    dram.restore(out_base, *saved)  # undo

    # 3. replay: record output of Forward #1, overwrite with Forward #2,
    #    restore the stale snapshot
    stale = dram.snapshot(out_base, CHUNK_BYTES)
    device.execute(SetReadCTR(base=out_base, size=8 * 64, ctr_fw=1))
    device.execute(Forward(input_base=out_base, weight_base=host._weight_bases[0],
                           output_base=out_base, m=8, k=32, n=32))
    dram.restore(out_base, *stale)
    device.execute(SetReadCTR(base=out_base, size=out_size, ctr_fw=2))
    expect_detection("replay of stale ciphertext (no Merkle tree needed)",
                     lambda: device.execute(ExportOutput(base=out_base, size=out_size)))

    print("\n=== GuardNN_C: confidentiality-only (paper Section II-B) ===")
    device, host, user, spec, x, out_base, out_size = fresh_stack(integrity=False)
    device.untrusted_memory.data[out_base] ^= 0xFF
    device.execute(SetReadCTR(base=out_base, size=out_size, ctr_fw=1))
    sealed = device.execute(ExportOutput(base=out_base, size=out_size))
    host.instruction_log.append(ExportOutput(base=out_base, size=out_size))
    garbage = user.open_output(sealed, (8, 32))
    correct = spec.reference_forward(x)
    print(f"  tamper detected: no (by design — integrity was not requested)")
    print(f"  result corrupted: {not np.array_equal(garbage, correct)}")
    print(f"  but corrupted result equals attacker-chosen plaintext? "
          f"{garbage.tobytes() == bytes(len(garbage.tobytes()))}")
    print(f"  and weights still never in DRAM: "
          f"{spec.weights[0].tobytes() not in bytes(device.untrusted_memory.data)}")


if __name__ == "__main__":
    main()
