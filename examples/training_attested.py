#!/usr/bin/env python
"""Encrypted on-device training (the paper's training support).

A remote user trains a small int8 MLP on the GuardNN device without the
host, the DRAM, or anyone else ever seeing weights, inputs, activations,
or gradients in plaintext. The backward pass is compiled onto the same
tiny ISA (transposed Forward GEMMs); the weight update is the dedicated
``UpdateWeight`` instruction, which advances CTR_W exactly as Section
II-D2 describes ("GuardNN keeps CTR_W in the accelerator state and
keeps track of the number of updates to the weights").

Run:  python examples/training_attested.py
"""

import numpy as np

from repro.core.device import GuardNNDevice
from repro.core.host import MlpSpec, TrainingHost
from repro.core.session import UserSession
from repro.crypto.pki import ManufacturerCA
from repro.crypto.rng import HmacDrbg


def main():
    manufacturer = ManufacturerCA(HmacDrbg(b"training-ca"))
    device = GuardNNDevice(b"trainer-0", manufacturer, seed=b"trainer-seed",
                           dram_bytes=1 << 20)
    host = TrainingHost(device)
    user = UserSession(manufacturer.root_public, HmacDrbg(b"training-user"))
    user.authenticate_device(host.fetch_device_info())
    host.establish_session(user, enable_integrity=True)

    rng = np.random.default_rng(42)
    spec = MlpSpec([rng.integers(-15, 15, size=(32, 16), dtype=np.int8),
                    rng.integers(-15, 15, size=(16, 8), dtype=np.int8)])
    reference = MlpSpec([w.copy() for w in spec.weights])
    x = rng.integers(-15, 15, size=(4, 32), dtype=np.int8)
    target = rng.integers(-15, 15, size=(4, 8), dtype=np.int8)

    def output_gradient(output):
        """The user's loss gradient (L2-style): g = clip(pred - target)."""
        return np.clip(output.astype(np.int32) - target, -128, 127).astype(np.int8)

    print("running one encrypted training iteration on the device...")
    updated = host.train_step(user, spec, x, output_gradient, lr_shift=4)

    out_ref = reference.reference_forward(x)
    expected = reference.reference_train_step(x, output_gradient(out_ref), lr_shift=4)
    for i, (got, want) in enumerate(zip(updated, expected)):
        print(f"  layer {i}: device-updated weights match user reference: "
              f"{np.array_equal(got, want)}")

    print(f"\nCTR_W after the step (2 imports + 2 updates): "
          f"{device.mpu.counters.ctr_w}")
    dram = bytes(device.untrusted_memory.data)
    print(f"gradients in DRAM as plaintext: "
          f"{output_gradient(out_ref).tobytes() in dram}")
    print(f"updated weights in DRAM as plaintext: {updated[0].tobytes() in dram}")
    print(f"instructions the host issued: {len(host.instruction_log)}")


if __name__ == "__main__":
    main()
