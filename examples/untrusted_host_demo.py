#!/usr/bin/env python
"""The small-TCB argument, live: a fully hostile host drives the device
with hundreds of random/adversarial instructions and physical DRAM
tampering, and still learns nothing.

"GuardNN can ensure confidentiality without trusting a host processor
by designing its ISA so that sensitive information is always encrypted
no matter which instruction is executed." (Section II-B)

Run:  python examples/untrusted_host_demo.py
"""

import numpy as np

from repro.core.compute import gemm_int8
from repro.core.device import GuardNNDevice
from repro.core.host import AdversarialHost, HonestHost, MlpSpec
from repro.core.isa import ExportOutput, Forward, SetReadCTR, SignOutput
from repro.core.session import UserSession
from repro.crypto.pki import ManufacturerCA
from repro.crypto.rng import HmacDrbg


def secret_windows(secrets, window=12):
    for secret in secrets:
        for start in range(0, max(1, len(secret) - window), window):
            yield secret[start : start + window]


def main():
    manufacturer = ManufacturerCA(HmacDrbg(b"demo-ca"))
    device = GuardNNDevice(b"demo-dev", manufacturer, seed=b"demo-seed",
                           dram_bytes=1 << 20)
    host = HonestHost(device)
    user = UserSession(manufacturer.root_public, HmacDrbg(b"demo-user"))
    user.authenticate_device(host.fetch_device_info())
    host.establish_session(user, enable_integrity=False)

    rng = np.random.default_rng(0)
    weights = rng.integers(-15, 15, size=(64, 32), dtype=np.int8)
    x = rng.integers(-15, 15, size=(8, 64), dtype=np.int8)
    spec = MlpSpec([weights])
    host._layer_shapes = [weights.shape]
    host._shift = spec.shift
    host.load_weights(user, spec)
    host.load_input(user, x)
    secrets = [weights.tobytes(), x.tobytes(), gemm_int8(x, weights).tobytes()]
    print("honest user loaded secret weights + input; host turns hostile now\n")

    adversary = AdversarialHost(device, np.random.default_rng(13))
    attempts = 0
    # a mix of targeted and random attacks
    targeted = [
        ExportOutput(base=host._weight_bases[0], size=512),  # export the weights!
        ExportOutput(base=host._input_base, size=512),  # export the input!
        SetReadCTR(base=host._weight_bases[0], size=512, ctr_fw=0),
        Forward(input_base=host._input_base, weight_base=host._weight_bases[0],
                output_base=host._input_base, m=8, k=64, n=32),  # overwrite input
        SignOutput(),
    ]
    for instr in targeted:
        adversary.try_execute(instr)
        attempts += 1
    for _ in range(200):
        adversary.tamper_dram(n_flips=2)
        adversary.try_execute(targeted[int(adversary.rng.integers(0, len(targeted)))])
        attempts += 1

    observed = b"".join(adversary.observed) + adversary.snapshot_dram()
    leaked = sum(1 for w in secret_windows(secrets) if w in observed)
    print(f"instructions attempted:        {attempts}")
    print(f"bytes observed by adversary:   {len(observed):,}")
    print(f"secret windows found in them:  {leaked}  (12-byte windows of "
          f"weights/input/activations)")
    assert leaked == 0, "confidentiality violated!"
    print("\nno plaintext escaped: the restricted ISA held.")


if __name__ == "__main__":
    main()
