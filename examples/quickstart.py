#!/usr/bin/env python
"""Quickstart: secure inference on a GuardNN device in ~60 lines.

The cast (paper Section II-A):
  * a trusted manufacturer that provisions the accelerator,
  * the GuardNN device (the only trusted component at run time),
  * an untrusted host CPU that schedules everything,
  * a remote user who owns the model and the input.

The user authenticates the device, establishes an encrypted session,
ships an int8 MLP and an input through the hostile host, and gets back
a signed, verifiable result — while the host and DRAM see only
ciphertext.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.device import GuardNNDevice
from repro.core.host import HonestHost, MlpSpec
from repro.core.session import UserSession
from repro.crypto.pki import ManufacturerCA
from repro.crypto.rng import HmacDrbg


def main():
    # --- provisioning (happens once, at the factory) ---
    manufacturer = ManufacturerCA(HmacDrbg(b"example-manufacturer"))
    device = GuardNNDevice(b"accel-0", manufacturer, seed=b"example-device",
                           dram_bytes=1 << 20)

    # --- the remote user prepares a model and an input ---
    rng = np.random.default_rng(7)
    model = MlpSpec(weights=[
        rng.integers(-20, 20, size=(64, 32), dtype=np.int8),
        rng.integers(-20, 20, size=(32, 10), dtype=np.int8),
    ])
    x = rng.integers(-20, 20, size=(4, 64), dtype=np.int8)

    # --- session setup through the untrusted host ---
    host = HonestHost(device)
    user = UserSession(manufacturer.root_public, HmacDrbg(b"example-user"))
    user.authenticate_device(host.fetch_device_info())  # GetPK + cert check
    host.establish_session(user, enable_integrity=True)  # InitSession (ECDHE)
    print("session established: device authenticated via manufacturer cert")

    # --- encrypted inference ---
    output, attested = host.compile_and_run(user, model, x)
    reference = model.reference_forward(x)

    print(f"device output matches local reference: {np.array_equal(output, reference)}")
    print(f"attestation report verified:           {attested}")

    # --- what the adversary saw ---
    dram = bytes(device.untrusted_memory.data)
    print(f"weights visible in DRAM:               {model.weights[0].tobytes() in dram}")
    print(f"input visible in DRAM:                 {x.tobytes() in dram}")
    print(f"instructions issued by the host:       {len(host.instruction_log)}")


if __name__ == "__main__":
    main()
