"""E4 — Section III-C memory-traffic increase.

"BP increases memory accesses by 35.3% on average for inference and by
37.8% for training ... GuardNN_CI increases the memory traffic by 2.4%
and 2.3% on average for inference and training." Grid: the ``traffic``
sweep preset (BP and GuardNN_CI over both modes).
"""

import pytest

from repro.experiments import run_sweep

from _common import fmt, markdown_table, write_result


def compute_traffic():
    table = run_sweep("traffic")
    rows = []
    averages = {}
    for mode in ("inference", "training"):
        sub = table.where(mode=mode)
        models = list(dict.fromkeys(sub.column("model")))
        bp_vals, ci_vals = [], []
        for name in models:
            by_scheme = {r["scheme"]: r for r in sub.where(model=name).rows}
            bp_vals.append(by_scheme["BP"]["traffic_increase"])
            ci_vals.append(by_scheme["GuardNN_CI"]["traffic_increase"])
            rows.append((mode, name, fmt(100 * bp_vals[-1], 1), fmt(100 * ci_vals[-1], 1)))
        averages[mode] = (sum(bp_vals) / len(bp_vals), sum(ci_vals) / len(ci_vals))
    return rows, averages


def test_memory_traffic_increase(benchmark):
    rows, averages = benchmark.pedantic(compute_traffic, rounds=1, iterations=1)
    lines = markdown_table(["mode", "network", "BP +%", "GuardNN_CI +%"], rows)
    inf_bp, inf_ci = averages["inference"]
    tr_bp, tr_ci = averages["training"]
    lines += [
        "",
        f"**inference averages** — BP +{fmt(100*inf_bp,1)}% (paper +35.3%), "
        f"GuardNN_CI +{fmt(100*inf_ci,1)}% (paper +2.4%)",
        f"**training averages** — BP +{fmt(100*tr_bp,1)}% (paper +37.8%), "
        f"GuardNN_CI +{fmt(100*tr_ci,1)}% (paper +2.3%)",
    ]
    write_result("E4_traffic", "Memory traffic increase (Section III-C)", lines)

    # paper shape: BP an order of magnitude above GuardNN_CI; training
    # worse than inference for BP
    assert 0.20 < inf_bp < 0.50
    assert 0.015 < inf_ci < 0.035
    assert tr_bp > inf_bp
    assert inf_bp > 8 * inf_ci
