"""E4 — Section III-C memory-traffic increase.

"BP increases memory accesses by 35.3% on average for inference and by
37.8% for training ... GuardNN_CI increases the memory traffic by 2.4%
and 2.3% on average for inference and training."
"""

import pytest

from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
from repro.accel.models import build_model
from repro.protection.guardnn import GuardNNProtection
from repro.protection.mee import BaselineMEE

from _common import fmt, markdown_table, write_result

INFERENCE_NETS = ["vgg16", "alexnet", "googlenet", "resnet50", "mobilenet",
                  "vit", "bert", "dlrm", "wav2vec2"]
TRAINING_NETS = [n for n in INFERENCE_NETS if n != "dlrm"]


def compute_traffic():
    accel = AcceleratorModel(TPU_V1_CONFIG)
    bp, ci = BaselineMEE(), GuardNNProtection(True)
    rows = []
    averages = {}
    for training, nets in ((False, INFERENCE_NETS), (True, TRAINING_NETS)):
        mode = "training" if training else "inference"
        bp_vals, ci_vals = [], []
        for name in nets:
            model = build_model(name)
            batch = 4 if training else 1
            r_bp = accel.run(model, bp, training=training, batch=batch)
            r_ci = accel.run(model, ci, training=training, batch=batch)
            bp_vals.append(r_bp.traffic_increase)
            ci_vals.append(r_ci.traffic_increase)
            rows.append((mode, name, fmt(100 * r_bp.traffic_increase, 1),
                         fmt(100 * r_ci.traffic_increase, 1)))
        averages[mode] = (sum(bp_vals) / len(bp_vals), sum(ci_vals) / len(ci_vals))
    return rows, averages


def test_memory_traffic_increase(benchmark):
    rows, averages = benchmark.pedantic(compute_traffic, rounds=1, iterations=1)
    lines = markdown_table(["mode", "network", "BP +%", "GuardNN_CI +%"], rows)
    inf_bp, inf_ci = averages["inference"]
    tr_bp, tr_ci = averages["training"]
    lines += [
        "",
        f"**inference averages** — BP +{fmt(100*inf_bp,1)}% (paper +35.3%), "
        f"GuardNN_CI +{fmt(100*inf_ci,1)}% (paper +2.4%)",
        f"**training averages** — BP +{fmt(100*tr_bp,1)}% (paper +37.8%), "
        f"GuardNN_CI +{fmt(100*tr_ci,1)}% (paper +2.3%)",
    ]
    write_result("E4_traffic", "Memory traffic increase (Section III-C)", lines)

    # paper shape: BP an order of magnitude above GuardNN_CI; training
    # worse than inference for BP
    assert 0.20 < inf_bp < 0.50
    assert 0.015 < inf_ci < 0.035
    assert tr_bp > inf_bp
    assert inf_bp > 8 * inf_ci
