"""E1 — Table II: FPGA prototype throughput and GuardNN_C overhead.

Regenerates the 4-network x 4-DSP-config x 2-precision grid (the
``table2-fpga`` preset): frames/s for the CHaiDNN-like baseline and the
overhead (%) GuardNN_C adds. Paper findings to match in shape: fps
ordering AlexNet > GoogleNet > ResNet > VGG, fps scaling with DSPs and
precision, and overhead below ~3.1% everywhere, worst for ResNet.
"""

import pytest

from repro.experiments import run_sweep
from repro.experiments.presets import FPGA_NETWORKS, TABLE2_DSPS, TABLE2_PRECISIONS

from _common import fmt, markdown_table, write_result

NETWORKS = list(FPGA_NETWORKS)
DSPS = list(TABLE2_DSPS)
PRECISIONS = list(TABLE2_PRECISIONS)

PAPER_FPS = {  # (net, dsps, bits) -> (fps, overhead %)
    ("alexnet", 128, 8): (51.5, 0.6), ("alexnet", 256, 8): (94.5, 0.5),
    ("alexnet", 512, 8): (163.6, 0.3), ("alexnet", 1024, 8): (249.4, 0.2),
    ("googlenet", 128, 8): (22.1, 0.4), ("googlenet", 256, 8): (39.4, 0.5),
    ("googlenet", 512, 8): (64.7, 1.5), ("googlenet", 1024, 8): (93.7, 0.7),
    ("resnet50", 128, 8): (8.1, 1.2), ("resnet50", 256, 8): (14.6, 1.6),
    ("resnet50", 512, 8): (23.7, 1.9), ("resnet50", 1024, 8): (35.3, 2.4),
    ("vgg16", 128, 8): (2.5, 0.8), ("vgg16", 256, 8): (4.8, 0.9),
    ("vgg16", 512, 8): (9.0, 0.6), ("vgg16", 1024, 8): (15.9, 0.6),
    ("alexnet", 128, 6): (95.2, 0.6), ("alexnet", 256, 6): (166.3, 0.5),
    ("alexnet", 512, 6): (258.1, 0.3), ("alexnet", 1024, 6): (349.7, 0.3),
    ("googlenet", 128, 6): (40.4, 0.5), ("googlenet", 256, 6): (67.2, 0.6),
    ("googlenet", 512, 6): (100.2, 0.8), ("googlenet", 1024, 6): (128.8, 1.0),
    ("resnet50", 128, 6): (14.9, 1.6), ("resnet50", 256, 6): (24.6, 2.2),
    ("resnet50", 512, 6): (37.6, 2.7), ("resnet50", 1024, 6): (48.5, 3.1),
    ("vgg16", 128, 6): (4.8, 0.9), ("vgg16", 256, 6): (9.1, 0.9),
    ("vgg16", 512, 6): (16.5, 0.7), ("vgg16", 1024, 6): (27.6, 0.6),
}


def compute_table():
    table = run_sweep("table2-fpga")
    rows = []
    for bits in PRECISIONS:
        for dsps in DSPS:
            for net in NETWORKS:
                (r,) = table.where(network=net, dsps=dsps, precision=bits).rows
                paper_fps, paper_ovh = PAPER_FPS[(net, dsps, bits)]
                rows.append((f"GuardNN_C ({bits}-bit)", dsps, net,
                             fmt(r["guardnn_fps"], 1), fmt(r["overhead_pct"], 2),
                             paper_fps, paper_ovh))
    return rows


def test_table2_fpga_throughput(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    write_result(
        "E1_table2_fpga",
        "Table II — GuardNN_C FPGA throughput (fps) and overhead (%)",
        markdown_table(
            ["config", "DSPs", "network", "fps (ours)", "overhead % (ours)",
             "fps (paper)", "overhead % (paper)"],
            rows,
        ),
    )
    by_key = {(r[2], r[1], r[0]): r for r in rows}
    # shape assertions: fps ordering at every config
    for bits_label in ("GuardNN_C (8-bit)", "GuardNN_C (6-bit)"):
        for dsps in DSPS:
            fps = [float(by_key[(n, dsps, bits_label)][3]) for n in NETWORKS]
            assert fps[0] > fps[1] > fps[2] > fps[3], (bits_label, dsps)
    # overhead bound: everything below the paper's 3.1% + slack
    assert all(float(r[4]) < 3.5 for r in rows)
    # overhead worst for resnet at high DSP counts (memory-boundedness)
    worst = max(rows, key=lambda r: float(r[4]))
    assert worst[2] in ("resnet50", "googlenet")
