"""E3 — Section III-B FPGA resource overhead.

Paper (512 DSPs, 8-bit): one AES-128 core = 9.0K LUTs / 3.0K FFs
(8.2% / 2.6% of the design); MicroBlaze = 2.7K LUTs (2.5%), 2.2K FFs
(1.9%), 64 BRAMs (11.0%), 6 DSPs (0.9%). Grid: the ``fpga-resources``
preset.
"""

import pytest

from repro.experiments import run_sweep

from _common import fmt, markdown_table, write_result

PAPER = {
    "AES core LUTs": "9.0K (8.2%)",
    "AES core FFs": "3.0K (2.6%)",
    "MicroBlaze LUTs": "2.7K (2.5%)",
    "MicroBlaze FFs": "2.2K (1.9%)",
    "MicroBlaze BRAMs": "64 (11.0%)",
    "MicroBlaze DSPs": "6 (0.9%)",
    "Total (AES + MCU) LUTs": "-",
}


def compute_resources():
    return run_sweep("fpga-resources")


def test_resource_overhead(benchmark):
    table = benchmark.pedantic(compute_resources, rounds=1, iterations=1)
    rows = [(r["resource"], r["count"], f"{fmt(r['pct'], 1)}%",
             PAPER.get(r["resource"], "-")) for r in table.rows]
    write_result(
        "E3_resource_overhead",
        "FPGA resource overhead (Section III-B, 512 DSPs / 8-bit)",
        markdown_table(["resource", "count", "% of design", "paper"], rows),
    )
    by_resource = {r["resource"]: r for r in table.rows}
    assert by_resource["AES core LUTs"]["pct"] == pytest.approx(8.2, abs=0.3)
    assert by_resource["AES core FFs"]["pct"] == pytest.approx(2.6, abs=0.2)
    assert by_resource["MicroBlaze BRAMs"]["pct"] == pytest.approx(11.0, abs=0.2)
