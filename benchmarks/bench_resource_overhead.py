"""E3 — Section III-B FPGA resource overhead.

Paper (512 DSPs, 8-bit): one AES-128 core = 9.0K LUTs / 3.0K FFs
(8.2% / 2.6% of the design); MicroBlaze = 2.7K LUTs (2.5%), 2.2K FFs
(1.9%), 64 BRAMs (11.0%), 6 DSPs (0.9%).
"""

import pytest

from repro.analysis.fpga import FpgaResourceModel

from _common import fmt, markdown_table, write_result


def compute_resources():
    model = FpgaResourceModel()
    aes_luts_pct, aes_ffs_pct = model.aes_overhead_pct()
    total = model.total_overhead(aes_engines=3)
    return model, aes_luts_pct, aes_ffs_pct, total


def test_resource_overhead(benchmark):
    model, aes_luts_pct, aes_ffs_pct, total = benchmark.pedantic(
        compute_resources, rounds=1, iterations=1
    )
    rows = [
        ("AES core LUTs", model.aes_luts, f"{fmt(aes_luts_pct,1)}%", "9.0K (8.2%)"),
        ("AES core FFs", model.aes_ffs, f"{fmt(aes_ffs_pct,1)}%", "3.0K (2.6%)"),
        ("MicroBlaze LUTs", model.mcu_luts, f"{fmt(100*model.mcu_luts/model.base_luts,1)}%",
         "2.7K (2.5%)"),
        ("MicroBlaze FFs", model.mcu_ffs, f"{fmt(100*model.mcu_ffs/model.base_ffs,1)}%",
         "2.2K (1.9%)"),
        ("MicroBlaze BRAMs", model.mcu_brams, f"{fmt(total['brams_pct'],1)}%", "64 (11.0%)"),
        ("MicroBlaze DSPs", model.mcu_dsps, f"{fmt(total['dsps_pct'],1)}%", "6 (0.9%)"),
        ("Total (3 AES + MCU) LUTs", total["luts"], f"{fmt(total['luts_pct'],1)}%", "-"),
    ]
    write_result(
        "E3_resource_overhead",
        "FPGA resource overhead (Section III-B, 512 DSPs / 8-bit)",
        markdown_table(["resource", "count", "% of design", "paper"], rows),
    )
    assert aes_luts_pct == pytest.approx(8.2, abs=0.3)
    assert aes_ffs_pct == pytest.approx(2.6, abs=0.2)
    assert total["brams_pct"] == pytest.approx(11.0, abs=0.2)
