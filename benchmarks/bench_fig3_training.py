"""E6 — Figure 3b: normalized training execution time per network.

Same protection points as Figure 3a, over one fwd+bwd+update iteration.
Paper shape: BP ~1.29x average (worse than inference: more writes,
more VN/MAC cache pressure), GuardNN ~1.01x. DLRM is excluded, as in
the paper's Figure 3b. The grid lives in the ``fig3-training`` preset.
"""

import pytest

from repro.experiments import run_sweep
from repro.experiments.presets import FIG3_TRAINING_NETWORKS

from _common import fmt, markdown_table, write_result

NETWORKS = list(FIG3_TRAINING_NETWORKS)
SCHEMES = ["GuardNN_C", "GuardNN_CI", "BP"]


def compute_series():
    table = run_sweep("fig3-training")
    rows = []
    for name in NETWORKS:
        by_scheme = {r["scheme"]: r for r in table.where(model=name).rows}
        rows.append((name, *[fmt(by_scheme[s]["normalized"], 4) for s in SCHEMES]))
    return rows


def test_fig3b_training_normalized_time(benchmark):
    rows = benchmark.pedantic(compute_series, rounds=1, iterations=1)
    lines = markdown_table(["network", "GuardNN_C", "GuardNN_CI", "BP"], rows)
    c = [float(r[1]) for r in rows]
    ci = [float(r[2]) for r in rows]
    bp = [float(r[3]) for r in rows]
    n = len(rows)
    lines += ["", f"**averages** — GuardNN_C {fmt(sum(c)/n, 4)} (paper 1.0105), "
                  f"GuardNN_CI {fmt(sum(ci)/n, 4)} (paper 1.0107), "
                  f"BP {fmt(sum(bp)/n, 4)} (paper ~1.29)"]
    write_result("E6_fig3b_training", "Figure 3b — normalized training time", lines)

    for c_v, ci_v, bp_v in zip(c, ci, bp):
        assert 1.0 <= c_v <= ci_v <= bp_v
    assert sum(c) / n < 1.02
    assert sum(ci) / n < 1.05
    assert 1.10 < sum(bp) / n < 1.50
