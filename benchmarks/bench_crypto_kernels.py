"""Microbenchmarks of the functional crypto path.

Not a paper artifact — these time our pure-Python primitives so the
repository's own performance characteristics are documented (and so
regressions in the functional path show up). The deterministic work
summary of the same kernels is the ``crypto-kernels`` sweep preset;
the timings here ride on pytest-benchmark.
"""

import pytest

from repro.crypto.aes import AES128
from repro.crypto.cmac import AesCmac
from repro.crypto.ctr import AesCtr
from repro.crypto.sha256 import sha256
from repro.experiments import run_sweep

KEY = bytes(range(16))


def test_kernel_checksums_registered():
    """Every kernel the sweep registry advertises computes a stable,
    non-empty work summary."""
    table = run_sweep("crypto-kernels")
    assert len(table) == 6
    assert all(r["output_sha256"] for r in table.rows)


def test_aes_block_encrypt(benchmark):
    aes = AES128(KEY)
    block = bytes(16)
    benchmark(aes.encrypt_block, block)


def test_ctr_region_1kb(benchmark):
    ctr = AesCtr(KEY)
    data = bytes(1024)
    benchmark(ctr.crypt_region, 0, 1, data)


def test_cmac_512b_chunk(benchmark):
    mac = AesCmac(KEY)
    chunk = bytes(512)
    benchmark(mac.mac, chunk)


def test_sha256_4kb(benchmark):
    data = bytes(4096)
    benchmark(sha256, data)
