"""E5 — Figure 3a: normalized inference execution time per network.

GuardNN_C / GuardNN_CI / BP on the TPU-v1-like simulated ASIC, each
normalized to no-protection. Paper shape: BP ~1.25x average, both
GuardNN variants ~1.01x, for all nine networks. The grid lives in the
``fig3-inference`` sweep preset; this harness formats and pins it.
"""

import pytest

from repro.experiments import run_sweep
from repro.experiments.presets import FIG3_INFERENCE_NETWORKS

from _common import fmt, markdown_table, write_result

NETWORKS = list(FIG3_INFERENCE_NETWORKS)
SCHEMES = ["GuardNN_C", "GuardNN_CI", "BP"]


def compute_series():
    table = run_sweep("fig3-inference")
    rows = []
    for name in NETWORKS:
        by_scheme = {r["scheme"]: r for r in table.where(model=name).rows}
        rows.append((name, *[fmt(by_scheme[s]["normalized"], 4) for s in SCHEMES]))
    return rows


def test_fig3a_inference_normalized_time(benchmark):
    rows = benchmark.pedantic(compute_series, rounds=1, iterations=1)
    lines = markdown_table(["network", "GuardNN_C", "GuardNN_CI", "BP"], rows)
    c = [float(r[1]) for r in rows]
    ci = [float(r[2]) for r in rows]
    bp = [float(r[3]) for r in rows]
    n = len(rows)
    lines += ["", f"**averages** — GuardNN_C {fmt(sum(c)/n, 4)} (paper 1.0104), "
                  f"GuardNN_CI {fmt(sum(ci)/n, 4)} (paper 1.0105), "
                  f"BP {fmt(sum(bp)/n, 4)} (paper ~1.25)"]
    write_result("E5_fig3a_inference", "Figure 3a — normalized inference time", lines)

    # shape: ordering holds per network, magnitudes in paper range
    for c_v, ci_v, bp_v in zip(c, ci, bp):
        assert 1.0 <= c_v <= ci_v <= bp_v
    assert sum(c) / n < 1.02
    assert sum(ci) / n < 1.05
    assert 1.10 < sum(bp) / n < 1.45
