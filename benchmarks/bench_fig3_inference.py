"""E5 — Figure 3a: normalized inference execution time per network.

GuardNN_C / GuardNN_CI / BP on the TPU-v1-like simulated ASIC, each
normalized to no-protection. Paper shape: BP ~1.25x average, both
GuardNN variants ~1.01x, for all nine networks.
"""

import pytest

from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
from repro.accel.models import build_model
from repro.protection.guardnn import GuardNNProtection
from repro.protection.mee import BaselineMEE
from repro.protection.none import NoProtection

from _common import fmt, markdown_table, write_result

NETWORKS = ["vgg16", "alexnet", "googlenet", "resnet50", "mobilenet",
            "vit", "bert", "dlrm", "wav2vec2"]


def compute_series():
    accel = AcceleratorModel(TPU_V1_CONFIG)
    schemes = [GuardNNProtection(False), GuardNNProtection(True), BaselineMEE()]
    rows = []
    for name in NETWORKS:
        model = build_model(name)
        base = accel.run(model, NoProtection())
        normalized = [accel.run(model, s).normalized_to(base) for s in schemes]
        rows.append((name, *[fmt(v, 4) for v in normalized]))
    return rows


def test_fig3a_inference_normalized_time(benchmark):
    rows = benchmark.pedantic(compute_series, rounds=1, iterations=1)
    lines = markdown_table(["network", "GuardNN_C", "GuardNN_CI", "BP"], rows)
    c = [float(r[1]) for r in rows]
    ci = [float(r[2]) for r in rows]
    bp = [float(r[3]) for r in rows]
    n = len(rows)
    lines += ["", f"**averages** — GuardNN_C {fmt(sum(c)/n, 4)} (paper 1.0104), "
                  f"GuardNN_CI {fmt(sum(ci)/n, 4)} (paper 1.0105), "
                  f"BP {fmt(sum(bp)/n, 4)} (paper ~1.25)"]
    write_result("E5_fig3a_inference", "Figure 3a — normalized inference time", lines)

    # shape: ordering holds per network, magnitudes in paper range
    for c_v, ci_v, bp_v in zip(c, ci, bp):
        assert 1.0 <= c_v <= ci_v <= bp_v
    assert sum(c) / n < 1.02
    assert sum(ci) / n < 1.05
    assert 1.10 < sum(bp) / n < 1.45
