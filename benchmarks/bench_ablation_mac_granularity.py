"""A3 — ablation: MAC granularity for GuardNN_CI.

Section II-D: "We customize the size of a memory block that each MAC
protects to match the data movement granularity of the accelerator."
Sweeping the protected-chunk size from 64 B (CPU-cacheline style) to
4 KB (the ``ablation-mac-granularity`` preset) shows why 512 B is the
right point: smaller chunks balloon MAC traffic; larger ones would
exceed the accelerator's transfer unit (and force read-modify-write of
whole chunks).
"""

import pytest

from repro.experiments import run_sweep
from repro.experiments.presets import MAC_CHUNK_BYTES, MAC_GRANULARITY_NETWORKS

from _common import fmt, markdown_table, write_result

NETWORKS = list(MAC_GRANULARITY_NETWORKS)


def compute_sweep():
    table = run_sweep("ablation-mac-granularity")
    rows = []
    for chunk in MAC_CHUNK_BYTES:
        cells = []
        for name in NETWORKS:
            (row,) = table.where(
                model=name, scheme="GuardNN_CI",
                scheme_params={"chunk_bytes": chunk}).rows
            cells.append((row["traffic_increase"], row["normalized"]))
        rows.append((chunk,
                     *[f"{fmt(100*t,2)}% / {fmt(s,4)}x" for t, s in cells]))
    return rows


def test_mac_granularity_sweep(benchmark):
    rows = benchmark.pedantic(compute_sweep, rounds=1, iterations=1)
    write_result(
        "A3_mac_granularity",
        "Ablation — MAC chunk size vs GuardNN_CI traffic/slowdown",
        markdown_table(["chunk bytes", *[f"{n} (+traffic / slowdown)" for n in NETWORKS]],
                       rows),
    )
    # traffic strictly decreases with chunk size
    first_net_traffic = [float(r[1].split("%")[0]) for r in rows]
    assert all(a >= b for a, b in zip(first_net_traffic, first_net_traffic[1:]))
    # 64-B chunks cost >4x the metadata of 512-B chunks
    assert first_net_traffic[0] > 4 * first_net_traffic[3]
