"""Microbenchmarks of the vectorized hot-path engine.

Times the fast-path kernels (batched table-driven AES-CTR, table GHASH,
the SoA trace pipeline, batched Merkle updates, the memoized Fig.-3
sweep) on pytest-benchmark, and asserts on every run that each fast
path reproduces its scalar reference bit-for-bit — so a kernel
regression fails loudly even with ``--benchmark-disable``.

The scalar-vs-fast speedup trajectory itself is recorded by
``scripts/bench_perf.py`` into ``BENCH_perf.json``; this harness is the
per-kernel drill-down.
"""

import numpy as np
import pytest

from repro import perf
from repro.crypto.ctr import AesCtr
from repro.crypto.ecdsa import EcdsaKeyPair, ecdsa_sign
from repro.crypto.gf128 import ghash
from repro.crypto.gmac import AesGmac
from repro.crypto.rng import HmacDrbg
from repro.crypto.sha256_fast import hmac_sha256_many, sha256_many
from repro.mem.cache import SetAssociativeCache
from repro.mem.cache_fast import FastSetAssociativeCache
from repro.mem.controller import MemoryController
from repro.mem.pipeline import TracePipeline, run_materialized
from repro.protection.merkle import MerkleTree
from repro.protection.trace_rewriter import GuardNNTraceRewriter, MeeTraceRewriter
from repro.workloads import StreamingSpec
from repro.workloads.generators import streaming_trace, streaming_trace_batch

KEY = bytes(range(16))
H = int.from_bytes(bytes(range(100, 116)), "big")
DATA_16K = bytes(i & 0xFF for i in range(16 * 1024))
TRACE_BYTES = 1 << 18
LANE_MESSAGES = [bytes((i + j) & 0xFF for j in range(64)) for i in range(256)]
SIGN_KEY = EcdsaKeyPair.generate(HmacDrbg(b"bench-kernels"))
SIGN_MSG = b"attestation output hash, signed by SK_Accel"


def _cache_stream(n=8192, seed=5):
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 1 << 14, size=n).astype(np.int64) * 64
    writes = rng.random(n) < 0.4
    return addresses, writes


@pytest.fixture(scope="module")
def trace_pair():
    return (streaming_trace(TRACE_BYTES, write_fraction=0.5),
            streaming_trace_batch(TRACE_BYTES, write_fraction=0.5))


# -- equivalence gates (run even with --benchmark-disable) -----------------


def test_fast_kernels_match_scalar_references(trace_pair):
    trace, batch = trace_pair
    with perf.scalar_mode():
        ctr_ref = AesCtr(KEY).crypt_region(0x1000, 7, DATA_16K)
        ghash_ref = ghash(H, DATA_16K)
        gmac_ref = AesGmac(KEY).mac(bytes(12), DATA_16K)
    assert AesCtr(KEY).crypt_region(0x1000, 7, DATA_16K) == ctr_ref
    assert ghash(H, DATA_16K) == ghash_ref
    assert AesGmac(KEY).mac(bytes(12), DATA_16K) == gmac_ref

    scalar_rw = GuardNNTraceRewriter(integrity=True)
    batch_rw = GuardNNTraceRewriter(integrity=True)
    assert (batch_rw.rewrite_batch(batch).to_requests()
            + batch_rw.flush_batch().to_requests()
            == scalar_rw.rewrite(trace) + scalar_rw.flush())

    scalar_result = MemoryController().run_trace(trace)
    batch_result = MemoryController().run_batch(batch)
    assert (scalar_result.cycles, scalar_result.bursts) == (
        batch_result.cycles, batch_result.bursts)

    with perf.scalar_mode():
        sha_ref = sha256_many(LANE_MESSAGES)
        hmac_ref = hmac_sha256_many(KEY, LANE_MESSAGES)
    assert sha256_many(LANE_MESSAGES) == sha_ref
    assert hmac_sha256_many(KEY, LANE_MESSAGES) == hmac_ref

    with perf.scalar_mode():
        sig_ref = ecdsa_sign(SIGN_KEY.private, SIGN_MSG)
    assert ecdsa_sign(SIGN_KEY.private, SIGN_MSG) == sig_ref


def test_cache_kernel_matches_reference():
    addresses, writes = _cache_stream()
    fast = FastSetAssociativeCache(64 * 1024, 64, 8)
    reference = SetAssociativeCache(64 * 1024, 64, 8)
    hits, writebacks = fast.access_many(addresses, writes)
    expected = [reference.access(int(a), bool(w))
                for a, w in zip(addresses, writes)]
    assert hits.tolist() == [h for h, _ in expected]
    assert writebacks.tolist() == [-1 if wb is None else wb
                                   for _, wb in expected]
    assert fast.flush() == reference.flush()


def test_pipeline_chunked_matches_materialized():
    """The streaming pipeline is the materialized path, bit for bit:
    same cycles/bursts/traffic for every scheme, across a chunk size
    that splits the stream's coalesced runs."""
    for scheme in ("np", "guardnn-ci", "bp"):
        spec = StreamingSpec(TRACE_BYTES, write_fraction=0.5)
        streamed = TracePipeline(spec, schemes=(scheme,),
                                 chunk_requests=1 << 10).run()[scheme].result
        materialized = run_materialized(spec, scheme)
        assert (streamed.cycles, streamed.bursts) == (
            materialized.cycles, materialized.bursts), scheme
        assert streamed.stats.read_bytes == materialized.stats.read_bytes
        assert streamed.stats.write_bytes == materialized.stats.write_bytes


def test_pipeline_memory_stays_bounded_by_chunk():
    """Peak traced allocation of a streaming run is O(chunk), not
    O(trace): a 32 MB stream (524 288 requests — tens of MB as request
    objects before rewriting even starts) passes through a 4096-request
    chunk pipeline within a few MB."""
    import tracemalloc

    spec = StreamingSpec(1 << 25, write_fraction=0.3)
    materialized_floor = spec.total_requests * 56  # >= one slotted object each
    tracemalloc.start()
    try:
        TracePipeline(spec, schemes=("bp",), chunk_requests=1 << 12).run()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert peak < 8 * 1024 * 1024, f"pipeline peak {peak} bytes is not O(chunk)"
    assert peak < materialized_floor / 3


def test_fig3_sweep_rows_identical_across_paths():
    from repro.experiments import run_sweep

    fast = run_sweep("fig3-inference", cache=False)
    with perf.scalar_mode():
        reference = run_sweep("fig3-inference", cache=False)
    assert fast.rows == reference.rows


# -- timings ---------------------------------------------------------------


def test_batched_aes_ctr_16k(benchmark):
    ctr = AesCtr(KEY)
    benchmark(ctr.crypt_region, 0x1000, 7, DATA_16K)


def test_table_ghash_16k(benchmark):
    ghash(H, DATA_16K)  # prime the per-key table
    benchmark(ghash, H, DATA_16K)


def test_table_gmac_16k(benchmark):
    mac = AesGmac(KEY)
    mac.mac(bytes(12), DATA_16K)
    benchmark(mac.mac, bytes(12), DATA_16K)


def test_guardnn_rewrite_batch(benchmark, trace_pair):
    _, batch = trace_pair
    benchmark(lambda: GuardNNTraceRewriter(integrity=True).rewrite_batch(batch))


def test_mee_rewrite_batch(benchmark, trace_pair):
    _, batch = trace_pair
    benchmark(lambda: MeeTraceRewriter().rewrite_batch(batch))


def test_dram_run_batch(benchmark, trace_pair):
    _, batch = trace_pair
    benchmark(lambda: MemoryController().run_batch(batch))


def test_pipeline_streaming(benchmark):
    spec = StreamingSpec(TRACE_BYTES, write_fraction=0.5)
    benchmark(lambda: TracePipeline(spec, schemes=("bp",),
                                    chunk_requests=1 << 14).run())


def test_pipeline_multischeme(benchmark):
    spec = StreamingSpec(TRACE_BYTES, write_fraction=0.5)
    benchmark(lambda: TracePipeline(spec, schemes=("np", "guardnn-ci", "bp"),
                                    chunk_requests=1 << 14).run())


def test_sha256_lane_parallel_256x64(benchmark):
    sha256_many(LANE_MESSAGES[:2])  # import-time tables warm
    benchmark(sha256_many, LANE_MESSAGES)


def test_hmac_batch_256x64(benchmark):
    benchmark(hmac_sha256_many, KEY, LANE_MESSAGES)


def test_merkle_update_leaves(benchmark):
    updates = [(i, i.to_bytes(4, "big")) for i in range(256)]
    tree = MerkleTree(4096)
    benchmark(tree.update_leaves, updates)
    # attribution metadata: a regression here is either hashing cost
    # (scales with updates) or tree-walk cost (scales with height)
    benchmark.extra_info["tree_height"] = len(tree._levels) - 1
    benchmark.extra_info["updates"] = len(updates)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        mean_s = benchmark.stats.stats.mean
        benchmark.extra_info["per_update_latency_us"] = round(
            mean_s / len(updates) * 1e6, 3)


def test_cache_access_many_8k(benchmark):
    addresses, writes = _cache_stream()

    def run():
        FastSetAssociativeCache(64 * 1024, 64, 8).access_many(addresses, writes)

    benchmark(run)


def test_ecdsa_sign(benchmark):
    ecdsa_sign(SIGN_KEY.private, SIGN_MSG)  # warm the fixed-base table
    benchmark(ecdsa_sign, SIGN_KEY.private, SIGN_MSG)


def test_fig3_sweep_fast_path(benchmark):
    from repro.experiments import run_sweep

    run_sweep("fig3-inference", cache=False)  # warm the memo caches
    table = benchmark.pedantic(
        lambda: run_sweep("fig3-inference", cache=False), rounds=3, iterations=1)
    assert len(table) == 36
