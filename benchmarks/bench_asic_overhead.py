"""E7 — Section III-C ASIC power/area overhead.

Paper arithmetic: matching TPU-v1's 272 Gbps with 28nm AES engines
(0.0031 mm^2 / 3.85 mW / 991 Mbps each) takes 344 engines = 0.3% area
and 1.8% power of TPU-v1 (331 mm^2 / 75 W).
"""

import pytest

from repro.analysis.area import AsicAreaModel

from _common import fmt, markdown_table, write_result


def compute_overhead():
    model = AsicAreaModel()
    rows = []
    for engines in (86, 172, 275, model.engines_needed(), 500):
        o = model.overhead(engines)
        rows.append((o["engines"], fmt(o["area_mm2"], 3), fmt(o["area_pct"], 2),
                     fmt(o["power_w"], 2), fmt(o["power_pct"], 2)))
    return model, rows


def test_asic_overhead(benchmark):
    model, rows = benchmark.pedantic(compute_overhead, rounds=1, iterations=1)
    lines = markdown_table(
        ["AES engines", "area mm^2", "area % of TPU-v1", "power W", "power % of TPU-v1"],
        rows,
    )
    lines += ["", f"bandwidth-matching engine count: {model.engines_needed()} "
                  "(paper: 344 engines -> 0.3% area, 1.8% power)"]
    write_result("E7_asic_overhead", "ASIC area/power overhead (Section III-C)", lines)

    assert model.engines_needed() == 344
    match = model.overhead()
    assert match["area_pct"] < 0.5
    assert match["power_pct"] < 2.5
