"""E7 — Section III-C ASIC power/area overhead.

Paper arithmetic: matching TPU-v1's 272 Gbps with 28nm AES engines
(0.0031 mm^2 / 3.85 mW / 991 Mbps each) takes 344 engines = 0.3% area
and 1.8% power of TPU-v1 (331 mm^2 / 75 W). Grid: the ``asic-overhead``
preset.
"""

import pytest

from repro.experiments import run_sweep

from _common import fmt, markdown_table, write_result


def compute_overhead():
    table = run_sweep("asic-overhead")
    rows = [(r["engines"], fmt(r["area_mm2"], 3), fmt(r["area_pct"], 2),
             fmt(r["power_w"], 2), fmt(r["power_pct"], 2))
            for r in table.rows]
    (matched,) = table.where(bandwidth_matched=True).rows
    return matched, rows


def test_asic_overhead(benchmark):
    matched, rows = benchmark.pedantic(compute_overhead, rounds=1, iterations=1)
    lines = markdown_table(
        ["AES engines", "area mm^2", "area % of TPU-v1", "power W", "power % of TPU-v1"],
        rows,
    )
    lines += ["", f"bandwidth-matching engine count: {matched['engines']} "
                  "(paper: 344 engines -> 0.3% area, 1.8% power)"]
    write_result("E7_asic_overhead", "ASIC area/power overhead (Section III-C)", lines)

    assert matched["engines"] == 344
    assert matched["area_pct"] < 0.5
    assert matched["power_pct"] < 2.5
