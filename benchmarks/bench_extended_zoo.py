"""X2 — generalization sweep over the extended model zoo.

Section III-A's motivation for cycle-level simulation is to "study the
overhead for a larger class of DNN models". This bench runs the
protection comparison over 13 additional architectures (ResNet depths,
VGG depths, MobileNet widths, ViT sizes, BERT-Large, long-audio
wav2vec2) and asserts the paper's conclusions hold for every one of
them: GuardNN ~1-3% traffic, BP tens of percent, the NP<=C<=CI<=BP
ordering everywhere.
"""

import pytest

from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
from repro.accel.zoo_ext import EXTENDED_ZOO, build_extended
from repro.protection.guardnn import GuardNNProtection
from repro.protection.mee import BaselineMEE
from repro.protection.none import NoProtection

from _common import fmt, markdown_table, write_result


def compute_sweep():
    accel = AcceleratorModel(TPU_V1_CONFIG)
    rows = []
    for name in sorted(EXTENDED_ZOO):
        model = build_extended(name)
        base = accel.run(model, NoProtection())
        c = accel.run(model, GuardNNProtection(False))
        ci = accel.run(model, GuardNNProtection(True))
        bp = accel.run(model, BaselineMEE())
        rows.append((name, fmt(model.macs(1) / 1e9, 2),
                     fmt(c.normalized_to(base), 4), fmt(ci.normalized_to(base), 4),
                     fmt(bp.normalized_to(base), 4),
                     fmt(100 * ci.traffic_increase, 1), fmt(100 * bp.traffic_increase, 1)))
    return rows


def test_extended_zoo_sweep(benchmark):
    rows = benchmark.pedantic(compute_sweep, rounds=1, iterations=1)
    write_result(
        "X2_extended_zoo",
        "Generalization — protection overheads across the extended zoo",
        markdown_table(
            ["network", "GMACs", "GuardNN_C x", "GuardNN_CI x", "BP x",
             "CI traffic +%", "BP traffic +%"],
            rows,
        ),
    )
    for name, _gmacs, c, ci, bp, ci_tr, bp_tr in rows:
        assert 1.0 <= float(c) <= float(ci) <= float(bp), name
        assert float(ci_tr) < 4.0, name  # GuardNN stays small everywhere
        assert float(bp_tr) > 4 * float(ci_tr), name  # BP pays much more
