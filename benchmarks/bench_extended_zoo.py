"""X2 — generalization sweep over the extended model zoo.

Section III-A's motivation for cycle-level simulation is to "study the
overhead for a larger class of DNN models". This bench runs the
protection comparison over 13 additional architectures (ResNet depths,
VGG depths, MobileNet widths, ViT sizes, BERT-Large, long-audio
wav2vec2) through the ``extended-zoo`` sweep preset and asserts the
paper's conclusions hold for every one of them: GuardNN ~1-3% traffic,
BP tens of percent, the NP<=C<=CI<=BP ordering everywhere.
"""

import pytest

from repro.accel.zoo_ext import EXTENDED_ZOO
from repro.experiments import run_sweep

from _common import fmt, markdown_table, write_result


def compute_sweep():
    table = run_sweep("extended-zoo")
    rows = []
    for name in sorted(EXTENDED_ZOO):
        by_scheme = {r["scheme"]: r for r in table.where(model=name).rows}
        ci, bp = by_scheme["GuardNN_CI"], by_scheme["BP"]
        rows.append((name, fmt(ci["gmacs"], 2),
                     fmt(by_scheme["GuardNN_C"]["normalized"], 4),
                     fmt(ci["normalized"], 4), fmt(bp["normalized"], 4),
                     fmt(100 * ci["traffic_increase"], 1),
                     fmt(100 * bp["traffic_increase"], 1)))
    return rows


def test_extended_zoo_sweep(benchmark):
    rows = benchmark.pedantic(compute_sweep, rounds=1, iterations=1)
    write_result(
        "X2_extended_zoo",
        "Generalization — protection overheads across the extended zoo",
        markdown_table(
            ["network", "GMACs", "GuardNN_C x", "GuardNN_CI x", "BP x",
             "CI traffic +%", "BP traffic +%"],
            rows,
        ),
    )
    for name, _gmacs, c, ci, bp, ci_tr, bp_tr in rows:
        assert 1.0 <= float(c) <= float(ci) <= float(bp), name
        assert float(ci_tr) < 4.0, name  # GuardNN stays small everywhere
        assert float(bp_tr) > 4 * float(ci_tr), name  # BP pays much more
