"""A2 — ablation: AES engine count on the FPGA prototype.

Section III-B: "The maximum overhead among the four networks can be
further reduced to 1.9% by increasing the number of AES engines from
three to four." Sweeping 1-6 engines (the ``ablation-aes-engines``
preset) shows the overhead cliff when engine throughput falls below
the accelerator's memory demand.
"""

import pytest

from repro.experiments import run_sweep
from repro.experiments.presets import AES_ENGINE_COUNTS, FPGA_NETWORKS

from _common import fmt, markdown_table, write_result

NETWORKS = list(FPGA_NETWORKS)
ENGINE_COUNTS = list(AES_ENGINE_COUNTS)


def compute_sweep():
    table = run_sweep("ablation-aes-engines")
    rows = []
    for engines in ENGINE_COUNTS:
        sub = table.where(engines=engines)
        overheads = []
        for net in NETWORKS:
            (row,) = sub.where(network=net).rows
            overheads.append(row["overhead_pct"])
        rows.append((engines, *[fmt(v, 2) for v in overheads], fmt(max(overheads), 2)))
    return rows


def test_aes_engine_sweep(benchmark):
    rows = benchmark.pedantic(compute_sweep, rounds=1, iterations=1)
    write_result(
        "A2_aes_engine_sweep",
        "Ablation — AES engines vs GuardNN_C overhead (%) at 1024 DSPs / 6-bit",
        markdown_table(["engines", *NETWORKS, "max"], rows),
    )
    by_engines = {r[0]: r for r in rows}
    # max overhead falls monotonically with engines
    maxima = [float(by_engines[e][-1]) for e in ENGINE_COUNTS]
    assert all(a >= b - 1e-9 for a, b in zip(maxima, maxima[1:]))
    # 1 engine is catastrophic; 4+ engines near-zero (the paper's point)
    assert maxima[0] > 20
    assert float(by_engines[4][-1]) < float(by_engines[3][-1]) + 1e-9
    assert float(by_engines[6][-1]) < 1.0
