"""X3 — TCB size decomposition (Table III's LoC row applied to us).

Paper: 21.8k LoC TCB = 9k baseline accelerator + 8.3k protection +
4.5k firmware. We measure the same split over this repository's source:
the trusted packages (crypto, protection, device/firmware, compute) vs
the untrusted/tooling remainder (host, performance models, analysis).
"""

import pytest

from repro.analysis.tcb import measure_tcb

from _common import fmt, markdown_table, write_result


def compute_report():
    return measure_tcb()


def test_tcb_decomposition(benchmark):
    report = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    rows = [(label, loc) for label, loc in sorted(report.categories.items())]
    rows.append(("TCB total", report.tcb_loc))
    rows.append(("untrusted / tooling (host, models, analysis)", report.untrusted_loc))
    lines = markdown_table(["component", "LoC"], rows)
    lines += ["", f"TCB fraction of the package: {fmt(100 * report.tcb_fraction, 1)}% "
                  "(paper's prototype TCB: 21.8k LoC total)"]
    write_result("X3_tcb_size", "TCB size decomposition", lines)

    # the paper's qualitative claim: the trusted part is small and has
    # the firmware < protection <-ish < accelerator shape
    assert report.tcb_loc < report.total_loc
    assert 0.2 < report.tcb_fraction < 0.7
    assert report.tcb_loc > 1000  # it is a real system, not a stub
