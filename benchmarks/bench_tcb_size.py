"""X3 — TCB size decomposition (Table III's LoC row applied to us).

Paper: 21.8k LoC TCB = 9k baseline accelerator + 8.3k protection +
4.5k firmware. We measure the same split over this repository's source:
the trusted packages (crypto, protection, device/firmware, compute) vs
the untrusted/tooling remainder (host, performance models, analysis).
Grid: the ``tcb`` preset.
"""

import pytest

from repro.experiments import run_sweep

from _common import fmt, markdown_table, write_result


def compute_report():
    return run_sweep("tcb")


def test_tcb_decomposition(benchmark):
    table = benchmark.pedantic(compute_report, rounds=1, iterations=1)
    rows = [(r["component"], r["loc"]) for r in table.rows]
    lines = markdown_table(["component", "LoC"], rows)
    (tcb_total,) = table.where(component="TCB total").rows
    (untrusted,) = table.where(component="untrusted / tooling").rows
    total_loc = tcb_total["loc"] + untrusted["loc"]
    tcb_fraction = tcb_total["loc"] / total_loc
    lines += ["", f"TCB fraction of the package: {fmt(100 * tcb_fraction, 1)}% "
                  "(paper's prototype TCB: 21.8k LoC total)"]
    write_result("X3_tcb_size", "TCB size decomposition", lines)

    # the paper's qualitative claim: the trusted part is small and has
    # the firmware < protection <-ish < accelerator shape
    assert tcb_total["loc"] < total_loc
    assert 0.2 < tcb_fraction < 0.7
    assert tcb_total["loc"] > 1000  # it is a real system, not a stub
