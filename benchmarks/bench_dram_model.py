"""DRAM-model characterization: the event-driven substrate behind the
bandwidth numbers the analytic pipeline uses.

Validates (and times) that the DDR4 model reproduces the qualitative
behaviours the protection analysis depends on: streaming near peak,
random access far below it, and metadata interleaving costing row
locality.
"""

import numpy as np
import pytest

from repro.mem.controller import MemoryController
from repro.mem.dram import DDR4_2400
from repro.mem.trace import MemoryRequest
from repro.workloads.generators import random_trace, streaming_trace

from _common import fmt, markdown_table, write_result


def _interleaved_metadata_trace(nbytes: int):
    """Data stream with a VN/MAC line fetch every 512 B from a distant
    region — the BP access pattern."""
    trace = []
    meta_base = 1 << 28
    for i in range(nbytes // 64):
        trace.append(MemoryRequest(i * 64, 64, False))
        if i % 8 == 7:
            trace.append(MemoryRequest(meta_base + (i // 8) * 64, 64, False))
            trace.append(MemoryRequest(meta_base + (1 << 20) + (i // 8) * 64, 64, False))
    return trace


def compute_characterization():
    rng = np.random.default_rng(3)
    rows = []
    stream = MemoryController().run_trace(streaming_trace(1 << 18))
    rows.append(("streaming", fmt(stream.bandwidth_gbps(DDR4_2400.freq_mhz), 2)))
    rand = MemoryController().run_trace(random_trace(4096, 1 << 28, rng))
    rows.append(("random 64B", fmt(rand.bandwidth_gbps(DDR4_2400.freq_mhz), 2)))
    meta = MemoryController().run_trace(_interleaved_metadata_trace(1 << 18))
    rows.append(("stream + BP metadata", fmt(meta.bandwidth_gbps(DDR4_2400.freq_mhz), 2)))
    return rows, stream, rand, meta


def test_dram_characterization(benchmark):
    rows, stream, rand, meta = benchmark.pedantic(compute_characterization,
                                                  rounds=1, iterations=1)
    lines = markdown_table(["pattern", "effective GB/s"], rows)
    lines += ["", f"peak: {DDR4_2400.peak_bandwidth_gbps} GB/s"]
    write_result("X1_dram_characterization", "DDR4 model characterization", lines)

    stream_bw = stream.bandwidth_gbps(DDR4_2400.freq_mhz)
    rand_bw = rand.bandwidth_gbps(DDR4_2400.freq_mhz)
    meta_bw = meta.bandwidth_gbps(DDR4_2400.freq_mhz)
    assert stream_bw > 0.85 * DDR4_2400.peak_bandwidth_gbps
    assert rand_bw < 0.4 * stream_bw
    # metadata interleaving costs bandwidth but is not catastrophic
    assert 0.3 * stream_bw < meta_bw < stream_bw


def test_streaming_kernel(benchmark):
    trace = streaming_trace(1 << 14)

    def run():
        return MemoryController().run_trace(trace)

    benchmark(run)
