"""DRAM-model characterization: the event-driven substrate behind the
bandwidth numbers the analytic pipeline uses.

Validates (and times) that the DDR4 model reproduces the qualitative
behaviours the protection analysis depends on: streaming near peak,
random access far below it, and metadata interleaving costing row
locality. Grid: the ``dram-characterization`` preset.
"""

import pytest

from repro.experiments import run_sweep
from repro.mem.controller import MemoryController
from repro.mem.dram import DDR4_2400
from repro.workloads.generators import streaming_trace

from _common import fmt, markdown_table, write_result


def compute_characterization():
    table = run_sweep("dram-characterization")
    return {r["pattern"]: r for r in table.rows}


def test_dram_characterization(benchmark):
    by_pattern = benchmark.pedantic(compute_characterization, rounds=1, iterations=1)
    rows = [(p, fmt(r["effective_gbps"], 2)) for p, r in by_pattern.items()]
    lines = markdown_table(["pattern", "effective GB/s"], rows)
    lines += ["", f"peak: {DDR4_2400.peak_bandwidth_gbps} GB/s"]
    write_result("X1_dram_characterization", "DDR4 model characterization", lines)

    stream_bw = by_pattern["streaming"]["effective_gbps"]
    rand_bw = by_pattern["random"]["effective_gbps"]
    meta_bw = by_pattern["bp-interleaved"]["effective_gbps"]
    assert stream_bw > 0.85 * DDR4_2400.peak_bandwidth_gbps
    assert rand_bw < 0.4 * stream_bw
    # metadata interleaving costs bandwidth but is not catastrophic
    assert 0.3 * stream_bw < meta_bw < stream_bw


def test_streaming_kernel(benchmark):
    trace = streaming_trace(1 << 14)

    def run():
        return MemoryController().run_trace(trace)

    benchmark(run)
