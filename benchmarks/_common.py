"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (table or figure series),
writes it as markdown under ``benchmarks/results/``, and times a
representative kernel with pytest-benchmark. The written files are the
inputs EXPERIMENTS.md summarizes.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, title: str, lines: Iterable[str]) -> str:
    """Write a result artifact and return its path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.md")
    with open(path, "w") as f:
        f.write(f"# {title}\n\n")
        for line in lines:
            f.write(line + "\n")
    return path


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    """Render a simple markdown table."""
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return lines


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"
