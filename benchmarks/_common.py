"""Shared helpers for the benchmark harness — now a thin shim over
:mod:`repro.experiments`.

Every benchmark resolves its grid from the sweep registry
(``repro.experiments.presets``), runs it through the shared runner, and
writes one paper artifact (table or figure series) as markdown under
``benchmarks/results/``. Formatting helpers live in
:mod:`repro.experiments.table`; only the artifact-file convention is
benchmark-specific and stays here.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.experiments.table import fmt, markdown_table  # noqa: F401 — re-exported

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, title: str, lines: Iterable[str]) -> str:
    """Write a result artifact and return its path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.md")
    with open(path, "w") as f:
        f.write(f"# {title}\n\n")
        for line in lines:
            f.write(line + "\n")
    return path
