"""E8 — Table III: privacy-preserving ML approaches compared.

CPU TEE (simulated), DELPHI MPC, CrypTFlow2 MPC, GuardNN_CI (simulated
ASIC), GuardNN_C (FPGA model): throughput, overhead, power, energy
efficiency, TCB size. The GuardNN columns are *measured* through our
simulation pipeline; the alternatives are analytic models with the
published overheads. Paper shape: GuardNN ~3 orders of magnitude above
CPU/MPC in both GOPs and GOPs/W. Grid: the ``table3-comparison`` preset.
"""

import pytest

from repro.experiments import run_sweep

from _common import fmt, markdown_table, write_result

PAPER = {
    "CPU TEE (simulated)": (0.81, 1.61, 60, 0.01),
    "DELPHI MPC": (0.02, 1000, 130, 0.002),
    "CrypTFLOW2 MPC": (0.18, 100, 130, 0.0001),
    "GuardNN_CI (simulated)": (3221.57, 1.05, 40, 80.5),
    "GuardNN_C (FPGA)": (139.23, 1.01, 15, 9.3),
}


def compute_table():
    return run_sweep("table3-comparison").rows


def test_table3_comparison(benchmark):
    rows = benchmark.pedantic(compute_table, rounds=1, iterations=1)
    table_rows = []
    for r in rows:
        paper_gops, paper_ovh, paper_w, paper_eff = PAPER[r["name"]]
        table_rows.append((
            r["name"], r["hardware"], f"{r['network']}/{r['dataset']}",
            fmt(r["throughput_gops"], 2), paper_gops,
            fmt(r["overhead_factor"], 2), paper_ovh,
            fmt(r["power_w"], 0), fmt(r["efficiency_gops_per_w"], 3), paper_eff,
            r["tcb_loc"],
        ))
    write_result(
        "E8_table3_comparison",
        "Table III — privacy-preserving ML approaches",
        markdown_table(
            ["approach", "hardware", "workload", "GOPs (ours)", "GOPs (paper)",
             "ovh x (ours)", "ovh x (paper)", "W", "GOPs/W (ours)", "GOPs/W (paper)",
             "TCB LoC"],
            table_rows,
        ),
    )
    by_name = {r["name"]: r for r in rows}
    guardnn = by_name["GuardNN_CI (simulated)"]
    cpu = by_name["CPU TEE (simulated)"]
    delphi = by_name["DELPHI MPC"]
    # three orders of magnitude, as the paper claims
    assert guardnn["throughput_gops"] / cpu["throughput_gops"] > 1000
    assert guardnn["throughput_gops"] / delphi["throughput_gops"] > 10000
    assert guardnn["efficiency_gops_per_w"] / cpu["efficiency_gops_per_w"] > 1000
    # GuardNN overheads tiny; MPC overheads huge
    assert guardnn["overhead_factor"] < 1.10
    assert delphi["overhead_factor"] >= 100
