"""E2 — Section III-B GuardNN instruction latencies.

Paper (MicroBlaze, VGG example): GetPK+InitSession 23.1 ms; SetWeight
19.5 / 2.2 / 8.0 / 43.3 ms for AlexNet / GoogleNet / ResNet / VGG;
SetInput 0.1 ms; ExportOutput 0.01 ms; SignOutput 4.8 ms. Grid: the
``instruction-latency`` preset.
"""

import pytest

from repro.experiments import run_sweep

from _common import fmt, markdown_table, write_result

PAPER_SET_WEIGHT = {"alexnet": 19.5, "googlenet": 2.2, "resnet50": 8.0, "vgg16": 43.3}
PAPER_FIXED = {
    "GetPK + InitSession": 23.1,
    "SetInput": 0.1,
    "ExportOutput": 0.01,
    "SignOutput": 4.8,
}


def compute_latencies():
    table = run_sweep("instruction-latency")
    by_instruction = {r["instruction"]: r["ms"] for r in table.rows}
    report = {
        "key_exchange_ms": by_instruction["GetPK + InitSession"],
        "set_input_ms": by_instruction["SetInput"],
        "export_output_ms": by_instruction["ExportOutput"],
        "sign_output_ms": by_instruction["SignOutput"],
    }
    set_weight = {name: by_instruction[f"SetWeight ({name})"]
                  for name in PAPER_SET_WEIGHT}
    return report, set_weight


def test_instruction_latencies(benchmark):
    report, set_weight = benchmark.pedantic(compute_latencies, rounds=1, iterations=1)
    rows = [
        ("GetPK + InitSession (ECDHE-ECDSA)", fmt(report["key_exchange_ms"], 1),
         PAPER_FIXED["GetPK + InitSession"]),
        ("SetInput (one image)", fmt(report["set_input_ms"], 3),
         PAPER_FIXED["SetInput"]),
        ("ExportOutput (1000-class)", fmt(report["export_output_ms"], 3),
         PAPER_FIXED["ExportOutput"]),
        ("SignOutput (ECDSA)", fmt(report["sign_output_ms"], 1),
         PAPER_FIXED["SignOutput"]),
    ]
    rows += [(f"SetWeight ({name})", fmt(ms, 1), PAPER_SET_WEIGHT[name])
             for name, ms in sorted(set_weight.items())]
    write_result(
        "E2_instruction_latency",
        "GuardNN instruction latencies (Section III-B)",
        markdown_table(["instruction", "ours (ms)", "paper (ms)"], rows),
    )
    # shape: key exchange tens of ms; SetWeight proportional to weights
    assert 15 < report["key_exchange_ms"] < 35
    assert set_weight["googlenet"] < set_weight["resnet50"] < set_weight["alexnet"] < set_weight["vgg16"]
    ratio = set_weight["vgg16"] / set_weight["alexnet"]
    assert ratio == pytest.approx(43.3 / 19.5, rel=0.15)
    assert report["set_input_ms"] < 0.5
    assert report["export_output_ms"] < 0.1


def test_scalar_mult_kernel(benchmark):
    """The microbenchmark under it all: one P-256 scalar multiplication
    of our pure-Python implementation."""
    from repro.crypto.ec import base_mult

    benchmark(base_mult, 0xDEADBEEFCAFE1234567890)
