"""A1 — ablation: BP's VN/MAC cache size sweep.

Why does the baseline hurt so much? Its version numbers live off-chip
behind a small cache. Sweeping the cache from 16 KB to 4 MB shows BP's
traffic overhead falling toward (but never reaching) GuardNN's — while
GuardNN needs *no* cache at all because its VNs are a handful of
on-chip counters. This is the design-space argument of Section II-D.
"""

import pytest

from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
from repro.accel.models import build_model
from repro.protection.guardnn import GuardNNProtection
from repro.protection.mee import BaselineMEE, MeeParams

from _common import fmt, markdown_table, write_result

CACHE_SIZES_KB = [16, 64, 256, 1024, 4096]
NETWORKS = ["vgg16", "resnet50", "bert"]


def compute_sweep():
    accel = AcceleratorModel(TPU_V1_CONFIG)
    rows = []
    for kb in CACHE_SIZES_KB:
        scheme = BaselineMEE(MeeParams(cache_bytes=kb * 1024))
        increases = []
        for name in NETWORKS:
            model = build_model(name)
            increases.append(accel.run(model, scheme).traffic_increase)
        rows.append((kb, *[fmt(100 * v, 1) for v in increases]))
    ci = GuardNNProtection(True)
    guardnn_row = ["GuardNN_CI (no cache)"]
    for name in NETWORKS:
        guardnn_row.append(fmt(100 * accel.run(build_model(name), ci).traffic_increase, 1))
    rows.append(tuple(guardnn_row))
    return rows


def test_vn_cache_sweep(benchmark):
    rows = benchmark.pedantic(compute_sweep, rounds=1, iterations=1)
    write_result(
        "A1_vn_cache_sweep",
        "Ablation — BP metadata-cache size vs traffic increase (+%)",
        markdown_table(["VN/MAC cache (KB)", *NETWORKS], rows),
    )
    swept = [r for r in rows if isinstance(r[0], int)]
    # monotone: larger cache never increases traffic
    for col in range(1, len(NETWORKS) + 1):
        values = [float(r[col]) for r in swept]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
    # even a 4 MB cache leaves BP well above GuardNN_CI
    last = swept[-1]
    guardnn = rows[-1]
    assert all(float(last[i]) > float(guardnn[i]) for i in range(1, len(NETWORKS) + 1))
