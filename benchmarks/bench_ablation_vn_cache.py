"""A1 — ablation: BP's VN/MAC cache size sweep.

Why does the baseline hurt so much? Its version numbers live off-chip
behind a small cache. Sweeping the cache from 16 KB to 4 MB (the
``ablation-vn-cache`` preset) shows BP's traffic overhead falling
toward (but never reaching) GuardNN's — while GuardNN needs *no* cache
at all because its VNs are a handful of on-chip counters. This is the
design-space argument of Section II-D.
"""

import pytest

from repro.experiments import run_sweep
from repro.experiments.presets import VN_CACHE_NETWORKS, VN_CACHE_SIZES_KB

from _common import fmt, markdown_table, write_result

NETWORKS = list(VN_CACHE_NETWORKS)


def compute_sweep():
    table = run_sweep("ablation-vn-cache")
    rows = []
    for kb in VN_CACHE_SIZES_KB:
        cells = []
        for name in NETWORKS:
            (row,) = table.where(
                model=name, scheme="BP",
                scheme_params={"cache_bytes": kb * 1024}).rows
            cells.append(fmt(100 * row["traffic_increase"], 1))
        rows.append((kb, *cells))
    guardnn_row = ["GuardNN_CI (no cache)"]
    for name in NETWORKS:
        (row,) = table.where(model=name, scheme="GuardNN_CI").rows
        guardnn_row.append(fmt(100 * row["traffic_increase"], 1))
    rows.append(tuple(guardnn_row))
    return rows


def test_vn_cache_sweep(benchmark):
    rows = benchmark.pedantic(compute_sweep, rounds=1, iterations=1)
    write_result(
        "A1_vn_cache_sweep",
        "Ablation — BP metadata-cache size vs traffic increase (+%)",
        markdown_table(["VN/MAC cache (KB)", *NETWORKS], rows),
    )
    swept = [r for r in rows if isinstance(r[0], int)]
    # monotone: larger cache never increases traffic
    for col in range(1, len(NETWORKS) + 1):
        values = [float(r[col]) for r in swept]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
    # even a 4 MB cache leaves BP well above GuardNN_CI
    last = swept[-1]
    guardnn = rows[-1]
    assert all(float(last[i]) > float(guardnn[i]) for i in range(1, len(NETWORKS) + 1))
