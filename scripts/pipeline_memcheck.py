#!/usr/bin/env python
"""Memory-ceiling smoke: an LLM-scale decode trace streamed end-to-end
under a hard address-space budget the materialized path cannot fit.

The check has three parts:

1. **The materialized path cannot fit.** Estimate the footprint of
   rendering the workload as ``MemoryRequest`` objects (measured
   per-object cost x request count) and require it to exceed the
   budget — otherwise the workload is not large enough to prove
   anything.
2. **A hard ceiling.** ``resource.setrlimit(RLIMIT_AS)`` pins the
   process to its current address-space usage plus ``--budget-mb``; an
   O(trace) allocation anywhere in the pipeline dies with MemoryError
   instead of quietly succeeding on a big CI box.
3. **A measured ceiling.** The peak-RSS growth over the run
   (``getrusage(ru_maxrss)``) must stay within ``--rss-budget-mb`` —
   O(chunk), not O(trace). (``tracemalloc`` would be byte-exact but
   slows this allocation-heavy run ~30x; the fine-grained O(chunk)
   assertion lives in ``benchmarks/bench_perf_kernels.py`` at a size
   where tracing is cheap.)

Usage (the CI perf-smoke leg)::

    PYTHONPATH=src python scripts/pipeline_memcheck.py \
        --workload gpt2-xl --tokens 1 --context 1024 --budget-mb 1024
"""

from __future__ import annotations

import argparse
import os
import resource
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def current_vms_bytes() -> int:
    """Current virtual memory size (Linux; the CI runner)."""
    with open("/proc/self/statm") as f:
        return int(f.read().split()[0]) * os.sysconf("SC_PAGE_SIZE")


def peak_rss_bytes() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def materialized_estimate(spec) -> int:
    """Lower-bound bytes to hold ``spec`` as request objects."""
    from repro.mem.trace import MemoryRequest

    sample = MemoryRequest(1 << 40, 64, False)
    # slotted object + a non-interned address int + the list slot
    per_request = sys.getsizeof(sample) + sys.getsizeof(sample.address) + 8
    return spec.total_requests * per_request


def main(argv=None) -> int:
    from repro.workloads.llm import list_llm_workloads

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="gpt2-xl",
                        choices=list_llm_workloads(),
                        help="LLM decode geometry to stream (this smoke "
                             "is about LLM-scale traces; the synthetic "
                             "patterns go through `repro sweep --preset "
                             "pipeline-patterns`)")
    parser.add_argument("--tokens", type=int, default=1)
    parser.add_argument("--context", type=int, default=1024)
    parser.add_argument("--schemes", default="guardnn-ci",
                        help="comma-separated protection schemes (bp runs "
                             "the full MEE walk — several times slower)")
    parser.add_argument("--chunk-requests", type=int, default=1 << 17)
    parser.add_argument("--budget-mb", type=int, default=1024,
                        help="RLIMIT_AS headroom over current usage")
    parser.add_argument("--rss-budget-mb", type=int, default=512,
                        help="peak-RSS growth ceiling for the run")
    args = parser.parse_args(argv)

    from repro.mem.pipeline import TracePipeline
    from repro.workloads import build_trace_spec

    spec = build_trace_spec(args.workload, tokens=args.tokens,
                            context=args.context)
    schemes = tuple(args.schemes.split(","))
    budget = args.budget_mb << 20
    estimate = materialized_estimate(spec)
    print(f"workload:            {args.workload} x {args.tokens} token(s), "
          f"context {args.context}")
    print(f"trace:               {spec.total_requests:,} requests "
          f"({spec.total_requests * 64 / 1e9:.2f} GB moved)")
    print(f"materialized (est.): {estimate / 1e9:.2f} GB of request objects")
    print(f"ceiling:             current usage + {args.budget_mb} MB "
          f"(RLIMIT_AS), peak-RSS growth <= {args.rss_budget_mb} MB")
    if estimate <= budget:
        print("ERROR: workload fits the ceiling even materialized — "
              "raise --tokens/--context or lower --budget-mb")
        return 1

    ceiling = current_vms_bytes() + budget
    resource.setrlimit(resource.RLIMIT_AS, (ceiling, ceiling))
    rss_before = peak_rss_bytes()

    started = time.perf_counter()
    results = TracePipeline(spec, schemes=schemes,
                            chunk_requests=args.chunk_requests).run()
    elapsed = time.perf_counter() - started
    rss_growth = peak_rss_bytes() - rss_before

    for name in schemes:
        timing = results[name].result
        print(f"{name:12s} cycles {timing.cycles:>15,}  traffic "
              f"+{100 * timing.stats.traffic_increase():.2f}%")
    print(f"completed in {elapsed:.1f} s; peak-RSS growth "
          f"{rss_growth / 1e6:.1f} MB (chunk {args.chunk_requests} requests)")
    if rss_growth > args.rss_budget_mb << 20:
        print(f"ERROR: peak-RSS growth exceeds {args.rss_budget_mb} MB — "
              "the pipeline is no longer O(chunk)")
        return 1
    print(f"OK: {estimate / 1e9:.2f} GB-materialized workload streamed "
          f"in {rss_growth / 1e6:.1f} MB of growth")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
