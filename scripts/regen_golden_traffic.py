#!/usr/bin/env python
"""Regenerate ``tests/regression/golden_traffic.json``.

Run this ONLY when a deliberate model change moves the paper-facing
numbers (and say so in the commit): the golden file pins the per-network
cycle counts and per-RequestKind metadata traffic that produce Figure 3
and the Section III-C traffic table. An accidental change to the
scheduler, the schemes, or the model zoo makes
``tests/regression/test_golden_traffic.py`` fail against these values.

Usage:  python scripts/regen_golden_traffic.py
"""

import json
import os
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG  # noqa: E402
from repro.accel.models import build_model  # noqa: E402
from repro.mem.trace import RequestKind  # noqa: E402
from repro.protection import build_scheme  # noqa: E402

OUT_PATH = os.path.join(REPO_ROOT, "tests", "regression", "golden_traffic.json")

INFERENCE_NETWORKS = ["vgg16", "alexnet", "googlenet", "resnet50", "mobilenet",
                      "vit", "bert", "dlrm", "wav2vec2"]
TRAINING_NETWORKS = [n for n in INFERENCE_NETWORKS if n != "dlrm"]
TRAINING_BATCH = 4
SCHEMES = ["np", "guardnn-c", "guardnn-ci", "bp"]
PER_LAYER_NETWORK = "alexnet"


def summarize(result):
    breakdown = result.metadata_breakdown
    return {
        "total_cycles": result.total_cycles,
        "data_bytes": result.total_data_bytes,
        "metadata_bytes": result.total_metadata_bytes,
        "vn_bytes": breakdown.get(RequestKind.VN, 0),
        "mac_bytes": breakdown.get(RequestKind.MAC, 0),
        "tree_bytes": breakdown.get(RequestKind.TREE, 0),
    }


def per_layer(result):
    rows = []
    for layer in result.layers:
        rows.append({
            "layer": layer.name,
            "op": layer.op,
            "data_bytes": layer.data_bytes,
            "vn_bytes": layer.breakdown.get(RequestKind.VN, 0),
            "mac_bytes": layer.breakdown.get(RequestKind.MAC, 0),
            "tree_bytes": layer.breakdown.get(RequestKind.TREE, 0),
        })
    return rows


def main():
    accel = AcceleratorModel(TPU_V1_CONFIG)
    golden = {
        "_comment": "Pinned by scripts/regen_golden_traffic.py — regenerate "
                    "only for deliberate paper-number changes.",
        "config": TPU_V1_CONFIG.name,
        "training_batch": TRAINING_BATCH,
        "inference": {},
        "training": {},
        "per_layer": {},
    }
    for name in INFERENCE_NETWORKS:
        model = build_model(name)
        golden["inference"][name] = {
            key: summarize(accel.run(model, build_scheme(key))) for key in SCHEMES
        }
    for name in TRAINING_NETWORKS:
        model = build_model(name)
        golden["training"][name] = {
            key: summarize(accel.run(model, build_scheme(key), training=True,
                                     batch=TRAINING_BATCH))
            for key in SCHEMES
        }
    model = build_model(PER_LAYER_NETWORK)
    golden["per_layer"][PER_LAYER_NETWORK] = {
        key: per_layer(accel.run(model, build_scheme(key)))
        for key in ("bp", "guardnn-ci")
    }

    with open(OUT_PATH, "w") as f:
        json.dump(golden, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {OUT_PATH}")


if __name__ == "__main__":
    main()
