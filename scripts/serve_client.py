#!/usr/bin/env python
"""Tiny command-line client for a running ``repro serve`` daemon.

Examples::

    # a registered sweep, streamed; final table as JSON on stdout
    python scripts/serve_client.py --port 8787 sweep --preset fig3-inference

    # an ad-hoc grid
    python scripts/serve_client.py sweep --models alexnet,vgg16 --schemes np,bp

    # an LLM pipeline run with live per-chunk progress on stderr
    python scripts/serve_client.py pipeline --workload gpt2 \
        --schemes np,guardnn-ci --params '{"tokens": 1, "context": 128}'

    # scrape the metrics endpoint
    python scripts/serve_client.py metrics

Progress/partial events go to stderr, the terminal result to stdout, so
the output composes with ``jq`` and friends. Exit codes: 0 result,
2 rejected (saturated — retry after the printed delay), 3 failed,
4 cancelled.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.service.client import (  # noqa: E402
    ServiceCancelled,
    ServiceClient,
    ServiceJobError,
    ServiceRejected,
)


def _progress(event: dict) -> None:
    name = event.get("event")
    if name == "accepted":
        note = " (coalesced onto an in-flight job)" if event.get("coalesced") else ""
        print(f"# accepted key={event.get('key', '')[:12]}…{note}",
              file=sys.stderr)
    elif name == "rows":
        print(f"# +{len(event['rows'])} rows (from job {event['index']})",
              file=sys.stderr)
    elif name == "progress":
        done, total = event["requests_done"], event["total_requests"]
        pct = 100.0 * done / total if total else 100.0
        print(f"# chunk {event['chunk']}: {done:,}/{total:,} requests "
              f"({pct:.1f}%)", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-event progress on stderr")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="resubmit up to N times after a 429/503 "
                             "rejection, backing off exponentially with "
                             "jitter around the server's Retry-After "
                             "(default: fail fast)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("sweep", help="submit a sweep job")
    p.add_argument("--preset", help="registered sweep name")
    p.add_argument("--models", help="comma-separated models (ad-hoc grid)")
    p.add_argument("--schemes", help="comma-separated schemes (ad-hoc grid)")
    p.add_argument("--batches", help="comma-separated batch sizes")
    p.add_argument("--modes", help="comma-separated modes")

    p = sub.add_parser("pipeline", help="submit a streaming pipeline job")
    p.add_argument("--workload", required=True,
                   help="streaming | random | bp-metadata | gpt2 | gpt2-xl | llama-7b")
    p.add_argument("--schemes", default="np,guardnn-c,guardnn-ci,bp")
    p.add_argument("--chunk-requests", type=int, default=None)
    p.add_argument("--params", default="{}",
                   help="extra TraceSpec params as a JSON object")

    sub.add_parser("metrics", help="print the /metrics snapshot")

    args = parser.parse_args(argv)
    client = ServiceClient(args.host, args.port)

    if args.command == "metrics":
        print(json.dumps(client.metrics(), indent=2))
        return 0

    if args.command == "sweep":
        if args.preset:
            job = {"kind": "sweep", "preset": args.preset}
        elif args.models:
            spec = {"models": args.models.split(",")}
            if args.schemes:
                spec["schemes"] = args.schemes.split(",")
            if args.batches:
                spec["batches"] = [int(b) for b in args.batches.split(",")]
            if args.modes:
                spec["modes"] = args.modes.split(",")
            job = {"kind": "sweep", "spec": spec}
        else:
            parser.error("sweep needs --preset or --models")
    else:
        job = {"kind": "pipeline", "workload": args.workload,
               "schemes": args.schemes.split(","),
               "params": json.loads(args.params)}
        if args.chunk_requests:
            job["chunk_requests"] = args.chunk_requests

    try:
        result = client.run(job, on_event=None if args.quiet else _progress,
                            retries=max(0, args.retries))
    except ServiceRejected as rejected:
        print(f"rejected (HTTP {rejected.status}): retry after "
              f"{rejected.retry_after}s", file=sys.stderr)
        return 2
    except ServiceJobError as error:
        print(f"job failed: {error}", file=sys.stderr)
        return 3
    except ServiceCancelled as cancelled:
        print(f"job cancelled: {cancelled}", file=sys.stderr)
        return 4
    print(json.dumps(result.get("table", result.get("rows")), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
