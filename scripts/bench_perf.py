#!/usr/bin/env python
"""Perf-trajectory benchmark: scalar reference vs. vectorized fast path.

Times every hot-path kernel of the vectorized engine against the scalar
reference implementation that remains in-tree (see ``repro.perf``), and
records the results in ``BENCH_perf.json`` so the repository's
performance trajectory is tracked from PR to PR:

* crypto: AES-CTR region encryption, GHASH, GMAC;
* trace pipeline: GuardNN/MEE trace rewriting and the FR-FCFS DDR4
  model, object stream vs. :class:`~repro.mem.batch.RequestBatch`;
* Merkle: per-leaf path updates vs. batched ``update_leaves``;
* end-to-end: the Figure-3 inference sweep through the experiment
  runner (the registry's hottest artifact).

Methodology: each measurement takes the best of ``--repeat`` timed runs
after one warmup. The fast path keeps its memo caches warm across
repeats — that steady state is the behaviour being shipped — while the
scalar path runs under ``repro.perf.scalar_mode()`` with the caches
dropped. Both paths produce bit-identical outputs (enforced by the
equivalence suite, and spot-checked here).

Usage::

    PYTHONPATH=src python scripts/bench_perf.py            # full
    PYTHONPATH=src python scripts/bench_perf.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import perf  # noqa: E402
from repro.crypto.ctr import AesCtr  # noqa: E402
from repro.crypto.gf128 import ghash  # noqa: E402
from repro.crypto.gmac import AesGmac  # noqa: E402
from repro.crypto.sha256_fast import hmac_sha256_many, sha256_many  # noqa: E402
from repro.mem.controller import MemoryController  # noqa: E402
from repro.protection.merkle import MerkleTree  # noqa: E402
from repro.protection.trace_rewriter import (  # noqa: E402
    GuardNNTraceRewriter,
    MeeTraceRewriter,
)
from repro.workloads.generators import (  # noqa: E402
    bp_metadata_trace,
    bp_metadata_trace_batch,
    streaming_trace,
    streaming_trace_batch,
)

KEY = bytes(range(16))

#: acceptance targets for the headline kernels (reported, and checked
#: by --check)
TARGETS = {
    "aes_ctr": 10.0,
    "ghash": 10.0,
    "sha256_batch": 20.0,
    "hmac_batch": 20.0,
    "merkle_updates": 10.0,
    "rewriter_mee": 8.0,
    "dram_streaming": 5.0,
    "dram_bp-interleaved": 5.0,
    "ecdsa_sign": 3.0,
    "fig3_inference_sweep": 15.0,
    "pipeline_streaming": 5.0,
    "pipeline_multischeme": 5.0,
}


def _best_of(fn, repeat: int) -> float:
    fn()  # warmup (also primes fast-path tables/memos)
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure(name, fast_fn, scalar_fn, repeat, extra=None, check_equal=None):
    """Time fast vs scalar; optionally assert their outputs agree."""
    if check_equal is not None:
        with perf.scalar_mode():
            reference = scalar_fn()
        assert check_equal(fast_fn(), reference), f"{name}: fast != scalar output"
    fast_s = _best_of(fast_fn, repeat)
    with perf.scalar_mode():
        scalar_s = _best_of(scalar_fn, repeat)
    perf.clear_caches()
    row = {"scalar_s": round(scalar_s, 6), "fast_s": round(fast_s, 6),
           "speedup": round(scalar_s / fast_s, 2)}
    row.update(extra or {})
    return name, row


def bench_aes_ctr(nbytes: int, repeat: int):
    data = bytes(i & 0xFF for i in range(nbytes))
    run = lambda: AesCtr(KEY).crypt_region(0x1000, 7, data)
    return _measure("aes_ctr", run, run, repeat,
                    extra={"bytes": nbytes}, check_equal=lambda a, b: a == b)


def bench_ghash(nbytes: int, repeat: int):
    h = int.from_bytes(bytes(range(100, 116)), "big")
    data = bytes(i & 0xFF for i in range(nbytes))
    run = lambda: ghash(h, data)
    return _measure("ghash", run, run, repeat,
                    extra={"bytes": nbytes}, check_equal=lambda a, b: a == b)


def bench_gmac(nbytes: int, repeat: int):
    data = bytes(i & 0xFF for i in range(nbytes))
    run = lambda: AesGmac(KEY).mac(bytes(12), data)
    return _measure("gmac", run, run, repeat,
                    extra={"bytes": nbytes}, check_equal=lambda a, b: a == b)


def bench_sha256_batch(lanes: int, msg_bytes: int, repeat: int):
    messages = [bytes((i + j) & 0xFF for j in range(msg_bytes))
                for i in range(lanes)]
    run = lambda: sha256_many(messages)
    return _measure("sha256_batch", run, run, repeat,
                    extra={"lanes": lanes, "message_bytes": msg_bytes},
                    check_equal=lambda a, b: a == b)


def bench_hmac_batch(lanes: int, msg_bytes: int, repeat: int):
    key = bytes(range(32))
    messages = [bytes((i + j) & 0xFF for j in range(msg_bytes))
                for i in range(lanes)]
    run = lambda: hmac_sha256_many(key, messages)
    return _measure("hmac_batch", run, run, repeat,
                    extra={"lanes": lanes, "message_bytes": msg_bytes},
                    check_equal=lambda a, b: a == b)


def bench_rewriter(kind: str, nbytes: int, repeat: int):
    trace = streaming_trace(nbytes, write_fraction=0.5)
    batch = streaming_trace_batch(nbytes, write_fraction=0.5)

    def make(kind):
        if kind == "guardnn":
            return GuardNNTraceRewriter(integrity=True)
        return MeeTraceRewriter()

    fast = lambda: make(kind).rewrite_batch(batch)
    scalar = lambda: make(kind).rewrite(trace)
    return _measure(
        f"rewriter_{kind}", fast, scalar, repeat,
        extra={"bytes": nbytes, "requests": len(trace)},
        check_equal=lambda a, b: a.to_requests() == b)


def bench_dram(pattern: str, nbytes: int, repeat: int):
    if pattern == "streaming":
        trace, batch = streaming_trace(nbytes), streaming_trace_batch(nbytes)
    else:
        trace, batch = bp_metadata_trace(nbytes), bp_metadata_trace_batch(nbytes)
    fast = lambda: MemoryController().run_batch(batch)
    scalar = lambda: MemoryController().run_trace(trace)
    return _measure(
        f"dram_{pattern}", fast, scalar, repeat,
        extra={"bytes": nbytes, "requests": len(trace)},
        check_equal=lambda a, b: (a.cycles, a.bursts) == (b.cycles, b.bursts))


def bench_merkle(num_leaves: int, updates: int, repeat: int):
    span = [(i % num_leaves, i.to_bytes(4, "big")) for i in range(updates)]

    def fast():
        tree = MerkleTree(num_leaves)
        tree.update_leaves(span)
        return tree.root

    def scalar():
        tree = MerkleTree(num_leaves)
        for index, leaf in span:
            tree.update_leaf(index, leaf)
        return tree.root

    name, row = _measure("merkle_updates", fast, scalar, repeat,
                         extra={"leaves": num_leaves, "updates": updates},
                         check_equal=lambda a, b: a == b)
    # attribute regressions: hashing cost scales with updates, the
    # tree-walk cost with height
    row["tree_height"] = num_leaves.bit_length() - 1
    row["fast_us_per_update"] = round(row["fast_s"] / updates * 1e6, 3)
    row["scalar_us_per_update"] = round(row["scalar_s"] / updates * 1e6, 3)
    return name, row


def bench_pipeline_streaming(nbytes: int, repeat: int):
    """End-to-end front end: chunked streaming TracePipeline (generate →
    MEE rewrite → DDR4, fused per chunk) vs the materialized path
    (whole object trace built, rewritten, then timed)."""
    from repro.mem.pipeline import TracePipeline, run_materialized
    from repro.workloads import StreamingSpec

    chunk = 1 << 14

    def spec():
        return StreamingSpec(nbytes, write_fraction=0.5)

    fast = lambda: TracePipeline(spec(), schemes=("bp",),
                                 chunk_requests=chunk).run()["bp"].result
    scalar = lambda: run_materialized(spec(), "bp")
    return _measure(
        "pipeline_streaming", fast, scalar, repeat,
        extra={"bytes": nbytes, "requests": nbytes // 64,
               "chunk_requests": chunk, "scheme": "bp"},
        check_equal=lambda a, b: (a.cycles, a.bursts) == (b.cycles, b.bursts))


def bench_pipeline_multischeme(nbytes: int, repeat: int):
    """The shared-pass comparison mode: one generation pass forked
    through np/guardnn-ci/bp vs three materialized runs."""
    from repro.mem.pipeline import TracePipeline, run_materialized
    from repro.workloads import StreamingSpec

    schemes = ("np", "guardnn-ci", "bp")
    chunk = 1 << 14

    def spec():
        return StreamingSpec(nbytes, write_fraction=0.5)

    def fast():
        results = TracePipeline(spec(), schemes=schemes,
                                chunk_requests=chunk).run()
        return tuple((results[s].result.cycles, results[s].result.bursts)
                     for s in schemes)

    def scalar():
        return tuple((r.cycles, r.bursts)
                     for r in (run_materialized(spec(), s) for s in schemes))

    return _measure(
        "pipeline_multischeme", fast, scalar, repeat,
        extra={"bytes": nbytes, "requests": nbytes // 64,
               "chunk_requests": chunk, "schemes": len(schemes)},
        check_equal=lambda a, b: a == b)


def bench_ecdsa_sign(repeat: int):
    from repro.crypto.ecdsa import EcdsaKeyPair, ecdsa_sign
    from repro.crypto.rng import HmacDrbg

    pair = EcdsaKeyPair.generate(HmacDrbg(b"bench-ecdsa"))
    message = b"attestation output hash, signed by SK_Accel"
    run = lambda: ecdsa_sign(pair.private, message)
    return _measure("ecdsa_sign", run, run, repeat,
                    extra={"curve": "P-256"}, check_equal=lambda a, b: a == b)


def bench_fig3(repeat: int):
    from repro.experiments import run_sweep

    # workers=1 explicitly: under a spawn start method, pool children
    # would re-import repro.perf and ignore the parent's scalar_mode()
    run = lambda: run_sweep("fig3-inference", workers=1, cache=False)
    name, row = _measure(
        "fig3_inference_sweep", run, run, repeat,
        check_equal=lambda a, b: a.rows == b.rows)
    row["jobs"] = 36
    return name, row


def kernel_specs(quick: bool, repeat: int):
    """Ordered (name, thunk) registry of every tracked kernel."""
    crypto_bytes = 16 * 1024 if quick else 64 * 1024
    trace_bytes = 1 << 18 if quick else 1 << 20
    dram_bytes = 1 << 16 if quick else 1 << 18
    lanes = 512 if quick else 1024
    return [
        ("aes_ctr", lambda: bench_aes_ctr(crypto_bytes, repeat)),
        ("ghash", lambda: bench_ghash(crypto_bytes, repeat)),
        ("gmac", lambda: bench_gmac(crypto_bytes // 2, repeat)),
        ("sha256_batch", lambda: bench_sha256_batch(lanes, 64, repeat)),
        ("hmac_batch", lambda: bench_hmac_batch(lanes, 64, repeat)),
        ("rewriter_guardnn", lambda: bench_rewriter("guardnn", trace_bytes, repeat)),
        ("rewriter_mee", lambda: bench_rewriter("mee", trace_bytes, repeat)),
        ("dram_streaming", lambda: bench_dram("streaming", dram_bytes, repeat)),
        ("dram_bp-interleaved", lambda: bench_dram("bp-interleaved", dram_bytes, repeat)),
        ("pipeline_streaming", lambda: bench_pipeline_streaming(trace_bytes, repeat)),
        ("pipeline_multischeme", lambda: bench_pipeline_multischeme(trace_bytes, repeat)),
        ("merkle_updates", lambda: bench_merkle(1024 if quick else 4096,
                                                128 if quick else 512, repeat)),
        ("ecdsa_sign", lambda: bench_ecdsa_sign(repeat)),
        ("fig3_inference_sweep", lambda: bench_fig3(repeat)),
    ]


def run_benchmarks(quick: bool, repeat: int, kernels=None):
    specs = kernel_specs(quick, repeat)
    if kernels:
        known = {name for name, _ in specs}
        unknown = [k for k in kernels if k not in known]
        if unknown:
            raise SystemExit(
                f"unknown kernel(s) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(known))}")
        specs = [(name, thunk) for name, thunk in specs if name in set(kernels)]
    return dict(thunk() for _name, thunk in specs)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small inputs / few repeats (CI smoke)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timed repetitions per measurement (best-of)")
    parser.add_argument("--kernel", action="append", default=None,
                        help="measure only this kernel (repeatable); the "
                             "report is not written unless --output is given")
    parser.add_argument("--list-kernels", action="store_true",
                        help="print the kernel names and exit")
    parser.add_argument("--output", default=None,
                        help="report path (default: <repo>/BENCH_perf.json "
                             "for full-mode full-registry runs; quick and "
                             "--kernel runs write nothing)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if a headline target is missed")
    args = parser.parse_args(argv)

    repeat = args.repeat or (2 if args.quick else 5)
    if args.list_kernels:
        for name, _thunk in kernel_specs(args.quick, repeat):
            print(name)
        return 0
    kernels = run_benchmarks(args.quick, repeat, kernels=args.kernel)

    report = {
        "schema": 1,
        "generated_by": "scripts/bench_perf.py",
        "mode": "quick" if args.quick else "full",
        "repeat": repeat,
        "python": platform.python_version(),
        "targets": TARGETS,
        "kernels": kernels,
    }
    output = args.output
    if output is None and not args.kernel and not args.quick:
        # only a full-registry, full-mode run may refresh the tracked
        # baseline by default: quick-mode ratios are shifted by the
        # smaller inputs and would poison bench_compare.py comparisons
        output = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")
    width = max(len(k) for k in kernels)
    print(f"{'kernel'.ljust(width)}  scalar_s   fast_s     speedup")
    for name, row in kernels.items():
        print(f"{name.ljust(width)}  {row['scalar_s']:<9.4f}  {row['fast_s']:<9.4f} "
              f"{row['speedup']:>6.2f}x")
    if output is not None:
        path = os.path.abspath(output)
        with open(path, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"\nwrote {path}")
    else:
        print("\n(report not written — kernel-subset and quick-mode runs do "
              "not touch the tracked baseline; pass --output to keep it)")

    checked = {name: target for name, target in TARGETS.items() if name in kernels}
    missed = [
        (name, target, kernels[name]["speedup"])
        for name, target in checked.items()
        if kernels[name]["speedup"] < target
    ]
    for name, target, got in missed:
        print(f"TARGET MISSED: {name} {got:.2f}x < {target:.0f}x")
    if missed and args.quick:
        print("(quick-mode inputs shift the ratios; the floors are "
              "calibrated for full mode — run without --quick before "
              "concluding a kernel regressed)")
    if not missed and checked:
        print("all headline targets met "
              + ", ".join(f"{k}>={v:.0f}x" for k, v in checked.items()))
    return 1 if (missed and args.check) else 0


if __name__ == "__main__":
    raise SystemExit(main())
