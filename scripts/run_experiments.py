#!/usr/bin/env python
"""Regenerate every paper artifact in one go through the experiment
subsystem (without pytest-benchmark's timing machinery) and print where
each result landed.

Usage:  python scripts/run_experiments.py [--workers N] [--cache]

The per-artifact formatting (markdown files under ``benchmarks/results/``
with paper-number annotations) lives in the ``benchmarks/bench_*.py``
harnesses; each of them resolves its grid from the shared sweep registry
(``repro.experiments.presets``). ``--workers`` fans the underlying
simulations over processes; ``--cache`` serves repeated grids from the
content-addressed result cache.
"""

import argparse
import importlib.util
import os
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")
sys.path.insert(0, BENCH_DIR)
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

EXPERIMENTS = [
    ("E1  Table II (FPGA throughput)", "bench_table2_fpga", "compute_table"),
    ("E2  instruction latencies", "bench_instruction_latency", "compute_latencies"),
    ("E3  FPGA resources", "bench_resource_overhead", "compute_resources"),
    ("E4  memory traffic", "bench_traffic", "compute_traffic"),
    ("E5  Figure 3a (inference)", "bench_fig3_inference", "compute_series"),
    ("E6  Figure 3b (training)", "bench_fig3_training", "compute_series"),
    ("E7  ASIC overhead", "bench_asic_overhead", "compute_overhead"),
    ("E8  Table III (comparison)", "bench_table3_comparison", "compute_table"),
    ("A1  VN-cache ablation", "bench_ablation_vn_cache", "compute_sweep"),
    ("A2  AES-engine ablation", "bench_ablation_aes_engines", "compute_sweep"),
    ("A3  MAC-granularity ablation", "bench_ablation_mac_granularity", "compute_sweep"),
    ("X1  DRAM characterization", "bench_dram_model", "compute_characterization"),
    ("X2  extended-zoo sweep", "bench_extended_zoo", "compute_sweep"),
    ("X3  TCB decomposition", "bench_tcb_size", "compute_report"),
]


def load(module_name):
    path = os.path.join(BENCH_DIR, module_name + ".py")
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-parallel simulation workers "
                             "(default: REPRO_SWEEP_WORKERS, else "
                             "cpu_count capped at 8)")
    parser.add_argument("--cache", action="store_true",
                        help="serve repeated grids from the on-disk result cache")
    args = parser.parse_args()

    # the bench harnesses call run_sweep() with registry defaults; these
    # env knobs steer the shared runner without touching each harness
    # (and a user-set env value survives when the flag is omitted)
    if args.workers is not None:
        os.environ["REPRO_SWEEP_WORKERS"] = str(max(1, args.workers))
    if args.cache:
        os.environ["REPRO_SWEEP_CACHE"] = "1"

    print("regenerating all paper artifacts (see benchmarks/results/)\n")
    for label, module_name, fn_name in EXPERIMENTS:
        module = load(module_name)
        getattr(module, fn_name)()
        print(f"  computed {label}")
    if args.cache:
        from repro.experiments.registry import default_cache

        print(f"\ncache: {default_cache().stats}")
    print("\ndone. Run `pytest benchmarks/ --benchmark-only` for the full "
          "harness with shape assertions and result files, or "
          "`python -m repro sweep --list` for the raw sweep registry.")


if __name__ == "__main__":
    main()
