#!/usr/bin/env python
"""Guard the perf trajectory: diff a fresh ``BENCH_perf.json`` against
the committed baseline and fail on regressions.

``scripts/bench_perf.py`` *records* the scalar-vs-fast speedup of every
tracked kernel; this script *enforces* that the trajectory never slides
backwards. A kernel regresses when its fresh speedup drops more than
``--tolerance`` (default 20%) below the baseline speedup. Kernels that
are new in the fresh report are fine (they extend the baseline);
kernels missing from the fresh report fail, because silently dropping a
tracked kernel is exactly the regression this guard exists to catch.

Speedup ratios (not absolute seconds) are compared, so the check is
meaningful across machines of different speeds; cross-machine ratio
noise is what the tolerance absorbs. Comparing a quick-mode report
against a full-mode baseline is allowed but warned about — input sizes
differ, so prefer same-mode comparisons (CI runs full vs. full).

Every run also appends one JSON line to a ``BENCH_history.jsonl``
trajectory file (fresh speedups, regressions, verdict, timestamp), so
the per-kernel speedup history accumulates across comparisons; CI
uploads the file as a build artifact. ``--history`` moves it,
``--no-history`` skips it.

Usage::

    python scripts/bench_perf.py --output /tmp/fresh.json
    python scripts/bench_compare.py --fresh /tmp/fresh.json
    python scripts/bench_compare.py --baseline BENCH_perf.json \
        --fresh /tmp/fresh.json --tolerance 0.3
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def load_report(path: str) -> dict:
    with open(path) as f:
        report = json.load(f)
    if "kernels" not in report:
        raise SystemExit(f"{path}: not a bench_perf report (no 'kernels' key)")
    return report


def compare(baseline: dict, fresh: dict, tolerance: float):
    """Return (rows, regressions, missing): per-kernel comparison rows,
    the kernels regressing beyond tolerance, and the tracked kernels the
    fresh report dropped."""
    rows = []
    regressions = []
    base_kernels = baseline["kernels"]
    fresh_kernels = fresh["kernels"]
    for name, base_row in base_kernels.items():
        fresh_row = fresh_kernels.get(name)
        if fresh_row is None:
            continue
        base_speedup = base_row["speedup"]
        fresh_speedup = fresh_row["speedup"]
        floor = base_speedup * (1.0 - tolerance)
        regressed = fresh_speedup < floor
        rows.append((name, base_speedup, fresh_speedup, floor, regressed))
        if regressed:
            regressions.append(name)
    missing = sorted(set(base_kernels) - set(fresh_kernels))
    return rows, regressions, missing


def append_history(path: str, fresh: dict, regressions, missing,
                   tolerance: float) -> None:
    """Append this comparison to the JSONL trajectory file."""
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "mode": fresh.get("mode"),
        "python": fresh.get("python"),
        "tolerance": tolerance,
        "speedups": {name: row["speedup"]
                     for name, row in fresh["kernels"].items()},
        "regressions": regressions,
        "missing": missing,
        "ok": not regressions and not missing,
    }
    with open(path, "a") as f:
        json.dump(record, f, sort_keys=True, separators=(",", ":"))
        f.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_perf.json"),
        help="committed reference report (default: repo BENCH_perf.json)")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated report to validate")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional speedup drop per kernel "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--history", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_history.jsonl"),
        help="JSONL trajectory file each run appends to "
             "(default: repo BENCH_history.jsonl)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip the trajectory append")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        raise SystemExit("--tolerance must be in [0, 1)")

    baseline = load_report(args.baseline)
    fresh = load_report(args.fresh)
    if baseline.get("mode") != fresh.get("mode"):
        print(f"warning: comparing {fresh.get('mode')}-mode report against "
              f"{baseline.get('mode')}-mode baseline (input sizes differ)",
              file=sys.stderr)

    rows, regressions, missing = compare(baseline, fresh, args.tolerance)
    width = max(len(name) for name, *_ in rows) if rows else 8
    print(f"{'kernel'.ljust(width)}  baseline   fresh      floor      status")
    for name, base_speedup, fresh_speedup, floor, regressed in rows:
        status = "REGRESSED" if regressed else "ok"
        print(f"{name.ljust(width)}  {base_speedup:<9.2f}  {fresh_speedup:<9.2f} "
              f"{floor:<9.2f}  {status}")
    for name in missing:
        print(f"{name.ljust(width)}  {baseline['kernels'][name]['speedup']:<9.2f} "
              f"{'-':<10} {'-':<10} MISSING")

    if not args.no_history:
        path = os.path.abspath(args.history)
        append_history(path, fresh, regressions, missing, args.tolerance)
        print(f"\nappended to {path}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} kernel(s) regressed >"
              f"{args.tolerance:.0%}: {', '.join(regressions)}")
        return 1
    if missing:
        print(f"\nFAIL: fresh report dropped tracked kernel(s): "
              f"{', '.join(missing)}")
        return 1
    print(f"\nok: no kernel regressed more than {args.tolerance:.0%} "
          f"(compared {len(rows)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
