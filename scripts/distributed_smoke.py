#!/usr/bin/env python
"""Distributed-execution smoke: real worker processes, real signals,
byte-compared against local runs.

Five phases (the CI distributed-smoke job):

1. **Sweep failover** — coordinator + two ``repro work`` subprocesses,
   one SIGKILLed the moment it holds its first lease; the survivor
   waits out the dead lease and finishes; the assembled table must be
   byte-identical to a local ``Runner.run``.
2. **Pipeline failover** — a pipeline unit with checkpoint migration:
   the victim uploads one envelope then is SIGKILLed at the next seam;
   the survivor resumes *mid-unit* from the migrated envelope
   (``resumed_units`` ≥ 1) and the rows must be byte-identical to a
   local uninterrupted ``pipeline_rows``.
3. **Warm re-run** — a fresh coordinator over the same pipeline job
   and the same shared cache directory serves the unit at lease time
   without dispatching anything (``cache_served_units`` > 0).
4. **Coordinator kill + journal restart** — the *coordinator* itself
   (a real ``repro sweep --distributed --journal`` process) is
   SIGKILLed mid-run by the ``dist.journal`` fault after exactly one
   commit is durable; its ``--reconnect-timeout 0`` workers must
   survive the outage, a restart against the same ``--journal`` must
   announce ``epoch`` ≥ 1 and ``replayed_units`` ≥ 1, and the final
   table must be byte-identical to a local run.
5. **serve --distributed** — a real ``repro serve --distributed``
   daemon answers one flight through a parked ``repro work`` process
   and one through the local-pool fallback (zero live workers), both
   byte-identical to the direct APIs.

Exit code 0 on success, 1 with a diagnostic on any deviation.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
sys.path.insert(0, SRC)

from repro.distributed import SweepCoordinator  # noqa: E402
from repro.experiments.cache import ResultCache  # noqa: E402
from repro.experiments.executors import pipeline_rows  # noqa: E402
from repro.experiments.jobs import Job, canonical_json  # noqa: E402
from repro.experiments.runner import Runner, _MEMORY_CACHE  # noqa: E402
from repro.experiments.spec import SweepSpec  # noqa: E402
from repro.experiments.table import ResultTable  # noqa: E402

PIPELINE_PARAMS = {"workload": "streaming", "nbytes": 1 << 16,
                   "chunk_requests": 32, "schemes": ["np", "bp"]}


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def worker_env(extra_plan=None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_PLAN", None)
    if extra_plan is not None:
        env["REPRO_FAULT_PLAN"] = json.dumps(extra_plan)
    return env


def start_worker(url: str, name: str, env: dict, workers: int = 2,
                 reconnect: float = None,
                 capture=None) -> subprocess.Popen:
    argv = [sys.executable, "-m", "repro", "work", url, "--name", name,
            "--workers", str(workers), "--no-cache"]
    if reconnect is not None:
        argv += ["--reconnect-timeout", str(reconnect)]
    sink = capture if capture is not None else sys.stderr
    return subprocess.Popen(argv, env=env, stdout=sink, stderr=sink)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def kill_all(*procs) -> None:
    for proc in procs:
        if proc is not None and proc.poll() is None:
            proc.kill()
    for proc in procs:
        if proc is not None:
            proc.wait(timeout=30)


def drive_with_survivor(coordinator, survivor_name: str):
    """Start a survivor worker, block until the coordinator is done,
    and return (rows_per_job, survivor_exit) — or (None, reason)."""
    state = coordinator.state
    survivor = start_worker(coordinator.url, survivor_name, worker_env())
    try:
        deadline = time.monotonic() + 300.0
        while not state.done:
            if time.monotonic() > deadline:
                return None, "did not complete within 300s"
            if survivor.poll() is not None:
                return None, f"survivor exited early ({survivor.returncode})"
            time.sleep(0.1)
        if survivor.wait(timeout=60) != 0:
            return None, f"survivor exit code {survivor.returncode}"
    finally:
        if survivor.poll() is None:
            survivor.kill()
    return coordinator.run(), 0


def phase_sweep_failover() -> int:
    spec = SweepSpec(models=("alexnet", "mobilenet"), schemes=("np", "bp"))
    jobs = spec.jobs()

    print(f"# phase 1: local reference, {len(jobs)} jobs", file=sys.stderr)
    with Runner(workers=2, cache=None) as runner:
        reference = runner.run(jobs).to_json()
    _MEMORY_CACHE.clear()

    coordinator = SweepCoordinator(jobs, cache=None, local_workers=1,
                                   unit_jobs=1, lease_seconds=2.0,
                                   wait_workers=300.0)
    state = coordinator.state
    print(f"# coordinator at {coordinator.url}", file=sys.stderr)

    # victim: SIGKILLs itself (via the fault harness) the moment it
    # holds its first lease — a real process dying mid-sweep
    victim = start_worker(coordinator.url, "victim", worker_env(
        {"points": [{"site": "dist.unit@victim", "at": 0,
                     "action": "kill"}]}))
    try:
        code = victim.wait(timeout=120)
    finally:
        if victim.poll() is None:
            victim.kill()
    if code != -signal.SIGKILL:
        return fail(f"victim exited {code}, expected SIGKILL (-9)")
    if state.counters["leases_granted"] < 1:
        return fail("victim died without ever holding a lease")
    print("# victim SIGKILLed mid-lease", file=sys.stderr)

    rows_per_job, status = drive_with_survivor(coordinator, "survivor")
    if rows_per_job is None:
        return fail(f"sweep phase: {status}")

    table = ResultTable()
    for rows in rows_per_job:
        table.extend(rows)
    if table.to_json() != reference:
        return fail("distributed table differs from the local reference")

    counters = state.counters
    print(f"# counters: {json.dumps(counters, sort_keys=True)}",
          file=sys.stderr)
    if counters["units_completed"] != len(jobs):
        return fail(f"expected {len(jobs)} units, "
                    f"got {counters['units_completed']}")
    if counters["lease_expirations"] < 1:
        return fail("the victim's lease never expired — failover untested")
    if state.snapshot()["redispatches"] < 1:
        return fail("no unit was re-dispatched after the SIGKILL")
    print("OK: SIGKILL failover complete, rows byte-identical to local run")
    return 0


def phase_pipeline_failover(cache_dir: str, reference) -> int:
    print("# phase 2: pipeline unit, SIGKILL at a checkpoint seam",
          file=sys.stderr)
    _MEMORY_CACHE.clear()
    job = Job("pipeline_run", canonical_json(PIPELINE_PARAMS))
    coordinator = SweepCoordinator([job], cache=ResultCache(cache_dir),
                                   lease_seconds=2.0, wait_workers=300.0,
                                   checkpoint_every=2)
    state = coordinator.state
    print(f"# coordinator at {coordinator.url}", file=sys.stderr)

    # the victim's second envelope upload SIGKILLs it: exactly one
    # envelope migrated before the process died holding the lease
    victim = start_worker(coordinator.url, "victim", worker_env(
        {"points": [{"site": "dist.checkpoint@victim", "at": 1,
                     "action": "kill"}]}), workers=1)
    try:
        code = victim.wait(timeout=120)
    finally:
        if victim.poll() is None:
            victim.kill()
    if code != -signal.SIGKILL:
        return fail(f"pipeline victim exited {code}, expected SIGKILL (-9)")
    if state.counters["checkpoints_migrated"] < 1:
        return fail("victim died before any envelope migrated")
    print("# victim SIGKILLed mid-unit, one envelope migrated",
          file=sys.stderr)

    rows_per_job, status = drive_with_survivor(coordinator, "survivor")
    if rows_per_job is None:
        return fail(f"pipeline phase: {status}")
    if rows_per_job[0] != reference:
        return fail("resumed pipeline rows differ from the local run")

    counters = state.counters
    print(f"# counters: {json.dumps(counters, sort_keys=True)}",
          file=sys.stderr)
    if counters["resumed_units"] < 1:
        return fail("the survivor never resumed from the migrated envelope")
    if counters["checkpoint_rejects"] != 0:
        return fail("a valid envelope was rejected")
    print("OK: mid-unit failover complete, rows byte-identical to local run")
    return 0


def phase_warm_rerun(cache_dir: str, reference) -> int:
    print("# phase 3: warm re-run against the shared cache",
          file=sys.stderr)
    _MEMORY_CACHE.clear()
    job = Job("pipeline_run", canonical_json(PIPELINE_PARAMS))
    warm = SweepCoordinator([job], cache=ResultCache(cache_dir),
                            wait_workers=0.0)
    rows_per_job = warm.run()
    if rows_per_job[0] != reference:
        return fail("cache-served pipeline rows differ from the local run")
    counters = warm.state.counters
    print(f"# counters: {json.dumps(counters, sort_keys=True)}",
          file=sys.stderr)
    if counters["cache_served_units"] < 1:
        return fail("warm re-run did not serve the unit from the cache")
    if counters["leases_granted"] != 0:
        return fail("warm re-run dispatched work despite a full cache")
    print("OK: warm re-run served from the shared cache, nothing dispatched")
    return 0


def phase_coordinator_restart() -> int:
    """SIGKILL the *coordinator* mid-run; restart it against the same
    write-ahead journal; the parked workers must survive and rejoin."""
    print("# phase 4: coordinator SIGKILL + journal restart",
          file=sys.stderr)
    spec = SweepSpec(models=("alexnet", "mobilenet"), schemes=("np", "bp"))
    jobs = spec.jobs()
    with Runner(workers=2, cache=None) as runner:
        reference = runner.run(jobs).with_normalized().to_json()
    _MEMORY_CACHE.clear()

    with tempfile.TemporaryDirectory(prefix="repro-smoke-wal-") as tmp:
        port = free_port()
        journal = os.path.join(tmp, "sweep.journal")
        out_path = os.path.join(tmp, "table.json")
        argv = [sys.executable, "-m", "repro", "sweep",
                "--models", "alexnet,mobilenet", "--schemes", "np,bp",
                "--distributed", "--listen", f"127.0.0.1:{port}",
                "--unit-jobs", "1", "--wait-workers", "600",
                "--workers", "1", "--no-cache", "--format", "json",
                "--out", out_path, "--journal", journal]
        url = f"http://127.0.0.1:{port}"
        # append 0 is the journal header, append 1 the first commit;
        # the coordinator dies before commit #2 can land
        env_kill = worker_env({"points": [
            {"site": "dist.journal", "at": 2, "action": "kill"}]})

        coordinator = subprocess.Popen(argv, env=env_kill,
                                       stdout=sys.stderr, stderr=sys.stderr)
        workers = [start_worker(url, "w1", worker_env(), workers=1,
                                reconnect=0),
                   start_worker(url, "w2", worker_env(), workers=1,
                                reconnect=0)]
        try:
            code = coordinator.wait(timeout=300)
            if code != -signal.SIGKILL:
                return fail(f"coordinator exited {code}, "
                            f"expected SIGKILL (-9)")
            print("# coordinator SIGKILLed at journal append #2",
                  file=sys.stderr)
            time.sleep(1.0)
            if any(worker.poll() is not None for worker in workers):
                return fail("a worker exited when the coordinator died "
                            "(--reconnect-timeout 0 must park forever)")

            err_path = os.path.join(tmp, "restart.err")
            with open(err_path, "wb") as err:
                coordinator = subprocess.Popen(argv, env=worker_env(),
                                               stdout=err, stderr=err)
                code = coordinator.wait(timeout=300)
            stderr_text = open(err_path).read()
            sys.stderr.write(stderr_text)
            if code != 0:
                return fail(f"restarted coordinator exited {code}")

            match = re.search(r"# journal .+ epoch=(\d+) "
                              r"replayed_units=(\d+)", stderr_text)
            if not match:
                return fail("restart never announced its journal state")
            epoch, replayed = int(match.group(1)), int(match.group(2))
            if epoch < 1:
                return fail(f"restart epoch {epoch}, expected >= 1")
            if replayed < 1:
                return fail("restart replayed no units — the pre-crash "
                            "commit was lost")
            if open(out_path).read() != reference + "\n":
                return fail("recovered table differs from the local run")
            if os.path.exists(journal):
                return fail("spent journal was not discarded")
        finally:
            kill_all(coordinator, *workers)
    print(f"OK: coordinator restart recovered (epoch={epoch}, "
          f"replayed_units={replayed}), rows byte-identical to local run")
    return 0


def phase_serve_distributed(reference) -> int:
    """One serve --distributed flight through a real worker, one
    through the local-pool fallback; both byte-identical."""
    from repro.service import ServiceClient

    print("# phase 5: serve --distributed (worker + local fallback)",
          file=sys.stderr)
    spec = SweepSpec(models=("alexnet", "mobilenet"), schemes=("np", "bp"))
    with Runner(workers=2, cache=None) as runner:
        sweep_rows = runner.run(spec.jobs()).rows
    _MEMORY_CACHE.clear()

    with tempfile.TemporaryDirectory(prefix="repro-smoke-serve-") as tmp:
        port, dist_port = free_port(), free_port()
        serve = worker = None
        worker_log = os.path.join(tmp, "worker.log")
        try:
            serve = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--port", str(port),
                 "--dist-listen", f"127.0.0.1:{dist_port}",
                 "--distributed", "--dist-wait-workers", "20",
                 "--workers", "2", "--no-cache",
                 "--checkpoint-dir", tmp],
                env=worker_env(), stdout=sys.stderr, stderr=sys.stderr)
            with open(worker_log, "wb") as log:
                worker = start_worker(f"http://127.0.0.1:{dist_port}",
                                      "fleet", worker_env(), workers=2,
                                      reconnect=0, capture=log)

            deadline = time.monotonic() + 30.0
            while True:
                try:
                    socket.create_connection(("127.0.0.1", port),
                                             timeout=1.0).close()
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        return fail("serve daemon never came up")
                    time.sleep(0.2)
            client = ServiceClient("127.0.0.1", port, timeout=300)

            # flight 1: the parked worker joins the flight's
            # coordinator and serves its units
            result = client.run({"kind": "sweep",
                                 "spec": {"models": list(spec.models),
                                          "schemes": list(spec.schemes)}})
            if result["table"]["rows"] != sweep_rows:
                return fail("worker-served flight differs from local run")
            log_text = open(worker_log).read()
            if "committed" not in log_text:
                return fail("the parked worker never committed a unit — "
                            "the flight was not served remotely")
            print("# flight 1 served by the parked worker",
                  file=sys.stderr)

            # flight 2: no live workers — after --dist-wait-workers the
            # local pool takes the units
            kill_all(worker)
            worker = None
            result = client.run({
                "kind": "pipeline",
                "workload": PIPELINE_PARAMS["workload"],
                "schemes": PIPELINE_PARAMS["schemes"],
                "chunk_requests": PIPELINE_PARAMS["chunk_requests"],
                "params": {"nbytes": PIPELINE_PARAMS["nbytes"]}})
            if result["rows"] != reference:
                return fail("local-fallback flight differs from local run")
            print("# flight 2 served by the local-pool fallback",
                  file=sys.stderr)
        finally:
            if serve is not None and serve.poll() is None:
                serve.send_signal(signal.SIGTERM)
                try:
                    serve.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    pass
            kill_all(serve, worker)
    print("OK: serve --distributed answered both flights byte-identically")
    return 0


def main() -> int:
    code = phase_sweep_failover()
    if code:
        return code

    print(f"# pipeline reference: {json.dumps(PIPELINE_PARAMS)}",
          file=sys.stderr)
    reference = pipeline_rows(dict(PIPELINE_PARAMS))
    with tempfile.TemporaryDirectory(prefix="repro-smoke-cache-") as cache_dir:
        code = phase_pipeline_failover(cache_dir, reference)
        if code:
            return code
        code = phase_warm_rerun(cache_dir, reference)
        if code:
            return code
    code = phase_coordinator_restart()
    if code:
        return code
    return phase_serve_distributed(reference)


if __name__ == "__main__":
    sys.exit(main())
