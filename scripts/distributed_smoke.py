#!/usr/bin/env python
"""Distributed-execution smoke: real worker processes, real signals,
byte-compared against local runs.

Three phases (the CI distributed-smoke job):

1. **Sweep failover** — coordinator + two ``repro work`` subprocesses,
   one SIGKILLed the moment it holds its first lease; the survivor
   waits out the dead lease and finishes; the assembled table must be
   byte-identical to a local ``Runner.run``.
2. **Pipeline failover** — a pipeline unit with checkpoint migration:
   the victim uploads one envelope then is SIGKILLed at the next seam;
   the survivor resumes *mid-unit* from the migrated envelope
   (``resumed_units`` ≥ 1) and the rows must be byte-identical to a
   local uninterrupted ``pipeline_rows``.
3. **Warm re-run** — a fresh coordinator over the same pipeline job
   and the same shared cache directory serves the unit at lease time
   without dispatching anything (``cache_served_units`` > 0).

Exit code 0 on success, 1 with a diagnostic on any deviation.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
sys.path.insert(0, SRC)

from repro.distributed import SweepCoordinator  # noqa: E402
from repro.experiments.cache import ResultCache  # noqa: E402
from repro.experiments.executors import pipeline_rows  # noqa: E402
from repro.experiments.jobs import Job, canonical_json  # noqa: E402
from repro.experiments.runner import Runner, _MEMORY_CACHE  # noqa: E402
from repro.experiments.spec import SweepSpec  # noqa: E402
from repro.experiments.table import ResultTable  # noqa: E402

PIPELINE_PARAMS = {"workload": "streaming", "nbytes": 1 << 16,
                   "chunk_requests": 32, "schemes": ["np", "bp"]}


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def worker_env(extra_plan=None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_PLAN", None)
    if extra_plan is not None:
        env["REPRO_FAULT_PLAN"] = json.dumps(extra_plan)
    return env


def start_worker(url: str, name: str, env: dict,
                 workers: int = 2) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "work", url, "--name", name,
         "--workers", str(workers), "--no-cache"],
        env=env, stdout=sys.stderr, stderr=sys.stderr)


def drive_with_survivor(coordinator, survivor_name: str):
    """Start a survivor worker, block until the coordinator is done,
    and return (rows_per_job, survivor_exit) — or (None, reason)."""
    state = coordinator.state
    survivor = start_worker(coordinator.url, survivor_name, worker_env())
    try:
        deadline = time.monotonic() + 300.0
        while not state.done:
            if time.monotonic() > deadline:
                return None, "did not complete within 300s"
            if survivor.poll() is not None:
                return None, f"survivor exited early ({survivor.returncode})"
            time.sleep(0.1)
        if survivor.wait(timeout=60) != 0:
            return None, f"survivor exit code {survivor.returncode}"
    finally:
        if survivor.poll() is None:
            survivor.kill()
    return coordinator.run(), 0


def phase_sweep_failover() -> int:
    spec = SweepSpec(models=("alexnet", "mobilenet"), schemes=("np", "bp"))
    jobs = spec.jobs()

    print(f"# phase 1: local reference, {len(jobs)} jobs", file=sys.stderr)
    with Runner(workers=2, cache=None) as runner:
        reference = runner.run(jobs).to_json()
    _MEMORY_CACHE.clear()

    coordinator = SweepCoordinator(jobs, cache=None, local_workers=1,
                                   unit_jobs=1, lease_seconds=2.0,
                                   wait_workers=300.0)
    state = coordinator.state
    print(f"# coordinator at {coordinator.url}", file=sys.stderr)

    # victim: SIGKILLs itself (via the fault harness) the moment it
    # holds its first lease — a real process dying mid-sweep
    victim = start_worker(coordinator.url, "victim", worker_env(
        {"points": [{"site": "dist.unit@victim", "at": 0,
                     "action": "kill"}]}))
    try:
        code = victim.wait(timeout=120)
    finally:
        if victim.poll() is None:
            victim.kill()
    if code != -signal.SIGKILL:
        return fail(f"victim exited {code}, expected SIGKILL (-9)")
    if state.counters["leases_granted"] < 1:
        return fail("victim died without ever holding a lease")
    print("# victim SIGKILLed mid-lease", file=sys.stderr)

    rows_per_job, status = drive_with_survivor(coordinator, "survivor")
    if rows_per_job is None:
        return fail(f"sweep phase: {status}")

    table = ResultTable()
    for rows in rows_per_job:
        table.extend(rows)
    if table.to_json() != reference:
        return fail("distributed table differs from the local reference")

    counters = state.counters
    print(f"# counters: {json.dumps(counters, sort_keys=True)}",
          file=sys.stderr)
    if counters["units_completed"] != len(jobs):
        return fail(f"expected {len(jobs)} units, "
                    f"got {counters['units_completed']}")
    if counters["lease_expirations"] < 1:
        return fail("the victim's lease never expired — failover untested")
    if state.snapshot()["redispatches"] < 1:
        return fail("no unit was re-dispatched after the SIGKILL")
    print("OK: SIGKILL failover complete, rows byte-identical to local run")
    return 0


def phase_pipeline_failover(cache_dir: str, reference) -> int:
    print("# phase 2: pipeline unit, SIGKILL at a checkpoint seam",
          file=sys.stderr)
    _MEMORY_CACHE.clear()
    job = Job("pipeline_run", canonical_json(PIPELINE_PARAMS))
    coordinator = SweepCoordinator([job], cache=ResultCache(cache_dir),
                                   lease_seconds=2.0, wait_workers=300.0,
                                   checkpoint_every=2)
    state = coordinator.state
    print(f"# coordinator at {coordinator.url}", file=sys.stderr)

    # the victim's second envelope upload SIGKILLs it: exactly one
    # envelope migrated before the process died holding the lease
    victim = start_worker(coordinator.url, "victim", worker_env(
        {"points": [{"site": "dist.checkpoint@victim", "at": 1,
                     "action": "kill"}]}), workers=1)
    try:
        code = victim.wait(timeout=120)
    finally:
        if victim.poll() is None:
            victim.kill()
    if code != -signal.SIGKILL:
        return fail(f"pipeline victim exited {code}, expected SIGKILL (-9)")
    if state.counters["checkpoints_migrated"] < 1:
        return fail("victim died before any envelope migrated")
    print("# victim SIGKILLed mid-unit, one envelope migrated",
          file=sys.stderr)

    rows_per_job, status = drive_with_survivor(coordinator, "survivor")
    if rows_per_job is None:
        return fail(f"pipeline phase: {status}")
    if rows_per_job[0] != reference:
        return fail("resumed pipeline rows differ from the local run")

    counters = state.counters
    print(f"# counters: {json.dumps(counters, sort_keys=True)}",
          file=sys.stderr)
    if counters["resumed_units"] < 1:
        return fail("the survivor never resumed from the migrated envelope")
    if counters["checkpoint_rejects"] != 0:
        return fail("a valid envelope was rejected")
    print("OK: mid-unit failover complete, rows byte-identical to local run")
    return 0


def phase_warm_rerun(cache_dir: str, reference) -> int:
    print("# phase 3: warm re-run against the shared cache",
          file=sys.stderr)
    _MEMORY_CACHE.clear()
    job = Job("pipeline_run", canonical_json(PIPELINE_PARAMS))
    warm = SweepCoordinator([job], cache=ResultCache(cache_dir),
                            wait_workers=0.0)
    rows_per_job = warm.run()
    if rows_per_job[0] != reference:
        return fail("cache-served pipeline rows differ from the local run")
    counters = warm.state.counters
    print(f"# counters: {json.dumps(counters, sort_keys=True)}",
          file=sys.stderr)
    if counters["cache_served_units"] < 1:
        return fail("warm re-run did not serve the unit from the cache")
    if counters["leases_granted"] != 0:
        return fail("warm re-run dispatched work despite a full cache")
    print("OK: warm re-run served from the shared cache, nothing dispatched")
    return 0


def main() -> int:
    code = phase_sweep_failover()
    if code:
        return code

    print(f"# pipeline reference: {json.dumps(PIPELINE_PARAMS)}",
          file=sys.stderr)
    reference = pipeline_rows(dict(PIPELINE_PARAMS))
    with tempfile.TemporaryDirectory(prefix="repro-smoke-cache-") as cache_dir:
        code = phase_pipeline_failover(cache_dir, reference)
        if code:
            return code
        code = phase_warm_rerun(cache_dir, reference)
        if code:
            return code
    return 0


if __name__ == "__main__":
    sys.exit(main())
