#!/usr/bin/env python
"""Distributed-execution smoke: coordinator + two real worker
processes, one SIGKILLed mid-lease, byte-compared against a local run.

The scenario (the CI distributed-smoke job):

1. compute the reference table with a plain local ``Runner.run``;
2. start a coordinator (in this process) over the same job list;
3. start worker #1 ("victim") as a real ``repro work`` subprocess with
   a fault plan that SIGKILLs it the moment it holds its first lease —
   it dies mid-sweep, holding a unit;
4. wait for the victim's corpse (exit by signal 9), then start worker
   #2 ("survivor"), which waits out the dead lease, takes over the
   forfeited unit, and finishes the sweep;
5. assert the assembled distributed table is **byte-identical** to the
   local reference and that the coordinator observed the failover
   (a lease expired and the unit was re-dispatched).

Exit code 0 on success, 1 with a diagnostic on any deviation.
"""

import json
import os
import signal
import subprocess
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
sys.path.insert(0, SRC)

from repro.distributed import SweepCoordinator  # noqa: E402
from repro.experiments.runner import Runner, _MEMORY_CACHE  # noqa: E402
from repro.experiments.spec import SweepSpec  # noqa: E402
from repro.experiments.table import ResultTable  # noqa: E402


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def worker_env(extra_plan=None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if extra_plan is not None:
        env["REPRO_FAULT_PLAN"] = json.dumps(extra_plan)
    return env


def start_worker(url: str, name: str, env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "work", url, "--name", name,
         "--workers", "2"],
        env=env, stdout=sys.stderr, stderr=sys.stderr)


def main() -> int:
    spec = SweepSpec(models=("alexnet", "mobilenet"), schemes=("np", "bp"))
    jobs = spec.jobs()

    print(f"# local reference: {len(jobs)} jobs", file=sys.stderr)
    with Runner(workers=2, cache=None) as runner:
        reference = runner.run(jobs).to_json()
    _MEMORY_CACHE.clear()

    coordinator = SweepCoordinator(jobs, cache=None, local_workers=1,
                                   unit_jobs=1, lease_seconds=2.0,
                                   wait_workers=300.0)
    state = coordinator.state
    print(f"# coordinator at {coordinator.url}", file=sys.stderr)

    survivor = None
    try:
        # victim: SIGKILLs itself (via the fault harness) the moment it
        # holds its first lease — a real process dying mid-sweep
        victim = start_worker(coordinator.url, "victim", worker_env(
            {"points": [{"site": "dist.unit@victim", "at": 0,
                         "action": "kill"}]}))
        try:
            code = victim.wait(timeout=120)
        finally:
            if victim.poll() is None:
                victim.kill()
        if code != -signal.SIGKILL:
            return fail(f"victim exited {code}, expected SIGKILL (-9)")
        if state.counters["leases_granted"] < 1:
            return fail("victim died without ever holding a lease")
        print("# victim SIGKILLed mid-lease", file=sys.stderr)

        survivor = start_worker(coordinator.url, "survivor", worker_env())
        deadline = time.monotonic() + 300.0
        while not state.done:
            if time.monotonic() > deadline:
                return fail("sweep did not complete within 300s")
            if survivor.poll() is not None:
                return fail(f"survivor exited early ({survivor.returncode})")
            time.sleep(0.1)
        if survivor.wait(timeout=60) != 0:
            return fail(f"survivor exit code {survivor.returncode}")
    finally:
        if survivor is not None and survivor.poll() is None:
            survivor.kill()

    rows_per_job = coordinator.run()
    table = ResultTable()
    for rows in rows_per_job:
        table.extend(rows)
    if table.to_json() != reference:
        return fail("distributed table differs from the local reference")

    counters = state.counters
    print(f"# counters: {json.dumps(counters, sort_keys=True)}",
          file=sys.stderr)
    if counters["units_completed"] != len(jobs):
        return fail(f"expected {len(jobs)} units, "
                    f"got {counters['units_completed']}")
    if counters["lease_expirations"] < 1:
        return fail("the victim's lease never expired — failover untested")
    if state.snapshot()["redispatches"] < 1:
        return fail("no unit was re-dispatched after the SIGKILL")
    print("OK: SIGKILL failover complete, rows byte-identical to local run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
