#!/usr/bin/env python
"""CI smoke test for ``repro serve``: boot the real daemon as a
subprocess, drive it over the wire with the stdlib client, and assert
the streamed results are bit-identical to the direct engine APIs.

What it checks (the service acceptance contract):

1. a small **fig3 sweep** submitted over HTTP matches the direct
   ``Runner.run`` golden rows exactly;
2. two **concurrent identical sweep requests** trigger exactly one
   execution (coalescing observable in ``/metrics``) with byte-identical
   results — made deterministic by occupying the single executor slot
   with a long pipeline flight first, so both sweeps overlap in the
   queue; closing the blocker's stream also exercises
   subscription-driven cancellation;
3. an **LLM pipeline job** (scaled-down gpt2) streams per-chunk
   progress and matches the direct ``pipeline_rows`` output exactly;
4. the **/metrics** snapshot is coherent with the observed traffic.

Run: ``python scripts/serve_smoke.py`` (exit 0 on success).
"""

import json
import os
import re
import subprocess
import sys
import time

ROOT = os.path.normpath(os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                     os.pardir))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.experiments import Runner, SweepSpec  # noqa: E402
from repro.experiments.executors import pipeline_rows  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

SWEEP_SPEC = {"models": ["alexnet", "mobilenet"],
              "schemes": ["np", "guardnn-c", "guardnn-ci", "bp"]}
SWEEP_JOB = {"kind": "sweep", "spec": SWEEP_SPEC}
#: a deliberately long streaming flight (~4M requests, many chunks) that
#: holds the one executor slot while the coalescing pair queues behind it
BLOCKER_JOB = {"kind": "pipeline", "workload": "streaming",
               "schemes": ["np"], "chunk_requests": 1 << 14,
               "params": {"nbytes": 256 << 20}}
PIPELINE_JOB = {"kind": "pipeline", "workload": "gpt2",
                "schemes": ["np", "guardnn-ci"], "chunk_requests": 1 << 14,
                "params": {"tokens": 1, "context": 64, "layers": 2}}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def drain(events) -> dict:
    """Consume an event stream to its terminal ``result`` event."""
    for event in events:
        if event["event"] == "result":
            return event
        if event["event"] in ("error", "cancelled"):
            fail(f"unexpected terminal event: {event}")
    fail("stream ended without a terminal event")


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--max-running", "1", "--no-cache"],
        cwd=ROOT, env=env, stderr=subprocess.PIPE, text=True)
    try:
        # the daemon announces its ephemeral port on stderr
        line = daemon.stderr.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        if not match:
            fail(f"no listen line from daemon (got {line!r})")
        client = ServiceClient(match.group(1), int(match.group(2)))
        client.wait_ready(timeout=15)
        print(f"# daemon up at {match.group(1)}:{match.group(2)}")

        # 1. sweep over the wire == direct Runner.run
        t0 = time.perf_counter()
        result = client.run(SWEEP_JOB)
        direct = Runner(workers=2).run(
            SweepSpec(models=tuple(SWEEP_SPEC["models"]),
                      schemes=tuple(SWEEP_SPEC["schemes"])).jobs())
        if result["table"]["rows"] != direct.rows:
            fail("streamed sweep rows differ from direct Runner.run")
        if result["table"]["columns"] != direct.columns:
            fail("streamed sweep columns differ from direct Runner.run")
        print(f"# sweep bit-identical ({len(direct.rows)} rows, "
              f"{time.perf_counter() - t0:.2f}s)")

        # 2. concurrent identical sweeps -> one execution (coalesced)
        before = client.metrics()["counters"]
        blocker = client.submit(BLOCKER_JOB)
        if next(blocker)["event"] != "accepted":
            fail("blocker not accepted")
        stream_a = client.submit(SWEEP_JOB)
        accepted_a = next(stream_a)
        stream_b = client.submit(SWEEP_JOB)
        accepted_b = next(stream_b)
        if accepted_a.get("coalesced") is not False:
            fail(f"first sweep unexpectedly coalesced: {accepted_a}")
        if accepted_b.get("coalesced") is not True:
            fail(f"second identical sweep did not coalesce: {accepted_b}")
        if accepted_a["key"] != accepted_b["key"]:
            fail("identical requests produced different content keys")
        blocker.close()  # disconnect -> cooperative cancellation
        result_a, result_b = drain(stream_a), drain(stream_b)
        if result_a != result_b:
            fail("coalesced subscribers saw different results")
        if result_a["table"]["rows"] != direct.rows:
            fail("coalesced sweep rows differ from direct Runner.run")
        after = client.metrics()["counters"]
        if after["coalesced_total"] - before["coalesced_total"] != 1:
            fail(f"expected exactly 1 coalesced submission: {after}")
        # blocker + one (shared) sweep flight; the second sweep must
        # not have triggered a second execution
        if after["executions_total"] - before["executions_total"] != 2:
            fail(f"expected exactly 2 executions (blocker + shared sweep): "
             f"{after}")
        if after["cancelled_total"] - before["cancelled_total"] != 1:
            fail(f"expected the blocker cancellation to be counted: {after}")
        print("# coalescing: 2 identical submissions -> 1 execution; "
              "blocker cancellation observed")

        # 3. LLM pipeline over the wire == direct pipeline_rows
        progress = []
        result = client.run(PIPELINE_JOB,
                            on_event=lambda e: progress.append(e)
                            if e["event"] == "progress" else None)
        direct_rows = pipeline_rows({
            "workload": PIPELINE_JOB["workload"],
            "schemes": tuple(PIPELINE_JOB["schemes"]),
            "chunk_requests": PIPELINE_JOB["chunk_requests"],
            **PIPELINE_JOB["params"]})
        if result["rows"] != direct_rows:
            fail("streamed pipeline rows differ from direct pipeline_rows")
        if not progress:
            fail("pipeline streamed no progress events")
        final = progress[-1]
        if final["requests_done"] != final["total_requests"]:
            fail("pipeline progress did not reach total_requests")
        print(f"# pipeline bit-identical ({len(progress)} progress events, "
              f"{final['total_requests']:,} requests)")

        # 4. metrics coherence
        snapshot = client.metrics()
        counters = snapshot["counters"]
        if counters["completed_total"] < 3:
            fail(f"expected >= 3 completed flights, got {counters}")
        if counters["failed_total"] or counters["bad_requests_total"]:
            fail(f"unexpected failures in counters: {counters}")
        if snapshot["latency"]["count"] != (counters["completed_total"]
                                            + counters["cancelled_total"]):
            fail("latency histogram count != finished flights")
        if snapshot["gauges"]["running"] or snapshot["gauges"]["inflight"]:
            fail(f"gauges not drained: {snapshot['gauges']}")
        if snapshot["coalescing_factor"] <= 1.0:
            fail(f"coalescing factor should exceed 1.0: {snapshot}")
        print("# metrics coherent:",
              json.dumps({key: counters[key] for key in
                          ("admitted_total", "coalesced_total",
                           "executions_total", "completed_total",
                           "cancelled_total")}))
        print("serve smoke: OK")
        return 0
    finally:
        daemon.terminate()
        try:
            daemon.wait(timeout=10)
        except subprocess.TimeoutExpired:
            daemon.kill()


if __name__ == "__main__":
    sys.exit(main())
