#!/usr/bin/env python
"""CI crash/resume smoke test: SIGKILL a checkpointing pipeline run
mid-flight, resume it from the on-disk checkpoint, and assert the
resumed output is bit-identical to an uninterrupted reference run.

The crash is injected with the deterministic fault harness
(``REPRO_FAULT_PLAN``): the worker process SIGKILLs *itself* at a
chosen chunk index, so the interruption lands at exactly the same
request cursor on every run — no timing, no flakes. What this pins
down end to end:

1. ``python -m repro pipeline --checkpoint --checkpoint-every`` writes
   periodic checkpoints a hard kill cannot corrupt (atomic publish);
2. ``--resume`` restarts from the last envelope and the final rows
   equal the uninterrupted run byte for byte (the equivalence suites
   prove this in-process; this script proves it across a real process
   death);
3. a completed resume retires its checkpoint file.

Run: ``python scripts/crash_resume_smoke.py`` (exit 0 on success).
"""

import json
import os
import subprocess
import sys
import tempfile

ROOT = os.path.normpath(os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                     os.pardir))

#: 8 MiB streaming / 64 B requests = 131072 requests = 32 chunks of 4096
PIPELINE_ARGS = ["--workload", "streaming", "--schemes", "np,bp",
                 "--chunk-requests", "4096",
                 "--params", json.dumps({"nbytes": 8 << 20})]
KILL_AT_CHUNK = 10  # a third of the way in: past several checkpoints

KILL_PLAN = json.dumps({"points": [
    {"site": "pipeline.chunk", "at": KILL_AT_CHUNK, "action": "kill"}]})


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_pipeline(extra, fault_plan=None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan
    return subprocess.run(
        [sys.executable, "-m", "repro", "pipeline"] + PIPELINE_ARGS + extra,
        cwd=ROOT, env=env, capture_output=True, text=True)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="crash-resume-") as tmp:
        checkpoint = os.path.join(tmp, "run.ckpt")

        # 1. uninterrupted reference
        reference = run_pipeline([])
        if reference.returncode != 0:
            fail(f"reference run failed: {reference.stderr}")
        reference_rows = json.loads(reference.stdout)
        print(f"# reference: {len(reference_rows)} rows")

        # 2. checkpointing run, SIGKILLed at chunk {KILL_AT_CHUNK}
        crashed = run_pipeline(
            ["--checkpoint", checkpoint, "--checkpoint-every", "2"],
            fault_plan=KILL_PLAN)
        if crashed.returncode == 0:
            fail("faulted run exited 0 — the kill fault never fired")
        if not os.path.exists(checkpoint):
            fail("no checkpoint survived the crash")
        print(f"# crashed as planned (rc={crashed.returncode}), "
              f"checkpoint on disk ({os.path.getsize(checkpoint)} bytes)")

        # 3. resume from the last envelope; rows must match the
        #    uninterrupted run exactly
        resumed = run_pipeline(["--checkpoint", checkpoint, "--resume"])
        if resumed.returncode != 0:
            fail(f"resume failed: {resumed.stderr}")
        if json.loads(resumed.stdout) != reference_rows:
            fail("resumed rows differ from the uninterrupted reference")
        print("# resumed rows bit-identical to the uninterrupted run")

        # 4. a completed run retires its checkpoint
        if os.path.exists(checkpoint):
            fail("checkpoint not removed after a successful resume")
        print("crash/resume smoke: OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
