"""Global fast-path switch for the vectorized hot-path engine.

The simulator keeps two implementations of every hot kernel:

* the **scalar reference** — the original first-principles code
  (byte-wise AES rounds, bit-serial GF(2^128), per-``MemoryRequest``
  object streams, per-call tiling analysis).  It is what the property
  tests trust and what ``scripts/bench_perf.py`` measures as the
  "pre-PR" baseline.
* the **fast path** — table-driven batched crypto kernels, the
  structure-of-arrays :class:`~repro.mem.batch.RequestBatch` pipeline,
  and memoized analytic-model stages.  Every fast path is bit-identical
  to its scalar reference (asserted by the equivalence suite in
  ``tests/property/test_vectorized_equivalence.py``).

This module owns the process-wide toggle.  The fast path is the
default; :func:`scalar_mode` drops back to the reference
implementations so benchmarks can time an honest before/after on the
same tree.  Setting the environment variable ``REPRO_SCALAR=1``
disables the fast path for a whole process (useful for bisecting a
suspected fast-path bug).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, List

_env_scalar = os.environ.get("REPRO_SCALAR", "").strip().lower() in (
    "1", "true", "yes", "on",
)
_fast = not _env_scalar

#: cache-clearing callbacks registered by modules that memoize on the
#: fast path, so toggling modes never serves results computed under the
#: other mode's code path (the results are identical by contract, but
#: benchmark timings must not be).
_cache_clearers: List[Callable[[], None]] = []


def fast_enabled() -> bool:
    """True when the vectorized/memoized hot paths are active."""
    return _fast


def set_fast(enabled: bool) -> None:
    """Switch the fast path on or off process-wide."""
    global _fast
    _fast = bool(enabled)
    if not _fast:
        clear_caches()


def register_cache(clear: Callable[[], None]) -> Callable[[], None]:
    """Register a memo-cache clearer; returns it so modules can use this
    as a decorator-style one-liner."""
    _cache_clearers.append(clear)
    return clear


def clear_caches() -> None:
    """Drop every registered memo cache."""
    for clear in _cache_clearers:
        clear()


@contextmanager
def scalar_mode():
    """Run a block on the scalar reference paths (and with cold memo
    caches), restoring the previous mode afterwards."""
    previous = _fast
    set_fast(False)
    try:
        yield
    finally:
        set_fast(previous)
        clear_caches()
