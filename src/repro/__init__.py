"""GuardNN reproduction — secure DNN accelerator architecture (DAC 2022).

Top-level package. Subpackages:

* :mod:`repro.crypto` — cryptographic primitives and PKI.
* :mod:`repro.mem` — DDR4 DRAM timing model, controller, caches.
* :mod:`repro.accel` — systolic-array DNN accelerator model and model zoo.
* :mod:`repro.protection` — off-chip memory protection schemes
  (no-protection, baseline MEE, GuardNN confidentiality-only and
  confidentiality+integrity).
* :mod:`repro.core` — the GuardNN device: ISA, sessions, attestation,
  untrusted host runtime.
* :mod:`repro.analysis` — FPGA/ASIC resource, energy, and
  cross-approach comparison models.
* :mod:`repro.workloads` — workload/trace generators for experiments.
"""

__version__ = "1.0.0"
