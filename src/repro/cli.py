"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's experiments without writing code:

* ``simulate`` — one network under one protection scheme (Figure 3 cell);
* ``sweep`` — any registered experiment grid through the orchestration
  subsystem (parallel workers + result cache);
* ``figure3`` — the full normalized-time series;
* ``fpga-table`` — Table II;
* ``traffic`` — the Section III-C traffic-increase numbers;
* ``compile`` — compile a network's DFG to GuardNN instructions and
  verify the read-counter schedule;
* ``pipeline`` — one streaming trace-pipeline run with optional
  crash-safe checkpointing (``--checkpoint``/``--checkpoint-every``)
  and resume (``--resume``);
* ``serve`` — the long-lived simulation-as-a-service daemon (async
  HTTP/NDJSON job API: coalescing, admission control, streamed partial
  results, ``/metrics``; drains gracefully on SIGTERM, checkpointing
  long pipeline flights for the next instance to resume);
* ``work`` — join a ``sweep --distributed`` run as a remote worker
  (lease/heartbeat protocol; results are bit-identical to local runs);
* ``demo`` — the functional end-to-end secure inference.
"""

from __future__ import annotations

import argparse
import sys

from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
from repro.accel.models import build_model, list_models
from repro.protection import build_scheme, list_schemes
from repro.protection.guardnn import GuardNNProtection
from repro.protection.mee import BaselineMEE
from repro.protection.none import NoProtection


def _scheme(name: str):
    try:
        return build_scheme(name)
    except KeyError:
        raise SystemExit(f"unknown scheme {name!r}; choose from {', '.join(list_schemes())}")


# argparse `type=` validators: a nonsensical duration or counter should
# die at the option parser with the flag's name in the message, not ten
# frames deep in the service with a bare ValueError


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def _nonneg_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be zero or a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number of seconds, got {text}")
    return value


def _nonneg_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be zero or a positive number of seconds, got {text}")
    return value


def _host_port(text: str):
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT (e.g. 0.0.0.0:8790), got {text!r}")
    return host or "127.0.0.1", int(port)


def _journal_path(text: str) -> str:
    """Validate a ``--journal PATH`` before any work starts: the
    coordinator must be able to create/append the file, so a directory,
    an empty string, or a missing parent directory should die at the
    parser with the flag's name — not as an OSError mid-sweep."""
    import os

    if not text.strip():
        raise argparse.ArgumentTypeError(
            "--journal needs a file path, got an empty string")
    path = os.path.abspath(text)
    if os.path.isdir(path):
        raise argparse.ArgumentTypeError(
            f"--journal must name a file, {text!r} is a directory")
    parent = os.path.dirname(path)
    if not os.path.isdir(parent):
        raise argparse.ArgumentTypeError(
            f"--journal parent directory does not exist: {parent!r} "
            f"(create it first — the journal must be durable from "
            f"record one)")
    return path


def cmd_simulate(args) -> int:
    model = build_model(args.network)
    accel = AcceleratorModel(TPU_V1_CONFIG)
    base = accel.run(model, NoProtection(), training=args.training, batch=args.batch)
    run = accel.run(model, _scheme(args.scheme), training=args.training, batch=args.batch)
    print(f"network:            {model.name} ({'training' if args.training else 'inference'})")
    print(f"scheme:             {run.scheme}")
    print(f"total cycles:       {run.total_cycles:,}")
    print(f"normalized time:    {run.normalized_to(base):.4f}x vs no protection")
    print(f"traffic increase:   +{100*run.traffic_increase:.2f}%")
    print(f"throughput:         {run.throughput_samples_per_s():.2f} samples/s")
    return 0


def cmd_sweep(args) -> int:
    import repro.experiments as experiments

    if args.list:
        for definition in experiments.list_sweeps():
            print(f"{definition.name:26s} {definition.title}")
        return 0

    # resolve names up front so typos become clean CLI errors; anything
    # raising past this block is a real bug and keeps its traceback
    try:
        if args.preset:
            adhoc = [name for name, value in (("--models", args.models),
                                              ("--schemes", args.schemes),
                                              ("--batches", args.batches),
                                              ("--modes", args.modes)) if value]
            if adhoc:
                raise SystemExit(f"--preset and {'/'.join(adhoc)} are mutually "
                                 "exclusive (presets define their own grid)")
            definition = experiments.get_sweep(args.preset)
            title = definition.title
            n_jobs = len(definition.jobs())
            spec = None
        else:
            if not args.models:
                raise SystemExit("pick a --preset (see --list) or give --models")
            spec = experiments.SweepSpec(
                models=tuple(args.models.split(",")),
                schemes=tuple((args.schemes or "np,guardnn-c,guardnn-ci,bp").split(",")),
                batches=tuple(int(b) for b in (args.batches or "1").split(",")),
                modes=tuple((args.modes or "inference").split(",")),
            )
            from repro.experiments.executors import validate_model

            for model in spec.models:
                validate_model(model)
            title = "custom sweep"
            n_jobs = spec.size
    except (KeyError, ValueError) as error:
        raise SystemExit(f"error: {error.args[0] if error.args else error}")

    if args.journal and not args.distributed:
        raise SystemExit("error: --journal records the distributed "
                         "coordinator's write-ahead state; it requires "
                         "--distributed")
    cache = None
    if not args.no_cache:
        cache = experiments.ResultCache(args.cache_dir)
    if args.distributed:
        definition = experiments.get_sweep(args.preset) if spec is None else None
        jobs = definition.jobs() if spec is None else spec.jobs()
        columns = definition.columns if definition is not None else None
        table = _run_distributed_sweep(jobs, cache, columns, args)
        if definition is not None and definition.post is not None:
            table = definition.post(table)
        elif spec is not None and "np" in spec.schemes:
            table = table.with_normalized()
        runner = None
    else:
        try:
            runner = experiments.Runner(workers=args.workers, cache=cache)
        except ValueError as error:
            # a malformed REPRO_SWEEP_WORKERS is a configuration error, not a bug
            raise SystemExit(f"error: {error}")
        if spec is None:
            table = experiments.run_sweep(args.preset, runner=runner)
        else:
            table = runner.run(spec.jobs())
            if "np" in spec.schemes:
                # normalized execution time needs the NP baseline in the grid
                table = table.with_normalized()

    if args.format == "markdown":
        output = table.to_markdown()
    elif args.format == "csv":
        output = table.to_csv()
    else:
        output = table.to_json()
    if args.out:
        with open(args.out, "w") as f:
            f.write(output if output.endswith("\n") else output + "\n")
        print(f"wrote {len(table)} rows to {args.out}", file=sys.stderr)
    else:
        print(output)
    where = "distributed" if runner is None else f"workers={runner.workers}"
    print(f"# {title}: {n_jobs} jobs -> {len(table)} rows, {where}, "
          f"cache={'off' if cache is None else cache.stats}", file=sys.stderr)
    return 0


def _run_distributed_sweep(jobs, cache, columns, args):
    """Drive a job list through the distributed coordinator (with the
    local pool as the zero-worker fallback) and assemble the same
    ResultTable a local run would."""
    from repro.distributed import JournalError, SweepCoordinator
    from repro.experiments.table import ResultTable

    host, port = args.listen
    try:
        coordinator = SweepCoordinator(
            jobs, cache=cache, local_workers=args.workers,
            host=host, port=port, unit_jobs=args.unit_jobs,
            lease_seconds=args.lease_seconds,
            straggler_factor=args.straggler_factor,
            wait_workers=args.wait_workers,
            journal_path=args.journal)
    except JournalError as error:
        raise SystemExit(f"error: {error}")
    _announce_coordinator(coordinator, args)
    rows_per_job = coordinator.run()
    coordinator.discard_journal()  # results delivered — the WAL is spent
    table = ResultTable(columns=columns)
    for rows in rows_per_job:
        table.extend(rows)
    return table


def _announce_coordinator(coordinator, args) -> None:
    if coordinator.url:
        print(f"# coordinator listening at {coordinator.url} — join with: "
              f"repro work {coordinator.url}", file=sys.stderr)
    if args.journal:
        state = coordinator.state
        replayed = state.counters["journal_replayed_units"]
        print(f"# journal {args.journal} epoch={state.epoch} "
              f"replayed_units={replayed} "
              f"truncated={state.counters['journal_truncated']}",
              file=sys.stderr)


def cmd_work(args) -> int:
    """Turn this machine into a sweep worker pointed at a coordinator."""
    import signal

    from repro.distributed import Worker, WorkerConfig

    cache_dir = None
    if not args.no_cache:
        from repro.experiments.cache import default_cache_dir

        cache_dir = args.cache_dir or default_cache_dir()
    config = WorkerConfig(
        url=args.url, name=args.name or "", workers=args.workers,
        chunk_timeout=args.chunk_timeout, chunk_retries=args.chunk_retries,
        reconnect_timeout=args.reconnect_timeout, cache_dir=cache_dir)
    worker = Worker(config)

    # graceful drain: SIGTERM finishes (or checkpoint-parks) the current
    # lease, deregisters, and exits 0 — SIGINT stays the hard stop
    def _on_sigterm(signum, frame):
        worker.drain()

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        return worker.run()
    except KeyboardInterrupt:
        return 130
    finally:
        signal.signal(signal.SIGTERM, previous)


def cmd_figure3(args) -> int:
    accel = AcceleratorModel(TPU_V1_CONFIG)
    networks = list_models() if args.network == "all" else [args.network]
    schemes = [GuardNNProtection(False), GuardNNProtection(True), BaselineMEE()]
    print(f"{'network':12s} {'GuardNN_C':>10s} {'GuardNN_CI':>11s} {'BP':>8s}")
    for name in networks:
        if args.training and name == "dlrm":
            continue  # as in the paper's Figure 3b
        model = build_model(name)
        base = accel.run(model, NoProtection(), training=args.training, batch=args.batch)
        cells = [accel.run(model, s, training=args.training, batch=args.batch)
                 .normalized_to(base) for s in schemes]
        print(f"{name:12s} {cells[0]:>10.4f} {cells[1]:>11.4f} {cells[2]:>8.4f}")
    return 0


def cmd_fpga_table(args) -> int:
    from repro.analysis.fpga import FpgaConfig, FpgaPrototypeModel

    model = FpgaPrototypeModel(aes_engines=args.engines)
    networks = ["alexnet", "googlenet", "resnet50", "vgg16"]
    print(f"GuardNN_C ({args.precision}-bit), {args.engines} AES engines — fps (+overhead %)")
    print(f"{'DSPs':>6s}" + "".join(f"{n:>20s}" for n in networks))
    for dsps in (128, 256, 512, 1024):
        cells = []
        for net in networks:
            row = model.table_row(net, FpgaConfig(dsps, args.precision))
            cells.append(f"{row['guardnn_fps']:9.1f} (+{row['overhead_pct']:.2f}%)")
        print(f"{dsps:>6d}" + "".join(f"{c:>20s}" for c in cells))
    return 0


def cmd_traffic(args) -> int:
    accel = AcceleratorModel(TPU_V1_CONFIG)
    bp, ci = BaselineMEE(), GuardNNProtection(True)
    print(f"{'network':12s} {'BP +%':>8s} {'GuardNN_CI +%':>14s}")
    for name in list_models():
        model = build_model(name)
        r_bp = accel.run(model, bp, training=args.training, batch=args.batch)
        r_ci = accel.run(model, ci, training=args.training, batch=args.batch)
        print(f"{name:12s} {100*r_bp.traffic_increase:>8.1f} {100*r_ci.traffic_increase:>14.1f}")
    return 0


def cmd_compile(args) -> int:
    from repro.core.compiler import DfgCompiler, verify_schedule

    model = build_model(args.network)
    program = DfgCompiler(model, batch=args.batch).compile(training=args.training)
    report = verify_schedule(program)
    print(f"compiled {model.name} ({'training' if args.training else 'inference'}):")
    for kind, count in sorted(program.instruction_counts().items()):
        print(f"  {kind:14s} x {count}")
    print(f"schedule: VN-unique={report.vn_unique} "
          f"read-consistent={report.reads_consistent} "
          f"({report.writes} writes, {report.declared_reads} declared reads)")
    return 0 if report.ok else 1


def cmd_bench(args) -> int:
    """Run the tracked perf kernels (wraps ``scripts/bench_perf.py``)
    without needing to know the scripts layout."""
    import importlib.util
    import os

    script = os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "..", "..", "scripts", "bench_perf.py"))
    if not os.path.exists(script):
        raise SystemExit(
            "scripts/bench_perf.py not found — `repro bench` runs the "
            "benchmark suite from a source checkout (expected it at "
            f"{script})")
    spec = importlib.util.spec_from_file_location("repro_bench_perf", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    argv = []
    if not args.full:
        argv.append("--quick")
    for kernel in args.kernel or []:
        argv.extend(["--kernel", kernel])
    # every other option (--repeat, --output, --check, --list-kernels,
    # ...) is forwarded verbatim, so the script stays the single source
    # of truth for its option surface
    argv.extend(getattr(args, "extra", []))
    return module.main(argv)


def cmd_pipeline(args) -> int:
    """One streaming TracePipeline run: the `pipeline_run` executor's
    rows, printed as JSON, with the checkpoint/resume surface exposed
    (this is the crash_resume_smoke harness's entry point). With
    ``--distributed`` the run becomes a leased work unit served to
    `repro work` machines, with chunk-seam checkpoint migration as the
    failover mechanism and the shared result cache answering repeats."""
    import json
    import os

    from repro.checkpoint import CheckpointError, load_checkpoint
    from repro.experiments.executors import pipeline_rows

    params = {"workload": args.workload}
    if args.schemes:
        params["schemes"] = [s.strip() for s in args.schemes.split(",")
                             if s.strip()]
    if args.chunk_requests is not None:
        params["chunk_requests"] = args.chunk_requests
    if args.params:
        try:
            extra = json.loads(args.params)
            if not isinstance(extra, dict):
                raise ValueError("--params must be a JSON object")
        except ValueError as error:
            raise SystemExit(f"error: invalid --params: {error}")
        params.update(extra)

    if args.distributed:
        if args.checkpoint or args.resume:
            raise SystemExit("error: --distributed migrates checkpoints to "
                             "the coordinator; --checkpoint/--resume apply "
                             "to local runs only")
        return _run_distributed_pipeline(params, args)
    if args.journal:
        raise SystemExit("error: --journal records the distributed "
                         "coordinator's write-ahead state; it requires "
                         "--distributed")

    if (args.checkpoint_every or args.resume) and not args.checkpoint:
        raise SystemExit("error: --checkpoint-every/--resume need "
                         "--checkpoint PATH")
    resume_from = None
    if args.resume and os.path.exists(args.checkpoint):
        try:
            resume_from = load_checkpoint(args.checkpoint,
                                          kind="trace-pipeline")
        except CheckpointError as error:
            raise SystemExit(f"error: {error}")
    kwargs = {}
    if args.checkpoint:
        kwargs = dict(checkpoint_path=args.checkpoint,
                      checkpoint_every=args.checkpoint_every,
                      resume_from=resume_from)
    try:
        rows = pipeline_rows(params, **kwargs)
    except (KeyError, ValueError) as error:
        raise SystemExit(f"error: {error}")
    if args.checkpoint and os.path.exists(args.checkpoint):
        os.unlink(args.checkpoint)  # completed: the checkpoint is spent
    print(json.dumps(rows, indent=2, sort_keys=True))
    return 0


def _run_distributed_pipeline(params, args) -> int:
    """Serve one ``pipeline_run`` job as a leased, checkpoint-migratable
    unit: workers upload chunk-seam envelopes, a SIGKILLed worker's
    successor resumes mid-unit, and a warm coordinator answers the whole
    unit from the shared result cache without dispatching it."""
    import json

    import repro.experiments as experiments
    from repro.distributed import (
        DEFAULT_CHECKPOINT_EVERY,
        JournalError,
        SweepCoordinator,
    )
    from repro.experiments.jobs import Job, canonical_json

    cache = None
    if not args.no_cache:
        cache = experiments.ResultCache(args.cache_dir)
    host, port = args.listen
    job = Job("pipeline_run", canonical_json(params))
    try:
        coordinator = SweepCoordinator(
            [job], cache=cache, host=host, port=port,
            lease_seconds=args.lease_seconds,
            wait_workers=args.wait_workers,
            checkpoint_every=args.checkpoint_every or DEFAULT_CHECKPOINT_EVERY,
            journal_path=args.journal)
    except JournalError as error:
        raise SystemExit(f"error: {error}")
    _announce_coordinator(coordinator, args)
    from repro.experiments.runner import JobExecutionError

    try:
        rows_per_job = coordinator.run()
    except JobExecutionError as error:
        raise SystemExit(f"error: {error}")
    coordinator.discard_journal()  # results delivered — the WAL is spent
    snap = coordinator.state.snapshot()
    counters = snap["counters"]
    print(f"# units={snap['units_total']} "
          f"resumed={counters['resumed_units']} "
          f"migrated_checkpoints={counters['checkpoints_migrated']} "
          f"cache_served={counters['cache_served_units']}", file=sys.stderr)
    print(json.dumps(rows_per_job[0], indent=2, sort_keys=True))
    return 0


def cmd_serve(args) -> int:
    """Long-lived simulation-as-a-service daemon (async job API with
    coalescing, admission control, streamed partials, /metrics)."""
    from repro.service.server import ServeConfig, run_serve

    try:
        config = ServeConfig(
            host=args.host, port=args.port, workers=args.workers,
            max_running=args.max_running, max_queued=args.max_queued,
            cache=not args.no_cache, cache_dir=args.cache_dir,
            stream_jobs=args.stream_jobs,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            drain_grace=args.drain_grace,
            chunk_timeout=args.chunk_timeout,
            chunk_retries=args.chunk_retries,
            distributed=args.distributed,
            dist_host=args.dist_listen[0],
            dist_port=args.dist_listen[1],
            dist_lease_seconds=args.dist_lease_seconds,
            dist_wait_workers=args.dist_wait_workers)
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    try:
        return run_serve(config)
    except ValueError as error:
        raise SystemExit(f"error: {error}")


def cmd_demo(args) -> int:
    import numpy as np

    from repro.core.device import GuardNNDevice
    from repro.core.host import HonestHost, MlpSpec
    from repro.core.session import UserSession
    from repro.crypto.pki import ManufacturerCA
    from repro.crypto.rng import HmacDrbg

    ca = ManufacturerCA(HmacDrbg(b"cli-ca"))
    device = GuardNNDevice(b"cli-dev", ca, seed=b"cli-seed", dram_bytes=1 << 20)
    host = HonestHost(device)
    user = UserSession(ca.root_public, HmacDrbg(b"cli-user"))
    user.authenticate_device(host.fetch_device_info())
    host.establish_session(user, enable_integrity=not args.no_integrity)
    rng = np.random.default_rng(args.seed)
    spec = MlpSpec([rng.integers(-20, 20, size=(64, 32), dtype=np.int8),
                    rng.integers(-20, 20, size=(32, 10), dtype=np.int8)])
    x = rng.integers(-20, 20, size=(4, 64), dtype=np.int8)
    out, attested = host.compile_and_run(user, spec, x)
    ok = (out == spec.reference_forward(x)).all()
    print(f"result correct: {bool(ok)}; attested: {attested}; "
          f"plaintext in DRAM: {spec.weights[0].tobytes() in bytes(device.untrusted_memory.data)}")
    return 0 if ok and attested else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, network_default="vgg16"):
        p.add_argument("--network", default=network_default,
                       help=f"one of: {', '.join(list_models())}")
        p.add_argument("--batch", type=int, default=1)
        p.add_argument("--training", action="store_true")

    p = sub.add_parser("simulate", help="run one network under one scheme")
    common(p)
    p.add_argument("--scheme", default="guardnn-ci", choices=list_schemes())
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("sweep", help="run a registered experiment grid "
                                     "(parallel workers + result cache)")
    p.add_argument("--list", action="store_true", help="list registered sweeps")
    p.add_argument("--preset", help="registered sweep name (see --list)")
    p.add_argument("--models", help="comma-separated model names (ad-hoc grid)")
    p.add_argument("--schemes", default=None,
                   help="comma-separated scheme names for an ad-hoc grid "
                        "(default: np,guardnn-c,guardnn-ci,bp)")
    p.add_argument("--batches", default=None,
                   help="comma-separated batch sizes (default: 1)")
    p.add_argument("--modes", default=None,
                   help="comma-separated modes (default: inference)")
    p.add_argument("--workers", type=_positive_int, default=None,
                   help="process-parallel workers (default: "
                        "REPRO_SWEEP_WORKERS or cpu count, capped at 8)")
    p.add_argument("--distributed", action="store_true",
                   help="shard the sweep across remote `repro work` "
                        "machines (local pool is the zero-worker fallback)")
    p.add_argument("--listen", type=_host_port, default=("127.0.0.1", 0),
                   metavar="HOST:PORT",
                   help="coordinator bind address for --distributed "
                        "(default: 127.0.0.1 on an ephemeral port)")
    p.add_argument("--unit-jobs", type=_positive_int, default=None,
                   help="jobs per distributed work unit (default: "
                        "auto, ~32 units per sweep)")
    p.add_argument("--lease-seconds", type=_positive_float, default=10.0,
                   help="lease term for distributed units; a worker "
                        "silent this long forfeits its unit")
    p.add_argument("--wait-workers", type=_nonneg_float, default=0.0,
                   metavar="SECS",
                   help="grace period to wait for remote workers before "
                        "the local pool starts taking units")
    p.add_argument("--straggler-factor", type=_positive_float, default=None,
                   help="duplicate-dispatch a unit outstanding longer than "
                        "FACTOR x the EWMA unit time (first result wins)")
    p.add_argument("--journal", type=_journal_path, default=None,
                   metavar="PATH",
                   help="write-ahead journal for --distributed: every "
                        "commit is fsync'd before it is acknowledged, so "
                        "a killed coordinator restarted with the same "
                        "--journal resumes exactly where it died "
                        "(deleted on successful completion)")
    p.add_argument("--format", default="markdown", choices=("markdown", "csv", "json"))
    p.add_argument("--out", help="write the table to a file instead of stdout")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute everything, bypassing the result cache")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache directory (default: ~/.cache/repro/sweeps)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("figure3", help="normalized-time series (Figure 3)")
    common(p, network_default="all")
    p.set_defaults(func=cmd_figure3)

    p = sub.add_parser("fpga-table", help="Table II")
    p.add_argument("--precision", type=int, default=8, choices=(6, 8))
    p.add_argument("--engines", type=int, default=3)
    p.set_defaults(func=cmd_fpga_table)

    p = sub.add_parser("traffic", help="memory-traffic increases")
    p.add_argument("--batch", type=int, default=1)
    p.add_argument("--training", action="store_true")
    p.set_defaults(func=cmd_traffic)

    p = sub.add_parser("compile", help="compile a DFG to GuardNN instructions")
    common(p, network_default="alexnet")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("bench", help="scalar-vs-fast perf kernels "
                                     "(wraps scripts/bench_perf.py)")
    mode = p.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", default=True,
                      help="small inputs, few repeats (default)")
    mode.add_argument("--full", action="store_true",
                      help="full-size inputs (the tracked BENCH_perf.json mode)")
    p.add_argument("--kernel", action="append",
                   help="measure only this kernel (repeatable; "
                        "--list-kernels prints the names)")
    p.epilog = ("any further options (--repeat N, --output FILE, --check, "
                "--list-kernels, ...) are forwarded to scripts/bench_perf.py")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("pipeline", help="one streaming trace-pipeline run "
                                        "(checkpointable + resumable)")
    p.add_argument("--workload", required=True,
                   help="trace-spec name (streaming, random, bp-metadata, "
                        "llm geometries, ...)")
    p.add_argument("--schemes", default=None,
                   help="comma-separated scheme names "
                        "(default: np,guardnn-c,guardnn-ci,bp)")
    p.add_argument("--chunk-requests", type=_positive_int, default=None,
                   help="requests per streamed chunk")
    p.add_argument("--params", default=None,
                   help="extra trace-spec params as a JSON object, e.g. "
                        "'{\"nbytes\": 1048576, \"tokens\": 2}'")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="checkpoint file; written atomically, deleted on "
                        "successful completion")
    p.add_argument("--checkpoint-every", type=_nonneg_int, default=0,
                   metavar="N",
                   help="write a checkpoint every N chunks (requires "
                        "--checkpoint; with --distributed: chunk-seam "
                        "migration cadence, default 4)")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint if it exists (bit-"
                        "identical to an uninterrupted run)")
    p.add_argument("--distributed", action="store_true",
                   help="serve the run as a leased work unit to `repro "
                        "work` machines, with chunk-seam checkpoint "
                        "migration as the failover path (local pool is "
                        "the zero-worker fallback)")
    p.add_argument("--listen", type=_host_port, default=("127.0.0.1", 0),
                   metavar="HOST:PORT",
                   help="coordinator bind address for --distributed "
                        "(default: 127.0.0.1 on an ephemeral port)")
    p.add_argument("--lease-seconds", type=_positive_float, default=10.0,
                   help="lease term for --distributed; a worker silent "
                        "this long forfeits the unit and its latest "
                        "migrated checkpoint rides the re-grant")
    p.add_argument("--wait-workers", type=_nonneg_float, default=0.0,
                   metavar="SECS",
                   help="grace period to wait for remote workers before "
                        "the local pool takes the unit")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the shared result cache for --distributed")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache directory for --distributed "
                        "(default: ~/.cache/repro/sweeps)")
    p.add_argument("--journal", type=_journal_path, default=None,
                   metavar="PATH",
                   help="write-ahead journal for --distributed: commits "
                        "and migrated checkpoint envelopes are fsync'd "
                        "before acknowledgement, so a killed coordinator "
                        "restarted with the same --journal re-offers the "
                        "unit with its latest envelope riding the "
                        "re-grant (deleted on successful completion)")
    p.set_defaults(func=cmd_pipeline)

    p = sub.add_parser("serve", help="simulation-as-a-service daemon "
                                     "(HTTP/NDJSON job API, coalescing, "
                                     "admission control, /metrics)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="TCP port (0 = ephemeral; the bound address is "
                        "printed to stderr)")
    p.add_argument("--workers", type=_positive_int, default=None,
                   help="sweep process-pool width (default: "
                        "REPRO_SWEEP_WORKERS or cpu count, capped at 8)")
    p.add_argument("--max-running", type=_positive_int, default=2,
                   help="concurrent executing jobs (occupancy capacity)")
    p.add_argument("--max-queued", type=_nonneg_int, default=8,
                   help="admitted jobs allowed to wait; beyond this the "
                        "service sheds load with 429 + Retry-After")
    p.add_argument("--stream-jobs", type=_positive_int, default=None,
                   help="sweep jobs per streamed partial-rows event "
                        "(default: 2x pool width)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the shared on-disk result cache")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache directory (default: ~/.cache/repro/sweeps)")
    p.add_argument("--checkpoint-dir", default=None,
                   help="directory for pipeline flight checkpoints; enables "
                        "drain-time checkpointing and restart resume")
    p.add_argument("--checkpoint-every", type=_nonneg_int, default=0,
                   metavar="N",
                   help="checkpoint pipeline flights every N chunks "
                        "(0 = only when draining)")
    p.add_argument("--drain-grace", type=_nonneg_float, default=10.0,
                   metavar="SECS",
                   help="grace period for in-flight work after SIGTERM/"
                        "SIGINT before forced shutdown")
    p.add_argument("--chunk-timeout", type=_positive_float, default=None,
                   metavar="SECS",
                   help="per-chunk sweep timeout; a chunk exceeding it marks "
                        "the worker pool lost and triggers redispatch")
    p.add_argument("--chunk-retries", type=_nonneg_int, default=2,
                   help="redispatch budget for lost sweep chunks")
    p.add_argument("--distributed", action="store_true",
                   help="fan sweep/pipeline flights out to `repro work` "
                        "machines through an embedded coordinator; with "
                        "zero live workers a flight falls back to the "
                        "local pool. With --checkpoint-dir each flight "
                        "keeps a write-ahead journal there, so a killed "
                        "daemon resumes its flights on restart")
    p.add_argument("--dist-listen", type=_host_port,
                   default=("127.0.0.1", 8790), metavar="HOST:PORT",
                   help="coordinator bind address for --distributed "
                        "(fixed so parked workers can rejoin between "
                        "flights; default 127.0.0.1:8790)")
    p.add_argument("--dist-lease-seconds", type=_positive_float,
                   default=10.0, metavar="SECS",
                   help="lease term for --distributed flight units")
    p.add_argument("--dist-wait-workers", type=_nonneg_float, default=0.0,
                   metavar="SECS",
                   help="grace period each flight waits for remote "
                        "workers before the local pool takes its units")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("work", help="join a distributed run as a worker "
                                    "(point at a `repro sweep|pipeline "
                                    "--distributed` coordinator URL)")
    p.add_argument("url", help="coordinator URL, e.g. http://10.0.0.5:8790")
    p.add_argument("--name", default=None,
                   help="worker name (shows up in coordinator ids/logs)")
    p.add_argument("--workers", type=_positive_int, default=None,
                   help="local process-pool width for unit execution "
                        "(default: REPRO_SWEEP_WORKERS or cpu count, "
                        "capped at 8)")
    p.add_argument("--chunk-timeout", type=_positive_float, default=None,
                   metavar="SECS",
                   help="per-chunk timeout inside a unit (local recovery)")
    p.add_argument("--chunk-retries", type=_nonneg_int, default=2,
                   help="redispatch budget for lost chunks inside a unit")
    p.add_argument("--reconnect-timeout", type=_nonneg_float, default=30.0,
                   metavar="SECS",
                   help="give up after the coordinator has been "
                        "unreachable this long (backoff with jitter in "
                        "between; the budget restarts on every answered "
                        "exchange, including a 409 re-registration after "
                        "a coordinator restart). 0 = never give up — "
                        "keep backing off forever")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the local result cache (units are always "
                        "recomputed, never answered or remembered here)")
    p.add_argument("--cache-dir", default=None,
                   help="local result-cache directory "
                        "(default: ~/.cache/repro/sweeps)")
    p.set_defaults(func=cmd_work)

    p = sub.add_parser("demo", help="functional end-to-end secure inference")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-integrity", action="store_true")
    p.set_defaults(func=cmd_demo)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    # `bench` forwards unrecognized options to scripts/bench_perf.py;
    # every other command keeps strict parsing
    args, extra = parser.parse_known_args(argv)
    if getattr(args, "func", None) is cmd_bench:
        args.extra = extra
    elif extra:
        parser.error("unrecognized arguments: " + " ".join(extra))
    try:
        return args.func(args)
    except BrokenPipeError:
        # piping into `head` & friends closes stdout early; exit quietly
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
