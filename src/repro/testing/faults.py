"""Deterministic, plan-driven fault injection.

Chaos testing is only useful when a failure reproduces: this module
replaces "kill a random worker sometime" with a *plan* — an explicit
list of fault points, each naming a **site** (an instrumented location
in the code), the **index** at which it fires (the site's own call or
chunk counter), and an **action**. The same plan against the same
workload fails the same way every time.

Sites instrumented in this repo:

===================  =====================================================
``worker.chunk``      a sweep worker about to execute chunk *index*
                      (:func:`repro.experiments.runner._run_chunk`)
``pipeline.chunk``    the pipeline about to process chunk *index*
                      (:meth:`repro.mem.pipeline.TracePipeline.run`)
``rewriter.rewrite``  a trace rewriter entering ``rewrite_batch`` call
                      *index*
``cache.put``         the result cache about to publish entry *index*
                      (action ``corrupt``/``truncate`` damages the
                      entry instead of crashing)
``service.stream``    the service about to emit streamed event *index*
                      (action ``drop`` severs the client connection)
``service.flight``    a service flight about to start (index = flight
                      sequence number)
``dist.lease``        a distributed worker sending lease request *index*
                      (:mod:`repro.distributed.client`)
``dist.heartbeat``    a distributed worker sending heartbeat *index*
``dist.result``       a distributed worker submitting result *index*
``dist.unit``         a distributed worker about to execute leased unit
                      *index* (action ``raise`` models the worker dying
                      mid-lease)
``dist.checkpoint``   a distributed worker uploading chunk-seam
                      checkpoint envelope *index* (``corrupt`` damages
                      the envelope in flight — the coordinator must
                      reject it; ``kill`` models dying at a seam after
                      earlier envelopes migrated)
``dist.deregister``   a distributed worker announcing a graceful drain
``dist.journal``      the coordinator about to append journal record
                      *index* (:mod:`repro.distributed.journal`).
                      ``kill`` crashes the coordinator *before* the
                      record lands — the acknowledged-at-N-1 /
                      dead-before-N case; ``truncate`` writes half the
                      record, fsyncs the torn bytes, then SIGKILLs —
                      manufacturing a torn journal tail exactly as a
                      crash mid-``write(2)`` would
===================  =====================================================

The ``dist.*`` sites model the *network*, so their data actions are
message-level: ``drop`` (request never delivered), ``sever`` (request
delivered, response lost — the lost-ack case that makes at-least-once
delivery observable), ``delay`` (delivered late), ``duplicate``
(delivered twice). Each distributed site is also checked under a
worker-scoped alias ``<site>@<worker-name>``, so a plan can partition
one worker of many in the same process.

Actions ``raise`` / ``kill`` (SIGKILL self) / ``sigterm`` (SIGTERM
self) are executed *by* :func:`fire`; data actions (``corrupt``,
``truncate``, ``drop``, ``delay``, ``duplicate``, ``sever``) are
returned by :func:`check` for the call site to apply — damaging a JSON
file is the cache's business, and losing a message is the network
client's, not this module's.

Plan format (JSON-serializable)::

    {"points": [
        {"site": "worker.chunk", "at": 2, "action": "kill",
         "once_file": "/tmp/killed-once"},
        {"site": "rewriter.rewrite", "at": 1, "action": "raise"},
        {"site": "cache.put", "at": 0, "action": "corrupt"}
    ]}

``at`` is the site index to match (omit to match every call);
``times`` caps in-process firings (default 1; ``null`` = unlimited);
``once_file`` makes a fault fire **at most once across processes**:
firing requires atomically creating the file (``O_CREAT | O_EXCL``),
so when a killed chunk is re-dispatched with the *same* index to a
fresh worker, the replacement does not die again — exactly the
semantics a crash-recovery test needs.

Propagation: pool workers under ``spawn``/``forkserver`` import a
fresh copy of this module, so plans travel through the
``REPRO_FAULT_PLAN`` environment variable (inline JSON, or ``@path``
to a JSON file), loaded once at import. ``fork`` workers inherit the
in-process plan directly.

When no plan is installed every hook is one module-global ``is None``
check (:func:`enabled`), so production paths pay nothing measurable —
the hooks sit at chunk granularity, never per request.
"""

from __future__ import annotations

import json
import os
import signal
from typing import Dict, List, Optional

ENV_VAR = "REPRO_FAULT_PLAN"

#: actions fire() executes itself
_EXEC_ACTIONS = ("raise", "kill", "sigterm")
#: actions the call site applies to its own data (the last four are
#: message-level network faults for the ``dist.*`` sites)
_DATA_ACTIONS = ("corrupt", "truncate", "drop", "delay", "duplicate",
                 "sever")


class FaultInjected(RuntimeError):
    """The error raised by an ``action: "raise"`` fault point."""


class _Point:
    __slots__ = ("site", "at", "action", "times", "once_file", "message",
                 "fired")

    def __init__(self, spec: Dict[str, object]):
        unknown = set(spec) - {"site", "at", "action", "times", "once_file",
                               "message"}
        if unknown:
            raise ValueError(f"unknown fault-point field(s) {sorted(unknown)}")
        self.site = spec["site"]
        if not isinstance(self.site, str) or not self.site:
            raise ValueError("fault point needs a 'site' name")
        self.action = spec.get("action", "raise")
        if self.action not in _EXEC_ACTIONS + _DATA_ACTIONS:
            raise ValueError(
                f"unknown action {self.action!r}; choose from "
                f"{list(_EXEC_ACTIONS + _DATA_ACTIONS)}")
        self.at = spec.get("at")
        if self.at is not None and (not isinstance(self.at, int) or self.at < 0):
            raise ValueError("'at' must be a non-negative integer")
        self.times = spec.get("times", 1)
        if self.times is not None and (not isinstance(self.times, int)
                                       or self.times < 1):
            raise ValueError("'times' must be a positive integer or null")
        self.once_file = spec.get("once_file")
        self.message = spec.get("message")
        self.fired = 0

    def matches(self, site: str, index: Optional[int]) -> bool:
        if self.site != site:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.at is not None and self.at != index:
            return False
        return True

    def claim(self) -> bool:
        """Consume one firing; with ``once_file``, only the process that
        atomically creates the marker gets it."""
        if self.once_file is not None:
            try:
                os.close(os.open(self.once_file,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            except FileExistsError:
                return False
        self.fired += 1
        return True

    def describe(self) -> str:
        where = self.site if self.at is None else f"{self.site}[{self.at}]"
        return self.message or f"injected fault at {where} ({self.action})"


_PLAN: Optional[List[_Point]] = None


def enabled() -> bool:
    """True when a fault plan is installed — the whole cost of every
    hook on the production path."""
    return _PLAN is not None


def install(plan: Dict[str, object]) -> None:
    """Install a plan in this process (validates every point first)."""
    global _PLAN
    if not isinstance(plan, dict) or "points" not in plan:
        raise ValueError("fault plan must be {'points': [...]}")
    _PLAN = [_Point(spec) for spec in plan["points"]]


def clear() -> None:
    """Remove the installed plan (hooks become no-ops again)."""
    global _PLAN
    _PLAN = None


def install_env(plan: Dict[str, object], env: Optional[Dict[str, str]] = None) -> str:
    """Install a plan here *and* export it through :data:`ENV_VAR` so
    spawned/forkserver workers pick it up at import. Returns the
    serialized value (callers passing explicit child environments can
    reuse it)."""
    install(plan)
    value = json.dumps(plan)
    (os.environ if env is None else env)[ENV_VAR] = value
    return value


def clear_env() -> None:
    clear()
    os.environ.pop(ENV_VAR, None)


def _load_from_env() -> None:
    value = os.environ.get(ENV_VAR)
    if not value:
        return
    if value.startswith("@"):
        with open(value[1:], "r") as handle:
            value = handle.read()
    install(json.loads(value))


def _match(site: str, index: Optional[int]) -> Optional[_Point]:
    for point in _PLAN:
        if point.matches(site, index) and point.claim():
            return point
    return None


def fire(site: str, index: Optional[int] = None) -> None:
    """Execute any ``raise``/``kill``/``sigterm`` fault armed for this
    site/index. Call sites guard with :func:`enabled` so the disabled
    path costs one global check."""
    if _PLAN is None:
        return
    point = _match(site, index)
    if point is None or point.action in _DATA_ACTIONS:
        return
    if point.action == "raise":
        raise FaultInjected(point.describe())
    if point.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    os.kill(os.getpid(), signal.SIGTERM)
    # a SIGTERM with a graceful handler returns control here; the point
    # is consumed, so the site continues normally afterwards


def check(site: str, index: Optional[int] = None) -> Optional[str]:
    """Return the armed *data* action (``corrupt``/``truncate``/
    ``drop``) for this site/index, or ``None``. Exec actions armed on
    the same site are executed as in :func:`fire`."""
    if _PLAN is None:
        return None
    point = _match(site, index)
    if point is None:
        return None
    if point.action in _DATA_ACTIONS:
        return point.action
    if point.action == "raise":
        raise FaultInjected(point.describe())
    if point.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    os.kill(os.getpid(), signal.SIGTERM)
    return None


_load_from_env()
