"""Test-support machinery that ships with the package.

:mod:`repro.testing.faults` lives inside ``src`` (not ``tests/``)
because its hooks are compiled into production call sites — the
runner's worker entry, the pipeline chunk loop, the rewriters, the
result cache, the service stream — and must also be importable inside
spawned worker processes, which only see the installed package.
"""

from repro.testing import faults

__all__ = ["faults"]
