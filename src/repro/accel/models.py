"""The paper's nine-network model zoo (Section III-A, Benchmarks).

"We evaluate GuardNN on a variety of DNN architectures — AlexNet, VGG,
GoogleNet, ResNet, MobileNet, Vision Transformer (ViT) for image
classification, BERT for pretraining language models, DLRM for
personalized recommendation, and wav2vec2 for learning speech
representation."

Each builder returns a :class:`NetworkModel`: an ordered list of layers
with standard published dimensions. The layer tables follow the original
papers (AlexNet one-tower variant, VGG-16, GoogLeNet/Inception-v1,
ResNet-50, MobileNetV1, ViT-Base/16, BERT-Base, MLPerf-style DLRM,
wav2vec2-Base).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.accel.layers import (
    Conv1DLayer,
    ConvLayer,
    DenseLayer,
    DepthwiseConvLayer,
    ElementwiseLayer,
    EmbeddingLayer,
    LayerBase,
    MatmulLayer,
    PoolLayer,
)


@dataclass
class NetworkModel:
    """An ordered DNN description."""

    name: str
    layers: List[LayerBase]
    input_elements: int  # size of one network input sample (elements)
    output_elements: int  # size of one final output (elements)
    family: str = "cnn"  # cnn | transformer | recommendation | speech

    def macs(self, batch: int = 1) -> int:
        return sum(layer.macs(batch) for layer in self.layers)

    def weight_elements(self) -> int:
        return sum(layer.weight_elements() for layer in self.layers)

    def weight_bytes(self, bytes_per_element: int = 1) -> int:
        return self.weight_elements() * bytes_per_element

    def compute_layers(self) -> List[LayerBase]:
        """Layers with MACs (the ones the PE array executes)."""
        return [layer for layer in self.layers if layer.macs(1) > 0]

    def __iter__(self):
        return iter(self.layers)

    def __len__(self):
        return len(self.layers)


# ---------------------------------------------------------------------------
# CNN builders
# ---------------------------------------------------------------------------


def build_alexnet() -> NetworkModel:
    """AlexNet (one-tower), 224x224x3 ImageNet input."""
    layers = [
        ConvLayer("conv1", c_in=3, c_out=96, in_h=224, in_w=224, kernel=11, stride=4, padding=2),
        PoolLayer("pool1", channels=96, in_h=55, in_w=55, kernel=3, stride=2),
        ConvLayer("conv2", c_in=96, c_out=256, in_h=27, in_w=27, kernel=5, stride=1, padding=2),
        PoolLayer("pool2", channels=256, in_h=27, in_w=27, kernel=3, stride=2),
        ConvLayer("conv3", c_in=256, c_out=384, in_h=13, in_w=13, kernel=3, stride=1, padding=1),
        ConvLayer("conv4", c_in=384, c_out=384, in_h=13, in_w=13, kernel=3, stride=1, padding=1),
        ConvLayer("conv5", c_in=384, c_out=256, in_h=13, in_w=13, kernel=3, stride=1, padding=1),
        PoolLayer("pool5", channels=256, in_h=13, in_w=13, kernel=3, stride=2),
        DenseLayer("fc6", in_features=256 * 6 * 6, out_features=4096),
        DenseLayer("fc7", in_features=4096, out_features=4096),
        DenseLayer("fc8", in_features=4096, out_features=1000),
    ]
    return NetworkModel("alexnet", layers, input_elements=3 * 224 * 224, output_elements=1000)


def _vgg_block(prefix: str, c_in: int, c_out: int, size: int, convs: int) -> List[LayerBase]:
    layers: List[LayerBase] = []
    for i in range(convs):
        layers.append(
            ConvLayer(
                f"{prefix}_conv{i + 1}",
                c_in=c_in if i == 0 else c_out,
                c_out=c_out,
                in_h=size,
                in_w=size,
                kernel=3,
                stride=1,
                padding=1,
            )
        )
    layers.append(PoolLayer(f"{prefix}_pool", channels=c_out, in_h=size, in_w=size))
    return layers


def build_vgg16() -> NetworkModel:
    """VGG-16 (configuration D)."""
    layers: List[LayerBase] = []
    layers += _vgg_block("b1", 3, 64, 224, 2)
    layers += _vgg_block("b2", 64, 128, 112, 2)
    layers += _vgg_block("b3", 128, 256, 56, 3)
    layers += _vgg_block("b4", 256, 512, 28, 3)
    layers += _vgg_block("b5", 512, 512, 14, 3)
    layers += [
        DenseLayer("fc6", in_features=512 * 7 * 7, out_features=4096),
        DenseLayer("fc7", in_features=4096, out_features=4096),
        DenseLayer("fc8", in_features=4096, out_features=1000),
    ]
    return NetworkModel("vgg16", layers, input_elements=3 * 224 * 224, output_elements=1000)


def _inception(prefix: str, size: int, c_in: int, b1: int, b2r: int, b2: int,
               b3r: int, b3: int, b4: int) -> List[LayerBase]:
    """One Inception-v1 module: 1x1 | 1x1->3x3 | 1x1->5x5 | pool->1x1."""
    return [
        ConvLayer(f"{prefix}_1x1", c_in=c_in, c_out=b1, in_h=size, in_w=size, kernel=1),
        ConvLayer(f"{prefix}_3x3r", c_in=c_in, c_out=b2r, in_h=size, in_w=size, kernel=1),
        ConvLayer(f"{prefix}_3x3", c_in=b2r, c_out=b2, in_h=size, in_w=size, kernel=3, padding=1),
        ConvLayer(f"{prefix}_5x5r", c_in=c_in, c_out=b3r, in_h=size, in_w=size, kernel=1),
        ConvLayer(f"{prefix}_5x5", c_in=b3r, c_out=b3, in_h=size, in_w=size, kernel=5, padding=2),
        PoolLayer(f"{prefix}_pool", channels=c_in, in_h=size, in_w=size, kernel=3, stride=1, padding=1),
        ConvLayer(f"{prefix}_poolproj", c_in=c_in, c_out=b4, in_h=size, in_w=size, kernel=1),
    ]


def build_googlenet() -> NetworkModel:
    """GoogLeNet / Inception-v1, published module configuration."""
    layers: List[LayerBase] = [
        ConvLayer("stem_conv1", c_in=3, c_out=64, in_h=224, in_w=224, kernel=7, stride=2, padding=3),
        PoolLayer("stem_pool1", channels=64, in_h=112, in_w=112, kernel=3, stride=2, padding=1),
        ConvLayer("stem_conv2r", c_in=64, c_out=64, in_h=56, in_w=56, kernel=1),
        ConvLayer("stem_conv2", c_in=64, c_out=192, in_h=56, in_w=56, kernel=3, padding=1),
        PoolLayer("stem_pool2", channels=192, in_h=56, in_w=56, kernel=3, stride=2, padding=1),
    ]
    layers += _inception("inc3a", 28, 192, 64, 96, 128, 16, 32, 32)
    layers += _inception("inc3b", 28, 256, 128, 128, 192, 32, 96, 64)
    layers.append(PoolLayer("pool3", channels=480, in_h=28, in_w=28, kernel=3, stride=2, padding=1))
    layers += _inception("inc4a", 14, 480, 192, 96, 208, 16, 48, 64)
    layers += _inception("inc4b", 14, 512, 160, 112, 224, 24, 64, 64)
    layers += _inception("inc4c", 14, 512, 128, 128, 256, 24, 64, 64)
    layers += _inception("inc4d", 14, 512, 112, 144, 288, 32, 64, 64)
    layers += _inception("inc4e", 14, 528, 256, 160, 320, 32, 128, 128)
    layers.append(PoolLayer("pool4", channels=832, in_h=14, in_w=14, kernel=3, stride=2, padding=1))
    layers += _inception("inc5a", 7, 832, 256, 160, 320, 32, 128, 128)
    layers += _inception("inc5b", 7, 832, 384, 192, 384, 48, 128, 128)
    layers += [
        PoolLayer("avgpool", channels=1024, in_h=7, in_w=7, kernel=7, stride=1),
        DenseLayer("fc", in_features=1024, out_features=1000),
    ]
    return NetworkModel("googlenet", layers, input_elements=3 * 224 * 224, output_elements=1000)


def _bottleneck(prefix: str, size: int, c_in: int, width: int, stride: int) -> List[LayerBase]:
    """ResNet-50 bottleneck: 1x1 width, 3x3 width (stride), 1x1 4*width,
    plus the residual add. A projection conv is added when shapes change."""
    out_size = size // stride
    c_out = width * 4
    layers: List[LayerBase] = [
        ConvLayer(f"{prefix}_1x1a", c_in=c_in, c_out=width, in_h=size, in_w=size, kernel=1),
        ConvLayer(f"{prefix}_3x3", c_in=width, c_out=width, in_h=size, in_w=size, kernel=3,
                  stride=stride, padding=1),
        ConvLayer(f"{prefix}_1x1b", c_in=width, c_out=c_out, in_h=out_size, in_w=out_size, kernel=1),
    ]
    if stride != 1 or c_in != c_out:
        layers.append(
            ConvLayer(f"{prefix}_proj", c_in=c_in, c_out=c_out, in_h=size, in_w=size,
                      kernel=1, stride=stride)
        )
    layers.append(
        ElementwiseLayer(f"{prefix}_add", elements=c_out * out_size * out_size, operands=2)
    )
    return layers


def build_resnet50() -> NetworkModel:
    """ResNet-50 ([3, 4, 6, 3] bottleneck stages)."""
    layers: List[LayerBase] = [
        ConvLayer("stem_conv", c_in=3, c_out=64, in_h=224, in_w=224, kernel=7, stride=2, padding=3),
        PoolLayer("stem_pool", channels=64, in_h=112, in_w=112, kernel=3, stride=2, padding=1),
    ]
    spec = [(64, 3, 56), (128, 4, 28), (256, 6, 14), (512, 3, 7)]
    c_in = 64
    size = 56
    for stage_idx, (width, blocks, out_size) in enumerate(spec):
        for block in range(blocks):
            stride = 2 if (block == 0 and stage_idx > 0) else 1
            layers += _bottleneck(f"s{stage_idx + 1}b{block + 1}", size, c_in, width, stride)
            c_in = width * 4
            size = size // stride
        assert size == out_size, f"stage {stage_idx}: {size} != {out_size}"
    layers += [
        PoolLayer("avgpool", channels=2048, in_h=7, in_w=7, kernel=7, stride=1),
        DenseLayer("fc", in_features=2048, out_features=1000),
    ]
    return NetworkModel("resnet50", layers, input_elements=3 * 224 * 224, output_elements=1000)


def build_mobilenet() -> NetworkModel:
    """MobileNetV1 (1.0x, 224). Depthwise-separable blocks with the
    published (channels, stride) schedule."""
    layers: List[LayerBase] = [
        ConvLayer("stem", c_in=3, c_out=32, in_h=224, in_w=224, kernel=3, stride=2, padding=1),
    ]
    # (in_channels, out_channels, stride, input size)
    schedule = [
        (32, 64, 1, 112),
        (64, 128, 2, 112),
        (128, 128, 1, 56),
        (128, 256, 2, 56),
        (256, 256, 1, 28),
        (256, 512, 2, 28),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 512, 1, 14),
        (512, 1024, 2, 14),
        (1024, 1024, 1, 7),
    ]
    for i, (c_in, c_out, stride, size) in enumerate(schedule):
        out_size = size // stride
        layers.append(
            DepthwiseConvLayer(f"dw{i + 1}", channels=c_in, in_h=size, in_w=size,
                               kernel=3, stride=stride, padding=1)
        )
        layers.append(
            ConvLayer(f"pw{i + 1}", c_in=c_in, c_out=c_out, in_h=out_size, in_w=out_size, kernel=1)
        )
    layers += [
        PoolLayer("avgpool", channels=1024, in_h=7, in_w=7, kernel=7, stride=1),
        DenseLayer("fc", in_features=1024, out_features=1000),
    ]
    return NetworkModel("mobilenet", layers, input_elements=3 * 224 * 224, output_elements=1000)


# ---------------------------------------------------------------------------
# Transformer builders
# ---------------------------------------------------------------------------


def _transformer_encoder(prefix: str, seq: int, d_model: int, heads: int,
                         d_ff: int) -> List[LayerBase]:
    """One encoder layer: QKV, attention (per-head score + context
    matmuls), output projection, 2-layer MLP, norms and residuals."""
    d_head = d_model // heads
    return [
        DenseLayer(f"{prefix}_qkv", in_features=d_model, out_features=3 * d_model, seq=seq),
        MatmulLayer(f"{prefix}_scores", m=seq, k=d_head, n=seq, count=heads),
        ElementwiseLayer(f"{prefix}_softmax", elements=heads * seq * seq),
        MatmulLayer(f"{prefix}_context", m=seq, k=seq, n=d_head, count=heads),
        DenseLayer(f"{prefix}_proj", in_features=d_model, out_features=d_model, seq=seq),
        ElementwiseLayer(f"{prefix}_norm1", elements=seq * d_model, operands=2),
        DenseLayer(f"{prefix}_ff1", in_features=d_model, out_features=d_ff, seq=seq),
        DenseLayer(f"{prefix}_ff2", in_features=d_ff, out_features=d_model, seq=seq),
        ElementwiseLayer(f"{prefix}_norm2", elements=seq * d_model, operands=2),
    ]


def build_vit_base() -> NetworkModel:
    """ViT-Base/16: 224x224 image -> 196 patches + CLS (seq 197), 12
    encoder layers, d=768, 12 heads, MLP 3072."""
    seq, d_model, heads, d_ff = 197, 768, 12, 3072
    layers: List[LayerBase] = [
        # patch embedding = 16x16 stride-16 conv, 3->768
        ConvLayer("patch_embed", c_in=3, c_out=768, in_h=224, in_w=224, kernel=16, stride=16),
    ]
    for i in range(12):
        layers += _transformer_encoder(f"enc{i + 1}", seq, d_model, heads, d_ff)
    layers.append(DenseLayer("head", in_features=768, out_features=1000))
    return NetworkModel("vit", layers, input_elements=3 * 224 * 224, output_elements=1000,
                        family="transformer")


def build_bert_base() -> NetworkModel:
    """BERT-Base pretraining: seq 512, 12 layers, d=768, vocab 30522.
    Includes the embedding gather and the MLM output projection (tied
    weights; we count the GEMM, not extra parameters)."""
    seq, d_model, heads, d_ff, vocab = 512, 768, 12, 3072, 30522
    layers: List[LayerBase] = [
        EmbeddingLayer("embed", rows=vocab, dim=d_model, lookups_per_sample=seq),
    ]
    for i in range(12):
        layers += _transformer_encoder(f"enc{i + 1}", seq, d_model, heads, d_ff)
    layers.append(DenseLayer("mlm_head", in_features=d_model, out_features=vocab, seq=seq))
    return NetworkModel("bert", layers, input_elements=seq, output_elements=seq * vocab,
                        family="transformer")


# ---------------------------------------------------------------------------
# Recommendation / speech
# ---------------------------------------------------------------------------


def build_dlrm() -> NetworkModel:
    """DLRM (MLPerf-style): 26 categorical features with 128-dim embedding
    tables, bottom MLP 13-512-256-128, pairwise interactions, top MLP
    479-1024-1024-512-256-1. Embedding-gather dominated — the paper
    includes it as the memory-bound extreme."""
    emb_dim = 128
    num_tables = 26
    layers: List[LayerBase] = []
    for t in range(num_tables):
        # production tables are huge; 1M rows each keeps the gather
        # behaviour (random single-row reads) without absurd footprints
        layers.append(EmbeddingLayer(f"emb{t}", rows=1_000_000, dim=emb_dim, lookups_per_sample=1))
    for i, (fin, fout) in enumerate([(13, 512), (512, 256), (256, 128)]):
        layers.append(DenseLayer(f"bot_mlp{i + 1}", in_features=fin, out_features=fout))
    # pairwise dot interactions of 27 vectors (26 tables + bottom output)
    layers.append(ElementwiseLayer("interact", elements=27 * 27 // 2))
    for i, (fin, fout) in enumerate(
        [(479, 1024), (1024, 1024), (1024, 512), (512, 256), (256, 1)]
    ):
        layers.append(DenseLayer(f"top_mlp{i + 1}", in_features=fin, out_features=fout))
    return NetworkModel("dlrm", layers, input_elements=13 + num_tables, output_elements=1,
                        family="recommendation")


def build_wav2vec2() -> NetworkModel:
    """wav2vec2-Base on 1 s of 16 kHz audio: 7-layer temporal conv feature
    encoder (512 ch) then 12 transformer layers (d=768) over ~49 frames."""
    layers: List[LayerBase] = []
    # (kernel, stride) schedule of the published feature encoder
    schedule = [(10, 5), (3, 2), (3, 2), (3, 2), (3, 2), (2, 2), (2, 2)]
    length = 16000
    c_in = 1
    for i, (kernel, stride) in enumerate(schedule):
        layer = Conv1DLayer(f"feat{i + 1}", c_in=c_in, c_out=512, length=length,
                            kernel=kernel, stride=stride, padding=0)
        layers.append(layer)
        c_in = 512
        length = layer.out_length
    seq = length  # ~49
    layers.append(DenseLayer("feat_proj", in_features=512, out_features=768, seq=seq))
    for i in range(12):
        layers += _transformer_encoder(f"enc{i + 1}", seq, 768, 12, 3072)
    return NetworkModel("wav2vec2", layers, input_elements=16000, output_elements=seq * 768,
                        family="speech")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

MODEL_ZOO: Dict[str, Callable[[], NetworkModel]] = {
    "alexnet": build_alexnet,
    "vgg16": build_vgg16,
    "googlenet": build_googlenet,
    "resnet50": build_resnet50,
    "mobilenet": build_mobilenet,
    "vit": build_vit_base,
    "bert": build_bert_base,
    "dlrm": build_dlrm,
    "wav2vec2": build_wav2vec2,
}

#: aliases used by the paper's tables/figures
ALIASES = {
    "vgg": "vgg16",
    "resnet": "resnet50",
    "alexnet": "alexnet",
    "wave2vec2": "wav2vec2",
}


def list_models() -> List[str]:
    return sorted(MODEL_ZOO)


def build_model(name: str) -> NetworkModel:
    """Build a network by name (paper aliases accepted)."""
    key = name.lower()
    key = ALIASES.get(key, key)
    if key not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}; known: {', '.join(list_models())}")
    return MODEL_ZOO[key]()
