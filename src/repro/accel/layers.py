"""Layer descriptions that reduce to GEMM workloads.

DNN accelerators execute essentially GEMMs ("the DNN operations can be
boiled down to scalar, vector, matrix additions and multiplications and a
limited number of non-linear functions", Section II-B). Every layer type
here knows how to express itself as one or more :class:`GemmShape`
workloads (convolution via im2col) plus its tensor footprints, which is
all the systolic-array timing model and the memory-protection schemes
need.

Shapes use batch ``n``; counts are per *batch* (multiply by images for
throughput).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class GemmShape:
    """An M x K by K x N matrix multiply (C[M,N] += A[M,K] @ B[K,N]).

    ``m`` indexes output pixels / sequence positions, ``n`` output
    channels, ``k`` the reduction dimension.
    """

    m: int
    k: int
    n: int

    def __post_init__(self):
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError("GEMM dimensions must be positive")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n

    def operand_elements(self):
        """(A elements, B elements, C elements)."""
        return self.m * self.k, self.k * self.n, self.m * self.n


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


@dataclass(frozen=True)
class LayerBase:
    """Common layer fields. ``name`` must be unique within a network."""

    name: str

    # --- interface every concrete layer implements ---

    def gemms(self, batch: int = 1) -> List[GemmShape]:
        raise NotImplementedError

    def macs(self, batch: int = 1) -> int:
        return sum(g.macs for g in self.gemms(batch))

    def input_elements(self, batch: int = 1) -> int:
        raise NotImplementedError

    def output_elements(self, batch: int = 1) -> int:
        raise NotImplementedError

    def weight_elements(self) -> int:
        raise NotImplementedError

    @property
    def has_weights(self) -> bool:
        return self.weight_elements() > 0


@dataclass(frozen=True)
class ConvLayer(LayerBase):
    """2-D convolution, NCHW. im2col GEMM: M = out_h*out_w, K = c_in/groups
    * kh * kw, N = c_out/groups, one GEMM per group (groups>1 models
    grouped conv, e.g. AlexNet's two towers)."""

    c_in: int = 1
    c_out: int = 1
    in_h: int = 1
    in_w: int = 1
    kernel: int = 1
    stride: int = 1
    padding: int = 0
    groups: int = 1

    def __post_init__(self):
        if self.c_in % self.groups or self.c_out % self.groups:
            raise ValueError(f"{self.name}: channels not divisible by groups")

    @property
    def out_h(self) -> int:
        return _conv_out(self.in_h, self.kernel, self.stride, self.padding)

    @property
    def out_w(self) -> int:
        return _conv_out(self.in_w, self.kernel, self.stride, self.padding)

    def gemms(self, batch: int = 1) -> List[GemmShape]:
        m = batch * self.out_h * self.out_w
        k = (self.c_in // self.groups) * self.kernel * self.kernel
        n = self.c_out // self.groups
        return [GemmShape(m, k, n)] * self.groups

    def input_elements(self, batch: int = 1) -> int:
        return batch * self.c_in * self.in_h * self.in_w

    def output_elements(self, batch: int = 1) -> int:
        return batch * self.c_out * self.out_h * self.out_w

    def weight_elements(self) -> int:
        return (self.c_in // self.groups) * self.c_out * self.kernel * self.kernel


@dataclass(frozen=True)
class Conv1DLayer(LayerBase):
    """1-D temporal convolution (wav2vec2 feature encoder). im2col GEMM:
    M = output frames, K = c_in * kernel, N = c_out."""

    c_in: int = 1
    c_out: int = 1
    length: int = 1
    kernel: int = 1
    stride: int = 1
    padding: int = 0

    @property
    def out_length(self) -> int:
        return _conv_out(self.length, self.kernel, self.stride, self.padding)

    def gemms(self, batch: int = 1) -> List[GemmShape]:
        return [GemmShape(batch * self.out_length, self.c_in * self.kernel, self.c_out)]

    def input_elements(self, batch: int = 1) -> int:
        return batch * self.c_in * self.length

    def output_elements(self, batch: int = 1) -> int:
        return batch * self.c_out * self.out_length

    def weight_elements(self) -> int:
        return self.c_in * self.c_out * self.kernel


@dataclass(frozen=True)
class DepthwiseConvLayer(LayerBase):
    """Depthwise conv (MobileNet): one small GEMM per channel; the array
    maps it poorly, which is exactly why MobileNet behaves differently in
    the evaluation (memory-bound, low PE utilization)."""

    channels: int = 1
    in_h: int = 1
    in_w: int = 1
    kernel: int = 3
    stride: int = 1
    padding: int = 1

    @property
    def out_h(self) -> int:
        return _conv_out(self.in_h, self.kernel, self.stride, self.padding)

    @property
    def out_w(self) -> int:
        return _conv_out(self.in_w, self.kernel, self.stride, self.padding)

    def gemms(self, batch: int = 1) -> List[GemmShape]:
        # Per channel: M = out pixels, K = kh*kw, N = 1. Grouped into one
        # shape with n=channels but k only kernel^2 — the systolic model
        # treats the reduction correctly via the K dimension.
        m = batch * self.out_h * self.out_w
        return [GemmShape(m, self.kernel * self.kernel, 1)] * self.channels

    def input_elements(self, batch: int = 1) -> int:
        return batch * self.channels * self.in_h * self.in_w

    def output_elements(self, batch: int = 1) -> int:
        return batch * self.channels * self.out_h * self.out_w

    def weight_elements(self) -> int:
        return self.channels * self.kernel * self.kernel


@dataclass(frozen=True)
class DenseLayer(LayerBase):
    """Fully-connected / linear / projection: GEMM with M = batch * seq."""

    in_features: int = 1
    out_features: int = 1
    seq: int = 1  # sequence length multiplier (transformers)

    def gemms(self, batch: int = 1) -> List[GemmShape]:
        return [GemmShape(batch * self.seq, self.in_features, self.out_features)]

    def input_elements(self, batch: int = 1) -> int:
        return batch * self.seq * self.in_features

    def output_elements(self, batch: int = 1) -> int:
        return batch * self.seq * self.out_features

    def weight_elements(self) -> int:
        return self.in_features * self.out_features


@dataclass(frozen=True)
class MatmulLayer(LayerBase):
    """Activation x activation matmul (attention scores / context) — has
    no weights; both operands are features. ``count`` repeats the GEMM
    (e.g. one per attention head)."""

    m: int = 1
    k: int = 1
    n: int = 1
    count: int = 1

    def gemms(self, batch: int = 1) -> List[GemmShape]:
        return [GemmShape(batch * self.m, self.k, self.n)] * self.count

    def input_elements(self, batch: int = 1) -> int:
        return batch * self.count * (self.m * self.k + self.k * self.n)

    def output_elements(self, batch: int = 1) -> int:
        return batch * self.count * self.m * self.n

    def weight_elements(self) -> int:
        return 0


@dataclass(frozen=True)
class PoolLayer(LayerBase):
    """Pooling / downsampling: no MACs on the PE array (handled by the
    vector unit), but it moves features."""

    channels: int = 1
    in_h: int = 1
    in_w: int = 1
    kernel: int = 2
    stride: int = 2
    padding: int = 0

    @property
    def out_h(self) -> int:
        return _conv_out(self.in_h, self.kernel, self.stride, self.padding)

    @property
    def out_w(self) -> int:
        return _conv_out(self.in_w, self.kernel, self.stride, self.padding)

    def gemms(self, batch: int = 1) -> List[GemmShape]:
        return []

    def input_elements(self, batch: int = 1) -> int:
        return batch * self.channels * self.in_h * self.in_w

    def output_elements(self, batch: int = 1) -> int:
        return batch * self.channels * self.out_h * self.out_w

    def weight_elements(self) -> int:
        return 0


@dataclass(frozen=True)
class EmbeddingLayer(LayerBase):
    """Embedding table gather (DLRM / BERT token embeddings): pure memory
    traffic, essentially zero MACs. ``lookups_per_sample`` rows of
    ``dim`` elements are gathered from a table of ``rows`` rows."""

    rows: int = 1
    dim: int = 1
    lookups_per_sample: int = 1

    def gemms(self, batch: int = 1) -> List[GemmShape]:
        return []

    def input_elements(self, batch: int = 1) -> int:
        # the gathered rows are the "input" the layer reads
        return batch * self.lookups_per_sample * self.dim

    def output_elements(self, batch: int = 1) -> int:
        return batch * self.lookups_per_sample * self.dim

    def weight_elements(self) -> int:
        # the table is the layer's parameter store
        return self.rows * self.dim


@dataclass(frozen=True)
class ElementwiseLayer(LayerBase):
    """Vector ops: residual adds, layernorm, activations, softmax. Small
    compute (vector unit), real feature traffic. ``operands`` counts how
    many same-sized inputs are read."""

    elements: int = 1
    operands: int = 1

    def gemms(self, batch: int = 1) -> List[GemmShape]:
        return []

    def input_elements(self, batch: int = 1) -> int:
        return batch * self.elements * self.operands

    def output_elements(self, batch: int = 1) -> int:
        return batch * self.elements

    def weight_elements(self) -> int:
        return 0
