"""Analytical systolic-array timing (SCALE-Sim style).

Models an ``rows x cols`` MAC array executing a GEMM under one of the
three classic dataflows. Like SCALE-Sim's analytical mode, the model
charges, per *fold* (one stationary tile's residency), the streaming
cycles plus the pipeline fill/drain skew, and multiplies by the number of
folds needed to cover the full GEMM. This captures the two effects that
matter for the paper's evaluation:

* large GEMMs run near 100% utilization (compute-bound networks like VGG),
* small/skinny GEMMs waste the array (MobileNet depthwise, attention
  heads), shifting those networks toward memory-boundedness.

The paper's ASIC configuration is TPU-v1-like: a 256x256 array (64k PEs)
at 700 MHz (Section III-A).
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List

from repro import perf
from repro.accel.layers import GemmShape


class Dataflow(Enum):
    """Which operand stays resident in the PEs."""

    WEIGHT_STATIONARY = "ws"  # TPU-v1 style
    OUTPUT_STATIONARY = "os"
    INPUT_STATIONARY = "is"


@dataclass(frozen=True)
class FoldTiming:
    """Cycle cost of one GEMM on the array."""

    cycles: int
    folds: int
    utilization: float  # MACs / (PEs * cycles), in [0, 1]


class SystolicArray:
    """Analytical timing for one systolic array."""

    def __init__(self, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def gemm_cycles(self, gemm: GemmShape, dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY) -> FoldTiming:
        """Cycles for one GEMM (memoized over (array, shape, dataflow)
        on the fast path — a sweep re-times the same shapes under every
        scheme, and networks repeat block shapes internally)."""
        if perf.fast_enabled():
            return _cached_gemm_cycles(self.rows, self.cols, gemm, dataflow)
        return self._compute_gemm_cycles(gemm, dataflow)

    def _compute_gemm_cycles(self, gemm: GemmShape,
                             dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY) -> FoldTiming:
        """Cycles for one GEMM.

        Weight-stationary (TPU-v1): a rows x cols weight tile maps K-dim
        to rows and N-dim to cols; activations stream M values through.
        Folds = ceil(K/rows) * ceil(N/cols). Consecutive folds are
        double-buffered (weights preload while the previous fold streams),
        so the array skew ``rows + cols - 2`` is charged once per GEMM,
        not per fold — this is how pipelined designs sustain near-peak
        utilization on large conv layers.

        Skinny GEMMs (M much smaller than the array, i.e. batch-1 FC /
        matrix-vector) fall back to an output-parallel mapping where
        every PE accumulates an independent output over K — the way
        CHaiDNN and vector engines execute FC layers. Without this,
        batch-1 FCs would waste the whole array streaming a single row.

        Output-stationary: M x N outputs pinned to the array, K streams:
        folds = ceil(M/rows)*ceil(N/cols), K cycles per fold.
        Input-stationary: K to rows, M to cols; N streams per fold.
        """
        m, k, n = gemm.m, gemm.k, gemm.n
        skew = self.rows + self.cols - 2
        if dataflow is Dataflow.WEIGHT_STATIONARY:
            if 2 * m <= self.rows:
                # matrix-vector regime: flatten the array over (K, N)
                folds = math.ceil(m * k * n / self.num_pes)
                cycles = folds + skew
            else:
                folds = math.ceil(k / self.rows) * math.ceil(n / self.cols)
                cycles = folds * m + skew
        elif dataflow is Dataflow.OUTPUT_STATIONARY:
            folds = math.ceil(m / self.rows) * math.ceil(n / self.cols)
            cycles = folds * k + skew
        else:
            folds = math.ceil(k / self.rows) * math.ceil(m / self.cols)
            cycles = folds * n + skew
        utilization = gemm.macs / (self.num_pes * cycles) if cycles else 0.0
        return FoldTiming(cycles=cycles, folds=folds, utilization=min(1.0, utilization))

    def gemm_list_cycles(self, gemms: Iterable[GemmShape],
                         dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY) -> FoldTiming:
        """Total cycles for a list of GEMMs, grouping identical shapes
        (depthwise conv produces hundreds of identical tiny GEMMs).

        Identical small GEMMs that each underfill the array are packed:
        ``cols_used = n``; up to ``cols // n`` of them could share the
        array in the N dimension if the hardware supports multi-tenancy.
        We model the conservative TPU-like case (no packing across
        GEMMs) — this is what makes depthwise layers slow on big arrays,
        matching MobileNet's known behaviour on TPU-class hardware.
        """
        total_cycles = 0
        total_folds = 0
        total_macs = 0
        groups = {}
        for g in gemms:
            groups[g] = groups.get(g, 0) + 1
        for gemm, count in groups.items():
            timing = self.gemm_cycles(gemm, dataflow)
            total_cycles += timing.cycles * count
            total_folds += timing.folds * count
            total_macs += gemm.macs * count
        utilization = (
            total_macs / (self.num_pes * total_cycles) if total_cycles else 0.0
        )
        return FoldTiming(cycles=total_cycles, folds=total_folds, utilization=min(1.0, utilization))


@functools.lru_cache(maxsize=65536)
def _cached_gemm_cycles(rows: int, cols: int, gemm: GemmShape,
                        dataflow: Dataflow) -> FoldTiming:
    return SystolicArray(rows, cols)._compute_gemm_cycles(gemm, dataflow)


perf.register_cache(_cached_gemm_cycles.cache_clear)
