"""Extended model zoo: parameterized families beyond the paper's nine.

Section III-A motivates cycle-level simulation partly to "study the
overhead for a larger class of DNN models". These builders generalize
the zoo so experiments can sweep depth/width/sequence-length and check
that GuardNN's advantage is not an artifact of the nine headline
networks:

* ResNet-18/34/101/152 (basic and bottleneck blocks),
* VGG-11/13/19,
* MobileNetV1 width multipliers (0.25x-1.0x),
* ViT-Small/Base/Large,
* BERT with arbitrary depth/width/sequence length,
* wav2vec2 over arbitrary audio durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.accel.layers import (
    Conv1DLayer,
    ConvLayer,
    DenseLayer,
    DepthwiseConvLayer,
    ElementwiseLayer,
    EmbeddingLayer,
    LayerBase,
    PoolLayer,
)
from repro.accel.models import (
    NetworkModel,
    _bottleneck,
    _inception,
    _transformer_encoder,
    _vgg_block,
)


def _basic_block(prefix: str, size: int, c_in: int, width: int, stride: int) -> List[LayerBase]:
    """ResNet basic block (two 3x3 convs) for ResNet-18/34."""
    out_size = size // stride
    layers: List[LayerBase] = [
        ConvLayer(f"{prefix}_3x3a", c_in=c_in, c_out=width, in_h=size, in_w=size,
                  kernel=3, stride=stride, padding=1),
        ConvLayer(f"{prefix}_3x3b", c_in=width, c_out=width, in_h=out_size,
                  in_w=out_size, kernel=3, stride=1, padding=1),
    ]
    if stride != 1 or c_in != width:
        layers.append(ConvLayer(f"{prefix}_proj", c_in=c_in, c_out=width, in_h=size,
                                in_w=size, kernel=1, stride=stride))
    layers.append(ElementwiseLayer(f"{prefix}_add", elements=width * out_size * out_size,
                                   operands=2))
    return layers


_RESNET_SPECS: Dict[int, tuple] = {
    # depth: (block builder, stage block counts, uses bottleneck)
    18: ([2, 2, 2, 2], False),
    34: ([3, 4, 6, 3], False),
    50: ([3, 4, 6, 3], True),
    101: ([3, 4, 23, 3], True),
    152: ([3, 8, 36, 3], True),
}


def build_resnet(depth: int = 50) -> NetworkModel:
    """Any standard ResNet depth."""
    if depth not in _RESNET_SPECS:
        raise KeyError(f"unsupported ResNet depth {depth}; known: {sorted(_RESNET_SPECS)}")
    blocks_per_stage, bottleneck = _RESNET_SPECS[depth]
    layers: List[LayerBase] = [
        ConvLayer("stem_conv", c_in=3, c_out=64, in_h=224, in_w=224, kernel=7,
                  stride=2, padding=3),
        PoolLayer("stem_pool", channels=64, in_h=112, in_w=112, kernel=3, stride=2,
                  padding=1),
    ]
    widths = [64, 128, 256, 512]
    c_in = 64
    size = 56
    for stage, (width, blocks) in enumerate(zip(widths, blocks_per_stage)):
        for block in range(blocks):
            stride = 2 if (block == 0 and stage > 0) else 1
            prefix = f"s{stage + 1}b{block + 1}"
            if bottleneck:
                layers += _bottleneck(prefix, size, c_in, width, stride)
                c_in = width * 4
            else:
                layers += _basic_block(prefix, size, c_in, width, stride)
                c_in = width
            size //= stride
    final_c = widths[-1] * (4 if bottleneck else 1)
    layers += [
        PoolLayer("avgpool", channels=final_c, in_h=7, in_w=7, kernel=7, stride=1),
        DenseLayer("fc", in_features=final_c, out_features=1000),
    ]
    return NetworkModel(f"resnet{depth}", layers, input_elements=3 * 224 * 224,
                        output_elements=1000)


_VGG_CONV_COUNTS = {11: [1, 1, 2, 2, 2], 13: [2, 2, 2, 2, 2],
                    16: [2, 2, 3, 3, 3], 19: [2, 2, 4, 4, 4]}


def build_vgg(depth: int = 16) -> NetworkModel:
    """VGG-11/13/16/19 (configurations A/B/D/E)."""
    if depth not in _VGG_CONV_COUNTS:
        raise KeyError(f"unsupported VGG depth {depth}")
    counts = _VGG_CONV_COUNTS[depth]
    channels = [64, 128, 256, 512, 512]
    sizes = [224, 112, 56, 28, 14]
    layers: List[LayerBase] = []
    c_in = 3
    for i, (c_out, size, convs) in enumerate(zip(channels, sizes, counts)):
        layers += _vgg_block(f"b{i + 1}", c_in, c_out, size, convs)
        c_in = c_out
    layers += [
        DenseLayer("fc6", in_features=512 * 7 * 7, out_features=4096),
        DenseLayer("fc7", in_features=4096, out_features=4096),
        DenseLayer("fc8", in_features=4096, out_features=1000),
    ]
    return NetworkModel(f"vgg{depth}", layers, input_elements=3 * 224 * 224,
                        output_elements=1000)


def build_mobilenet_width(multiplier: float = 1.0) -> NetworkModel:
    """MobileNetV1 with a width multiplier (0.25 / 0.5 / 0.75 / 1.0)."""
    if not 0.1 <= multiplier <= 1.0:
        raise ValueError("width multiplier must be in [0.1, 1.0]")

    def c(channels: int) -> int:
        return max(8, int(channels * multiplier))

    layers: List[LayerBase] = [
        ConvLayer("stem", c_in=3, c_out=c(32), in_h=224, in_w=224, kernel=3,
                  stride=2, padding=1),
    ]
    schedule = [
        (32, 64, 1, 112), (64, 128, 2, 112), (128, 128, 1, 56), (128, 256, 2, 56),
        (256, 256, 1, 28), (256, 512, 2, 28), (512, 512, 1, 14), (512, 512, 1, 14),
        (512, 512, 1, 14), (512, 512, 1, 14), (512, 512, 1, 14), (512, 1024, 2, 14),
        (1024, 1024, 1, 7),
    ]
    for i, (cin, cout, stride, size) in enumerate(schedule):
        out_size = size // stride
        layers.append(DepthwiseConvLayer(f"dw{i + 1}", channels=c(cin), in_h=size,
                                         in_w=size, kernel=3, stride=stride, padding=1))
        layers.append(ConvLayer(f"pw{i + 1}", c_in=c(cin), c_out=c(cout),
                                in_h=out_size, in_w=out_size, kernel=1))
    layers += [
        PoolLayer("avgpool", channels=c(1024), in_h=7, in_w=7, kernel=7, stride=1),
        DenseLayer("fc", in_features=c(1024), out_features=1000),
    ]
    name = f"mobilenet-{multiplier:g}x"
    return NetworkModel(name, layers, input_elements=3 * 224 * 224, output_elements=1000)


_VIT_SPECS = {
    "small": (384, 6, 6, 1536),
    "base": (768, 12, 12, 3072),
    "large": (1024, 24, 16, 4096),
}


def build_vit(variant: str = "base", image: int = 224, patch: int = 16) -> NetworkModel:
    """ViT-Small/Base/Large at any square image/patch size."""
    if variant not in _VIT_SPECS:
        raise KeyError(f"unsupported ViT variant {variant!r}")
    d_model, depth, heads, d_ff = _VIT_SPECS[variant]
    if image % patch:
        raise ValueError("image size must be a multiple of the patch size")
    seq = (image // patch) ** 2 + 1
    layers: List[LayerBase] = [
        ConvLayer("patch_embed", c_in=3, c_out=d_model, in_h=image, in_w=image,
                  kernel=patch, stride=patch),
    ]
    for i in range(depth):
        layers += _transformer_encoder(f"enc{i + 1}", seq, d_model, heads, d_ff)
    layers.append(DenseLayer("head", in_features=d_model, out_features=1000))
    return NetworkModel(f"vit-{variant}", layers, input_elements=3 * image * image,
                        output_elements=1000, family="transformer")


def build_bert_custom(seq: int = 512, d_model: int = 768, depth: int = 12,
                      heads: int = 12, vocab: int = 30522) -> NetworkModel:
    """BERT with arbitrary geometry (BERT-Large = 1024/24/16)."""
    from repro.accel.layers import EmbeddingLayer

    layers: List[LayerBase] = [
        EmbeddingLayer("embed", rows=vocab, dim=d_model, lookups_per_sample=seq),
    ]
    for i in range(depth):
        layers += _transformer_encoder(f"enc{i + 1}", seq, d_model, heads, 4 * d_model)
    layers.append(DenseLayer("mlm_head", in_features=d_model, out_features=vocab, seq=seq))
    name = f"bert-{depth}L-{d_model}d-{seq}s"
    return NetworkModel(name, layers, input_elements=seq,
                        output_elements=seq * vocab, family="transformer")


def build_wav2vec2_duration(seconds: float = 1.0) -> NetworkModel:
    """wav2vec2-Base over ``seconds`` of 16 kHz audio."""
    if seconds <= 0:
        raise ValueError("duration must be positive")
    layers: List[LayerBase] = []
    schedule = [(10, 5), (3, 2), (3, 2), (3, 2), (3, 2), (2, 2), (2, 2)]
    length = int(16000 * seconds)
    c_in = 1
    for i, (kernel, stride) in enumerate(schedule):
        layer = Conv1DLayer(f"feat{i + 1}", c_in=c_in, c_out=512, length=length,
                            kernel=kernel, stride=stride)
        layers.append(layer)
        c_in = 512
        length = layer.out_length
    seq = length
    layers.append(DenseLayer("feat_proj", in_features=512, out_features=768, seq=seq))
    for i in range(12):
        layers += _transformer_encoder(f"enc{i + 1}", seq, 768, 12, 3072)
    return NetworkModel(f"wav2vec2-{seconds:g}s", layers,
                        input_elements=int(16000 * seconds),
                        output_elements=seq * 768, family="speech")


@dataclass(frozen=True)
class LlmGeometry:
    """Decoder-only transformer geometry — shared between the analytic
    model builders below and the streaming decode-trace generator in
    :mod:`repro.workloads.llm` (one definition per model, two views)."""

    name: str
    d_model: int
    layers: int
    heads: int
    d_ff: int
    vocab: int
    max_seq: int


#: LLM-scale decoder families: the class of model whose traces motivate
#: the streaming pipeline (materializing one GPT-2-XL decode trace costs
#: gigabytes of request objects)
LLM_GEOMETRIES: Dict[str, LlmGeometry] = {
    "gpt2": LlmGeometry("gpt2", d_model=768, layers=12, heads=12, d_ff=3072,
                        vocab=50257, max_seq=1024),
    "gpt2-xl": LlmGeometry("gpt2-xl", d_model=1600, layers=48, heads=25,
                           d_ff=6400, vocab=50257, max_seq=1024),
    "llama-7b": LlmGeometry("llama-7b", d_model=4096, layers=32, heads=32,
                            d_ff=11008, vocab=32000, max_seq=2048),
}


def llm_geometry(name: str) -> LlmGeometry:
    if name not in LLM_GEOMETRIES:
        raise KeyError(f"unknown LLM geometry {name!r}; known: {sorted(LLM_GEOMETRIES)}")
    return LLM_GEOMETRIES[name]


def build_decoder_lm(name: str, seq: int = None) -> NetworkModel:
    """GPT-2/LLaMA-class decoder-only LM as an analytic network model:
    token-embedding gather, ``layers`` decoder blocks (attention + MLP;
    the encoder builder's traffic shape matches a causal decoder's),
    and the tied LM head over the full vocabulary."""
    g = llm_geometry(name)
    seq = g.max_seq if seq is None else seq
    if not 1 <= seq <= g.max_seq:
        raise ValueError(f"seq must be in [1, {g.max_seq}] for {name}")
    layers: List[LayerBase] = [
        EmbeddingLayer("embed", rows=g.vocab, dim=g.d_model, lookups_per_sample=seq),
    ]
    for i in range(g.layers):
        layers += _transformer_encoder(f"dec{i + 1}", seq, g.d_model, g.heads, g.d_ff)
    layers.append(DenseLayer("lm_head", in_features=g.d_model, out_features=g.vocab,
                             seq=seq))
    return NetworkModel(f"{name}-{seq}s", layers, input_elements=seq,
                        output_elements=seq * g.vocab, family="transformer")


EXTENDED_ZOO = {
    "resnet18": lambda: build_resnet(18),
    "resnet34": lambda: build_resnet(34),
    "resnet101": lambda: build_resnet(101),
    "resnet152": lambda: build_resnet(152),
    "vgg11": lambda: build_vgg(11),
    "vgg13": lambda: build_vgg(13),
    "vgg19": lambda: build_vgg(19),
    "mobilenet-0.25x": lambda: build_mobilenet_width(0.25),
    "mobilenet-0.5x": lambda: build_mobilenet_width(0.5),
    "vit-small": lambda: build_vit("small"),
    "vit-large": lambda: build_vit("large"),
    "bert-large": lambda: build_bert_custom(d_model=1024, depth=24, heads=16),
    "wav2vec2-10s": lambda: build_wav2vec2_duration(10.0),
    "gpt2-xl": lambda: build_decoder_lm("gpt2-xl"),
    "llama-7b": lambda: build_decoder_lm("llama-7b"),
}


def build_extended(name: str) -> NetworkModel:
    if name not in EXTENDED_ZOO:
        raise KeyError(f"unknown extended model {name!r}; known: {sorted(EXTENDED_ZOO)}")
    return EXTENDED_ZOO[name]()
