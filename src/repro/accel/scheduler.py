"""On-chip buffer tiling and per-layer DRAM traffic.

DNN accelerators stage tiles of weights/features through an on-chip
buffer. Whether a tensor must be re-fetched depends on whether the layer's
working set fits; this is what makes CHaiDNN (3 MB SRAM) memory-hungry
and the TPU-like ASIC config (24 MB) mostly fetch-once, and it determines
the *data* traffic that the protection schemes then add metadata to.

The model: for each GEMM (M,K,N), if all three operands fit on chip, each
is moved exactly once. Otherwise the output is tiled into T x T blocks
(T chosen so two operand panels and the output tile fit), and the
standard blocked-GEMM traffic applies: A is re-read ceil(N/T) times, B is
re-read ceil(M/T) times, C is written once.

This matches the paper's Section II-D premise that an accelerator
"typically reads/writes the output features of a layer from/to DRAM the
same number of times" — outputs are written once; it is *inputs* that may
be re-streamed, which is why GuardNN's read counter (CTR_F,R) is supplied
by the host rather than tracked on chip.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import List

from repro import perf
from repro.accel.layers import GemmShape, LayerBase


@dataclass
class LayerTraffic:
    """DRAM traffic of one layer execution, in bytes, split by tensor
    class. ``*_reads``/``*_writes`` count total bytes moved (including
    re-reads); ``*_size`` is the tensor footprint (for protection-scheme
    region bookkeeping)."""

    layer_name: str
    weight_reads: int = 0
    input_reads: int = 0
    output_writes: int = 0
    weight_size: int = 0
    input_size: int = 0
    output_size: int = 0
    # how many times each input/output region is streamed (>= 1); used by
    # the GuardNN counter scheme to set read counters
    input_passes: int = 1
    output_passes: int = 1

    @property
    def read_bytes(self) -> int:
        return self.weight_reads + self.input_reads

    @property
    def write_bytes(self) -> int:
        return self.output_writes

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes


class TilingScheduler:
    """Produces :class:`LayerTraffic` for each layer of a network."""

    def __init__(self, sram_bytes: int, bytes_per_element: int = 1):
        if sram_bytes <= 0:
            raise ValueError("sram_bytes must be positive")
        if bytes_per_element <= 0:
            raise ValueError("bytes_per_element must be positive")
        self.sram_bytes = sram_bytes
        self.bpe = bytes_per_element

    def _gemm_traffic(self, gemm: GemmShape):
        """Return (a_reads, b_reads, c_writes, a_passes) in elements."""
        a_elems, b_elems, c_elems = gemm.operand_elements()
        total = a_elems + b_elems + c_elems
        budget = self.sram_bytes // self.bpe
        if total <= budget:
            return a_elems, b_elems, c_elems, 1

        # Blocked GEMM with T x T output tiles: buffer holds an A panel
        # (T x K), a B panel (K x T) and the C tile (T x T).
        k = gemm.k
        # solve T^2 + 2*K*T - budget = 0 for T
        t = int((-2 * k + math.sqrt(4 * k * k + 4 * budget)) / 2)
        t = max(1, t)
        n_tiles_n = math.ceil(gemm.n / t)
        n_tiles_m = math.ceil(gemm.m / t)
        a_reads = a_elems * n_tiles_n
        b_reads = b_elems * n_tiles_m
        return a_reads, b_reads, c_elems, n_tiles_n

    def layer_traffic(self, layer: LayerBase, batch: int = 1) -> LayerTraffic:
        """Traffic for one layer. Non-GEMM layers stream input and output
        once; GEMM layers get the blocked-GEMM model.

        The tiling analysis is a pure function of (SRAM budget, element
        width, layer shape, batch), and sweeps evaluate the same layer
        under every protection scheme — so the fast path memoizes it.
        Returned objects are shared; treat them as frozen.
        """
        if perf.fast_enabled():
            return _cached_layer_traffic(self.sram_bytes, self.bpe, layer, batch)
        return self._compute_layer_traffic(layer, batch)

    def _compute_layer_traffic(self, layer: LayerBase, batch: int = 1) -> LayerTraffic:
        """The (scalar-path) tiling analysis itself."""
        traffic = LayerTraffic(
            layer_name=layer.name,
            weight_size=layer.weight_elements() * self.bpe,
            input_size=layer.input_elements(batch) * self.bpe,
            output_size=layer.output_elements(batch) * self.bpe,
        )
        gemms = layer.gemms(batch)
        if not gemms:
            traffic.input_reads = traffic.input_size
            traffic.output_writes = traffic.output_size
            return traffic

        # Distribute the layer's tensor footprints across its GEMMs
        # proportionally to the per-GEMM operand sizes (a grouped conv's
        # groups each own a slice of the tensors).
        a_total = 0
        b_total = 0
        c_total = 0
        passes = 1
        groups = {}
        for g in gemms:
            groups[g] = groups.get(g, 0) + 1
        for gemm, count in groups.items():
            a_r, b_r, c_w, a_p = self._gemm_traffic(gemm)
            a_total += a_r * count
            b_total += b_r * count
            c_total += c_w * count
            passes = max(passes, a_p)

        # A-operand re-reads apply to the layer input; B to the weights.
        # im2col replication is a modelling choice: accelerators with line
        # buffers fetch each input element roughly once, so we charge the
        # *tensor* size per pass, not the K-expanded GEMM operand.
        input_elems = layer.input_elements(batch)
        weight_elems = layer.weight_elements()
        a_gemm_elems = sum(g.operand_elements()[0] * c for g, c in groups.items())
        b_gemm_elems = sum(g.operand_elements()[1] * c for g, c in groups.items())
        a_factor = a_total / a_gemm_elems if a_gemm_elems else 1
        b_factor = b_total / b_gemm_elems if b_gemm_elems else 1

        if weight_elems:
            traffic.weight_reads = int(weight_elems * b_factor) * self.bpe
            traffic.input_reads = int(input_elems * a_factor) * self.bpe
        else:
            # activation-activation matmul: both operands are features
            traffic.input_reads = int(input_elems * max(a_factor, b_factor)) * self.bpe
        traffic.output_writes = layer.output_elements(batch) * self.bpe
        traffic.input_passes = max(1, int(round(a_factor)))
        return traffic

    def network_traffic(self, layers, batch: int = 1) -> List[LayerTraffic]:
        return [self.layer_traffic(layer, batch) for layer in layers]


@functools.lru_cache(maxsize=65536)
def _cached_layer_traffic(sram_bytes: int, bpe: int, layer: LayerBase,
                          batch: int) -> LayerTraffic:
    """Shared memo over (scheduler geometry, layer, batch); layers are
    frozen dataclasses, so identical shapes collapse to one entry."""
    return TilingScheduler(sram_bytes, bpe)._compute_layer_traffic(layer, batch)


perf.register_cache(_cached_layer_traffic.cache_clear)
