"""The combined accelerator performance model.

Couples the systolic-array compute model, the tiling scheduler's DRAM
traffic, and a memory-protection scheme into per-layer and whole-network
execution time. The overlap model is double-buffered: a layer's time is
``max(compute, memory, encryption-engine)`` — the standard assumption for
accelerators that prefetch tiles, and the reason a 35% traffic increase
(baseline protection) turns into a ~25% slowdown while GuardNN's ~2-3%
turns into ~1% (compute-bound layers absorb it).

A *protection scheme* is any object with the contract::

    scheme.name -> str
    scheme.layer_overhead(traffic: LayerTraffic, op: str, training: bool)
        -> ProtectionOverhead-like with .extra_read_bytes,
           .extra_write_bytes and .fixed_cycles
    scheme.engine -> AES engine model or None, with
        .bytes_per_cycle(accel_freq_mhz) and .pipeline_latency_cycles

(:mod:`repro.protection` provides NP / BP / GuardNN_C / GuardNN_CI.)
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import perf
from repro.accel.dfg import DataFlowGraph, build_inference_dfg, build_training_dfg
from repro.accel.layers import LayerBase
from repro.accel.models import NetworkModel
from repro.accel.scheduler import LayerTraffic, TilingScheduler
from repro.accel.systolic import Dataflow, SystolicArray
from repro.mem.trace import RequestKind


@dataclass(frozen=True)
class AcceleratorConfig:
    """Hardware parameters of one accelerator instance."""

    name: str
    pe_rows: int
    pe_cols: int
    sram_bytes: int
    freq_mhz: float
    dram_bandwidth_gbps: float  # effective (use MemoryController to calibrate)
    bytes_per_element: int = 1
    dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY
    vector_lanes: int = 256  # elementwise/pooling unit width

    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bandwidth_gbps * 1e9 / (self.freq_mhz * 1e6)

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.num_pes


#: The paper's ASIC simulation target: "GuardNN is modeled based on Google
#: TPU-v1, where it contains 64k processing elements and 24 MB on-chip
#: memory" (Section III-A); TPU-v1 runs at 700 MHz with 34 GB/s DRAM.
TPU_V1_CONFIG = AcceleratorConfig(
    name="tpu-v1-like",
    pe_rows=256,
    pe_cols=256,
    sram_bytes=24 * 1024 * 1024,
    freq_mhz=700.0,
    dram_bandwidth_gbps=34.0,
    bytes_per_element=1,
)


@dataclass(slots=True)
class LayerTiming:
    """Per-operation timing breakdown."""

    name: str
    op: str
    compute_cycles: int
    data_read_bytes: int
    data_write_bytes: int
    metadata_read_bytes: int
    metadata_write_bytes: int
    memory_cycles: int
    engine_cycles: int
    total_cycles: int
    #: metadata bytes by request kind (VN / MAC / TREE), from the scheme
    breakdown: Dict[RequestKind, int] = field(default_factory=dict)

    @property
    def data_bytes(self) -> int:
        return self.data_read_bytes + self.data_write_bytes

    @property
    def metadata_bytes(self) -> int:
        return self.metadata_read_bytes + self.metadata_write_bytes


@dataclass
class RunResult:
    """Whole-network simulation outcome."""

    network: str
    scheme: str
    config: AcceleratorConfig
    training: bool
    batch: int
    layers: List[LayerTiming] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(l.total_cycles for l in self.layers)

    @property
    def total_data_bytes(self) -> int:
        return sum(l.data_bytes for l in self.layers)

    @property
    def total_metadata_bytes(self) -> int:
        return sum(l.metadata_bytes for l in self.layers)

    @property
    def metadata_breakdown(self) -> Dict[RequestKind, int]:
        """Total metadata bytes by request kind across all layers."""
        totals: Dict[RequestKind, int] = {}
        for layer in self.layers:
            for kind, nbytes in layer.breakdown.items():
                totals[kind] = totals.get(kind, 0) + nbytes
        return totals

    @property
    def traffic_increase(self) -> float:
        """(protected traffic / data traffic) - 1, the Section III-C metric."""
        if self.total_data_bytes == 0:
            return 0.0
        return self.total_metadata_bytes / self.total_data_bytes

    @property
    def seconds(self) -> float:
        return self.total_cycles / (self.config.freq_mhz * 1e6)

    def throughput_samples_per_s(self) -> float:
        return self.batch / self.seconds if self.seconds > 0 else 0.0

    def normalized_to(self, baseline: "RunResult") -> float:
        """Execution time normalized to another run (Figure 3's y-axis)."""
        if baseline.total_cycles == 0:
            return 0.0
        return self.total_cycles / baseline.total_cycles


def _op_traffic(layer: LayerBase, op: str, scheduler: TilingScheduler, batch: int) -> LayerTraffic:
    """Traffic for one DFG operation on ``layer``."""
    forward = scheduler.layer_traffic(layer, batch)
    if op == "forward":
        return forward
    if op == "dgrad":
        # reads the output gradient (+weights), writes the input gradient
        return LayerTraffic(
            layer_name=f"{layer.name}.dgrad",
            weight_reads=forward.weight_reads,
            input_reads=forward.output_size,
            output_writes=forward.input_size,
            weight_size=forward.weight_size,
            input_size=forward.output_size,
            output_size=forward.input_size,
        )
    if op == "wgrad":
        # reads output gradient and saved input features, writes dW
        return LayerTraffic(
            layer_name=f"{layer.name}.wgrad",
            weight_reads=0,
            input_reads=forward.output_size + forward.input_size,
            output_writes=forward.weight_size,
            input_size=forward.output_size + forward.input_size,
            output_size=forward.weight_size,
        )
    if op == "update":
        # w <- w - lr * dW : stream both, write w
        return LayerTraffic(
            layer_name=f"{layer.name}.update",
            weight_reads=forward.weight_size,
            input_reads=forward.weight_size,
            output_writes=forward.weight_size,
            weight_size=forward.weight_size,
            input_size=forward.weight_size,
            output_size=forward.weight_size,
        )
    raise ValueError(f"unknown op {op!r}")


@functools.lru_cache(maxsize=65536)
def _cached_op_traffic(sram_bytes: int, bpe: int, layer: LayerBase, op: str,
                       batch: int) -> LayerTraffic:
    """Memoized :func:`_op_traffic` (returned objects are shared and
    treated as frozen, like the scheduler's memoized traffic)."""
    return _op_traffic(layer, op, TilingScheduler(sram_bytes, bpe), batch)


perf.register_cache(_cached_op_traffic.cache_clear)


def _layer_compute_cycles(array: SystolicArray, dataflow: Dataflow,
                          vector_lanes: int, layer: LayerBase, op: str,
                          batch: int) -> int:
    """Compute cycles of one DFG operation (the reference impl)."""
    gemms = layer.gemms(batch)
    if gemms:
        cycles = array.gemm_list_cycles(gemms, dataflow).cycles
        if op in ("dgrad", "wgrad"):
            # backward GEMMs have the same MAC volume as forward at
            # this granularity (transposed operands)
            return cycles
        if op == "update":
            return 0
        return cycles
    # vector-unit work for pool/elementwise/embedding/update ops
    elements = layer.output_elements(batch)
    return math.ceil(elements / vector_lanes)


@functools.lru_cache(maxsize=65536)
def _cached_compute_cycles(pe_rows: int, pe_cols: int, dataflow: Dataflow,
                           vector_lanes: int, layer: LayerBase, op: str,
                           batch: int) -> int:
    return _layer_compute_cycles(SystolicArray(pe_rows, pe_cols), dataflow,
                                 vector_lanes, layer, op, batch)


perf.register_cache(_cached_compute_cycles.cache_clear)


class AcceleratorModel:
    """Times a network (inference or one training iteration) under a
    protection scheme."""

    def __init__(self, config: AcceleratorConfig):
        self.config = config
        self.array = SystolicArray(config.pe_rows, config.pe_cols)
        self.scheduler = TilingScheduler(config.sram_bytes, config.bytes_per_element)

    def _compute_cycles(self, layer: LayerBase, op: str, batch: int) -> int:
        if perf.fast_enabled():
            # layers are frozen dataclasses: the whole per-layer timing
            # is a pure function of (array geometry, dataflow, lanes,
            # layer, op, batch), so share it across schemes and repeats
            return _cached_compute_cycles(
                self.config.pe_rows, self.config.pe_cols, self.config.dataflow,
                self.config.vector_lanes, layer, op, batch)
        return _layer_compute_cycles(self.array, self.config.dataflow,
                                     self.config.vector_lanes, layer, op, batch)

    def run(self, model: NetworkModel, scheme, training: bool = False,
            batch: int = 1) -> RunResult:
        """Simulate one inference (or one fwd+bwd+update iteration)."""
        dfg = build_training_dfg(model, batch, self.config.bytes_per_element) if training \
            else build_inference_dfg(model, batch, self.config.bytes_per_element)
        return self.run_dfg(model, dfg, scheme, batch)

    def run_dfg(self, model: NetworkModel, dfg: DataFlowGraph, scheme,
                batch: int = 1) -> RunResult:
        result = RunResult(
            network=model.name,
            scheme=scheme.name,
            config=self.config,
            training=dfg.training,
            batch=batch,
        )
        bytes_per_cycle = self.config.dram_bytes_per_cycle
        engine = getattr(scheme, "engine", None)
        engine_bpc = engine.bytes_per_cycle(self.config.freq_mhz) if engine else None
        overhead_fn = scheme.layer_overhead
        if perf.fast_enabled():
            # schemes from this package expose a memoized variant; duck
            # typing keeps third-party scheme objects on the plain call
            overhead_fn = getattr(scheme, "layer_overhead_cached", overhead_fn)

        fast = perf.fast_enabled()
        for node in dfg.nodes:
            layer = model.layers[node.layer_index]
            if fast:
                traffic = _cached_op_traffic(self.scheduler.sram_bytes,
                                             self.scheduler.bpe, layer,
                                             node.op, batch)
            else:
                traffic = _op_traffic(layer, node.op, self.scheduler, batch)
            overhead = overhead_fn(traffic, node.op, dfg.training)

            compute = self._compute_cycles(layer, node.op, batch)
            total_bytes = traffic.total_bytes + overhead.extra_read_bytes + overhead.extra_write_bytes
            memory = math.ceil(total_bytes / bytes_per_cycle)
            if engine_bpc:
                # every off-chip byte crosses the Enc engine; MAC bytes
                # cross it too (CMAC shares the AES cores)
                engine_cycles = math.ceil(total_bytes / engine_bpc) + engine.pipeline_latency_cycles
            else:
                engine_cycles = 0
            total = max(compute, memory, engine_cycles) + overhead.fixed_cycles
            result.layers.append(
                LayerTiming(
                    name=node.name,
                    op=node.op,
                    compute_cycles=compute,
                    data_read_bytes=traffic.read_bytes,
                    data_write_bytes=traffic.write_bytes,
                    metadata_read_bytes=overhead.extra_read_bytes,
                    metadata_write_bytes=overhead.extra_write_bytes,
                    memory_cycles=memory,
                    engine_cycles=engine_cycles,
                    total_cycles=total,
                    breakdown=dict(getattr(overhead, "breakdown", {}) or {}),
                )
            )
        return result
