"""Static data-flow graphs for inference and training (paper Figure 2).

"Popular ML frameworks often represent the network as a static data-flow
graph (DFG) ... and optimize the graph before execution" (Section II-D2).
The DFG is the artifact the *untrusted host* owns: it compiles the graph
into GuardNN instructions and derives the read counters (CTR_F,R) from
the schedule. The GuardNN device itself never sees the graph — only the
instruction stream.

Each node is one accelerator operation (one ``Forward`` instruction);
each edge is a tensor with a concrete DRAM region. Inference chains
feature tensors f1, f2, ... (Figure 2a); training adds, per layer, the
gradient edges g1, g2, ... and weight-update nodes (Figure 2b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.accel.models import NetworkModel


_ALIGN = 512  # data-movement granularity of the prototype (512-B chunks)


@dataclass(frozen=True)
class TensorRegion:
    """A named, contiguous DRAM region holding one tensor."""

    name: str
    base: int
    size: int
    kind: str  # "weight" | "feature" | "gradient" | "weight_grad" | "io"

    @property
    def end(self) -> int:
        return self.base + self.size

    def overlaps(self, other: "TensorRegion") -> bool:
        return self.base < other.end and other.base < self.end


@dataclass
class DfgNode:
    """One accelerator operation."""

    name: str
    op: str  # "forward" | "dgrad" | "wgrad" | "update"
    layer_index: int
    reads: List[TensorRegion]
    writes: List[TensorRegion]


@dataclass
class DataFlowGraph:
    """Node list in execution order plus the region table."""

    network: str
    training: bool
    nodes: List[DfgNode]
    regions: Dict[str, TensorRegion]

    def feature_regions(self) -> List[TensorRegion]:
        return [r for r in self.regions.values() if r.kind == "feature"]

    def weight_regions(self) -> List[TensorRegion]:
        return [r for r in self.regions.values() if r.kind == "weight"]

    def validate_no_overlap(self) -> None:
        """Distinct regions must not overlap — gradients reuse feature
        VNs precisely *because* they live at different addresses
        (Section II-D2), so the allocator must keep them disjoint."""
        regions = list(self.regions.values())
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                if a.overlaps(b):
                    raise ValueError(f"regions {a.name} and {b.name} overlap")


class _Allocator:
    """Bump allocator with 512-B alignment (the MAC granularity)."""

    def __init__(self, base: int = 0):
        self._next = base

    def alloc(self, size: int) -> int:
        base = self._next
        aligned = (size + _ALIGN - 1) // _ALIGN * _ALIGN
        self._next += aligned
        return base


def _element_bytes(count: int, bpe: int) -> int:
    return max(_ALIGN, count * bpe)


def build_inference_dfg(model: NetworkModel, batch: int = 1,
                        bytes_per_element: int = 1) -> DataFlowGraph:
    """Sequential inference graph: input -> layer1 -> f1 -> layer2 -> ..."""
    alloc = _Allocator()
    regions: Dict[str, TensorRegion] = {}

    def add_region(name: str, elements: int, kind: str) -> TensorRegion:
        size = _element_bytes(elements, bytes_per_element)
        region = TensorRegion(name, alloc.alloc(size), size, kind)
        regions[name] = region
        return region

    nodes: List[DfgNode] = []
    current = add_region("input", model.input_elements * batch, "io")
    for index, layer in enumerate(model.layers):
        reads = [current]
        if layer.has_weights:
            reads.append(add_region(f"w:{layer.name}", layer.weight_elements(), "weight"))
        out = add_region(f"f:{layer.name}", layer.output_elements(batch), "feature")
        nodes.append(DfgNode(name=layer.name, op="forward", layer_index=index,
                             reads=reads, writes=[out]))
        current = out
    return DataFlowGraph(network=model.name, training=False, nodes=nodes, regions=regions)


def build_training_dfg(model: NetworkModel, batch: int = 1,
                       bytes_per_element: int = 1) -> DataFlowGraph:
    """Forward + backward + update graph (Figure 2b).

    Backward order is reversed: for each layer L (deepest first) a
    ``dgrad`` node reads (g_out, w_L) and writes g_in, and a ``wgrad``
    node reads (g_out, f_in) and writes dW_L, followed by an ``update``
    node reading (w_L, dW_L) and writing w_L. Gradient tensors get their
    own regions, mirroring the paper's observation that "the gradients
    and the features are stored in different memory locations".
    """
    inference = build_inference_dfg(model, batch, bytes_per_element)
    alloc = _Allocator(base=max(r.end for r in inference.regions.values()) + _ALIGN)
    regions = dict(inference.regions)

    def add_region(name: str, elements: int, kind: str) -> TensorRegion:
        size = _element_bytes(elements, bytes_per_element)
        region = TensorRegion(name, alloc.alloc(size), size, kind)
        regions[name] = region
        return region

    nodes = list(inference.nodes)
    # gradient wrt the network output seeds the backward pass
    grad_out = add_region("g:output", model.layers[-1].output_elements(batch), "gradient")
    for index in range(len(model.layers) - 1, -1, -1):
        layer = model.layers[index]
        f_in = regions["input"] if index == 0 else regions[f"f:{model.layers[index - 1].name}"]
        reads_d = [grad_out]
        if layer.has_weights:
            w = regions[f"w:{layer.name}"]
            reads_d.append(w)
        grad_in = add_region(f"g:{layer.name}", layer.input_elements(batch), "gradient")
        nodes.append(DfgNode(name=f"{layer.name}.dgrad", op="dgrad", layer_index=index,
                             reads=reads_d, writes=[grad_in]))
        if layer.has_weights:
            dw = add_region(f"dw:{layer.name}", layer.weight_elements(), "weight_grad")
            nodes.append(DfgNode(name=f"{layer.name}.wgrad", op="wgrad", layer_index=index,
                                 reads=[grad_out, f_in], writes=[dw]))
            nodes.append(DfgNode(name=f"{layer.name}.update", op="update", layer_index=index,
                                 reads=[regions[f"w:{layer.name}"], dw],
                                 writes=[regions[f"w:{layer.name}"]]))
        grad_out = grad_in
    return DataFlowGraph(network=model.name, training=True, nodes=nodes, regions=regions)
