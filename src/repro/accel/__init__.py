"""DNN accelerator substrate.

The paper evaluates GuardNN on SCALE-Sim (an analytical systolic-array
simulator from ARM) configured like Google TPU-v1, plus the CHaiDNN FPGA
accelerator. This package rebuilds that substrate:

* :mod:`repro.accel.layers` — layer descriptions (conv / GEMM / depthwise
  / pooling / embedding / elementwise) that reduce to GEMM workloads.
* :mod:`repro.accel.models` — the nine-network model zoo of the paper's
  evaluation (AlexNet, VGG-16, GoogleNet, ResNet-50, MobileNet, ViT,
  BERT, DLRM, wav2vec2).
* :mod:`repro.accel.systolic` — analytical systolic-array timing
  (SCALE-Sim style) for weight/output/input-stationary dataflows.
* :mod:`repro.accel.scheduler` — on-chip buffer tiling and the resulting
  DRAM traffic per layer.
* :mod:`repro.accel.dfg` — static data-flow graphs for inference and
  training (Figure 2 of the paper), including tensor memory regions.
* :mod:`repro.accel.accelerator` — the combined performance model
  (compute/memory overlap) parameterized by a protection scheme.
"""

from repro.accel.layers import (
    ConvLayer,
    DenseLayer,
    DepthwiseConvLayer,
    PoolLayer,
    EmbeddingLayer,
    ElementwiseLayer,
    GemmShape,
)
from repro.accel.systolic import SystolicArray, Dataflow
from repro.accel.models import MODEL_ZOO, build_model, list_models, NetworkModel
from repro.accel.scheduler import TilingScheduler, LayerTraffic
from repro.accel.dfg import DataFlowGraph, TensorRegion, build_inference_dfg, build_training_dfg
from repro.accel.accelerator import AcceleratorConfig, AcceleratorModel, LayerTiming, RunResult, TPU_V1_CONFIG

__all__ = [
    "ConvLayer",
    "DenseLayer",
    "DepthwiseConvLayer",
    "PoolLayer",
    "EmbeddingLayer",
    "ElementwiseLayer",
    "GemmShape",
    "SystolicArray",
    "Dataflow",
    "MODEL_ZOO",
    "build_model",
    "list_models",
    "NetworkModel",
    "TilingScheduler",
    "LayerTraffic",
    "DataFlowGraph",
    "TensorRegion",
    "build_inference_dfg",
    "build_training_dfg",
    "AcceleratorConfig",
    "AcceleratorModel",
    "LayerTiming",
    "RunResult",
    "TPU_V1_CONFIG",
]
