"""Simulation-as-a-service: the ``repro serve`` daemon and its client.

The engine underneath (persistent worker pools, two-level result cache,
streaming trace pipeline) already dedupes and parallelizes; this package
gives it a front door — admission control, in-flight job coalescing,
streamed partial results, and observability — so many concurrent
clients share one machine's capacity instead of each owning a pool.

See :mod:`repro.service.protocol` for the wire format,
:mod:`repro.service.server` for the daemon, and
:mod:`repro.service.client` for the blocking stdlib client.
"""

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.client import (
    ServiceCancelled,
    ServiceClient,
    ServiceJobError,
    ServiceRejected,
)
from repro.service.coalescer import Flight, JobCoalescer
from repro.service.metrics import ServiceMetrics, StreamingHistogram
from repro.service.protocol import JobRequest, ProtocolError, parse_job_request
from repro.service.server import (
    FlightCancelled,
    ReproService,
    ServeConfig,
    run_serve,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "Flight",
    "FlightCancelled",
    "JobCoalescer",
    "JobRequest",
    "ProtocolError",
    "ReproService",
    "ServeConfig",
    "ServiceCancelled",
    "ServiceClient",
    "ServiceJobError",
    "ServiceMetrics",
    "ServiceRejected",
    "StreamingHistogram",
    "parse_job_request",
    "run_serve",
]
