"""Admission control: the bounded front door.

The capacity model has two terms, mirroring how the engine actually
executes:

* **occupancy** — at most ``max_running`` flights execute at once (the
  service's flight executor has exactly that many threads, each driving
  the shared worker pool);
* **queue depth** — at most ``max_queued`` admitted flights may wait
  for a thread.

A submission that would push the wait queue past ``max_queued`` is shed
with a retry-after estimate instead of being buffered: unbounded
buffering converts overload into unbounded memory growth and unbounded
client latency, while early 429s keep tail latency flat and let clients
back off. Joining an *in-flight* identical job (coalescing) never
counts against capacity — a subscriber adds a queue of references, not
work.

The retry-after estimate is Little's-law shaped: (jobs ahead of you,
plus yourself) divided by service rate, using the metrics EWMA of
flight latency. It is deliberately a hint, rounded up to a whole
second, not a reservation.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AdmissionDecision:
    admitted: bool
    #: seconds the client should wait before retrying (rejections only)
    retry_after: Optional[int] = None
    queued: int = 0
    running: int = 0


class AdmissionController:
    """Counts running/queued flights against the capacity model."""

    def __init__(self, max_running: int = 2, max_queued: int = 8):
        if max_running < 1 or max_queued < 0:
            raise ValueError("max_running >= 1, max_queued >= 0")
        self.max_running = max_running
        self.max_queued = max_queued
        self._lock = threading.Lock()
        self.running = 0
        self.queued = 0

    def try_admit(self, expected_flight_seconds: float = 1.0) -> AdmissionDecision:
        """Admit a new flight (it starts queued) or reject with a
        retry-after hint."""
        with self._lock:
            if self.running < self.max_running or self.queued < self.max_queued:
                self.queued += 1
                return AdmissionDecision(True, queued=self.queued,
                                         running=self.running)
            ahead = self.running + self.queued
            retry_after = max(1, math.ceil(
                (ahead + 1) * max(expected_flight_seconds, 1e-3)
                / self.max_running))
            return AdmissionDecision(False, retry_after=retry_after,
                                     queued=self.queued, running=self.running)

    def on_start(self) -> None:
        """A queued flight got an executor thread."""
        with self._lock:
            self.queued = max(0, self.queued - 1)
            self.running += 1

    def on_finish(self) -> None:
        """A running flight finished (result, error, or cancelled)."""
        with self._lock:
            self.running = max(0, self.running - 1)

    def on_abandon(self) -> None:
        """An admitted flight was dropped before it ever started (its
        only subscriber vanished while queued)."""
        with self._lock:
            self.queued = max(0, self.queued - 1)

    def gauges(self) -> dict:
        with self._lock:
            return {
                "running": self.running,
                "queued": self.queued,
                "max_running": self.max_running,
                "max_queued": self.max_queued,
            }
