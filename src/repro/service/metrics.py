"""Service observability: counters, gauges, and a streaming latency
histogram.

The histogram is geometric-bucketed: ``observe`` is O(1) and constant
memory (no sample retention), percentiles come from a bucket scan, and
the error of a reported percentile is bounded by the bucket growth
factor (~8% with the default 1.08 growth) — the standard trade for
latency telemetry, where the shape matters and the third significant
digit does not.

Everything here is plain data with a ``threading.Lock`` around updates:
flights execute on worker threads while the asyncio loop snapshots for
``/metrics``, so increments must be race-free but never block on I/O.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional


class StreamingHistogram:
    """Fixed geometric buckets over ``[floor, +inf)``; O(1) observe."""

    def __init__(self, floor: float = 1e-4, growth: float = 1.08,
                 buckets: int = 192):
        if floor <= 0 or growth <= 1 or buckets < 2:
            raise ValueError("floor > 0, growth > 1, buckets >= 2")
        self.floor = floor
        self.growth = growth
        self._log_growth = math.log(growth)
        self._counts = [0] * buckets
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def _bucket(self, value: float) -> int:
        if value <= self.floor:
            return 0
        index = int(math.log(value / self.floor) / self._log_growth) + 1
        return min(index, len(self._counts) - 1)

    def observe(self, value: float) -> None:
        self._counts[self._bucket(value)] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def _bucket_upper(self, index: int) -> float:
        if index == 0:
            return self.floor
        return self.floor * self.growth ** index

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile sample
        (0 <= q <= 1); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                return min(self._bucket_upper(index), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": round(self.mean, 6),
            "p50_s": round(self.percentile(0.50), 6),
            "p90_s": round(self.percentile(0.90), 6),
            "p99_s": round(self.percentile(0.99), 6),
            "max_s": round(self.max, 6),
        }


#: counter names, fixed so /metrics always reports the full schema
COUNTERS = (
    "requests_total",          # every POST /v1/jobs (incl. rejected/bad)
    "bad_requests_total",      # 400s
    "rejected_total",          # 429s (admission shed)
    "admitted_total",          # new flights admitted
    "coalesced_total",         # submissions attached to an in-flight job
    "executions_total",        # flights actually executed (started)
    "completed_total",         # flights finishing with a result
    "failed_total",            # flights finishing with an error
    "cancelled_total",         # flights cancelled (all clients gone)
    "events_streamed_total",   # NDJSON lines written to clients
    "rows_streamed_total",     # result/partial rows delivered
    "cache_hits_total",        # on-disk result-cache hits (service runner)
    "cache_misses_total",      # on-disk result-cache misses
    "cache_corrupt_total",     # corrupt cache entries quarantined
    "worker_restarts_total",   # pool rebuilds after a lost/hung worker
    "chunk_retries_total",     # sweep chunks re-dispatched after a loss
    "checkpoints_written_total",  # pipeline checkpoints persisted
    "flights_resumed_total",   # flights resumed from a checkpoint/journal
    "distributed_flights_total",     # flights fanned through a coordinator
    "journal_units_replayed_total",  # units recovered from a journal replay
    "journals_quarantined_total",    # unusable journals set aside (.corrupt)
)


class ServiceMetrics:
    """Counter/gauge registry plus the flight-latency histogram."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self.latency = StreamingHistogram()
        #: EWMA of flight wall time, the retry-after estimator's input
        self._latency_ewma: Optional[float] = None
        self._ewma_alpha = 0.3

    def incr(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] += by

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    def observe_flight(self, seconds: float) -> None:
        with self._lock:
            self.latency.observe(seconds)
            if self._latency_ewma is None:
                self._latency_ewma = seconds
            else:
                self._latency_ewma += self._ewma_alpha * (seconds - self._latency_ewma)

    @property
    def expected_flight_seconds(self) -> float:
        """Smoothed recent flight latency (1 s until the first flight
        lands) — the admission controller's retry-after unit."""
        with self._lock:
            return self._latency_ewma if self._latency_ewma is not None else 1.0

    def snapshot(self, gauges: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
            latency = self.latency.snapshot()
        admitted = counters["admitted_total"]
        coalesced = counters["coalesced_total"]
        executions = counters["executions_total"]
        out: Dict[str, object] = {
            "counters": counters,
            "latency": latency,
            # in-flight dedup leverage: client submissions served per
            # executed computation (1.0 = no coalescing happening)
            "coalescing_factor": round(
                (admitted + coalesced) / executions, 4) if executions else 0.0,
        }
        if gauges:
            out["gauges"] = dict(gauges)
        return out


def merge_cache_stats(metrics: ServiceMetrics, cache) -> None:
    """Fold a :class:`~repro.experiments.cache.ResultCache`'s running
    hit/miss totals into the counter registry (the cache object keeps
    the authoritative count; the counters mirror the latest)."""
    if cache is None:
        return
    with metrics._lock:
        metrics._counters["cache_hits_total"] = cache.hits
        metrics._counters["cache_misses_total"] = cache.misses
        metrics._counters["cache_corrupt_total"] = cache.corrupt


def merge_recovery_stats(metrics: ServiceMetrics) -> None:
    """Mirror the runner's process-wide recovery counters (pool rebuilds
    and chunk re-dispatches) into the counter registry."""
    from repro.experiments.runner import recovery_counts

    counts = recovery_counts()
    with metrics._lock:
        metrics._counters["worker_restarts_total"] = counts.get("worker_restarts", 0)
        metrics._counters["chunk_retries_total"] = counts.get("chunk_retries", 0)
