"""In-flight job coalescing.

Two clients asking for the same computation while it is running should
cost one computation: a :class:`Flight` is the single execution of one
content-addressed job key, and every client watching it is a
*subscriber* holding an ``asyncio.Queue`` of events. The flight keeps a
replay buffer, so a subscriber joining mid-flight first receives every
event already published — all subscribers therefore observe the exact
same event stream regardless of when they attached (events are encoded
canonically, so the streams are byte-identical on the wire).

Cancellation is subscription-driven: when the last subscriber
disconnects before the flight finishes, the flight's ``cancel`` flag (a
``threading.Event``, because execution runs on a worker thread) is set,
and the executing job observes it cooperatively at its next chunk/slice
boundary. A subscriber arriving *before* the worker notices clears the
flag — the computation is wanted again.

Everything in this module runs on the asyncio event-loop thread; worker
threads publish by scheduling :meth:`Flight.publish` through
``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, List, Optional

from repro.service.protocol import JobRequest

#: queue sentinel marking end-of-stream to a subscriber
END_OF_STREAM = None


class Flight:
    """One in-flight execution of a content-addressed job."""

    def __init__(self, key: str, request: JobRequest):
        self.key = key
        self.request = request
        self.events: List[dict] = []          # replay buffer
        self.subscribers: List[asyncio.Queue] = []
        self.done = False
        self.cancel = threading.Event()
        #: drain signal: asks a pipeline flight to persist a checkpoint
        #: at its next chunk seam and stop (observed on a worker thread)
        self.checkpoint_now = threading.Event()
        #: lifetime subscriber count (coalescing-factor accounting)
        self.total_subscribers = 0
        self.started = False

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        for event in self.events:
            queue.put_nowait(event)
        if self.done:
            queue.put_nowait(END_OF_STREAM)
        else:
            self.subscribers.append(queue)
            # a revived flight is wanted again; clear a not-yet-observed
            # cancellation (if the worker already observed it, the
            # terminal "cancelled" event tells the client to resubmit)
            self.cancel.clear()
        self.total_subscribers += 1
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self.subscribers.remove(queue)
        except ValueError:
            return
        if not self.subscribers and not self.done:
            self.cancel.set()

    def publish(self, event: dict, final: bool = False) -> None:
        self.events.append(event)
        for queue in self.subscribers:
            queue.put_nowait(event)
        if final:
            self.done = True
            for queue in self.subscribers:
                queue.put_nowait(END_OF_STREAM)
            self.subscribers.clear()


class JobCoalescer:
    """The in-flight map: job key → :class:`Flight`."""

    def __init__(self):
        self._flights: Dict[str, Flight] = {}

    def peek(self, key: str) -> Optional[Flight]:
        return self._flights.get(key)

    def create(self, key: str, request: JobRequest) -> Flight:
        if key in self._flights:
            raise RuntimeError(f"flight {key} already in flight")
        flight = Flight(key, request)
        self._flights[key] = flight
        return flight

    def finish(self, key: str) -> None:
        """Drop a finished flight: the next identical submission starts
        a fresh computation (or hits the result cache)."""
        self._flights.pop(key, None)

    @property
    def inflight(self) -> int:
        return len(self._flights)

    @property
    def live_subscribers(self) -> int:
        return sum(len(f.subscribers) for f in self._flights.values())

    def gauges(self) -> dict:
        return {"inflight": self.inflight,
                "subscribers": self.live_subscribers}
