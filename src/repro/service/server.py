"""The ``repro serve`` daemon: an asyncio HTTP/NDJSON front door over
the sweep runner and the streaming trace pipeline.

Architecture (all stdlib):

* the **asyncio loop** owns every piece of coordination state — the
  :class:`~repro.service.coalescer.JobCoalescer`, subscriber queues,
  flight lifecycle — so none of it needs locking;
* each admitted job becomes a :class:`~repro.service.coalescer.Flight`
  executed on a small ``ThreadPoolExecutor`` (``max_running`` threads —
  the occupancy half of the admission model); the thread drives the
  ordinary blocking engine (:class:`~repro.experiments.runner.Runner`
  for sweeps, :func:`~repro.experiments.executors.pipeline_rows` for
  pipelines) and publishes events back via ``call_soon_threadsafe``;
* every flight's runner borrows the one shared
  :class:`~repro.experiments.pool.WorkerPoolManager` — process-pool
  ownership is the service's, not any single request's — and the shared
  on-disk :class:`~repro.experiments.cache.ResultCache`, so identical
  work is deduplicated at three levels: in-flight (coalescer), in-memory
  (runner first-level cache), on disk;
* **backpressure** is admission-controlled: a submission past capacity
  gets an immediate ``429`` + ``Retry-After`` instead of a queue slot;
* **cancellation** is subscription-driven and cooperative: when a
  flight's last client disconnects, its cancel flag trips and the
  engine stops at the next chunk (pipeline) or job-slice (sweep)
  boundary, releasing the executor slot.

Results are bit-identical to the direct APIs (``Runner.run`` /
``TracePipeline.run``): the service *is* those APIs, sliced for
streaming — same executors, same caches, same content-addressed keys.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional

from repro.checkpoint import CheckpointError, load_checkpoint
from repro.experiments import ResultCache, ResultTable, get_sweep
from repro.experiments import runner as runner_module
from repro.experiments.cache import code_fingerprint
from repro.experiments.executors import pipeline_rows
from repro.experiments.pool import WorkerPoolManager
from repro.experiments.runner import JobExecutionError, Runner, default_workers
from repro.mem.pipeline import PipelineCancelled, PipelineCheckpointed
from repro.service.admission import AdmissionController
from repro.service.coalescer import END_OF_STREAM, Flight, JobCoalescer
from repro.service.metrics import (
    ServiceMetrics,
    merge_cache_stats,
    merge_recovery_stats,
)
from repro.service.protocol import (
    ProtocolError,
    encode_event,
    parse_job_request,
    rejection_body,
)
from repro.testing import faults

_MAX_BODY_BYTES = 1 << 20  # a job request is a description, not data


class FlightCancelled(RuntimeError):
    """Raised inside a flight when every subscriber has disconnected."""


def _service_pool_context() -> Optional[str]:
    """Start method for the service's worker pools.

    A daemon must never plain-fork once clients are connected: the fork
    duplicates every live connection fd (and the loop's epoll
    registrations) into the pool workers, after which writes on those
    connections can be silently lost. ``forkserver`` forks workers from
    a clean template process instead — started eagerly in
    :meth:`ReproService.serve_forever` *before* the listener binds — so
    even a mid-serve pool rebuild (the post-failure recovery path)
    never forks the connection-holding process. ``spawn`` is the
    fd-safe fallback where forkserver is unavailable.
    """
    methods = multiprocessing.get_all_start_methods()
    if "forkserver" in methods:
        return "forkserver"
    if "spawn" in methods:
        return "spawn"
    return None


@dataclass
class ServeConfig:
    host: str = "127.0.0.1"
    port: int = 8787            # 0 = ephemeral (bound port on self.port)
    workers: Optional[int] = None   # sweep process-pool width
    max_running: int = 2        # concurrent executing flights
    max_queued: int = 8         # admitted flights waiting for a thread
    cache: bool = True          # shared on-disk ResultCache
    cache_dir: Optional[str] = None
    stream_jobs: Optional[int] = None  # sweep jobs per partial-rows event
    #: directory for pipeline flight checkpoints; None disables both
    #: periodic checkpointing and drain-time checkpoint/resume
    checkpoint_dir: Optional[str] = None
    #: write a checkpoint every N pipeline chunks (0 = only on drain)
    checkpoint_every: int = 0
    #: seconds to wait for in-flight work after a drain begins before
    #: forcing shutdown
    drain_grace: float = 10.0
    #: sweep-runner fault tolerance (see Runner): per-chunk timeout and
    #: redispatch budget for lost/hung workers
    chunk_timeout: Optional[float] = None
    chunk_retries: int = 2
    #: fan flights out through a SweepCoordinator (``repro work``
    #: workers join at dist_host:dist_port); the local pool remains the
    #: degradation floor when no workers are live
    distributed: bool = False
    dist_host: str = "127.0.0.1"
    #: fixed (not ephemeral) so parked workers with
    #: ``--reconnect-timeout 0`` rejoin between flights and across
    #: daemon restarts
    dist_port: int = 8790
    dist_lease_seconds: float = 10.0
    #: seconds to hold work for remote workers before the local
    #: fallback starts leasing (0 = fall back immediately when none
    #: are live)
    dist_wait_workers: float = 0.0


class ReproService:
    """One daemon instance: owns the pools, the caches, the capacity."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.workers = (default_workers() if self.config.workers is None
                        else max(1, int(self.config.workers)))
        self.pool_manager = WorkerPoolManager(context=_service_pool_context())
        self.cache = (ResultCache(self.config.cache_dir)
                      if self.config.cache else None)
        self.metrics = ServiceMetrics()
        self.admission = AdmissionController(self.config.max_running,
                                             self.config.max_queued)
        self.coalescer = JobCoalescer()
        self._flight_executor = ThreadPoolExecutor(
            max_workers=self.config.max_running,
            thread_name_prefix="repro-flight")
        self._fingerprint = code_fingerprint()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self.port: Optional[int] = None  # bound port once serving
        self._draining = False
        self._connections: set = set()  # live client-connection tasks
        self._flight_seq = 0   # fault-site index for service.flight
        self._stream_seq = 0   # fault-site index for service.stream
        # one CoordinatorServer owns the fixed dist_port at a time, so
        # distributed flights execute serially (coalescing and caches
        # still make concurrent identical submissions cheap)
        self._dist_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    async def serve_forever(self, ready: Optional[threading.Event] = None) -> None:
        """Bind, announce, serve until :meth:`request_shutdown`."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if self.workers > 1:
            # Warm the pool (and the forkserver template it forks from)
            # before the listener binds: no worker process may ever be
            # forked while a client connection fd is open in this
            # process — see _service_pool_context.
            self.pool_manager.pool(self.workers)
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self._begin_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or platform without signal support
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = server.sockets[0].getsockname()[1]
        print(f"repro serve listening on http://{self.config.host}:{self.port} "
              f"(workers={self.workers}, max_running={self.config.max_running}, "
              f"max_queued={self.config.max_queued}, "
              f"cache={'on' if self.cache else 'off'})",
              file=sys.stderr, flush=True)
        if self.config.distributed:
            print(f"repro serve: distributed mode — workers join at "
                  f"http://{self.config.dist_host}:{self.config.dist_port} "
                  f"during flights (local-pool fallback after "
                  f"{self.config.dist_wait_workers:g}s without workers)",
                  file=sys.stderr, flush=True)
        self._resume_checkpointed_flights()
        self._resume_journaled_flights()
        if ready is not None:
            ready.set()
        async with server:
            await self._shutdown.wait()
        self._flight_executor.shutdown(wait=False)
        self.pool_manager.close()

    def _begin_drain(self) -> None:
        """Graceful shutdown, phase one (loop thread): stop admitting,
        ask every in-flight pipeline to checkpoint at its next chunk
        seam, and force shutdown after the grace period if work is
        still running. Idempotent — repeated signals don't reset the
        grace timer."""
        if self._draining:
            return
        self._draining = True
        print(f"repro serve: draining ({self.coalescer.inflight} in flight, "
              f"grace {self.config.drain_grace:g}s)",
              file=sys.stderr, flush=True)
        for flight in list(self.coalescer._flights.values()):
            flight.checkpoint_now.set()
        if self.coalescer.inflight == 0:
            self._loop.create_task(self._drain_complete())
        else:
            self._loop.call_later(self.config.drain_grace, self._shutdown.set)

    async def _drain_complete(self) -> None:
        """Drain, phase two: every flight has landed, but their terminal
        events may still be queued behind open connections — let those
        streams flush before the loop (and its tasks) go down."""
        live = {task for task in self._connections
                if task is not asyncio.current_task()}
        if live:
            await asyncio.wait(live, timeout=5.0)
        self._shutdown.set()

    def request_shutdown(self) -> None:
        """Stop serving (threadsafe; callable from signal handlers or
        other threads)."""
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)

    # -- HTTP plumbing -----------------------------------------------------

    @staticmethod
    def _head(status: str, content_type: str, extra: Dict[str, str],
              length: Optional[int]) -> bytes:
        lines = [f"HTTP/1.1 {status}",
                 f"Content-Type: {content_type}",
                 "Connection: close",
                 "Cache-Control: no-store"]
        if length is not None:
            lines.append(f"Content-Length: {length}")
        lines.extend(f"{name}: {value}" for name, value in extra.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode()

    async def _respond_json(self, writer, status: str, payload: dict,
                            extra: Optional[Dict[str, str]] = None) -> None:
        body = (json.dumps(payload) + "\n").encode()
        writer.write(self._head(status, "application/json", extra or {},
                                len(body)) + body)
        await writer.drain()

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 3:
                return
            method, target = parts[0], parts[1]
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", 0))
            if length > _MAX_BODY_BYTES:
                await self._respond_json(writer, "413 Payload Too Large",
                                         {"error": "request body too large"})
                return
            body = await reader.readexactly(length) if length else b""
            await self._route(method, target, body, reader, writer)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except Exception as error:  # a handler bug must not kill the loop
            try:
                await self._respond_json(
                    writer, "500 Internal Server Error",
                    {"error": f"{type(error).__name__}: {error}"})
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, method: str, target: str, body: bytes,
                     reader, writer) -> None:
        target = target.split("?", 1)[0]
        if method == "GET" and target == "/metrics":
            await self._respond_json(writer, "200 OK", self.metrics_snapshot())
            return
        if method == "GET" and target == "/healthz":
            await self._respond_json(writer, "200 OK", {"ok": True})
            return
        if method == "POST" and target == "/v1/jobs":
            await self._handle_job(body, reader, writer)
            return
        await self._respond_json(writer, "404 Not Found",
                                 {"error": f"no route {method} {target}"})

    # -- metrics -----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        merge_cache_stats(self.metrics, self.cache)
        merge_recovery_stats(self.metrics)
        gauges = {**self.admission.gauges(), **self.coalescer.gauges(),
                  "pool_workers": self.pool_manager.active_workers,
                  "sweep_workers": self.workers,
                  "distributed": self.config.distributed,
                  "draining": self._draining}
        snapshot = self.metrics.snapshot(gauges)
        snapshot["protocol_version"] = 1
        return snapshot

    # -- the job endpoint --------------------------------------------------

    async def _handle_job(self, body: bytes, reader, writer) -> None:
        self.metrics.incr("requests_total")
        if self._draining:
            retry = max(1, int(round(self.config.drain_grace)))
            self.metrics.incr("rejected_total")
            await self._respond_json(
                writer, "503 Service Unavailable",
                {"error": "draining", "retry_after": retry},
                extra={"Retry-After": str(retry)})
            return
        try:
            request = parse_job_request(json.loads(body.decode()))
        except (ProtocolError, json.JSONDecodeError, UnicodeDecodeError) as error:
            self.metrics.incr("bad_requests_total")
            await self._respond_json(writer, "400 Bad Request",
                                     {"error": str(error)})
            return
        key = request.key(self._fingerprint)
        flight = self.coalescer.peek(key)
        coalesced = flight is not None
        if coalesced:
            self.metrics.incr("coalesced_total")
        else:
            decision = self.admission.try_admit(
                self.metrics.expected_flight_seconds)
            if not decision.admitted:
                self.metrics.incr("rejected_total")
                await self._respond_json(
                    writer, "429 Too Many Requests",
                    rejection_body(decision.retry_after, decision.queued,
                                   decision.running),
                    extra={"Retry-After": str(decision.retry_after)})
                return
            self.metrics.incr("admitted_total")
            flight = self.coalescer.create(key, request)
            self._loop.run_in_executor(self._flight_executor,
                                       self._run_flight, flight)
        queue = flight.subscribe()

        writer.write(self._head("200 OK", "application/x-ndjson", {}, None))
        accepted = {"event": "accepted", "key": key, "coalesced": coalesced,
                    **request.describe()}
        await self._stream(writer, reader, flight, queue, accepted)

    async def _stream(self, writer, reader, flight: Flight, queue,
                      accepted: dict) -> None:
        """Pump flight events to one client until the stream or the
        client ends — whichever first. A client EOF mid-flight is the
        cancellation signal (subscription-driven)."""
        eof_watch = asyncio.ensure_future(reader.read())
        getter = None
        try:
            writer.write(encode_event(accepted))
            await writer.drain()
            self.metrics.incr("events_streamed_total")
            while True:
                getter = asyncio.ensure_future(queue.get())
                done, _ = await asyncio.wait(
                    {getter, eof_watch}, return_when=asyncio.FIRST_COMPLETED)
                if getter not in done:   # client hung up first
                    getter.cancel()
                    break
                event = getter.result()
                if event is END_OF_STREAM:
                    break
                if faults.enabled():
                    faults.fire("service.stream", self._stream_seq)
                self._stream_seq += 1
                writer.write(encode_event(event))
                await writer.drain()
                self.metrics.incr("events_streamed_total")
                if "rows" in event:
                    self.metrics.incr("rows_streamed_total",
                                      len(event["rows"]))
                elif "table" in event:
                    self.metrics.incr("rows_streamed_total",
                                      len(event["table"]["rows"]))
        except (ConnectionResetError, BrokenPipeError):
            if getter is not None:
                getter.cancel()
        finally:
            eof_watch.cancel()
            flight.unsubscribe(queue)

    # -- flight execution (worker threads) ---------------------------------

    def _emit(self, flight: Flight, event: dict) -> None:
        self._loop.call_soon_threadsafe(flight.publish, event)

    def _run_flight(self, flight: Flight) -> None:
        if flight.cancel.is_set():
            # every subscriber vanished while the flight was queued;
            # don't burn an executor slot computing for nobody
            self.metrics.incr("cancelled_total")
            self._loop.call_soon_threadsafe(
                self._finish_flight, flight,
                {"event": "cancelled", "reason": "abandoned before start"},
                None, False)
            return
        flight.started = True
        self._loop.call_soon_threadsafe(self.admission.on_start)
        self.metrics.incr("executions_total")
        if faults.enabled():
            faults.fire("service.flight", self._flight_seq)
        self._flight_seq += 1
        started = time.perf_counter()
        try:
            if flight.request.kind == "sweep":
                final = self._execute_sweep(flight)
            else:
                final = self._execute_pipeline(flight)
            self.metrics.incr("completed_total")
        except (FlightCancelled, PipelineCancelled) as error:
            self.metrics.incr("cancelled_total")
            final = {"event": "cancelled", "reason": str(error)}
        except PipelineCheckpointed as checkpointed:
            # a drain caught this flight mid-stream: its state is on
            # disk and the restarted daemon will pick it up
            final = {"event": "checkpointed",
                     "checkpoint": checkpointed.path,
                     "chunks": checkpointed.chunks,
                     "requests_done": checkpointed.requests_done}
        except JobExecutionError as error:
            self.metrics.incr("failed_total")
            final = {"event": "error", "message": str(error),
                     "executor": error.job.executor,
                     "params": error.job.params_json}
        except Exception as error:
            self.metrics.incr("failed_total")
            final = {"event": "error",
                     "message": f"{type(error).__name__}: {error}"}
        latency = time.perf_counter() - started
        self._loop.call_soon_threadsafe(self._finish_flight, flight, final,
                                        latency, True)

    def _finish_flight(self, flight: Flight, final: dict,
                       latency: Optional[float], started: bool) -> None:
        flight.publish(final, final=True)
        self.coalescer.finish(flight.key)
        if started:
            self.admission.on_finish()
        else:
            self.admission.on_abandon()
        if latency is not None:
            self.metrics.observe_flight(latency)
        if self._draining and self.coalescer.inflight == 0:
            # drain complete: don't wait out the grace (but do let open
            # streams deliver the terminal events just published)
            self._loop.create_task(self._drain_complete())

    def _check_cancel(self, flight: Flight) -> None:
        if flight.cancel.is_set():
            raise FlightCancelled("every subscriber disconnected")

    def _execute_sweep(self, flight: Flight) -> dict:
        request = flight.request
        jobs = request.jobs()
        definition = get_sweep(request.preset) if request.preset else None
        if self.config.distributed:
            rows_per_job = self._run_distributed(flight, jobs)
            rows = [row for job_rows in rows_per_job for row in job_rows]
        else:
            runner = Runner(workers=self.workers, cache=self.cache,
                            pool_manager=self.pool_manager,
                            chunk_timeout=self.config.chunk_timeout,
                            chunk_retries=self.config.chunk_retries)
            stride = self.config.stream_jobs or max(4, runner.workers * 2)
            rows = []
            for start in range(0, len(jobs), stride):
                self._check_cancel(flight)
                slice_rows = runner.run(jobs[start:start + stride]).rows
                self._emit(flight, {"event": "rows", "index": start,
                                    "rows": slice_rows})
                rows.extend(slice_rows)
        table = ResultTable(
            rows, columns=definition.columns if definition else None)
        if definition is not None and definition.post is not None:
            table = definition.post(table)
        return {"event": "result", "kind": "sweep",
                "table": {"columns": table.columns, "rows": table.rows}}

    def _flight_checkpoint_path(self, key: str) -> Optional[str]:
        if not self.config.checkpoint_dir:
            return None
        return os.path.join(self.config.checkpoint_dir, key + ".ckpt")

    def _execute_pipeline(self, flight: Flight) -> dict:
        job = flight.request.jobs()[0]
        rows = runner_module._memory_get(job)
        cached = rows is not None
        if rows is None and self.cache is not None:
            rows = self.cache.get(job)
            cached = rows is not None
            if rows is not None:
                runner_module._memory_put(job, rows)
        if rows is None and self.config.distributed:
            # the coordinator's checkpoint migration + journal replace
            # the local checkpoint file for durability; completed rows
            # land in both cache levels exactly as the local path's do
            rows = self._run_distributed(flight, [job])[0]
            runner_module._memory_put(job, rows)
            if self.cache is not None:
                self.cache.put(job, rows)
        elif rows is None:
            def on_chunk(chunk, requests_done, total_requests):
                self._check_cancel(flight)
                self._emit(flight, {"event": "progress", "chunk": chunk,
                                    "requests_done": requests_done,
                                    "total_requests": total_requests})

            ckpt_path = self._flight_checkpoint_path(flight.key)
            ckpt_kwargs: Dict[str, object] = {}
            if ckpt_path is not None:
                resume_from = None
                if os.path.exists(ckpt_path):
                    try:
                        resume_from = load_checkpoint(ckpt_path,
                                                      kind="trace-pipeline")
                    except CheckpointError:
                        resume_from = None  # stale/corrupt: full recompute
                if resume_from is not None:
                    self.metrics.incr("flights_resumed_total")
                    self._emit(flight, {
                        "event": "resumed",
                        "requests_done": resume_from.get("cursor"),
                        "chunks": resume_from.get("chunks")})
                ckpt_kwargs = dict(
                    checkpoint_path=ckpt_path,
                    checkpoint_every=self.config.checkpoint_every,
                    checkpoint_request=flight.checkpoint_now.is_set,
                    resume_from=resume_from,
                    on_checkpoint=lambda *_: self.metrics.incr(
                        "checkpoints_written_total"),
                    # the full pipeline_run params travel in the
                    # envelope so a restarted daemon can rebuild the
                    # JobRequest and resume the flight unprompted
                    checkpoint_meta={"job": {"kind": "pipeline",
                                             "params": job.params}})
            rows = pipeline_rows(job.params, on_chunk=on_chunk,
                                 should_stop=flight.cancel.is_set,
                                 **ckpt_kwargs)
            runner_module._memory_put(job, rows)
            if self.cache is not None:
                self.cache.put(job, rows)
            if ckpt_path is not None:
                try:
                    os.unlink(ckpt_path)  # completed: checkpoint spent
                except OSError:
                    pass
        return {"event": "result", "kind": "pipeline", "cached": cached,
                "rows": rows}

    # -- distributed execution ----------------------------------------------

    def _journal_path(self, key: str) -> Optional[str]:
        if not self.config.checkpoint_dir:
            return None
        return os.path.join(self.config.checkpoint_dir, key + ".journal")

    def _spawn_coordinator(self, flight: Flight, jobs,
                           journal_path: Optional[str]):
        # imported here, not at module top: repro.distributed's wire
        # protocol reuses repro.service.protocol's framing, so a
        # module-level import would be circular
        from repro.distributed import JournalError, SweepCoordinator

        kwargs = dict(
            cache=self.cache, local_workers=self.workers,
            host=self.config.dist_host, port=self.config.dist_port,
            lease_seconds=self.config.dist_lease_seconds,
            wait_workers=self.config.dist_wait_workers,
            pool_manager=self.pool_manager,
            journal_path=journal_path,
            # the request rides in the journal header so a restarted
            # daemon can rebuild this flight without a client attached
            journal_meta={"request": flight.request.resubmit_body()})
        try:
            return SweepCoordinator(jobs, **kwargs)
        except JournalError as error:
            # an unusable journal must not wedge this flight key
            # forever: quarantine the evidence, restart from scratch
            self.metrics.incr("journals_quarantined_total")
            quarantined = journal_path + ".corrupt"
            os.replace(journal_path, quarantined)
            print(f"repro serve: quarantined unusable journal "
                  f"{os.path.basename(journal_path)} -> "
                  f"{os.path.basename(quarantined)} ({error})",
                  file=sys.stderr, flush=True)
            return SweepCoordinator(jobs, **kwargs)

    def _run_distributed(self, flight: Flight, jobs) -> list:
        """Execute one flight's jobs through a :class:`SweepCoordinator`
        bound to the fixed distributed port, journaled under the
        checkpoint directory so a daemon crash mid-flight resumes from
        committed units instead of recomputing. Returns rows per job in
        job order — bit-identical to the local path by the coordinator's
        construction."""
        self._check_cancel(flight)
        journal_path = self._journal_path(flight.key)
        with self._dist_lock:
            coordinator = self._spawn_coordinator(flight, jobs, journal_path)
            self.metrics.incr("distributed_flights_total")
            replayed = coordinator.state.counters["journal_replayed_units"]
            if replayed:
                self.metrics.incr("journal_units_replayed_total", replayed)
            self._emit(flight, {"event": "distributed",
                                "url": coordinator.url,
                                "epoch": coordinator.state.epoch,
                                "replayed_units": replayed})
            rows_per_job = coordinator.run()
            # only after the rows are in hand (and, via on_commit, in
            # the shared caches) is the durable state safe to drop; on
            # any failure above the journal stays for the next attempt
            coordinator.discard_journal()
            return rows_per_job

    # -- restart recovery ---------------------------------------------------

    def _resume_journaled_flights(self) -> None:
        """Distributed counterpart of checkpoint resume: a journal left
        in the checkpoint directory belongs to a flight a previous
        daemon instance died inside. Rebuild the request from the
        journal header's metadata and re-dispatch it — the coordinator's
        recovery marks journaled units done, so only the remainder is
        recomputed. Like checkpoint resume, the flight has no
        subscribers; its rows land in the shared caches."""
        directory = self.config.checkpoint_dir
        if (not self.config.distributed or not directory
                or not os.path.isdir(directory)):
            return
        from repro.distributed import JournalError
        from repro.distributed.journal import journal_meta as read_journal_meta

        for name in sorted(os.listdir(directory)):
            if not name.endswith(".journal"):
                continue
            path = os.path.join(directory, name)
            try:
                meta = read_journal_meta(path)
            except JournalError as error:
                self.metrics.incr("journals_quarantined_total")
                quarantined = path + ".corrupt"
                try:
                    os.replace(path, quarantined)
                except OSError:
                    quarantined = path
                print(f"repro serve: quarantined unreadable journal "
                      f"{name} -> {os.path.basename(quarantined)} ({error})",
                      file=sys.stderr, flush=True)
                continue
            body = meta.get("request") if isinstance(meta, dict) else None
            if not isinstance(body, dict):
                continue
            try:
                request = parse_job_request(body)
            except ProtocolError:
                continue
            key = request.key(self._fingerprint)
            if key + ".journal" != name:
                # journaled under a different code fingerprint: recovery
                # would refuse the replay anyway — drop it
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            if self.coalescer.peek(key) is not None:
                continue
            decision = self.admission.try_admit(
                self.metrics.expected_flight_seconds)
            if not decision.admitted:
                break  # capacity full; the rest resume on client demand
            self.metrics.incr("admitted_total")
            self.metrics.incr("flights_resumed_total")
            flight = self.coalescer.create(key, request)
            print(f"repro serve: resuming journaled flight {key[:12]}… "
                  f"({request.kind})", file=sys.stderr, flush=True)
            self._loop.run_in_executor(self._flight_executor,
                                       self._run_flight, flight)

    def _resume_checkpointed_flights(self) -> None:
        """Scan the checkpoint directory at startup and re-dispatch
        every flight a previous daemon instance left checkpointed. A
        resumed flight has no subscribers — its result lands in the
        shared caches, so the client that retries after the restart
        gets a cache hit instead of a recompute from request zero."""
        directory = self.config.checkpoint_dir
        if not directory or not os.path.isdir(directory):
            return
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".ckpt"):
                continue
            path = os.path.join(directory, name)
            try:
                state = load_checkpoint(path, kind="trace-pipeline")
            except CheckpointError as error:
                # quarantine rather than skip: a corrupt/truncated/
                # future-version envelope left in place would be
                # re-parsed (and re-logged) on every restart, and a
                # writer crash mid-publish must never look like "no
                # checkpoint" silently — the .corrupt file preserves
                # the evidence
                quarantined = path + ".corrupt"
                try:
                    os.replace(path, quarantined)
                except OSError:
                    quarantined = path
                print(f"repro serve: quarantined unreadable checkpoint "
                      f"{name} -> {os.path.basename(quarantined)} ({error})",
                      file=sys.stderr, flush=True)
                continue
            meta = state.get("meta") or {}
            job_meta = meta.get("job") if isinstance(meta, dict) else None
            params = job_meta.get("params") if isinstance(job_meta, dict) else None
            if not isinstance(params, dict) or job_meta.get("kind") != "pipeline":
                continue
            try:
                request = parse_job_request({
                    "kind": "pipeline",
                    "workload": params["workload"],
                    "schemes": params["schemes"],
                    "chunk_requests": params["chunk_requests"],
                    "params": {k: v for k, v in params.items()
                               if k not in ("workload", "schemes",
                                            "chunk_requests")},
                })
            except (ProtocolError, KeyError):
                continue
            key = request.key(self._fingerprint)
            if key + ".ckpt" != name:
                # written under a different code fingerprint: the
                # bit-identity contract only holds within one build, so
                # this checkpoint can never be resumed — drop it
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            if self.coalescer.peek(key) is not None:
                continue
            decision = self.admission.try_admit(
                self.metrics.expected_flight_seconds)
            if not decision.admitted:
                break  # capacity full; the rest resume on client demand
            self.metrics.incr("admitted_total")
            flight = self.coalescer.create(key, request)
            print(f"repro serve: resuming checkpointed flight {key[:12]}… "
                  f"({params.get('workload')}, cursor {state.get('cursor')})",
                  file=sys.stderr, flush=True)
            self._loop.run_in_executor(self._flight_executor,
                                       self._run_flight, flight)


def run_serve(config: ServeConfig) -> int:
    """Blocking entry point for the CLI."""
    service = ReproService(config)
    try:
        asyncio.run(service.serve_forever())
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        service.pool_manager.close()
    return 0
