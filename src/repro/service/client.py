"""Blocking stdlib client for ``repro serve``.

``http.client`` only — the same no-new-dependencies contract as the
server. A submission yields decoded NDJSON events as they stream;
abandoning the iterator (``close()`` / ``break`` + garbage collection)
closes the connection, which the server interprets as cancellation.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Dict, Iterator, Optional

from repro.service.protocol import decode_event


def retry_delay(hint: float, attempt: int,
                rng: Optional[random.Random] = None,
                cap: float = 60.0) -> float:
    """Backoff around the server's ``Retry-After`` hint: exponential in
    the attempt number, then jittered by ±50%. The jitter is the point —
    a fleet of clients shed at the same instant and sleeping the exact
    hint would wake in lockstep and be shed again together (thundering
    herd); spreading each wake-up over ``[0.5, 1.5] ×`` the backoff
    de-synchronizes them."""
    if rng is None:
        rng = random
    base = min(cap, max(0.05, float(hint)) * (2 ** max(0, attempt)))
    return base * rng.uniform(0.5, 1.5)


class ServiceRejected(RuntimeError):
    """The service shed this submission (HTTP 429 saturated / HTTP 503
    draining): back off around ``retry_after`` seconds — with jitter,
    see :func:`retry_delay` — and resubmit."""

    def __init__(self, retry_after: int, body: Optional[dict] = None,
                 status: int = 429):
        self.retry_after = retry_after
        self.body = body or {}
        self.status = status
        reason = self.body.get("error", "saturated")
        super().__init__(f"service rejected (HTTP {status}, {reason}); "
                         f"retry after {retry_after}s ({self.body})")


class ServiceJobError(RuntimeError):
    """The job failed server-side (terminal ``error`` event)."""

    def __init__(self, event: dict):
        self.event = event
        super().__init__(event.get("message", "job failed"))


class ServiceCancelled(RuntimeError):
    """The flight was cancelled server-side (terminal ``cancelled``
    event — typically every other subscriber disconnected and this
    client attached after the worker observed it)."""


class ServiceClient:
    """One service endpoint; connections are per-call."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 600.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    # -- read-only endpoints ----------------------------------------------

    def _get_json(self, path: str) -> dict:
        conn = self._connect()
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            payload = json.loads(response.read().decode())
            if response.status != 200:
                raise RuntimeError(f"GET {path} -> {response.status}: {payload}")
            return payload
        finally:
            conn.close()

    def metrics(self) -> dict:
        return self._get_json("/metrics")

    def health(self) -> bool:
        try:
            return self._get_json("/healthz").get("ok") is True
        except (OSError, RuntimeError, json.JSONDecodeError):
            return False

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.health():
                return
            time.sleep(interval)
        raise TimeoutError(
            f"repro serve at {self.host}:{self.port} not ready in {timeout}s")

    # -- job submission ----------------------------------------------------

    def submit(self, job: Dict[str, object]) -> Iterator[dict]:
        """Submit one job; yield its event stream. Raises
        :class:`ServiceRejected` on 429 (saturated) and 503 (draining),
        ``RuntimeError`` on any other non-200. Close the iterator to
        cancel interest."""
        conn = self._connect()
        try:
            conn.request("POST", "/v1/jobs", body=json.dumps(job),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            if response.status in (429, 503):
                body = json.loads(response.read().decode() or "{}")
                retry_after = int(response.getheader(
                    "Retry-After", body.get("retry_after", 1)))
                raise ServiceRejected(retry_after, body,
                                      status=response.status)
            if response.status != 200:
                raise RuntimeError(
                    f"POST /v1/jobs -> {response.status}: "
                    f"{response.read().decode(errors='replace').strip()}")
        except BaseException:
            conn.close()
            raise
        return self._events(conn, response)

    @staticmethod
    def _events(conn, response) -> Iterator[dict]:
        try:
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield decode_event(line)
        finally:
            conn.close()

    def run(self, job: Dict[str, object], on_event=None,
            retries: int = 0,
            rng: Optional[random.Random] = None,
            sleep=time.sleep) -> dict:
        """Submit and drain to the terminal event; return the ``result``
        event. ``on_event`` (if given) sees every event as it arrives.

        ``retries`` > 0 resubmits after a :class:`ServiceRejected`
        (429 saturated / 503 draining), sleeping :func:`retry_delay`
        between attempts — jittered exponential backoff seeded by the
        server's ``Retry-After`` hint. The last rejection propagates
        once the budget is spent.

        Raises :class:`ServiceJobError` / :class:`ServiceCancelled` on
        the other terminal events, and ``RuntimeError`` if the stream
        ends without one (server died mid-flight)."""
        attempt = 0
        while True:
            try:
                return self._run_once(job, on_event)
            except ServiceRejected as rejected:
                if attempt >= retries:
                    raise
                sleep(retry_delay(rejected.retry_after, attempt, rng))
                attempt += 1

    def _run_once(self, job: Dict[str, object], on_event=None) -> dict:
        for event in self.submit(job):
            if on_event is not None:
                on_event(event)
            name = event.get("event")
            if name == "result":
                return event
            if name == "error":
                raise ServiceJobError(event)
            if name == "cancelled":
                raise ServiceCancelled(event.get("reason", "cancelled"))
        raise RuntimeError("event stream ended without a terminal event")
