"""Wire protocol for ``repro serve``.

The service speaks HTTP/1.1 with JSON bodies and newline-delimited JSON
(NDJSON) streaming responses — parseable with nothing but a socket and
``json.loads``, which keeps the stdlib-only promise on both ends.

Requests
--------

``POST /v1/jobs`` submits one job, a JSON object with a ``kind``:

* ``{"kind": "sweep", "preset": "fig3-inference"}`` — a registered
  sweep by name, or
* ``{"kind": "sweep", "spec": {"models": [...], "schemes": [...],
  "batches": [...], "modes": [...], "zoo": "auto"}}`` — an ad-hoc grid
  (the same fields as :class:`~repro.experiments.spec.SweepSpec`);
* ``{"kind": "pipeline", "workload": "gpt2", "schemes": [...],
  "chunk_requests": 65536, "params": {"tokens": 1, ...}}`` — a
  streaming :class:`~repro.mem.pipeline.TracePipeline` run (the same
  parameter surface as the ``pipeline_run`` executor).

``GET /metrics`` returns the service metrics snapshot; ``GET /healthz``
returns ``{"ok": true}``.

Responses
---------

An accepted job streams NDJSON events (``Content-Type:
application/x-ndjson``, ``Connection: close`` — the stream ends when
the connection does):

* ``{"event": "accepted", "key": ..., "coalesced": bool, ...}`` first;
* ``{"event": "rows", "index": i, "rows": [...]}`` per completed sweep
  slice / ``{"event": "progress", "chunk": c, "requests_done": r,
  "total_requests": t}`` per pipeline chunk;
* exactly one terminal event: ``result`` (with the full table / rows),
  ``error``, or ``cancelled``.

A saturated service answers ``429`` with a ``Retry-After`` header and
``{"error": "saturated", "retry_after": s, ...}`` — the backpressure
contract: the queue is bounded, the server never buffers unboundedly.

Job identity
------------

Jobs are content-addressed with the same currency as the result cache:
a request reduces to its ordered :class:`~repro.experiments.jobs.Job`
list (executor name + canonical-JSON params), and :meth:`JobRequest.key`
hashes that together with the kind and the code fingerprint. Two
clients asking for the same computation — regardless of JSON key order
— produce the same key, which is what the coalescer keys in-flight
deduplication on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.jobs import Job, canonical_json

PROTOCOL_VERSION = 1

#: request kinds the service executes
KINDS = ("sweep", "pipeline")


class ProtocolError(ValueError):
    """A malformed or unresolvable job request (HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


@dataclass(frozen=True)
class JobRequest:
    """A validated, canonicalized job submission."""

    kind: str
    #: registered sweep name (sweep jobs built from a preset)
    preset: Optional[str] = None
    #: canonical SweepSpec fields (ad-hoc sweep jobs)
    spec: Optional[Dict[str, object]] = None
    #: canonical pipeline_run params (pipeline jobs)
    params: Optional[Dict[str, object]] = None
    _jobs: Tuple[Job, ...] = field(default=(), compare=False, repr=False)

    def jobs(self) -> List[Job]:
        """The ordered executor jobs this request resolves to — the
        unit of caching, execution, and content addressing."""
        return list(self._jobs)

    def key(self, fingerprint: str = "") -> str:
        """Content-addressed identity: SHA-256 over (protocol version,
        kind, ordered job identities, code fingerprint). Matches for
        any two requests that would compute the same thing."""
        material = canonical_json({
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "jobs": [(job.executor, job.params_json) for job in self._jobs],
            "fingerprint": fingerprint,
        })
        return hashlib.sha256(material.encode()).hexdigest()

    def describe(self) -> Dict[str, object]:
        """Summary fields echoed in the ``accepted`` event."""
        out: Dict[str, object] = {"kind": self.kind, "jobs": len(self._jobs)}
        if self.preset is not None:
            out["preset"] = self.preset
        if self.params is not None:
            out["workload"] = self.params.get("workload")
        return out

    def resubmit_body(self) -> Dict[str, object]:
        """A ``POST /v1/jobs`` body that parses back to this request —
        the durable form a restarted daemon rebuilds a flight from
        (stored in the coordinator journal's header metadata).
        Round-trip invariant: ``parse_job_request(r.resubmit_body())``
        yields a request with the same key as ``r``."""
        if self.kind == "sweep":
            if self.preset is not None:
                return {"kind": "sweep", "preset": self.preset}
            return {"kind": "sweep", "spec": self.spec}
        params = dict(self.params or {})
        return {"kind": "pipeline",
                "workload": params.pop("workload"),
                "schemes": params.pop("schemes"),
                "chunk_requests": params.pop("chunk_requests"),
                "params": params}


def _parse_sweep(obj: Dict[str, object]) -> JobRequest:
    from repro.experiments import SweepSpec, get_sweep

    preset = obj.get("preset")
    spec_fields = obj.get("spec")
    _require((preset is None) != (spec_fields is None),
             "sweep needs exactly one of 'preset' or 'spec'")
    if preset is not None:
        _require(isinstance(preset, str), "'preset' must be a string")
        try:
            definition = get_sweep(preset)
        except KeyError as error:
            raise ProtocolError(str(error)) from None
        return JobRequest(kind="sweep", preset=preset,
                          _jobs=tuple(definition.jobs()))
    _require(isinstance(spec_fields, dict), "'spec' must be an object")
    allowed = {"models", "schemes", "batches", "modes", "zoo", "configs"}
    unknown = set(spec_fields) - allowed
    _require(not unknown,
             f"unknown spec field(s) {sorted(unknown)}; allowed: {sorted(allowed)}")
    _require("models" in spec_fields, "'spec.models' is required")
    kwargs: Dict[str, object] = {"models": tuple(spec_fields["models"])}
    for key in ("schemes", "batches", "modes"):
        if key in spec_fields:
            value = spec_fields[key]
            _require(isinstance(value, (list, tuple)) and value,
                     f"'spec.{key}' must be a non-empty list")
            kwargs[key] = tuple(
                tuple(entry) if isinstance(entry, list) else entry
                for entry in value)
    if "zoo" in spec_fields:
        kwargs["zoo"] = str(spec_fields["zoo"])
    if "configs" in spec_fields:
        configs = spec_fields["configs"]
        _require(isinstance(configs, (list, tuple)) and configs
                 and all(isinstance(c, dict) for c in configs),
                 "'spec.configs' must be a non-empty list of objects")
        kwargs["configs"] = tuple(configs)
    try:
        spec = SweepSpec(**kwargs)
        jobs = spec.jobs()
        from repro.experiments.executors import validate_model

        for model in spec.models:
            validate_model(model)
    except (KeyError, ValueError, TypeError) as error:
        raise ProtocolError(
            f"invalid sweep spec: {error.args[0] if error.args else error}"
        ) from None
    canonical_spec = {
        "models": list(spec.models),
        "schemes": [list(s) if isinstance(s, tuple) and not isinstance(s, str)
                    else s for s in spec.schemes],
        "batches": [int(b) for b in spec.batches],
        "modes": list(spec.modes),
        "zoo": spec.zoo,
    }
    return JobRequest(kind="sweep", spec=canonical_spec, _jobs=tuple(jobs))


def _parse_pipeline(obj: Dict[str, object]) -> JobRequest:
    from repro.mem.pipeline import DEFAULT_CHUNK_REQUESTS
    from repro.workloads import build_trace_spec

    workload = obj.get("workload")
    _require(isinstance(workload, str) and bool(workload),
             "pipeline needs a 'workload' name")
    params: Dict[str, object] = {"workload": workload}
    schemes = obj.get("schemes", ["np", "guardnn-c", "guardnn-ci", "bp"])
    _require(isinstance(schemes, (list, tuple)) and schemes
             and all(isinstance(s, str) for s in schemes),
             "'schemes' must be a non-empty list of scheme names")
    _require(len(set(schemes)) == len(schemes), "duplicate scheme names")
    params["schemes"] = list(schemes)
    chunk_requests = obj.get("chunk_requests", DEFAULT_CHUNK_REQUESTS)
    _require(isinstance(chunk_requests, int) and chunk_requests > 0,
             "'chunk_requests' must be a positive integer")
    params["chunk_requests"] = chunk_requests
    extra = obj.get("params", {})
    _require(isinstance(extra, dict), "'params' must be an object")
    reserved = set(params) & set(extra)
    _require(not reserved, f"'params' may not override {sorted(reserved)}")
    params.update(extra)
    # resolve once now so an unknown workload/scheme/parameter is a 400
    # at submission instead of a failed flight later
    try:
        spec_params = {key: value for key, value in params.items()
                       if key not in ("workload", "schemes", "chunk_requests")}
        build_trace_spec(workload, **spec_params)
        from repro.protection.trace_rewriter import build_trace_rewriter

        for scheme in schemes:
            build_trace_rewriter(scheme)
    except (KeyError, ValueError, TypeError) as error:
        raise ProtocolError(
            f"invalid pipeline request: {error.args[0] if error.args else error}"
        ) from None
    job = Job.make("pipeline_run", **params)
    return JobRequest(kind="pipeline", params=json.loads(job.params_json),
                      _jobs=(job,))


def parse_job_request(obj: object) -> JobRequest:
    """Validate and canonicalize a ``POST /v1/jobs`` body."""
    _require(isinstance(obj, dict), "job request must be a JSON object")
    kind = obj.get("kind")
    _require(kind in KINDS,
             f"unknown job kind {kind!r}; choose from {list(KINDS)}")
    if kind == "sweep":
        return _parse_sweep(obj)
    return _parse_pipeline(obj)


# -- event framing ---------------------------------------------------------


def encode_event(event: Dict[str, object]) -> bytes:
    """One NDJSON line (canonical JSON so identical events are
    byte-identical across coalesced subscribers)."""
    return (canonical_json(event) + "\n").encode()


def decode_event(line: bytes) -> Dict[str, object]:
    try:
        event = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"bad event line: {error}") from None
    _require(isinstance(event, dict) and "event" in event,
             "event line must be an object with an 'event' field")
    return event


def rejection_body(retry_after: float, queued: int, running: int) -> Dict[str, object]:
    return {
        "error": "saturated",
        "retry_after": retry_after,
        "queued": queued,
        "running": running,
    }
