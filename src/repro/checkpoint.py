"""Versioned, atomic on-disk checkpoints.

A checkpoint is one JSON file with a fixed envelope::

    {"version": 1,                 # format version (this module bumps it)
     "kind": "trace-pipeline",     # what produced it
     "fingerprint": {...},         # identity of the computation
     "meta": {...},                # caller payload (e.g. a service job)
     "cursor": 1310720,            # resume position (request index)
     ...}                          # producer-specific state

``fingerprint`` pins *what* was being computed (the trace spec, the
scheme set, the chunk size); a loader refuses to resume state against a
different computation. The perf mode (fast vs ``REPRO_SCALAR=1``) is
deliberately **not** part of the fingerprint: the two paths are
bit-identical by contract (the equivalence suites), so a checkpoint
written by one resumes under the other.

Writes are crash-atomic: the payload goes to a temp file in the target
directory, is flushed and fsynced, then published with ``os.replace``;
on POSIX the directory is fsynced too, so a host crash leaves either
the old checkpoint or the new one — never a truncated hybrid. This is
the same discipline the result cache uses
(:meth:`repro.experiments.cache.ResultCache.put`).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

#: bump when the envelope or any producer's state layout changes
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint could not be loaded or does not match the
    computation it is being resumed against."""


def fsync_directory(path: str) -> None:
    """fsync a directory so a just-published rename survives a crash
    (POSIX only; silently a no-op where directories can't be opened)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX / exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def seal_envelope(state: Dict[str, object]) -> Dict[str, object]:
    """A copy of ``state`` stamped with this build's envelope version —
    the exact payload :func:`save_checkpoint` persists. Callers that
    ship an envelope somewhere other than disk (the distributed tier
    migrates them to the coordinator over HTTP) seal it the same way so
    every envelope, wherever it travels, validates identically."""
    payload = dict(state)
    payload["version"] = CHECKPOINT_VERSION
    return payload


def validate_envelope(state: object, kind: Optional[str] = None,
                      source: str = "checkpoint") -> Dict[str, object]:
    """Envelope-validate an already-parsed checkpoint payload: it must
    be an object, speak this build's version, and (when ``kind`` is
    given) be the right kind of checkpoint. Returns the state; raises
    :class:`CheckpointError` otherwise. Shared by :func:`load_checkpoint`
    and the distributed coordinator's ``/v1/checkpoint`` endpoint, so an
    envelope corrupted in flight is rejected with the same rules as one
    corrupted on disk."""
    if not isinstance(state, dict):
        raise CheckpointError(f"corrupt {source}: not an object")
    version = state.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{source} has version {version!r}; this build reads "
            f"version {CHECKPOINT_VERSION}")
    if kind is not None and state.get("kind") != kind:
        raise CheckpointError(
            f"{source} is a {state.get('kind')!r} checkpoint, "
            f"expected {kind!r}")
    return state


def atomic_write_text(path: str, data: str) -> None:
    """Crash-atomically publish ``data`` at ``path``: temp file in the
    target directory, flush + fsync, ``os.replace``, directory fsync.
    The shared discipline behind checkpoints, the result cache, and the
    distributed coordinator's journal compaction — a crash at any point
    leaves either the old file or the new one, never a hybrid."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_checkpoint(path: str, state: Dict[str, object]) -> None:
    """Atomically write ``state`` (adding the version field) to ``path``."""
    atomic_write_text(path, json.dumps(seal_envelope(state)))


def load_checkpoint(path: str, kind: Optional[str] = None) -> Dict[str, object]:
    """Load and envelope-validate a checkpoint. Raises
    :class:`CheckpointError` for a missing/corrupt file, a version this
    code does not speak, or (when ``kind`` is given) the wrong kind."""
    try:
        with open(path, "r") as handle:
            state = json.load(handle)
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from None
    except ValueError as error:
        raise CheckpointError(f"corrupt checkpoint {path}: {error}") from None
    return validate_envelope(state, kind=kind, source=f"checkpoint {path}")
