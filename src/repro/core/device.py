"""The GuardNN secure accelerator — functional model.

:class:`GuardNNDevice` is the trusted boundary (the green box of the
paper's Figure 1): device keys, TRNG/DRBG, counters, Enc/IV engines,
attestation hash engines, and the PE array (int8 GEMM). Everything else
— the host that calls :meth:`execute`, the DRAM behind the MPU, the
network between device and user — is untrusted.

The central design property, enforced structurally here, is that **no
instruction returns plaintext secrets**: every byte leaving
:meth:`execute` is either public (PK, certificate, ECDHE offer,
attestation report) or sealed under a session/memory key. The
adversarial-host test suite hammers this with arbitrary instruction
sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.attestation import AttestationState, AttestationReport, sign_report
from repro.core.channel import SealedMessage, device_channel
from repro.core.compute import gemm_int8, sgd_update_int8, tensor_from_bytes, tensor_to_bytes
from repro.core.errors import ProtocolError, SessionError
from repro.core.isa import (
    ExportOutput,
    Forward,
    GetPK,
    InitSession,
    Instruction,
    SetInput,
    SetReadCTR,
    SetWeight,
    SignOutput,
    UpdateWeight,
)
from repro.core.mpu import MemoryProtectionUnit, SimulatedDram
from repro.crypto.ec import ECPoint
from repro.crypto.ecdh import EcdheExchange, SignedEphemeral
from repro.crypto.keys import DeviceKeys, SessionKeys
from repro.crypto.pki import DeviceCertificate, ManufacturerCA
from repro.crypto.rng import device_drbg
from repro.crypto.sha256 import sha256
from repro.protection.counters import VersionNumber


@dataclass(frozen=True)
class DeviceInfo:
    """GetPK's response: all public."""

    public_key: bytes  # SEC1-encoded PK_Accel
    certificate: DeviceCertificate


@dataclass(frozen=True)
class SessionAck:
    """InitSession's response: the device's signed ephemeral key (public
    by construction) and the negotiated protection mode."""

    device_offer: bytes
    integrity_enabled: bool


class GuardNNDevice:
    """One accelerator instance.

    ``device.untrusted_memory`` exposes the simulated DRAM so tests can
    play the physical attacker; nothing else about the device's internal
    state is reachable from outside the TCB in a real deployment.
    """

    def __init__(self, device_id: bytes, manufacturer: ManufacturerCA,
                 seed: bytes, dram_bytes: int = 1 << 22,
                 debug_log_vns: bool = False):
        self._drbg = device_drbg(seed)
        self._keys = DeviceKeys.provision(self._drbg)
        self._certificate = manufacturer.issue(device_id, self._keys.public)
        self.device_id = device_id
        self._dram = SimulatedDram(dram_bytes)
        self._mpu = MemoryProtectionUnit(self._dram, debug_log_vns=debug_log_vns)
        self._session: Optional[SessionKeys] = None
        self._channel = None
        self._attestation: Optional[AttestationState] = None
        self._integrity = False
        # on-chip region VN tables: {base: counter value at import}.
        # Weight and input regions are few (one per layer / one per
        # input), so these are trivially on-chip state — they never touch
        # DRAM. Feature reads, by contrast, use host-declared counters
        # (SetReadCTR), exactly as the paper prescribes.
        self._weight_vns: Dict[int, int] = {}
        self._input_vns: Dict[int, int] = {}
        # geometry of imported/written regions, needed to re-read them
        self._region_sizes: Dict[int, int] = {}
        self.instruction_count = 0

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------

    @property
    def untrusted_memory(self) -> SimulatedDram:
        return self._dram

    @property
    def mpu(self) -> MemoryProtectionUnit:
        """Exposed for white-box tests (VN logs); not part of the
        untrusted surface."""
        return self._mpu

    def execute(self, instruction: Instruction):
        """The sole entry point for the (untrusted) host."""
        self.instruction_count += 1
        if isinstance(instruction, GetPK):
            return self._get_pk()
        if isinstance(instruction, InitSession):
            return self._init_session(instruction)
        # everything else needs a live session
        if self._session is None:
            raise SessionError("no active session — run InitSession first")
        self._record(instruction)
        if isinstance(instruction, SetWeight):
            return self._set_weight(instruction)
        if isinstance(instruction, SetInput):
            return self._set_input(instruction)
        if isinstance(instruction, SetReadCTR):
            return self._set_read_ctr(instruction)
        if isinstance(instruction, Forward):
            return self._forward(instruction)
        if isinstance(instruction, UpdateWeight):
            return self._update_weight(instruction)
        if isinstance(instruction, ExportOutput):
            return self._export_output(instruction)
        if isinstance(instruction, SignOutput):
            return self._sign_output(instruction)
        raise ProtocolError(f"unknown instruction {type(instruction).__name__}")

    # ------------------------------------------------------------------
    # instruction implementations
    # ------------------------------------------------------------------

    def _get_pk(self) -> DeviceInfo:
        return DeviceInfo(
            public_key=self._keys.public.encode(),
            certificate=self._certificate,
        )

    def _init_session(self, instruction: InitSession) -> SessionAck:
        try:
            user_offer = SignedEphemeral(
                ephemeral_public=ECPoint.decode(instruction.user_offer[:65]),
                signature=instruction.user_offer[65:],
            )
            user_identity = ECPoint.decode(instruction.user_identity)
        except ValueError as exc:
            raise ProtocolError(f"malformed InitSession operands: {exc}") from exc

        exchange = EcdheExchange(self._keys.identity, self._drbg)
        shared = exchange.derive(user_offer, user_identity)
        self._session = SessionKeys.derive_device_side(shared, self._drbg)
        self._channel = device_channel(self._session, self._drbg)
        self._integrity = instruction.enable_integrity
        # "clears all states (keys, data, and hashes), sets a new memory
        # encryption key, resets all counters to zero, and enables memory
        # protection"
        self._mpu.enable(self._session.k_mem_enc, self._session.k_mem_mac,
                         instruction.enable_integrity)
        self._weight_vns.clear()
        self._input_vns.clear()
        self._region_sizes.clear()
        my_offer = exchange.offer()
        binding = sha256(instruction.user_offer + my_offer.encode())
        self._attestation = AttestationState(session_binding=binding)
        self._attestation.record_instruction(instruction.encode())
        return SessionAck(device_offer=my_offer.encode(),
                          integrity_enabled=instruction.enable_integrity)

    def _record(self, instruction: Instruction) -> None:
        if self._attestation is not None:
            self._attestation.record_instruction(instruction.encode())

    def _open_blob(self, blob: bytes) -> bytes:
        return self._channel.open(SealedMessage.decode(blob))

    def _set_weight(self, instruction: SetWeight) -> None:
        plaintext = self._open_blob(instruction.blob)
        self._mpu.counters.on_set_weight()
        vn = self._mpu.counters.weight_vn()
        self._mpu.write_protected(instruction.base, plaintext, vn)
        self._weight_vns[instruction.base] = self._mpu.counters.ctr_w
        self._input_vns.pop(instruction.base, None)
        self._region_sizes[instruction.base] = len(plaintext)
        self._attestation.record_weights(plaintext)

    def _set_input(self, instruction: SetInput) -> None:
        plaintext = self._open_blob(instruction.blob)
        self._mpu.counters.on_set_input()
        vn = self._mpu.counters.input_vn()
        self._mpu.write_protected(instruction.base, plaintext, vn)
        self._input_vns[instruction.base] = self._mpu.counters.ctr_in
        self._weight_vns.pop(instruction.base, None)
        self._region_sizes[instruction.base] = len(plaintext)
        self._attestation.record_input(plaintext)

    def _set_read_ctr(self, instruction: SetReadCTR) -> None:
        self._mpu.counters.set_read_ctr(
            instruction.base, instruction.size, instruction.ctr_fw, instruction.ctr_in
        )

    def _read_vn_for(self, base: int):
        """Reads of weight/input regions use the on-chip tables; feature
        reads use the host-declared read counters (SetReadCTR). Wrong or
        missing host counters yield garbage plaintext, never a leak."""
        if base in self._weight_vns:
            return VersionNumber.for_weight(self._weight_vns[base])
        if base in self._input_vns:
            return VersionNumber.for_input(self._input_vns[base])
        return self._mpu.counters.read_vn_for(base)

    def _forward(self, instruction: Forward) -> None:
        m, k, n = instruction.m, instruction.k, instruction.n
        a_shape = (k, m) if instruction.transpose_a else (m, k)
        b_shape = (n, k) if instruction.transpose_b else (k, n)
        a_bytes = self._mpu.read_protected(
            instruction.input_base, m * k, self._read_vn_for(instruction.input_base)
        )
        b_bytes = self._mpu.read_protected(
            instruction.weight_base, k * n, self._read_vn_for(instruction.weight_base)
        )
        a = tensor_from_bytes(a_bytes, a_shape)
        b = tensor_from_bytes(b_bytes, b_shape)
        if instruction.transpose_a:
            a = np.ascontiguousarray(a.T)
        if instruction.transpose_b:
            b = np.ascontiguousarray(b.T)
        c = gemm_int8(a, b, shift=instruction.shift, relu=instruction.relu)
        vn = self._mpu.counters.next_forward_vn()
        self._mpu.write_protected(instruction.output_base, tensor_to_bytes(c), vn)
        # a feature write invalidates any import-table entry at this base
        self._weight_vns.pop(instruction.output_base, None)
        self._input_vns.pop(instruction.output_base, None)
        self._region_sizes[instruction.output_base] = m * n

    def _update_weight(self, instruction: UpdateWeight) -> None:
        """On-device SGD step; the only instruction besides SetWeight
        that advances CTR_W."""
        k, n = instruction.k, instruction.n
        if instruction.weight_base not in self._weight_vns:
            raise ProtocolError("UpdateWeight target is not an imported weight region")
        w_bytes = self._mpu.read_protected(
            instruction.weight_base, k * n, self._read_vn_for(instruction.weight_base)
        )
        g_bytes = self._mpu.read_protected(
            instruction.grad_base, k * n, self._read_vn_for(instruction.grad_base)
        )
        weights = tensor_from_bytes(w_bytes, (k, n))
        grad = tensor_from_bytes(g_bytes, (k, n))
        updated = sgd_update_int8(weights, grad, lr_shift=instruction.lr_shift)
        self._mpu.counters.on_set_weight()
        vn = self._mpu.counters.weight_vn()
        self._mpu.write_protected(instruction.weight_base, tensor_to_bytes(updated), vn)
        self._weight_vns[instruction.weight_base] = self._mpu.counters.ctr_w
        self._region_sizes[instruction.weight_base] = k * n

    def _export_output(self, instruction: ExportOutput) -> SealedMessage:
        vn = self._read_vn_for(instruction.base)
        plaintext = self._mpu.read_protected(instruction.base, instruction.size, vn)
        self._attestation.record_output(plaintext)
        return self._channel.seal(plaintext)

    def _sign_output(self, instruction: SignOutput) -> AttestationReport:
        return sign_report(self._attestation, self._keys.identity.private)
