"""Remote attestation: hash chains and the SignOutput report.

Section II-C: "GuardNN computes the hashes of inputs and weights when
they are imported, and keeps the hash of the sequence of executed
instructions and their input arguments ... an instruction that signs the
hashes of each output with the DNN data and instructions using the
accelerator's private key so that a user can verify the initial state
and the execution."

The hash chains live on the device; the verification half runs at the
remote user, who recomputes the expected digests from what they sent,
what they received, and the instruction stream the host claims to have
executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.crypto.ec import ECPoint
from repro.crypto.ecdsa import ecdsa_sign, ecdsa_verify, encode_signature, decode_signature
from repro.crypto.sha256 import Sha256, sha256

_REPORT_CONTEXT = b"guardnn-attestation-v1"


class AttestationState:
    """The device-resident hash engines."""

    def __init__(self, session_binding: bytes):
        # binds the report to this session's key exchange transcript
        self.session_binding = session_binding
        self._h_weights = Sha256()
        self._h_input = Sha256()
        self._h_instr = Sha256()
        self._h_output = Sha256()

    def record_weights(self, plaintext: bytes) -> None:
        self._h_weights.update(plaintext)

    def record_input(self, plaintext: bytes) -> None:
        self._h_input.update(plaintext)

    def record_instruction(self, encoded: bytes) -> None:
        self._h_instr.update(encoded)

    def record_output(self, plaintext: bytes) -> None:
        self._h_output.update(plaintext)

    def digests(self) -> Tuple[bytes, bytes, bytes, bytes]:
        return (
            self._h_input.digest(),
            self._h_output.digest(),
            self._h_weights.digest(),
            self._h_instr.digest(),
        )


@dataclass(frozen=True)
class AttestationReport:
    """What SignOutput returns."""

    input_digest: bytes
    output_digest: bytes
    weights_digest: bytes
    instruction_digest: bytes
    session_binding: bytes
    signature: bytes

    def tbs(self) -> bytes:
        return (
            _REPORT_CONTEXT
            + self.input_digest
            + self.output_digest
            + self.weights_digest
            + self.instruction_digest
            + self.session_binding
        )


def sign_report(state: AttestationState, device_private: int) -> AttestationReport:
    """SignOutput's core: sign the current digests with SK_Accel."""
    h_in, h_out, h_w, h_i = state.digests()
    unsigned = AttestationReport(h_in, h_out, h_w, h_i, state.session_binding, b"")
    signature = encode_signature(ecdsa_sign(device_private, unsigned.tbs()))
    return AttestationReport(h_in, h_out, h_w, h_i, state.session_binding, signature)


def verify_report(report: AttestationReport, device_public: ECPoint) -> bool:
    """Signature check only; use :func:`expected_digests` to check the
    content against what the user believes happened."""
    try:
        signature = decode_signature(report.signature)
    except ValueError:
        return False
    return ecdsa_verify(device_public, report.tbs(), signature)


def expected_digests(weights: Iterable[bytes], inputs: Iterable[bytes],
                     outputs: Iterable[bytes],
                     instructions: Iterable[bytes]):
    """Recompute, user-side, the digests an honest execution produces.

    Arguments are the plaintext byte strings in import/export order and
    the canonical instruction encodings in execution order.
    """
    h_w = Sha256()
    for chunk in weights:
        h_w.update(chunk)
    h_in = Sha256()
    for chunk in inputs:
        h_in.update(chunk)
    h_out = Sha256()
    for chunk in outputs:
        h_out.update(chunk)
    h_i = Sha256()
    for encoded in instructions:
        h_i.update(encoded)
    return h_in.digest(), h_out.digest(), h_w.digest(), h_i.digest()
