"""The host-side DFG compiler: any zoo network -> GuardNN instructions.

The paper's division of labour (Section II-B): "run the ML software on
an untrusted host, while restricting the host interface to a limited
set". This module is that ML software — the part that takes a static
data-flow graph (:mod:`repro.accel.dfg`), lays tensors out in device
memory, and emits the GuardNN instruction stream, *including the
SetReadCTR schedule*: for every feature edge the host reconstructs which
(CTR_IN, CTR_F,W) the producing node wrote with, exactly as Section
II-D2 describes ("the host CPU can easily reconstruct the VN used to
write features").

The compiler is used two ways:

* **schedule verification** — :func:`verify_schedule` replays a compiled
  stream against a :class:`~repro.protection.counters.CounterState`
  model and checks (a) every read's declared VN matches what the
  producer wrote and (b) no (address, VN) pair is ever reused. The test
  suite runs this over every network in the zoo, inference and training.
* **instruction-level workloads** — benchmark/example code can inspect
  realistic whole-network instruction streams (sizes, counts, ordering)
  without the functional device executing them (zoo layers are far too
  big for int8-GEMM execution in Python).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.accel.dfg import DataFlowGraph, DfgNode, TensorRegion, build_inference_dfg, build_training_dfg
from repro.accel.models import NetworkModel
from repro.core.isa import (
    ExportOutput,
    Forward,
    Instruction,
    SetInput,
    SetReadCTR,
    SetWeight,
    SignOutput,
    UpdateWeight,
)
from repro.protection.counters import CounterState, VersionNumber


@dataclass
class CompiledProgram:
    """A compiled instruction stream plus the metadata the host keeps."""

    network: str
    training: bool
    instructions: List[Instruction]
    #: region name -> (base, size)
    regions: Dict[str, Tuple[int, int]]
    #: for every Forward, the (ctr_in, ctr_fw) its output was written with
    write_schedule: Dict[int, Tuple[int, int]]  # output_base -> counters

    @property
    def forwards(self) -> List[Forward]:
        return [i for i in self.instructions if isinstance(i, Forward)]

    def instruction_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for instr in self.instructions:
            name = type(instr).__name__
            counts[name] = counts.get(name, 0) + 1
        return counts


class DfgCompiler:
    """Compiles a :class:`DataFlowGraph` into GuardNN instructions.

    Every DFG node becomes one compute instruction (``Forward`` for
    forward/dgrad/wgrad — the latter two with transpose flags — and
    ``UpdateWeight`` for updates). Blob-carrying imports (SetWeight /
    SetInput) are emitted with empty placeholder blobs: this compiler
    produces *schedules*; the functional path (``HonestHost`` /
    ``TrainingHost``) seals real data.
    """

    def __init__(self, model: NetworkModel, batch: int = 1,
                 bytes_per_element: int = 1):
        self.model = model
        self.batch = batch
        self.bpe = bytes_per_element

    def _gemm_dims(self, node: DfgNode) -> Tuple[int, int, int]:
        """Collapse a node's layer into one logical (m, k, n). Layers
        whose GEMM list is empty (pool/elementwise/embedding) get a
        degenerate 1x1xN vector op — the device's vector unit."""
        layer = self.model.layers[node.layer_index]
        gemms = layer.gemms(self.batch)
        if not gemms:
            return 1, 1, max(1, layer.output_elements(self.batch))
        m = gemms[0].m
        k = gemms[0].k
        n = sum(g.n for g in gemms)
        return m, k, n

    def compile(self, training: bool = False) -> CompiledProgram:
        dfg = build_training_dfg(self.model, self.batch, self.bpe) if training \
            else build_inference_dfg(self.model, self.batch, self.bpe)
        return self.compile_dfg(dfg)

    def compile_dfg(self, dfg: DataFlowGraph) -> CompiledProgram:
        instructions: List[Instruction] = []
        counters = CounterState()  # the host's *model* of device counters
        write_schedule: Dict[int, Tuple[int, int]] = {}
        region_table = {name: (r.base, r.size) for name, r in dfg.regions.items()}
        import_kinds: Dict[int, str] = {}  # base -> "weight" | "input"

        # --- imports: all weights, then the input ---
        for name, region in dfg.regions.items():
            if region.kind == "weight":
                instructions.append(SetWeight(base=region.base, blob=b""))
                counters.on_set_weight()
                import_kinds[region.base] = "weight"
        input_region = dfg.regions["input"]
        instructions.append(SetInput(base=input_region.base, blob=b""))
        counters.on_set_input()
        import_kinds[input_region.base] = "input"

        # --- compute nodes in DFG order ---
        for node in dfg.nodes:
            m, k, n = self._gemm_dims(node)
            reads = [r for r in node.reads]
            writes = node.writes[0]
            if node.op == "update":
                weight_region = node.reads[0]
                grad_region = node.reads[1]
                self._declare_read(instructions, counters, write_schedule,
                                   import_kinds, grad_region)
                instructions.append(UpdateWeight(weight_base=weight_region.base,
                                                 grad_base=grad_region.base,
                                                 k=k, n=n))
                counters.on_set_weight()
                continue

            # declare read counters for every feature/gradient operand
            for region in reads:
                self._declare_read(instructions, counters, write_schedule,
                                   import_kinds, region)
            weight_base = reads[1].base if len(reads) > 1 else reads[0].base
            instructions.append(
                Forward(input_base=reads[0].base, weight_base=weight_base,
                        output_base=writes.base, m=m, k=k, n=n,
                        transpose_a=node.op == "wgrad",
                        transpose_b=node.op == "dgrad")
            )
            vn = counters.next_forward_vn()
            write_schedule[writes.base] = (counters.ctr_in, counters.ctr_fw)
            import_kinds.pop(writes.base, None)

        # --- epilogue: export + attest ---
        final = dfg.nodes[-1].writes[0]
        self._declare_read(instructions, counters, write_schedule, import_kinds, final)
        instructions.append(ExportOutput(base=final.base, size=final.size))
        instructions.append(SignOutput())
        return CompiledProgram(network=dfg.network, training=dfg.training,
                               instructions=instructions, regions=region_table,
                               write_schedule=write_schedule)

    def _declare_read(self, instructions, counters: CounterState, write_schedule,
                      import_kinds, region: TensorRegion) -> None:
        """Emit SetReadCTR for a feature/gradient region previously
        written by a Forward; import regions use on-chip VN tables and
        need no declaration."""
        if region.base in import_kinds:
            return
        if region.base not in write_schedule:
            return  # e.g. weights read by dgrad — on-chip table
        ctr_in, ctr_fw = write_schedule[region.base]
        instructions.append(SetReadCTR(base=region.base, size=region.size,
                                       ctr_fw=ctr_fw, ctr_in=ctr_in))


# ---------------------------------------------------------------------------
# schedule verification
# ---------------------------------------------------------------------------


@dataclass
class ScheduleReport:
    """Outcome of replaying a compiled program against the counter model."""

    vn_unique: bool
    reads_consistent: bool
    writes: int
    declared_reads: int
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.vn_unique and self.reads_consistent


def verify_schedule(program: CompiledProgram) -> ScheduleReport:
    """Replay the instruction stream against a fresh counter model.

    Checks the two properties the paper's protection rests on:

    * **VN uniqueness** — across all SetWeight/SetInput/Forward/
      UpdateWeight writes, no (region base, VN) pair repeats;
    * **read consistency** — every SetReadCTR declares exactly the
      counters the covered region was last written with (an honest
      host's schedule decrypts correctly).
    """
    counters = CounterState()
    written_vns: Dict[int, int] = {}  # base -> VN value of last write
    seen_pairs = set()
    violations: List[str] = []
    declared_reads = 0
    writes = 0

    def record_write(base: int, vn: VersionNumber):
        nonlocal writes
        writes += 1
        pair = (base, vn.value)
        if pair in seen_pairs:
            violations.append(f"VN reuse at base {base:#x} vn {vn.value:#x}")
        seen_pairs.add(pair)
        written_vns[base] = vn.value

    for instr in program.instructions:
        if isinstance(instr, SetWeight):
            counters.on_set_weight()
            record_write(instr.base, counters.weight_vn())
        elif isinstance(instr, SetInput):
            counters.on_set_input()
            record_write(instr.base, counters.input_vn())
        elif isinstance(instr, Forward):
            record_write(instr.output_base, counters.next_forward_vn())
        elif isinstance(instr, UpdateWeight):
            counters.on_set_weight()
            record_write(instr.weight_base, counters.weight_vn())
        elif isinstance(instr, SetReadCTR):
            declared_reads += 1
            declared = VersionNumber.for_feature(
                instr.ctr_in if instr.ctr_in is not None else counters.ctr_in,
                instr.ctr_fw,
            )
            actual = written_vns.get(instr.base)
            if actual is None:
                violations.append(f"read of never-written base {instr.base:#x}")
            elif actual != declared.value:
                violations.append(
                    f"read VN mismatch at base {instr.base:#x}: "
                    f"declared {declared.value:#x}, written {actual:#x}"
                )
    vn_unique = not any(v.startswith("VN reuse") for v in violations)
    reads_ok = not any("read" in v for v in violations)
    return ScheduleReport(vn_unique=vn_unique, reads_consistent=reads_ok,
                          writes=writes, declared_reads=declared_reads,
                          violations=violations)
