"""The remote user's side of the GuardNN protocol.

The user: (1) obtains PK_Accel + certificate via ``GetPK`` and verifies
the manufacturer chain; (2) runs the ECDHE exchange of ``InitSession``;
(3) seals weights/inputs for the device and opens exported outputs;
(4) verifies ``SignOutput`` attestation reports against what they believe
was executed. The user never talks to the device directly — blobs and
instructions travel through the untrusted host, which is the point: the
host can drop or reorder things (denial of service) but can never read
or undetectably alter them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.attestation import AttestationReport, expected_digests, verify_report
from repro.core.channel import SealedMessage, user_channel
from repro.core.compute import tensor_from_bytes, tensor_to_bytes
from repro.core.device import DeviceInfo, SessionAck
from repro.core.errors import SessionError
from repro.core.isa import InitSession, Instruction
from repro.crypto.ec import ECPoint
from repro.crypto.ecdh import EcdheExchange, SignedEphemeral
from repro.crypto.ecdsa import EcdsaKeyPair
from repro.crypto.keys import SessionKeys
from repro.crypto.pki import verify_certificate
from repro.crypto.rng import HmacDrbg


class UserSession:
    """One remote user's state across a session."""

    def __init__(self, ca_root_public: ECPoint, drbg: HmacDrbg,
                 identity: Optional[EcdsaKeyPair] = None):
        self._ca_root = ca_root_public
        self._drbg = drbg
        self.identity = identity or EcdsaKeyPair.generate(drbg)
        self.device_public: Optional[ECPoint] = None
        self._exchange: Optional[EcdheExchange] = None
        self._keys: Optional[SessionKeys] = None
        self._channel = None
        self._init_instruction: Optional[InitSession] = None
        # transcript the user keeps for attestation verification
        self.sent_weights: List[bytes] = []
        self.sent_inputs: List[bytes] = []
        self.received_outputs: List[bytes] = []

    # --- step 1: authenticate the device ---

    def authenticate_device(self, info: DeviceInfo) -> None:
        """Verify the manufacturer certificate and pin PK_Accel.
        Raises :class:`SessionError` if the chain does not verify."""
        if not verify_certificate(info.certificate, self._ca_root):
            raise SessionError("device certificate does not verify against the CA root")
        device_public = ECPoint.decode(info.public_key)
        if device_public != info.certificate.device_public:
            raise SessionError("GetPK public key differs from the certified key")
        self.device_public = device_public

    # --- step 2: key exchange ---

    def build_init_session(self, enable_integrity: bool = True) -> InitSession:
        """Produce the InitSession instruction carrying our signed
        ephemeral key."""
        if self.device_public is None:
            raise SessionError("authenticate the device before starting a session")
        self._exchange = EcdheExchange(self.identity, self._drbg)
        offer = self._exchange.offer()
        self._init_instruction = InitSession(
            user_offer=offer.encode(),
            user_identity=self.identity.public.encode(),
            enable_integrity=enable_integrity,
        )
        return self._init_instruction

    def complete_init_session(self, ack: SessionAck) -> None:
        """Consume the device's offer and derive the session keys."""
        if self._exchange is None:
            raise SessionError("build_init_session must run first")
        device_offer = SignedEphemeral(
            ephemeral_public=ECPoint.decode(ack.device_offer[:65]),
            signature=ack.device_offer[65:],
        )
        shared = self._exchange.derive(device_offer, self.device_public)
        self._keys = SessionKeys.derive_user_side(shared)
        self._channel = user_channel(self._keys, self._drbg)

    @property
    def established(self) -> bool:
        return self._channel is not None

    # --- step 3: data plane ---

    def _require_session(self) -> None:
        if not self.established:
            raise SessionError("session not established")

    def seal_weights(self, weights: np.ndarray) -> bytes:
        """Encrypt a weight tensor for SetWeight (and remember its
        plaintext for attestation verification)."""
        self._require_session()
        plaintext = tensor_to_bytes(weights)
        self.sent_weights.append(plaintext)
        return self._channel.seal(plaintext).encode()

    def seal_input(self, tensor: np.ndarray) -> bytes:
        self._require_session()
        plaintext = tensor_to_bytes(tensor)
        self.sent_inputs.append(plaintext)
        return self._channel.seal(plaintext).encode()

    def open_output(self, sealed: SealedMessage, shape) -> np.ndarray:
        """Decrypt an ExportOutput blob."""
        self._require_session()
        plaintext = self._channel.open(sealed)
        self.received_outputs.append(plaintext)
        return tensor_from_bytes(plaintext, shape)

    # --- step 4: attestation ---

    def verify_attestation(self, report: AttestationReport,
                           instruction_stream: List[Instruction]) -> bool:
        """Check that the report is (a) signed by the authenticated
        device and (b) consistent with the data we sent/received and the
        claimed instruction stream (which must start with our
        InitSession)."""
        self._require_session()
        if not verify_report(report, self.device_public):
            return False
        encodings = [instr.encode() for instr in instruction_stream]
        h_in, h_out, h_w, h_i = expected_digests(
            self.sent_weights, self.sent_inputs, self.received_outputs, encodings
        )
        return (
            report.input_digest == h_in
            and report.output_digest == h_out
            and report.weights_digest == h_w
            and report.instruction_digest == h_i
        )
