"""The user<->accelerator transport format: encrypt-then-MAC.

Weights, inputs and outputs travel between the remote user and the
device "through the secure communication channel" (Section II-C) as
:class:`SealedMessage`: AES-CTR under K_Session with a fresh random
nonce, authenticated by HMAC-SHA256 under the transport-MAC key. The
MAC also covers a direction label and a sequence number so messages
cannot be reflected or reordered between the two endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ProtocolError
from repro.crypto.ctr import AesCtr
from repro.crypto.hmac import hmac_sha256, hmac_verify
from repro.crypto.keys import SessionKeys
from repro.crypto.rng import HmacDrbg

_NONCE_LEN = 16
_TAG_LEN = 32


@dataclass(frozen=True)
class SealedMessage:
    """Wire format: nonce || ciphertext || tag."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def encode(self) -> bytes:
        return self.nonce + self.ciphertext + self.tag

    @staticmethod
    def decode(data: bytes) -> "SealedMessage":
        if len(data) < _NONCE_LEN + _TAG_LEN:
            raise ProtocolError("sealed message too short")
        return SealedMessage(
            nonce=data[:_NONCE_LEN],
            ciphertext=data[_NONCE_LEN:-_TAG_LEN],
            tag=data[-_TAG_LEN:],
        )


class SecureChannel:
    """One endpoint's view of the session transport.

    ``label`` distinguishes directions ("user->device" vs
    "device->user"); each endpoint seals with its own label and opens
    with the peer's, preventing reflection.
    """

    def __init__(self, keys: SessionKeys, drbg: HmacDrbg, send_label: bytes,
                 recv_label: bytes):
        self._keys = keys
        self._drbg = drbg
        self._send_label = send_label
        self._recv_label = recv_label
        self._send_seq = 0
        self._recv_seq = 0

    def _aad(self, label: bytes, seq: int, nonce: bytes) -> bytes:
        return label + seq.to_bytes(8, "big") + nonce

    def seal(self, plaintext: bytes) -> SealedMessage:
        """Encrypt + authenticate one message."""
        nonce = self._drbg.generate(_NONCE_LEN)
        ciphertext = AesCtr(self._keys.k_session).crypt(nonce, plaintext)
        aad = self._aad(self._send_label, self._send_seq, nonce)
        tag = hmac_sha256(self._keys.k_transport_mac, aad + ciphertext)
        self._send_seq += 1
        return SealedMessage(nonce=nonce, ciphertext=ciphertext, tag=tag)

    def open(self, message: SealedMessage) -> bytes:
        """Verify + decrypt one message; raises :class:`ProtocolError`
        on any authentication failure."""
        aad = self._aad(self._recv_label, self._recv_seq, message.nonce)
        if not hmac_verify(self._keys.k_transport_mac, aad + message.ciphertext, message.tag):
            raise ProtocolError("transport MAC verification failed")
        self._recv_seq += 1
        return AesCtr(self._keys.k_session).crypt(message.nonce, message.ciphertext)


USER_TO_DEVICE = b"guardnn:user->device"
DEVICE_TO_USER = b"guardnn:device->user"


def user_channel(keys: SessionKeys, drbg: HmacDrbg) -> SecureChannel:
    return SecureChannel(keys, drbg, USER_TO_DEVICE, DEVICE_TO_USER)


def device_channel(keys: SessionKeys, drbg: HmacDrbg) -> SecureChannel:
    return SecureChannel(keys, drbg, DEVICE_TO_USER, USER_TO_DEVICE)
