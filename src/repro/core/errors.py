"""Exception hierarchy for the GuardNN device and protocol."""


class GuardNNError(Exception):
    """Base class for all reproduction-specific errors."""


class SessionError(GuardNNError):
    """No active session, stale keys, or a key-exchange failure."""


class IntegrityError(GuardNNError):
    """Off-chip integrity verification failed (tamper/replay/splice
    detected by the IV engine), or an attestation hash/signature
    mismatch."""


class ProtocolError(GuardNNError):
    """Malformed instruction or transport message (wrong sizes, unknown
    regions, MAC failure on the session channel)."""
