"""The memory protection unit: functional Enc/IV engines + simulated DRAM.

Everything outside :class:`MemoryProtectionUnit` sees only ciphertext.
:class:`SimulatedDram` *is* the untrusted world: tests and attack demos
mutate ``dram.data`` and ``dram.mac_store`` directly to model bus/memory
tampering, splicing, and replay.

Encryption is AES-CTR with counter blocks ``(block address || VN)``
(Section II-D); integrity is a truncated AES-CMAC per 512-B chunk over
``ciphertext || chunk address || VN``. Binding the VN into the MAC is
what makes GuardNN tree-free: a replayed (ciphertext, MAC) pair fails
verification because the *current on-chip* VN differs from the stale one
the MAC was computed with, and the attacker cannot forge a MAC for the
new VN without the key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import IntegrityError, ProtocolError, SessionError
from repro.crypto.cmac import AesCmac
from repro.crypto.ctr import AesCtr
from repro.protection.counters import CounterState, VersionNumber

CHUNK_BYTES = 512  # the prototype's data-movement granularity
_BLOCK = 16


class SimulatedDram:
    """Untrusted off-chip memory: a flat byte array plus the MAC store.

    The MAC store models the DRAM region where the IV engine keeps its
    per-chunk tags; an adversary can overwrite both.
    """

    def __init__(self, size: int):
        if size <= 0 or size % CHUNK_BYTES:
            raise ValueError("DRAM size must be a positive multiple of 512")
        self.size = size
        self.data = bytearray(size)
        self.mac_store: Dict[int, bytes] = {}

    def snapshot(self, base: int, size: int) -> Tuple[bytes, Dict[int, bytes]]:
        """Capture ciphertext + MACs of a region (a replay attacker's
        recording step)."""
        macs = {
            addr: tag
            for addr, tag in self.mac_store.items()
            if base <= addr < base + size
        }
        return bytes(self.data[base : base + size]), macs

    def restore(self, base: int, blob: bytes, macs: Dict[int, bytes]) -> None:
        """Write a recorded region back (the replay itself)."""
        self.data[base : base + len(blob)] = blob
        self.mac_store.update(macs)


@dataclass
class VnLogEntry:
    """One (address, VN) pair fed to AES-CTR — recorded for the
    uniqueness property tests when ``debug_log_vns`` is on."""

    block_address: int
    vn: int


class MemoryProtectionUnit:
    """The trusted boundary around :class:`SimulatedDram`."""

    def __init__(self, dram: SimulatedDram, debug_log_vns: bool = False):
        self.dram = dram
        self.counters = CounterState()
        self._enc: Optional[AesCtr] = None
        self._mac: Optional[AesCmac] = None
        self.integrity_enabled = False
        self.debug_log_vns = debug_log_vns
        self.vn_log: List[VnLogEntry] = []

    @property
    def enabled(self) -> bool:
        return self._enc is not None

    def enable(self, k_mem_enc: bytes, k_mem_mac: bytes, integrity: bool) -> None:
        """InitSession: fresh keys, counters to zero, memory cleared."""
        self._enc = AesCtr(k_mem_enc)
        self._mac = AesCmac(k_mem_mac) if integrity else None
        self.integrity_enabled = integrity
        self.counters.on_init_session()
        self.dram.data[:] = bytes(self.dram.size)
        self.dram.mac_store.clear()
        self.vn_log.clear()

    def _require_enabled(self) -> None:
        if not self.enabled:
            raise SessionError("memory protection not enabled (no session)")

    def _check_range(self, base: int, size: int) -> None:
        if base % CHUNK_BYTES:
            raise ProtocolError("region base must be 512-byte aligned")
        if size <= 0:
            raise ProtocolError("region size must be positive")
        if base + size > self.dram.size:
            raise ProtocolError("region exceeds DRAM")

    def _mac_message(self, chunk_ct: bytes, chunk_addr: int, vn: VersionNumber) -> bytes:
        return chunk_ct + chunk_addr.to_bytes(8, "big") + vn.value.to_bytes(8, "big")

    # ------------------------------------------------------------------

    def write_protected(self, base: int, plaintext: bytes, vn: VersionNumber) -> None:
        """Encrypt ``plaintext`` at ``base`` under ``vn`` and store the
        per-chunk MACs (CI mode)."""
        self._require_enabled()
        self._check_range(base, len(plaintext))
        padded = plaintext + bytes(-len(plaintext) % _BLOCK)
        ciphertext = self._enc.crypt_region(base // _BLOCK, vn.value, padded)
        self.dram.data[base : base + len(ciphertext)] = ciphertext
        if self.debug_log_vns:
            for i in range(0, len(ciphertext), _BLOCK):
                self.vn_log.append(VnLogEntry(base // _BLOCK + i // _BLOCK, vn.value))
        if self._mac is not None:
            for offset in range(0, len(ciphertext), CHUNK_BYTES):
                chunk_addr = base + offset
                chunk = ciphertext[offset : offset + CHUNK_BYTES]
                self.dram.mac_store[chunk_addr] = self._mac.mac(
                    self._mac_message(bytes(chunk), chunk_addr, vn)
                )

    def read_protected(self, base: int, size: int, vn: VersionNumber) -> bytes:
        """Decrypt ``size`` bytes at ``base`` with ``vn``; in CI mode,
        verify every covering chunk MAC first and raise
        :class:`IntegrityError` on mismatch."""
        self._require_enabled()
        self._check_range(base, size)
        padded_size = size + (-size % _BLOCK)
        ciphertext = bytes(self.dram.data[base : base + padded_size])
        if self._mac is not None:
            for offset in range(0, padded_size, CHUNK_BYTES):
                chunk_addr = base + offset
                chunk = ciphertext[offset : offset + CHUNK_BYTES]
                stored = self.dram.mac_store.get(chunk_addr)
                expected = self._mac.mac(self._mac_message(chunk, chunk_addr, vn))
                if stored != expected:
                    raise IntegrityError(
                        f"integrity verification failed for chunk @{chunk_addr:#x}"
                    )
        plaintext = self._enc.crypt_region(base // _BLOCK, vn.value, ciphertext)
        return plaintext[:size]
