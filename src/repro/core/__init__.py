"""The GuardNN device: the paper's primary contribution.

* :mod:`repro.core.isa` — the GuardNN instruction set (Section II-E).
* :mod:`repro.core.device` — a *functional* model of the secure
  accelerator: it really encrypts/decrypts/MACs/signs every byte with the
  :mod:`repro.crypto` primitives and enforces the restricted-ISA
  confidentiality property.
* :mod:`repro.core.mpu` — the memory protection unit (Enc/IV engines +
  on-chip counters) guarding the simulated DRAM.
* :mod:`repro.core.attestation` — hash chains and the SignOutput report.
* :mod:`repro.core.session` — the remote user's side of the protocol.
* :mod:`repro.core.host` — the untrusted host: an honest scheduler that
  compiles DFGs into instructions, and adversarial variants for tests.
* :mod:`repro.core.channel` — the encrypt-then-MAC transport format.
* :mod:`repro.core.compute` — the int8 arithmetic the functional device
  executes (GEMM + requantization + activations).
"""

from repro.core.errors import GuardNNError, IntegrityError, SessionError, ProtocolError
from repro.core.isa import (
    GetPK,
    InitSession,
    SetWeight,
    SetInput,
    Forward,
    UpdateWeight,
    ExportOutput,
    SignOutput,
    SetReadCTR,
    Instruction,
)
from repro.core.device import GuardNNDevice, DeviceInfo
from repro.core.session import UserSession
from repro.core.host import HonestHost, AdversarialHost, TrainingHost
from repro.core.attestation import AttestationReport, verify_report
from repro.core.channel import SecureChannel, SealedMessage

__all__ = [
    "GuardNNError",
    "IntegrityError",
    "SessionError",
    "ProtocolError",
    "GetPK",
    "InitSession",
    "SetWeight",
    "SetInput",
    "Forward",
    "UpdateWeight",
    "ExportOutput",
    "SignOutput",
    "SetReadCTR",
    "Instruction",
    "GuardNNDevice",
    "DeviceInfo",
    "UserSession",
    "HonestHost",
    "AdversarialHost",
    "TrainingHost",
    "AttestationReport",
    "verify_report",
    "SecureChannel",
    "SealedMessage",
]
