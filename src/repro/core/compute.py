"""Quantized arithmetic executed by the functional device.

The FPGA prototype computes in 8-bit (or 6-bit) fixed point (Table II).
The functional model does the same: int8 operands, int32 accumulation,
right-shift requantization with saturation, optional ReLU. Having real
arithmetic lets the end-to-end tests check that a remote user gets the
*correct* result through the full encrypt -> compute -> decrypt path,
against a NumPy reference computed locally.
"""

from __future__ import annotations

import numpy as np


def to_int8(array: np.ndarray) -> np.ndarray:
    return np.clip(np.round(array), -128, 127).astype(np.int8)


def gemm_int8(a: np.ndarray, b: np.ndarray, shift: int = 7, relu: bool = False) -> np.ndarray:
    """C = requantize(A @ B) with int32 accumulation.

    ``shift`` is the right-shift requantization (hardware uses
    truncating shifts; we match a truncating arithmetic shift).
    """
    if a.dtype != np.int8 or b.dtype != np.int8:
        raise TypeError("operands must be int8")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    if not 0 <= shift < 32:
        raise ValueError("shift must be in [0, 32)")
    acc = a.astype(np.int32) @ b.astype(np.int32)
    if relu:
        acc = np.maximum(acc, 0)
    out = acc >> shift  # arithmetic shift (floor), as in fixed-point HW
    return np.clip(out, -128, 127).astype(np.int8)


def sgd_update_int8(weights: np.ndarray, grad: np.ndarray, lr_shift: int = 4) -> np.ndarray:
    """w <- clip(w - (g >> lr_shift)): the UpdateWeight instruction's
    arithmetic. The learning rate is a power of two (shift), as
    fixed-point training hardware implements it."""
    if weights.dtype != np.int8 or grad.dtype != np.int8:
        raise TypeError("operands must be int8")
    if weights.shape != grad.shape:
        raise ValueError(f"shape mismatch: {weights.shape} vs {grad.shape}")
    if not 0 <= lr_shift < 16:
        raise ValueError("lr_shift must be in [0, 16)")
    step = grad.astype(np.int32) >> lr_shift
    return np.clip(weights.astype(np.int32) - step, -128, 127).astype(np.int8)


def tensor_to_bytes(array: np.ndarray) -> bytes:
    """Serialize an int8 tensor row-major (the device's memory layout)."""
    if array.dtype != np.int8:
        raise TypeError("expected int8")
    return array.tobytes(order="C")


def tensor_from_bytes(data: bytes, shape) -> np.ndarray:
    expected = int(np.prod(shape))
    if len(data) < expected:
        raise ValueError(f"need {expected} bytes for shape {shape}, got {len(data)}")
    return np.frombuffer(data[:expected], dtype=np.int8).reshape(shape).copy()
