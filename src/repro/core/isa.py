"""The GuardNN instruction set (Section II-E).

The ISA is an *extension* to a DNN accelerator's base instructions. Its
design carries the paper's central security argument: no instruction —
in any sequence, with any operands — can cause plaintext secrets to
leave the accelerator. The host composes these freely; confidentiality
never depends on the host being honest.

Every instruction provides :meth:`encode` — a canonical byte encoding —
because GuardNN "keeps the hash of the sequence of executed instructions
and their input arguments" for remote attestation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class Instruction:
    """Base class; concrete instructions define ``OPCODE``."""

    OPCODE = 0x00

    def _encode_fields(self) -> bytes:
        return b""

    def encode(self) -> bytes:
        body = self._encode_fields()
        return bytes([self.OPCODE]) + len(body).to_bytes(4, "big") + body


@dataclass(frozen=True)
class GetPK(Instruction):
    """Return the device public key and manufacturer certificate.
    Carries no secrets; always allowed, even without a session."""

    OPCODE = 0x01


@dataclass(frozen=True)
class InitSession(Instruction):
    """Key exchange + full state reset.

    ``user_offer`` is the remote user's signed ephemeral key (encoded);
    ``user_identity`` the user's long-term public key (encoded) used to
    authenticate the offer. ``enable_integrity`` selects GuardNN_CI vs
    GuardNN_C for this session ("a user can choose if integrity
    protection is needed when initiating a session").
    """

    OPCODE = 0x02
    user_offer: bytes = b""
    user_identity: bytes = b""
    enable_integrity: bool = True

    def _encode_fields(self) -> bytes:
        return (
            bytes([1 if self.enable_integrity else 0])
            + len(self.user_offer).to_bytes(4, "big")
            + self.user_offer
            + len(self.user_identity).to_bytes(4, "big")
            + self.user_identity
        )


@dataclass(frozen=True)
class SetWeight(Instruction):
    """Import session-encrypted weights into protected memory at
    ``base``; increments CTR_W and (in CI mode) extends the weight hash."""

    OPCODE = 0x03
    base: int = 0
    blob: bytes = b""  # SealedMessage encoding

    def _encode_fields(self) -> bytes:
        return self.base.to_bytes(8, "big") + self.blob


@dataclass(frozen=True)
class SetInput(Instruction):
    """Import a session-encrypted input; increments CTR_IN and resets
    CTR_F,W."""

    OPCODE = 0x04
    base: int = 0
    blob: bytes = b""

    def _encode_fields(self) -> bytes:
        return self.base.to_bytes(8, "big") + self.blob


@dataclass(frozen=True)
class Forward(Instruction):
    """One compute step (the base accelerator's DNN instruction).

    The functional device executes an int8 GEMM + optional ReLU +
    requantize: reads an (m x k) operand A at ``input_base`` and a
    (k x n) operand B at ``weight_base``, writes the (m x n) output at
    ``output_base`` encrypted under the current feature-write VN, then
    increments CTR_F,W.

    ``transpose_a`` / ``transpose_b`` select transposed operand reads
    (stored shapes (k x m) / (n x k) respectively) — the backward-pass
    GEMMs of training are exactly forward GEMMs with transposes
    (dgrad = g_out @ W^T, wgrad = f_in^T @ g_out), so training needs no
    new compute instruction, matching the paper's premise that the DNN
    ISA stays tiny.
    """

    OPCODE = 0x05
    input_base: int = 0
    weight_base: int = 0
    output_base: int = 0
    m: int = 1
    k: int = 1
    n: int = 1
    relu: bool = False
    shift: int = 7  # right-shift requantization
    transpose_a: bool = False
    transpose_b: bool = False

    def _encode_fields(self) -> bytes:
        flags = (
            (1 if self.relu else 0)
            | (2 if self.transpose_a else 0)
            | (4 if self.transpose_b else 0)
        )
        return b"".join(
            value.to_bytes(8, "big")
            for value in (self.input_base, self.weight_base, self.output_base)
        ) + b"".join(value.to_bytes(4, "big") for value in (self.m, self.k, self.n)) + bytes(
            [flags, self.shift]
        )


@dataclass(frozen=True)
class ExportOutput(Instruction):
    """Re-encrypt ``size`` bytes at ``base`` under K_Session and return
    the sealed blob to the host (who forwards it to the user)."""

    OPCODE = 0x06
    base: int = 0
    size: int = 0

    def _encode_fields(self) -> bytes:
        return self.base.to_bytes(8, "big") + self.size.to_bytes(8, "big")


@dataclass(frozen=True)
class SignOutput(Instruction):
    """Sign the attestation hashes (input, output, weights, instruction
    sequence) with SK_Accel; returns the report."""

    OPCODE = 0x07


@dataclass(frozen=True)
class UpdateWeight(Instruction):
    """On-device SGD step: w <- clip(w - (dW >> lr_shift)).

    Reads the (k x n) weights at ``weight_base`` (on-chip weight VN) and
    the (k x n) gradient at ``grad_base`` (host-declared read counter),
    increments CTR_W, and re-encrypts the updated weights under the new
    weight VN — Section II-D2: "To allow updating weights during
    training, GuardNN keeps CTR_W in the accelerator state and keeps
    track of the number of updates to the weights."
    """

    OPCODE = 0x09
    weight_base: int = 0
    grad_base: int = 0
    k: int = 1
    n: int = 1
    lr_shift: int = 4

    def _encode_fields(self) -> bytes:
        return (
            self.weight_base.to_bytes(8, "big")
            + self.grad_base.to_bytes(8, "big")
            + self.k.to_bytes(4, "big")
            + self.n.to_bytes(4, "big")
            + bytes([self.lr_shift])
        )


@dataclass(frozen=True)
class SetReadCTR(Instruction):
    """Host-supplied read counter for an address range (Section II-E:
    "host CPU sets the CTR_F,R value for an address range"). Only
    affects decryption; wrong values produce garbage, not leaks."""

    OPCODE = 0x08
    base: int = 0
    size: int = 0
    ctr_fw: int = 0
    ctr_in: Optional[int] = None

    def _encode_fields(self) -> bytes:
        has_in = self.ctr_in is not None
        return (
            self.base.to_bytes(8, "big")
            + self.size.to_bytes(8, "big")
            + self.ctr_fw.to_bytes(8, "big")
            + bytes([1 if has_in else 0])
            + (self.ctr_in or 0).to_bytes(8, "big")
        )
