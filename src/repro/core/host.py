"""The untrusted host CPU: scheduler and instruction compiler.

"A scheduler runs on a host CPU and coordinates compute and data
movement by communicating with a remote user and issuing commands to the
DNN accelerator" (Section II-A). The host owns the DFG, the memory map,
and the read counters — *none* of which are trusted for
confidentiality.

* :class:`HonestHost` — the well-behaved scheduler: lays out regions,
  relays the user's sealed blobs, compiles an MLP into Forward chains
  with correct SetReadCTR values, and collects the output/attestation.
* :class:`AdversarialHost` — issues arbitrary/hostile instruction
  sequences and tampers with DRAM; used by the security test suite to
  check that nothing it ever observes is plaintext.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.compute import gemm_int8, sgd_update_int8
from repro.core.device import GuardNNDevice
from repro.core.errors import GuardNNError
from repro.core.isa import (
    ExportOutput,
    Forward,
    GetPK,
    InitSession,
    Instruction,
    SetInput,
    SetReadCTR,
    SetWeight,
    SignOutput,
    UpdateWeight,
)
from repro.core.session import UserSession

_ALIGN = 512


def _aligned(size: int) -> int:
    return (size + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass
class MlpSpec:
    """A small quantized MLP: the functional workload of the end-to-end
    path. ``weights[i]`` is an int8 (k x n) matrix; layer i applies
    GEMM -> shift -> (ReLU except last layer)."""

    weights: List[np.ndarray]
    shift: int = 7

    def __post_init__(self):
        if not self.weights:
            raise ValueError("MLP needs at least one layer")
        for i in range(len(self.weights) - 1):
            if self.weights[i].shape[1] != self.weights[i + 1].shape[0]:
                raise ValueError(f"layer {i}->{i + 1} shape mismatch")

    def reference_forward(self, x: np.ndarray) -> np.ndarray:
        """What the user computes locally to check the device's answer."""
        out = x
        for i, w in enumerate(self.weights):
            relu = i < len(self.weights) - 1
            out = gemm_int8(out, w, shift=self.shift, relu=relu)
        return out

    def reference_train_step(self, x: np.ndarray, g_out: np.ndarray,
                             lr_shift: int = 4) -> List[np.ndarray]:
        """The exact int8 arithmetic one device-side training step
        performs (simplified straight-through backward: the ReLU mask is
        not applied to gradients — the device does the same; this is a
        fixed-point training *demonstration*, not an SOTA recipe).
        Returns the updated weight list (also applied in place)."""
        activations = [x]
        for i, w in enumerate(self.weights):
            relu = i < len(self.weights) - 1
            activations.append(gemm_int8(activations[-1], w, shift=self.shift, relu=relu))
        grad = g_out
        for i in range(len(self.weights) - 1, -1, -1):
            w = self.weights[i]
            d_w = gemm_int8(np.ascontiguousarray(activations[i].T), grad, shift=self.shift)
            if i > 0:
                grad = gemm_int8(grad, np.ascontiguousarray(w.T), shift=self.shift)
            self.weights[i] = sgd_update_int8(w, d_w, lr_shift=lr_shift)
        return self.weights


class HonestHost:
    """Compiles and runs an MLP inference session end to end.

    The host sees only: sealed blobs, ciphertext DRAM, instruction
    acknowledgements, and the (public) attestation report. The method
    names mirror the paper's session flow.
    """

    def __init__(self, device: GuardNNDevice):
        self.device = device
        self.instruction_log: List[Instruction] = []
        self._weight_bases: List[int] = []
        self._input_base: Optional[int] = None
        self._next_free = 0

    def _alloc(self, size: int) -> int:
        base = self._next_free
        self._next_free += _aligned(size)
        return base

    def _issue(self, instruction: Instruction):
        response = self.device.execute(instruction)
        if not isinstance(instruction, GetPK):
            self.instruction_log.append(instruction)
        return response

    # --- session setup (relaying between user and device) ---

    def fetch_device_info(self):
        return self.device.execute(GetPK())

    def establish_session(self, user: UserSession, enable_integrity: bool = True) -> None:
        init = user.build_init_session(enable_integrity)
        ack = self._issue(init)
        user.complete_init_session(ack)

    # --- data plane ---

    def load_weights(self, user: UserSession, spec: MlpSpec) -> None:
        """One SetWeight per layer, user-sealed."""
        self._weight_bases = []
        for w in spec.weights:
            base = self._alloc(w.size)
            blob = user.seal_weights(w)
            self._issue(SetWeight(base=base, blob=blob))
            self._weight_bases.append(base)

    def load_input(self, user: UserSession, x: np.ndarray) -> None:
        self._input_base = self._alloc(x.size)
        blob = user.seal_input(x)
        self._issue(SetInput(base=self._input_base, blob=blob))

    def run_inference(self, spec: MlpSpec, batch: int) -> Tuple[int, int]:
        """Compile the MLP into Forward instructions with correct read
        counters; returns (output_base, output_size).

        Read-counter bookkeeping (this is the host reconstructing VNs
        from its schedule, Section II-D2): layer 1 reads the input region
        (device-resident VN, nothing to declare); layer i>1 reads the
        features Forward i-1 wrote, i.e. CTR_F,W == i-1.
        """
        if self._input_base is None or not self._weight_bases:
            raise GuardNNError("load weights and input first")
        current_base = self._input_base
        current_ctr_fw = None  # None -> import region, on-chip VN
        out_base = current_base
        m = batch
        n = 0
        for i, w_base in enumerate(self._weight_bases):
            k, n = self._layer_shapes[i]
            out_base = self._alloc(m * n)
            if current_ctr_fw is not None:
                self._issue(SetReadCTR(base=current_base, size=m * k, ctr_fw=current_ctr_fw))
            self._issue(
                Forward(
                    input_base=current_base,
                    weight_base=w_base,
                    output_base=out_base,
                    m=m,
                    k=k,
                    n=n,
                    relu=i < len(self._weight_bases) - 1,
                    shift=self._shift,
                )
            )
            current_base = out_base
            current_ctr_fw = i + 1  # Forward i+1 wrote with CTR_F,W == i+1
        return out_base, m * n

    def compile_and_run(self, user: UserSession, spec: MlpSpec,
                        x: np.ndarray) -> Tuple[np.ndarray, bool]:
        """Full flow: weights, input, forwards, export, attest.
        Returns (output tensor at the user, attestation verdict)."""
        self._layer_shapes = [w.shape for w in spec.weights]
        self._shift = spec.shift
        self.load_weights(user, spec)
        self.load_input(user, x)
        batch = x.shape[0]
        out_base, out_size = self.run_inference(spec, batch)
        # declare the read counter for the export (last Forward's write)
        self._issue(SetReadCTR(base=out_base, size=out_size,
                               ctr_fw=len(spec.weights)))
        sealed = self._issue(ExportOutput(base=out_base, size=out_size))
        report = self._issue(SignOutput())
        n_out = spec.weights[-1].shape[1]
        output = user.open_output(sealed, (batch, n_out))
        ok = user.verify_attestation(report, self.instruction_log)
        return output, ok


class TrainingHost(HonestHost):
    """Compiles one training iteration onto the device.

    The schedule (all GEMMs are Forward with transpose flags; the weight
    update is the dedicated UpdateWeight instruction that advances
    CTR_W):

    1. forward pass, keeping every activation a_0..a_L in its own region
       (written under CTR_IN = 1, CTR_F,W = layer index);
    2. export the output; the *user* computes the loss gradient locally
       and seals it back (gradients are secrets too) — imported via
       SetInput, which advances CTR_IN;
    3. backward sweep: wgrad = a_{i-1}^T @ g_i and dgrad = g_i @ W_i^T,
       with SetReadCTR declaring the *old* CTR_IN for activation reads
       (the host reconstructs every VN from its own schedule, exactly
       the paper's Section II-D2 argument);
    4. UpdateWeight per layer.
    """

    def train_step(self, user: UserSession, spec: MlpSpec, x: np.ndarray,
                   make_output_grad, lr_shift: int = 4):
        """Run one iteration; ``make_output_grad(output) -> int8 array``
        is the user's loss-gradient function. Returns the updated weights
        as exported to (and decrypted by) the user."""
        self._layer_shapes = [w.shape for w in spec.weights]
        self._shift = spec.shift
        batch = x.shape[0]
        num_layers = len(spec.weights)

        # --- forward, keeping activation regions ---
        self.load_weights(user, spec)
        self.load_input(user, x)
        input_ctr_in = 1  # first SetInput of the session
        act_bases = [self._input_base]
        act_shapes = [(batch, spec.weights[0].shape[0])]
        current = self._input_base
        for i, w in enumerate(spec.weights):
            k, n = w.shape
            out = self._alloc(batch * n)
            if i > 0:
                self._issue(SetReadCTR(base=current, size=batch * k, ctr_fw=i,
                                       ctr_in=input_ctr_in))
            self._issue(Forward(input_base=current, weight_base=self._weight_bases[i],
                                output_base=out, m=batch, k=k, n=n,
                                relu=i < num_layers - 1, shift=spec.shift))
            act_bases.append(out)
            act_shapes.append((batch, n))
            current = out

        # --- user computes the output gradient ---
        n_out = spec.weights[-1].shape[1]
        self._issue(SetReadCTR(base=current, size=batch * n_out, ctr_fw=num_layers,
                               ctr_in=input_ctr_in))
        sealed = self._issue(ExportOutput(base=current, size=batch * n_out))
        output = user.open_output(sealed, (batch, n_out))
        g_out = make_output_grad(output)
        grad_base = self._alloc(g_out.size)
        self._issue(SetInput(base=grad_base, blob=user.seal_input(g_out)))
        grad_ctr_in = input_ctr_in + 1

        # --- backward sweep ---
        backward_fw = 0  # CTR_F,W under the new CTR_IN
        grad_current = grad_base
        grad_is_import = True
        for i in range(num_layers - 1, -1, -1):
            k, n = spec.weights[i].shape
            # wgrad: a_{i-1}^T (k x batch stored as batch x k) @ g_i
            dw_base = self._alloc(k * n)
            self._issue(SetReadCTR(base=act_bases[i], size=batch * k, ctr_fw=i,
                                   ctr_in=input_ctr_in))
            if not grad_is_import:
                self._issue(SetReadCTR(base=grad_current, size=batch * n,
                                       ctr_fw=backward_fw, ctr_in=grad_ctr_in))
            self._issue(Forward(input_base=act_bases[i], weight_base=grad_current,
                                output_base=dw_base, m=k, k=batch, n=n,
                                transpose_a=True, shift=spec.shift))
            backward_fw += 1
            dw_fw = backward_fw
            if i > 0:
                # dgrad: g_i @ W_i^T
                g_prev = self._alloc(batch * k)
                if not grad_is_import:
                    self._issue(SetReadCTR(base=grad_current, size=batch * n,
                                           ctr_fw=backward_fw - 1, ctr_in=grad_ctr_in))
                self._issue(Forward(input_base=grad_current,
                                    weight_base=self._weight_bases[i],
                                    output_base=g_prev, m=batch, k=n, n=k,
                                    transpose_b=True, shift=spec.shift))
                backward_fw += 1
                grad_current = g_prev
                grad_is_import = False
            # weight update reads dW with its write counter
            self._issue(SetReadCTR(base=dw_base, size=k * n, ctr_fw=dw_fw,
                                   ctr_in=grad_ctr_in))
            self._issue(UpdateWeight(weight_base=self._weight_bases[i],
                                     grad_base=dw_base, k=k, n=n, lr_shift=lr_shift))

        # --- export updated weights back to the user ---
        updated = []
        for i, w in enumerate(spec.weights):
            k, n = w.shape
            sealed_w = self._issue(ExportOutput(base=self._weight_bases[i], size=k * n))
            updated.append(user.open_output(sealed_w, (k, n)))
        return updated


class AdversarialHost:
    """A hostile scheduler: replays, reorders, scrambles operands, and
    tampers with DRAM between instructions. It records everything the
    device ever hands back so tests can assert none of it is plaintext."""

    def __init__(self, device: GuardNNDevice, rng: np.random.Generator):
        self.device = device
        self.rng = rng
        self.observed: List[bytes] = []

    def observe(self, response) -> None:
        """Flatten any response into observed bytes."""
        if response is None:
            return
        for attr in ("encode",):
            if hasattr(response, attr):
                try:
                    self.observed.append(response.encode())
                    return
                except Exception:  # noqa: BLE001 - observation is best-effort
                    pass
        if isinstance(response, (bytes, bytearray)):
            self.observed.append(bytes(response))

    def try_execute(self, instruction: Instruction):
        """Run an instruction; errors are fine (a hostile host sees
        them too) — only leaks matter."""
        try:
            response = self.device.execute(instruction)
        except GuardNNError:
            return None
        self.observe(response)
        return response

    def tamper_dram(self, n_flips: int = 8) -> None:
        """Flip random bits in the untrusted memory."""
        dram = self.device.untrusted_memory
        for _ in range(n_flips):
            index = int(self.rng.integers(0, dram.size))
            dram.data[index] ^= 1 << int(self.rng.integers(0, 8))

    def snapshot_dram(self) -> bytes:
        return bytes(self.device.untrusted_memory.data)
