"""Merkle (hash) tree for the baseline's replay protection.

Section II-D1: "to defeat the replay attack, a Merkle tree is used to
verify the MACs hierarchically in a way that the root of the tree is
stored on-chip". GuardNN itself needs no tree (its VNs never leave the
chip); the tree is part of the BP baseline and of the test suite's
replay-attack demonstrations.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro import perf
from repro.crypto.sha256 import sha256
from repro.crypto.sha256_fast import sha256_many


class MerkleTree:
    """Fixed-leaf-count binary hash tree with incremental updates.

    Leaves are byte strings (e.g. per-block MACs). The root models the
    on-chip register; everything else lives in (untrusted) memory, which
    is why :meth:`verify_leaf` recomputes the path and compares against
    the root only.
    """

    __slots__ = ("num_leaves", "_padded", "_levels")

    def __init__(self, num_leaves: int):
        if num_leaves <= 0:
            raise ValueError("tree needs at least one leaf")
        self.num_leaves = num_leaves
        self._padded = 1 << math.ceil(math.log2(num_leaves)) if num_leaves > 1 else 1
        empty = sha256(b"guardnn-merkle-empty-leaf")
        # levels[0] = leaf hashes, levels[-1] = [root]
        self._levels: List[List[bytes]] = [[empty] * self._padded]
        if perf.fast_enabled():
            # every node of a fresh level is sha256(below || below) of the
            # level's (single, repeated) node value: hash once per level
            node = empty
            width = self._padded
            while width > 1:
                width //= 2
                node = sha256(node + node)
                self._levels.append([node] * width)
            return
        while len(self._levels[-1]) > 1:
            below = self._levels[-1]
            self._levels.append(
                [sha256(below[2 * i] + below[2 * i + 1]) for i in range(len(below) // 2)]
            )

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    def update_leaf(self, index: int, leaf_data: bytes) -> None:
        """Set a leaf and update the path to the root (what the engine
        does on a protected write).

        Incremental: sibling hashes are read from the cached levels (no
        recomputation of untouched subtrees), and a write that leaves
        the leaf hash unchanged short-circuits — the stored path is
        already consistent.
        """
        if not 0 <= index < self.num_leaves:
            raise IndexError("leaf index out of range")
        node = sha256(leaf_data)
        if self._levels[0][index] == node:
            return
        self._levels[0][index] = node
        i = index
        for level in range(1, len(self._levels)):
            i //= 2
            left = self._levels[level - 1][2 * i]
            right = self._levels[level - 1][2 * i + 1]
            self._levels[level][i] = sha256(left + right)

    def update_leaves(self, updates: Iterable[Tuple[int, bytes]]) -> None:
        """Apply many leaf writes in one pass: set every leaf hash, then
        rehash each dirty interior node exactly once per level. A
        sequential ``update_leaf`` loop hashes shared ancestors once per
        leaf (a K-leaf batch under one parent costs K path recomputes);
        this batched walk is what a write-combining protection engine
        does when it retires a whole tile, and it reaches the identical
        final tree state (later writes to the same leaf win)."""
        levels = self._levels
        # validate and hash everything before touching the tree, so a
        # bad index cannot abort mid-mutation and leave interior nodes
        # inconsistent with already-written leaves
        updates = list(updates)
        for index, _leaf_data in updates:
            if not 0 <= index < self.num_leaves:
                raise IndexError("leaf index out of range")
        leaf_hashes = sha256_many([leaf_data for _index, leaf_data in updates])
        dirty = set()
        for (index, _leaf_data), node in zip(updates, leaf_hashes):
            if levels[0][index] != node:
                levels[0][index] = node
                dirty.add(index // 2)
        self.hash_levels(dirty)

    def hash_levels(self, dirty: Sequence[int]) -> None:
        """Rehash the tree upward from a set of dirty level-1 node
        indices, one lane-parallel kernel call per level: all dirty
        nodes of a level are hashed in a single :func:`sha256_many`
        batch, so a K-update burst costs O(tree height) kernel calls
        instead of O(K * height) Python hashes. In scalar mode the same
        walk runs the reference hash node by node."""
        levels = self._levels
        dirty = set(dirty)
        for level in range(1, len(levels)):
            below = levels[level - 1]
            here = levels[level]
            ordered = sorted(dirty)
            hashes = sha256_many([below[2 * i] + below[2 * i + 1] for i in ordered])
            for i, node in zip(ordered, hashes):
                here[i] = node
            dirty = {i // 2 for i in ordered}

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Every stored level as hex (leaves up). Hex keeps the payload
        JSON-safe; the levels are restored verbatim rather than rebuilt,
        so resume costs no rehash of the tree."""
        return {
            "num_leaves": self.num_leaves,
            "levels": [[node.hex() for node in level] for level in self._levels],
        }

    def load_state(self, state: dict) -> None:
        if state["num_leaves"] != self.num_leaves:
            raise ValueError(
                f"merkle geometry mismatch: checkpoint has "
                f"{state['num_leaves']} leaves, tree has {self.num_leaves}")
        levels = [[bytes.fromhex(node) for node in level]
                  for level in state["levels"]]
        if [len(level) for level in levels] != [len(level) for level in self._levels]:
            raise ValueError("merkle level shape mismatch")
        self._levels = levels

    def proof(self, index: int) -> List[bytes]:
        """Sibling path for a leaf (what a verifier fetches from DRAM)."""
        if not 0 <= index < self.num_leaves:
            raise IndexError("leaf index out of range")
        path = []
        i = index
        for level in range(len(self._levels) - 1):
            sibling = i ^ 1
            path.append(self._levels[level][sibling])
            i //= 2
        return path

    def verify_leaf(self, index: int, leaf_data: bytes, proof: List[bytes]) -> bool:
        """Check ``leaf_data`` at ``index`` against the on-chip root using
        an (untrusted) sibling path."""
        if not 0 <= index < self.num_leaves:
            return False
        if len(proof) != len(self._levels) - 1:
            return False
        node = sha256(leaf_data)
        i = index
        for sibling in proof:
            if i % 2 == 0:
                node = sha256(node + sibling)
            else:
                node = sha256(sibling + node)
            i //= 2
        return node == self.root
