"""GuardNN's DNN-specific memory protection (Section II-D).

The key idea: a DNN accelerator's access pattern is so regular that the
per-block version numbers of counter-mode encryption never need to be
stored in DRAM — they are *reconstructed* from a handful of on-chip
counters (CTR_IN, CTR_F,W, CTR_W, and the host-supplied CTR_F,R). That
removes all VN traffic and, because VNs can never be replayed from
memory, the counter tree as well.

* **GuardNN_C** (confidentiality only): AES-CTR with reconstructed VNs;
  *zero* metadata traffic.
* **GuardNN_CI** (+integrity): one truncated MAC per data-movement chunk
  ("we customize the size of a memory block that each MAC protects to
  match the data movement granularity of the accelerator ... 512-B
  chunk"). MACs bind (value, address, VN), so stale-data replay fails
  MAC verification without any tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accel.scheduler import LayerTraffic
from repro.mem.trace import RequestKind
from repro.protection.engine import AesEngineModel
from repro.protection.scheme import ProtectionOverhead, ProtectionScheme


@dataclass(frozen=True)
class GuardNNParams:
    """Geometry of GuardNN's protection."""

    chunk_bytes: int = 512  # data-movement granularity the MAC covers
    mac_bytes: int = 12  # truncated CMAC tag per chunk (96-bit)
    engines: int = 4


class GuardNNProtection(ProtectionScheme):
    """Timing/traffic model for GuardNN_C / GuardNN_CI."""

    provides_confidentiality = True

    def __init__(self, integrity: bool, params: GuardNNParams = GuardNNParams()):
        self.params = params
        self.integrity = integrity
        self.provides_integrity = integrity
        self.name = "GuardNN_CI" if integrity else "GuardNN_C"
        self.engine = AesEngineModel(engines=params.engines)

    def _mac_bytes_for(self, stream_bytes: int) -> int:
        if stream_bytes <= 0:
            return 0
        chunks = math.ceil(stream_bytes / self.params.chunk_bytes)
        return chunks * self.params.mac_bytes

    def layer_overhead(self, traffic: LayerTraffic, op: str, training: bool) -> ProtectionOverhead:
        overhead = ProtectionOverhead()
        if not self.integrity:
            return overhead  # VNs are on-chip: literally nothing extra
        # every read verifies the chunk MAC; every write emits a new one.
        # MACs are packed contiguously, so a stream of N chunks moves
        # ceil(N * mac_bytes) of metadata in the same direction.
        overhead.add(RequestKind.MAC, self._mac_bytes_for(traffic.read_bytes), is_write=False)
        overhead.add(RequestKind.MAC, self._mac_bytes_for(traffic.write_bytes), is_write=True)
        return overhead
