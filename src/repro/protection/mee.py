"""Baseline protection (BP): an Intel-MEE-style memory encryption engine.

"For the baseline memory encryption, we implement the recent memory
encryption engine (MEE) design from Intel as the state-of-the-art"
(Section III-C). The MEE layout, following Gueron (S&P 2016):

* data protected at 64-B cacheline granularity;
* one 8-B version counter per data line, packed 8 to a 64-B *VN line*
  (one VN line covers 512 B of data);
* one 8-B MAC per data line, packed 8 to a 64-B *MAC line*;
* an 8-ary counter tree over the VN lines (level-1 node covers 4 KB of
  data, level-2 32 KB, ...), root on chip;
* a small on-chip metadata cache holding VN/MAC/tree lines.

Traffic model: DNN tensors are streamed. For each pass over a region we
charge, per metadata kind, one line transfer per covered span — *unless*
the layer's whole metadata working set fits in the metadata cache and
this is not the first pass (re-streamed inputs then hit). Writes dirty VN
and MAC lines, which stream back out (read-modify-write), and update the
level-1 tree nodes. Upper tree levels are assumed cached (they are tiny),
except when the metadata working set overflows the cache, in which case
level-2 traffic appears too — the cache-thrash effect the paper points to
for training ("more frequent cache evictions in the VN/MAC cache").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accel.scheduler import LayerTraffic
from repro.mem.trace import RequestKind
from repro.protection.engine import AesEngineModel
from repro.protection.scheme import ProtectionOverhead, ProtectionScheme


@dataclass(frozen=True)
class MeeParams:
    """Geometry of the baseline engine."""

    line_bytes: int = 64  # metadata line size
    data_per_vn_line: int = 512  # 8 x 64-B data lines per VN line
    data_per_mac_line: int = 512
    tree_arity: int = 8
    cache_bytes: int = 64 * 1024  # shared VN/MAC/tree cache
    engines: int = 4  # enough AES throughput; BP's pain is traffic


class BaselineMEE(ProtectionScheme):
    """Timing/traffic model of the baseline protection."""

    name = "BP"
    provides_integrity = True
    provides_confidentiality = True

    def __init__(self, params: MeeParams = MeeParams()):
        self.params = params
        self.engine = AesEngineModel(engines=params.engines)

    # -- helpers ----------------------------------------------------------

    def _lines(self, region_bytes: int, coverage: int) -> int:
        """Metadata lines touched by one pass over ``region_bytes``."""
        if region_bytes <= 0:
            return 0
        return math.ceil(region_bytes / coverage)

    def _metadata_working_set(self, region_bytes: int) -> int:
        """Bytes of metadata covering a region (VN + MAC + level-1)."""
        p = self.params
        vn = self._lines(region_bytes, p.data_per_vn_line)
        mac = self._lines(region_bytes, p.data_per_mac_line)
        l1 = self._lines(region_bytes, p.data_per_vn_line * p.tree_arity)
        return (vn + mac + l1) * p.line_bytes

    def _stream(self, overhead: ProtectionOverhead, stream_bytes: int,
                region_bytes: int, is_write: bool, passes: int, cached: bool) -> None:
        """Account metadata traffic for streaming ``stream_bytes`` over a
        region of ``region_bytes`` (stream may be multiple passes)."""
        p = self.params
        if stream_bytes <= 0:
            return
        passes = max(1, passes)
        # per-pass metadata touches; if the region's metadata fits in the
        # cache, only the first pass misses
        effective_passes = 1 if cached else passes
        vn_lines = self._lines(region_bytes, p.data_per_vn_line) * effective_passes
        mac_lines = self._lines(region_bytes, p.data_per_mac_line) * effective_passes
        l1_lines = self._lines(region_bytes, p.data_per_vn_line * p.tree_arity) * effective_passes

        lb = p.line_bytes
        # reads: fetch VN line (decrypt pad), MAC line (verify), and the
        # level-1 tree node that authenticates the VN line
        overhead.add(RequestKind.VN, vn_lines * lb, is_write=False)
        overhead.add(RequestKind.MAC, mac_lines * lb, is_write=False)
        overhead.add(RequestKind.TREE, l1_lines * lb, is_write=False)
        if not cached:
            # thrashing also spills level-2 traffic
            l2 = self._lines(region_bytes, p.data_per_vn_line * p.tree_arity ** 2)
            overhead.add(RequestKind.TREE, l2 * lb * effective_passes, is_write=False)
        if is_write:
            # dirty VN/MAC/L1 lines stream back out
            overhead.add(RequestKind.VN, vn_lines * lb, is_write=True)
            overhead.add(RequestKind.MAC, mac_lines * lb, is_write=True)
            overhead.add(RequestKind.TREE, l1_lines * lb, is_write=True)

    # -- scheme contract ---------------------------------------------------

    def layer_overhead(self, traffic: LayerTraffic, op: str, training: bool) -> ProtectionOverhead:
        overhead = ProtectionOverhead()
        p = self.params
        working_set = (
            self._metadata_working_set(traffic.weight_size)
            + self._metadata_working_set(traffic.input_size)
            + self._metadata_working_set(traffic.output_size)
        )
        cached = working_set <= p.cache_bytes

        # weights: streamed reads (region = weight_size, possibly many passes)
        if traffic.weight_reads:
            passes = max(1, round(traffic.weight_reads / max(1, traffic.weight_size)))
            self._stream(overhead, traffic.weight_reads, traffic.weight_size,
                         is_write=False, passes=passes, cached=cached)
        # input features
        if traffic.input_reads:
            self._stream(overhead, traffic.input_reads, traffic.input_size,
                         is_write=False, passes=traffic.input_passes, cached=cached)
        # output features: written once per pass
        if traffic.output_writes:
            self._stream(overhead, traffic.output_writes, traffic.output_size,
                         is_write=True, passes=traffic.output_passes, cached=cached)
        return overhead
