"""Event-driven protection: rewrite a data request stream into the full
protected stream, request by request.

The analytic scheme models in :mod:`repro.protection.mee` /
:mod:`repro.protection.guardnn` compute metadata traffic with closed
forms. This module is the *mechanistic* counterpart: it walks an actual
:class:`~repro.mem.trace.MemoryRequest` stream, runs the baseline's
VN/MAC/tree lookups through a real set-associative cache, and emits the
exact interleaved request sequence a memory-protection engine would put
on the bus. The integration tests cross-validate the two models; the
rewritten traces can also be timed on the event-driven DDR4 controller.

Address map: metadata regions live above ``metadata_base`` —
VN lines, then MAC lines, then tree levels — mirroring how MEE carves
out a protected-metadata range.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass, field
from typing import Iterable, List

from repro import perf
from repro.testing import faults
from repro.mem.batch import MAC_CODE, TREE_CODE, VN_CODE, RequestBatch
from repro.mem.cache import SetAssociativeCache
from repro.mem.trace import MemoryRequest, RequestKind
from repro.protection.guardnn import GuardNNParams
from repro.protection.mee import MeeParams

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

if _np is not None:
    from repro.mem.cache_fast import FastSetAssociativeCache
else:  # pragma: no cover - the image bakes numpy in
    FastSetAssociativeCache = None


def build_trace_rewriter(name: str, **params):
    """Mechanistic rewriter for a scheme short name (the same names as
    :data:`repro.protection.SCHEME_FACTORIES`).

    ``np`` and ``guardnn-c`` leave the request stream untouched (AES-CTR
    confidentiality adds no transfers), so they return ``None``;
    ``guardnn-ci`` adds MAC-line traffic, ``bp`` the full MEE
    VN/MAC/tree walk. ``params`` forward to the scheme's parameter
    dataclass. Rewriters carry their state (active MAC line, metadata
    cache) across calls, so one instance rewrites a chunked stream
    exactly as it would the whole trace.
    """
    if name in ("np", "guardnn-c"):
        if params:
            raise ValueError(f"scheme {name!r} takes no rewriter parameters")
        return None
    if name == "guardnn-ci":
        return GuardNNTraceRewriter(integrity=True, params=GuardNNParams(**params))
    if name == "bp":
        return MeeTraceRewriter(params=MeeParams(**params))
    raise KeyError(
        f"unknown scheme {name!r}; known: bp, guardnn-c, guardnn-ci, np")


def _prev_occurrence(values):
    """For each element, the index of the previous element with the same
    value, or ``-1`` for first occurrences. One stable argsort — the
    vectorized backbone of the cache-pressure guess."""
    n = len(values)
    prev = _np.full(n, -1, dtype=_np.int64)
    if n > 1:
        order = _np.argsort(values, kind="stable")
        sorted_values = values[order]
        same = sorted_values[1:] == sorted_values[:-1]
        prev[order[1:][same]] = order[:-1][same]
    return prev


def _run_starts(key, coalescable):
    """Start indices of maximal runs of requests that share a metadata
    key and may be coalesced (single-span requests only); requests with
    ``coalescable`` False become singleton runs. The SoA pre-pass of
    both rewriters: one vectorized sweep replaces the per-request
    Python span/line arithmetic. Returns an ``(n_runs,)`` int index
    array (callers gather per-run attributes from it, so nothing
    per-request ever crosses back into Python)."""
    n = len(key)
    change = _np.empty(n, dtype=bool)
    change[0] = True
    _np.not_equal(key[1:], key[:-1], out=change[1:])
    change[1:] |= ~coalescable[1:] | ~coalescable[:-1]
    return _np.flatnonzero(change)


def _scatter_assemble(out: RequestBatch, batch: RequestBatch, address, size,
                      is_write, ev_pos, ev_addr, ev_write, ev_kind,
                      line_bytes: int) -> None:
    """Interleave the verbatim input stream with positioned metadata
    events (event j rides directly after input request ``ev_pos[j]``)
    in one vectorized scatter instead of per-run array flushes.

    Event columns may be Python lists (the per-run state machines) or
    numpy arrays (the fully vectorized paths)."""
    n = len(address)
    m = len(ev_pos)
    if not m:
        out.extend(batch)
        return
    if isinstance(ev_pos, _np.ndarray):
        pos = ev_pos
        addr_col = ev_addr
        write_col = ev_write.astype(_np.int8)
        kind_col = ev_kind.astype(_np.int8)
    else:
        pos = _np.frombuffer(array("q", ev_pos), dtype=_np.int64)
        addr_col = _np.frombuffer(array("q", ev_addr), dtype=_np.int64)
        write_col = _np.frombuffer(array("b", ev_write), dtype=_np.int8)
        kind_col = _np.frombuffer(array("b", ev_kind), dtype=_np.int8)
    total = n + m
    # input i is preceded by i inputs and every event with pos < i;
    # event j by (pos_j + 1) inputs and j events — emission order wins
    # among events that share a position
    prefix = _np.concatenate(([0], _np.cumsum(_np.bincount(pos, minlength=n))[:-1]))
    dest_input = _np.arange(n, dtype=_np.int64) + prefix
    dest_event = pos + 1 + _np.arange(m, dtype=_np.int64)
    merged_address = _np.empty(total, dtype=_np.int64)
    merged_address[dest_input] = address
    merged_address[dest_event] = addr_col
    merged_size = _np.empty(total, dtype=_np.int64)
    merged_size[dest_input] = size
    merged_size[dest_event] = line_bytes
    merged_write = _np.empty(total, dtype=_np.int8)
    merged_write[dest_input] = is_write
    merged_write[dest_event] = write_col
    merged_kind = _np.empty(total, dtype=_np.int8)
    merged_kind[dest_input] = _np.frombuffer(batch.kind, dtype=_np.int8)
    merged_kind[dest_event] = kind_col
    out.address.frombytes(merged_address.tobytes())
    out.size.frombytes(merged_size.tobytes())
    out.is_write.frombytes(merged_write.tobytes())
    out.kind.frombytes(merged_kind.tobytes())


class GuardNNTraceRewriter:
    """GuardNN_C/CI: confidentiality adds nothing to the stream; CI adds
    MAC-line transfers.

    Tags are ``mac_bytes`` each, packed into 64-B DRAM lines (~5 tags
    per line for the 12-B default). The IV engine holds the *active*
    MAC line in a register, so a sequential chunk stream fetches one
    64-B MAC line per ~5 chunks — and, on writes, streams the filled
    line back out when it retires. This is why GuardNN_CI's ~2.3% byte
    overhead translates to a similarly small cycle overhead instead of
    a per-chunk row-conflict penalty.
    """

    LINE_BYTES = 64

    def __init__(self, integrity: bool, params: GuardNNParams = GuardNNParams(),
                 metadata_base: int = 1 << 34):
        self.integrity = integrity
        self.params = params
        self.metadata_base = metadata_base
        self._active_line = None
        self._active_dirty = False
        self._rewrite_calls = 0

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        return {"active_line": self._active_line,
                "active_dirty": self._active_dirty}

    def load_state(self, state: dict) -> None:
        line = state["active_line"]
        self._active_line = None if line is None else int(line)
        self._active_dirty = bool(state["active_dirty"])

    def _mac_line(self, chunk_index: int) -> int:
        byte_offset = chunk_index * self.params.mac_bytes
        return self.metadata_base + (byte_offset // self.LINE_BYTES) * self.LINE_BYTES

    def _retire_active(self, out: List[MemoryRequest]) -> None:
        if self._active_line is not None and self._active_dirty:
            out.append(MemoryRequest(self._active_line, self.LINE_BYTES, True,
                                     RequestKind.MAC))
        self._active_dirty = False

    def rewrite(self, trace: Iterable[MemoryRequest]) -> List[MemoryRequest]:
        out: List[MemoryRequest] = []
        for req in trace:
            out.append(req)
            if not self.integrity:
                continue
            first = req.address // self.params.chunk_bytes
            last = (req.address + req.size - 1) // self.params.chunk_bytes
            for chunk in range(first, last + 1):
                line = self._mac_line(chunk)
                if line != self._active_line:
                    self._retire_active(out)
                    # reads must fetch the stored tags to verify against;
                    # writes produce fresh tags, so the engine
                    # write-allocates without a fill (streaming writes
                    # never read old MACs)
                    if not req.is_write:
                        out.append(MemoryRequest(line, self.LINE_BYTES, False,
                                                 RequestKind.MAC))
                    self._active_line = line
                if req.is_write:
                    self._active_dirty = True
        return out

    def flush(self) -> List[MemoryRequest]:
        """Retire the active MAC line at end of stream."""
        out: List[MemoryRequest] = []
        self._retire_active(out)
        self._active_line = None
        return out

    # -- structure-of-arrays fast lane ------------------------------------

    def rewrite_batch(self, batch: RequestBatch) -> RequestBatch:
        """Batch counterpart of :meth:`rewrite`: same stream, emitted as
        a :class:`RequestBatch` without per-request object churn. Shares
        the active-MAC-line state with the scalar path.

        Requests that touch only the already-active MAC line (the
        sequential-stream common case: ~5 chunks per 64-B tag line) are
        copied through in bulk array slices between MAC events. With
        numpy, chunk spans and MAC-line addresses are precomputed for
        the whole batch (SoA) and same-line request runs collapse to a
        single state transition each.
        """
        if faults.enabled():
            faults.fire("rewriter.rewrite", self._rewrite_calls)
        self._rewrite_calls += 1
        out = RequestBatch()
        if not self.integrity:
            out.extend(batch)
            return out
        if _np is not None and perf.fast_enabled() and len(batch) >= 16:
            address = _np.frombuffer(batch.address, dtype=_np.int64)
            size = _np.frombuffer(batch.size, dtype=_np.int64)
            chunk_bytes = self.params.chunk_bytes
            if _np.array_equal(address // chunk_bytes,
                               (address + size - 1) // chunk_bytes):
                return self._rewrite_batch_vec(batch, out, address)
            return self._rewrite_batch_runs(batch, out)
        return self._rewrite_batch_loop(batch, out)

    def _rewrite_batch_vec(self, batch: RequestBatch, out: RequestBatch,
                           address) -> RequestBatch:
        """All-single-chunk batches (the streaming common case) need no
        per-run Python state machine at all: same-line runs collapse to
        a MAC-line-change event stream computed entirely in numpy, then
        one scatter assembles the interleaved output."""
        n = len(batch)
        is_write = _np.frombuffer(batch.is_write, dtype=_np.int8)
        line_bytes = self.LINE_BYTES
        line = (self.metadata_base
                + (address // self.params.chunk_bytes) * self.params.mac_bytes
                // line_bytes * line_bytes)
        starts = _run_starts(line, _np.ones(n, dtype=bool))
        ends = _np.concatenate((starts[1:], [n]))
        m = len(starts)
        writes_before = _np.concatenate(([0], _np.cumsum(is_write != 0)))
        run_any_write = writes_before[ends] > writes_before[starts]
        run_line = line[starts]
        run_read_first = is_write[starts] == 0

        first = 0  # run 0 may just extend the carried active line
        if self._active_line is not None and run_line[0] == self._active_line:
            if run_any_write[0]:
                self._active_dirty = True
            first = 1
        if first >= m:
            out.extend(batch)
            return out
        # per line change: retire the previous line if dirty, then
        # fetch the new one when the run leads with a read
        span = m - first
        prev_dirty = _np.empty(span, dtype=bool)
        prev_line = _np.empty(span, dtype=_np.int64)
        prev_dirty[1:] = run_any_write[first:m - 1]
        prev_line[1:] = run_line[first:m - 1]
        prev_dirty[0] = self._active_line is not None and self._active_dirty
        prev_line[0] = self._active_line if self._active_line is not None else 0
        has_fill = run_read_first[first:]
        slot_mask = _np.empty(2 * span, dtype=bool)
        slot_mask[0::2] = prev_dirty  # the retire precedes the fetch
        slot_mask[1::2] = has_fill
        ev_slot = _np.flatnonzero(slot_mask)
        ev_run = ev_slot >> 1
        ev_is_wb = (ev_slot & 1) == 0
        pos = starts[first:]
        ev_pos = pos[ev_run]
        ev_addr = _np.where(ev_is_wb, prev_line[ev_run],
                            run_line[first:][ev_run])
        ev_write = ev_is_wb.astype(_np.int8)
        ev_kind = _np.full(len(ev_slot), MAC_CODE, dtype=_np.int8)
        self._active_line = int(run_line[-1])
        self._active_dirty = bool(run_any_write[-1])
        size = _np.frombuffer(batch.size, dtype=_np.int64)
        _scatter_assemble(out, batch, address, size, is_write,
                          ev_pos, ev_addr, ev_write, ev_kind, line_bytes)
        return out

    def _rewrite_batch_runs(self, batch: RequestBatch, out: RequestBatch) -> RequestBatch:
        """Vectorized pre-pass + per-run state machine. A run is a
        maximal stretch of single-chunk requests whose tags live in one
        MAC line; the scalar machine emits nothing inside such a run,
        so only its first request can produce MAC events and only the
        run's write-OR reaches the dirty bit."""
        n = len(batch)
        address = _np.frombuffer(batch.address, dtype=_np.int64)
        size = _np.frombuffer(batch.size, dtype=_np.int64)
        is_write = _np.frombuffer(batch.is_write, dtype=_np.int8)
        line_bytes = self.LINE_BYTES
        chunk_bytes = self.params.chunk_bytes
        mac_bytes = self.params.mac_bytes
        base = self.metadata_base
        first = address // chunk_bytes
        last = (address + size - 1) // chunk_bytes
        line = base + first * mac_bytes // line_bytes * line_bytes
        single = first == last
        starts = _run_starts(line, single)
        ends = _np.concatenate((starts[1:], [n]))
        # per-run attribute gathers: only run boundaries reach Python
        writes_before = _np.concatenate(([0], _np.cumsum(is_write != 0)))
        run_any_write = (writes_before[ends] > writes_before[starts]).tolist()
        run_line = line[starts].tolist()
        run_single = single[starts].tolist()
        run_first = first[starts].tolist()
        run_last = last[starts].tolist()
        run_write = is_write[starts].tolist()
        starts_list = starts.tolist()

        put_address = out.address.append
        put_size = out.size.append
        put_write = out.is_write.append
        put_kind = out.kind.append
        active_line = self._active_line
        active_dirty = self._active_dirty
        pending = 0  # start of the verbatim run not yet copied out
        for k, s in enumerate(starts_list):
            if run_single[k]:
                this_line = run_line[k]
                if this_line == active_line:
                    if run_any_write[k]:
                        active_dirty = True
                    continue
                # MAC event right after request s; the rest of the run
                # rides the newly active line
                out.address.extend(batch.address[pending:s + 1])
                out.size.extend(batch.size[pending:s + 1])
                out.is_write.extend(batch.is_write[pending:s + 1])
                out.kind.extend(batch.kind[pending:s + 1])
                pending = s + 1
                if active_line is not None and active_dirty:
                    put_address(active_line)
                    put_size(line_bytes)
                    put_write(1)
                    put_kind(MAC_CODE)
                if not run_write[k]:
                    put_address(this_line)
                    put_size(line_bytes)
                    put_write(0)
                    put_kind(MAC_CODE)
                active_line = this_line
                active_dirty = run_any_write[k]
                continue
            # multi-chunk request: singleton run, walk its chunks
            out.address.extend(batch.address[pending:s + 1])
            out.size.extend(batch.size[pending:s + 1])
            out.is_write.extend(batch.is_write[pending:s + 1])
            out.kind.extend(batch.kind[pending:s + 1])
            pending = s + 1
            req_write = run_write[k]
            for chunk in range(run_first[k], run_last[k] + 1):
                chunk_line = base + chunk * mac_bytes // line_bytes * line_bytes
                if chunk_line != active_line:
                    if active_line is not None and active_dirty:
                        put_address(active_line)
                        put_size(line_bytes)
                        put_write(1)
                        put_kind(MAC_CODE)
                    active_dirty = False
                    if not req_write:
                        put_address(chunk_line)
                        put_size(line_bytes)
                        put_write(0)
                        put_kind(MAC_CODE)
                    active_line = chunk_line
                if req_write:
                    active_dirty = True
        out.address.extend(batch.address[pending:])
        out.size.extend(batch.size[pending:])
        out.is_write.extend(batch.is_write[pending:])
        out.kind.extend(batch.kind[pending:])
        self._active_line = active_line
        self._active_dirty = active_dirty
        return out

    def _rewrite_batch_loop(self, batch: RequestBatch, out: RequestBatch) -> RequestBatch:
        """Per-request fallback (no numpy, tiny batches, scalar mode)."""
        put_address = out.address.append
        put_size = out.size.append
        put_write = out.is_write.append
        put_kind = out.kind.append
        line_bytes = self.LINE_BYTES
        chunk_bytes = self.params.chunk_bytes
        mac_bytes = self.params.mac_bytes
        base = self.metadata_base
        active_line = self._active_line
        active_dirty = self._active_dirty
        pending = 0  # start of the verbatim run not yet copied out
        i = 0
        for req_addr, req_size, req_write in zip(
                batch.address, batch.size, batch.is_write):
            first = req_addr // chunk_bytes
            last = (req_addr + req_size - 1) // chunk_bytes
            if first == last:
                line = base + (first * mac_bytes // line_bytes) * line_bytes
                if line == active_line:
                    if req_write:
                        active_dirty = True
                    i += 1
                    continue
            # a MAC event follows this request: flush the verbatim run
            # (including this request), then emit the event stream
            i += 1
            out.address.extend(batch.address[pending:i])
            out.size.extend(batch.size[pending:i])
            out.is_write.extend(batch.is_write[pending:i])
            out.kind.extend(batch.kind[pending:i])
            pending = i
            for chunk in range(first, last + 1):
                line = base + (chunk * mac_bytes // line_bytes) * line_bytes
                if line != active_line:
                    if active_line is not None and active_dirty:
                        put_address(active_line)
                        put_size(line_bytes)
                        put_write(1)
                        put_kind(MAC_CODE)
                    active_dirty = False
                    if not req_write:
                        put_address(line)
                        put_size(line_bytes)
                        put_write(0)
                        put_kind(MAC_CODE)
                    active_line = line
                if req_write:
                    active_dirty = True
        out.address.extend(batch.address[pending:])
        out.size.extend(batch.size[pending:])
        out.is_write.extend(batch.is_write[pending:])
        out.kind.extend(batch.kind[pending:])
        self._active_line = active_line
        self._active_dirty = active_dirty
        return out

    def flush_batch(self) -> RequestBatch:
        """Batch counterpart of :meth:`flush`."""
        out = RequestBatch()
        if self._active_line is not None and self._active_dirty:
            out.append(self._active_line, self.LINE_BYTES, True, MAC_CODE)
        self._active_dirty = False
        self._active_line = None
        return out


@dataclass
class _MeeRegions:
    """Where each metadata kind lives."""

    vn_base: int
    mac_base: int
    tree_bases: List[int]


class MeeTraceRewriter:
    """Baseline protection, mechanistically: per 64-B data line, find
    the covering VN line and MAC line; on a metadata-cache miss, fetch
    the line (a read request) and walk the counter tree upward until a
    cached level authenticates it; dirty evictions emit writebacks."""

    def __init__(self, params: MeeParams = MeeParams(),
                 protected_bytes: int = 1 << 30, metadata_base: int = 1 << 34):
        self.params = params
        # the metadata cache: dense numpy state with the batched
        # access_many kernel on the fast path, the OrderedDict
        # reference in scalar mode — same API, bit-identical behaviour
        # (tests/property/test_cache_equivalence.py)
        if FastSetAssociativeCache is not None and perf.fast_enabled():
            self.cache = FastSetAssociativeCache(
                params.cache_bytes, params.line_bytes, ways=8)
        else:
            self.cache = SetAssociativeCache(
                params.cache_bytes, params.line_bytes, ways=8)
        self.metadata_base = metadata_base
        self.regions = self._lay_out(protected_bytes)
        self._rewrite_calls = 0

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Carried state is exactly the metadata cache (the region
        layout is derived from constructor parameters). The cache's
        canonical form loads into either implementation, so a
        checkpoint written in fast mode resumes in scalar mode and
        vice versa."""
        return {"cache": self.cache.state_dict()}

    def load_state(self, state: dict) -> None:
        self.cache.load_state(state["cache"])

    def _lay_out(self, protected_bytes: int) -> _MeeRegions:
        p = self.params
        vn_lines = math.ceil(protected_bytes / p.data_per_vn_line)
        mac_lines = math.ceil(protected_bytes / p.data_per_mac_line)
        vn_base = self.metadata_base
        mac_base = vn_base + vn_lines * p.line_bytes
        tree_bases = []
        level_base = mac_base + mac_lines * p.line_bytes
        coverage = p.data_per_vn_line * p.tree_arity
        while coverage < protected_bytes:
            lines = math.ceil(protected_bytes / coverage)
            tree_bases.append(level_base)
            level_base += lines * p.line_bytes
            coverage *= p.tree_arity
        return _MeeRegions(vn_base, mac_base, tree_bases)

    def _vn_line(self, address: int) -> int:
        return self.regions.vn_base + (address // self.params.data_per_vn_line) * self.params.line_bytes

    def _mac_line(self, address: int) -> int:
        return self.regions.mac_base + (address // self.params.data_per_mac_line) * self.params.line_bytes

    def _tree_line(self, address: int, level: int) -> int:
        coverage = self.params.data_per_vn_line * self.params.tree_arity ** (level + 1)
        return self.regions.tree_bases[level] + (address // coverage) * self.params.line_bytes

    def _kind_of(self, meta_address: int) -> RequestKind:
        if meta_address < self.regions.mac_base:
            return RequestKind.VN
        if not self.regions.tree_bases or meta_address < self.regions.tree_bases[0]:
            return RequestKind.MAC
        return RequestKind.TREE

    def _touch(self, out: List[MemoryRequest], meta_address: int, is_write: bool,
               kind: RequestKind) -> bool:
        """Access one metadata line through the cache; emit fill +
        writeback requests. Returns True on hit."""
        hit, writeback = self.cache.access(meta_address, is_write)
        if writeback is not None:
            out.append(MemoryRequest(writeback, self.params.line_bytes, True,
                                     self._kind_of(writeback)))
        if not hit:
            out.append(MemoryRequest(meta_address, self.params.line_bytes, False, kind))
        return hit

    def rewrite(self, trace: Iterable[MemoryRequest]) -> List[MemoryRequest]:
        out: List[MemoryRequest] = []
        unit = self.params.data_per_vn_line  # one metadata line per unit
        for req in trace:
            out.append(req)
            first_unit = req.address // unit
            last_unit = (req.address + req.size - 1) // unit
            for u in range(first_unit, last_unit + 1):
                addr = u * unit
                # VN line (decrypt pad / increment on write)
                vn_hit = self._touch(out, self._vn_line(addr), req.is_write, RequestKind.VN)
                # MAC line (verify on read, update on write)
                self._touch(out, self._mac_line(addr), req.is_write, RequestKind.MAC)
                if not vn_hit:
                    # authenticate the fetched VN line: walk the tree
                    # upward until a level hits in the cache
                    for level in range(len(self.regions.tree_bases)):
                        if self._touch(out, self._tree_line(addr, level),
                                       req.is_write, RequestKind.TREE):
                            break
        return out

    def flush(self) -> List[MemoryRequest]:
        """Drain dirty metadata at end of run (writebacks)."""
        out = []
        for address in self.cache.flush():
            out.append(MemoryRequest(address, self.params.line_bytes, True,
                                     self._kind_of(address)))
        return out

    # -- structure-of-arrays fast lane ------------------------------------

    def _kind_code_of(self, meta_address: int) -> int:
        if meta_address < self.regions.mac_base:
            return VN_CODE
        if not self.regions.tree_bases or meta_address < self.regions.tree_bases[0]:
            return MAC_CODE
        return TREE_CODE

    def rewrite_batch(self, batch: RequestBatch) -> RequestBatch:
        """Batch counterpart of :meth:`rewrite`: identical request
        sequence (same metadata-cache state machine), emitted straight
        into parallel arrays.

        With numpy, VN-unit spans are precomputed for the whole batch
        (SoA) and runs of requests inside one 512-B unit collapse: the
        run's first request drives the cache state machine, the rest
        are provably hits and reduce to one dirty-OR / LRU touch.

        When the cache is the vectorized engine, the whole batch is
        first attempted as one *speculative program*: every metadata
        touch the batch will make is laid out up front (tree-walk
        depths guessed by a vectorized infinite-cache heuristic), run
        through :meth:`~repro.mem.cache_fast.FastSetAssociativeCache.simulate`
        in set-collision waves, and validated against the guess. A
        validated program is provably the sequential result (guards are
        causally determined by the access prefix, so any fixpoint is
        unique); a failed validation restores the cache snapshot and
        falls back to the per-run state machine."""
        if faults.enabled():
            faults.fire("rewriter.rewrite", self._rewrite_calls)
        self._rewrite_calls += 1
        if _np is not None and perf.fast_enabled() and len(batch) >= 16:
            if (isinstance(self.cache, FastSetAssociativeCache)
                    and len(self.regions.tree_bases) + 1 < self.cache.ways):
                out = self._rewrite_batch_spec(batch)
                if out is not None:
                    return out
            return self._rewrite_batch_runs(batch)
        return self._rewrite_batch_loop(batch)

    def _rewrite_batch_spec(self, batch: RequestBatch):
        """Speculative whole-batch rewrite on the vectorized cache.

        Returns the rewritten batch, or ``None`` if the guessed
        tree-walk depths failed validation (cache state restored; the
        caller re-runs sequentially)."""
        n = len(batch)
        address = _np.frombuffer(batch.address, dtype=_np.int64)
        size = _np.frombuffer(batch.size, dtype=_np.int64)
        is_write = _np.frombuffer(batch.is_write, dtype=_np.int8)
        cache = self.cache
        line_bytes = self.params.line_bytes
        unit = self.params.data_per_vn_line
        per_mac = self.params.data_per_mac_line
        vn_base = self.regions.vn_base
        mac_base = self.regions.mac_base
        tree_bases = self.regions.tree_bases
        arity = self.params.tree_arity
        levels = len(tree_bases)

        # -- runs and items (one item per (run, VN unit)) ------------------
        first_unit = address // unit
        last_unit = (address + size - 1) // unit
        single = first_unit == last_unit
        starts = _run_starts(first_unit, single)
        ends = _np.concatenate((starts[1:], [n]))
        m = len(starts)
        writes_before = _np.concatenate(([0], _np.cumsum(is_write != 0)))
        run_rest_write = writes_before[ends] > writes_before[
            _np.minimum(starts + 1, n)]
        run_single = single[starts]
        run_write = is_write[starts] != 0
        run_len = ends - starts
        run_first = first_unit[starts]
        run_units = _np.where(run_single, 1, last_unit[starts] - run_first + 1)

        item_total = int(run_units.sum())
        run_item_off = _np.concatenate(([0], _np.cumsum(run_units)[:-1]))
        item_run = _np.repeat(_np.arange(m), run_units)
        item_unit = (run_first[item_run]
                     + _np.arange(item_total) - run_item_off[item_run])
        item_pos = starts[item_run]
        item_write = run_write[item_run]
        item_addr = item_unit * unit
        item_vn = vn_base + item_unit * line_bytes
        item_mac = mac_base + item_addr // per_mac * line_bytes
        # hit-run coalescing: single runs fold their tail's retouches
        item_rest = _np.where(run_single[item_run], run_len[item_run] - 1, 0)
        item_fold_write = run_rest_write[item_run] & (item_rest > 0)

        # -- tree-walk depth guesses ---------------------------------------
        ways = cache.ways
        pressure = ways * cache.num_sets  # insert-pressure eviction horizon
        cold = not cache.any_resident()  # fresh cache: skip residency probes

        def guessed_hit(line, idx):
            """Predict hit/miss for touches of ``line`` at item
            positions ``idx``: a re-touch hits while the VN/MAC insert
            pressure since the previous touch (~2 fills per item spread
            over num_sets sets) cannot have filled its set's ways; an
            untouched start-resident line hits on the same horizon from
            batch start. Pure heuristic — validation decides."""
            prev = _prev_occurrence(line)
            seen = prev >= 0
            gap = _np.where(seen, idx - idx[prev], idx + 1)
            recent = 2 * gap < pressure
            if cold:
                return seen & recent
            return (seen | cache.contains_many(line)) & recent

        def guess_depths(vn_hit, fixed, floor):
            """Per-item walk depths implied by ``vn_hit`` plus the hit
            heuristic level by level; ``fixed >= 0`` pins a depth
            (observed hit in the prior attempt), ``floor`` forces
            guessed misses below that level (observed misses)."""
            depth = _np.zeros(item_total, dtype=_np.int64)
            if not levels:
                return depth
            alive = ~vn_hit
            if fixed is not None:
                pinned = fixed >= 0
                depth[pinned & ~vn_hit] = fixed[pinned & ~vn_hit]
                alive &= ~pinned
            coverage = unit * arity
            for level in range(levels):
                idx = _np.flatnonzero(alive)
                if not idx.size:
                    break
                depth[idx] = level + 1
                line = (tree_bases[level]
                        + item_addr[idx] // coverage * line_bytes)
                hit = guessed_hit(line, idx)
                if floor is not None:
                    hit &= level >= floor[idx]
                alive[idx[hit]] = False
                coverage *= arity
            return depth

        item_index = _np.arange(item_total)
        depth = guess_depths(guessed_hit(item_vn, item_index), None, None)

        snapshot = (cache.tags.copy(), cache.dirty.copy(),
                    cache.stamp.copy(), cache._clock,
                    (cache.stats.hits, cache.stats.misses,
                     cache.stats.evictions, cache.stats.dirty_evictions))
        base_clock = cache._clock

        # a failed attempt pins what it observed and can extend a
        # mispredicted walk by one level, so depth-`levels` walks need
        # up to levels + 1 tries before the sequential fallback is the
        # only honest answer (each retry is one cheap `simulate`; the
        # fallback is orders of magnitude slower)
        attempts = max(2, levels + 1)
        for attempt in range(attempts):
            # -- lay the program out as flat entry arrays ------------------
            counts = 2 + depth  # vn, mac, then `depth` tree touches
            slots = counts + 2 * (item_rest > 0)  # + folded retouch slots
            entry_off = _np.concatenate(([0], _np.cumsum(counts)[:-1]))
            slot_off = _np.concatenate(([0], _np.cumsum(slots)[:-1]))
            total_entries = int(counts.sum())
            entry_item = _np.repeat(item_index, counts)
            k_in_item = _np.arange(total_entries) - entry_off[entry_item]

            e_addr = _np.empty(total_entries, dtype=_np.int64)
            vn_mask = k_in_item == 0
            mac_mask = k_in_item == 1
            tree_mask = k_in_item >= 2
            e_addr[vn_mask] = item_vn
            e_addr[mac_mask] = item_mac
            e_kind = _np.where(vn_mask, VN_CODE,
                               _np.where(mac_mask, MAC_CODE, TREE_CODE))
            tree_level = k_in_item[tree_mask] - 2
            tree_item = entry_item[tree_mask]
            if tree_item.size:
                cov = unit * arity ** (_np.arange(levels, dtype=_np.int64) + 1)
                bases = _np.asarray(tree_bases, dtype=_np.int64)
                e_addr[tree_mask] = (bases[tree_level]
                                     + item_addr[tree_item] // cov[tree_level]
                                     * line_bytes)
            e_write = item_write[entry_item] | (
                item_fold_write[entry_item] & ~tree_mask)
            # stamps: each entry's program slot; a folded retouch
            # inflates its touch's stamp to the replay slot (safe: a
            # walk inserts at most 2 + levels <= ways lines into any
            # set, so victims are always pre-run residents whose
            # relative order is unchanged)
            stamps = slot_off[entry_item] + k_in_item
            fold_e = (item_rest > 0)[entry_item]
            stamps[fold_e & vn_mask] = (slot_off + counts)[entry_item[
                fold_e & vn_mask]]
            stamps[fold_e & mac_mask] = (slot_off + counts + 1)[entry_item[
                fold_e & mac_mask]]
            stamps += base_clock

            hits = _np.empty(total_entries, dtype=bool)
            writebacks = _np.full(total_entries, -1, dtype=_np.int64)
            cache.simulate(e_addr, e_write, stamps, hits, writebacks)

            # -- validate the guess ----------------------------------------
            ok = True
            vn_hit = hits[entry_off]
            t_hits = hits[tree_mask]
            if levels:
                if _np.any(vn_hit != (depth == 0)):
                    ok = False
                elif tree_item.size:
                    t_depth = depth[tree_item]
                    expected = (tree_level == t_depth - 1) & (t_depth < levels)
                    unconstrained = (tree_level == t_depth - 1) & (
                        t_depth == levels)
                    if _np.any((t_hits != expected) & ~unconstrained):
                        ok = False
            if ok:
                cache._clock = base_clock + int(slots.sum())
                cache.credit_hits(2 * int(item_rest.sum()))
                break

            cache.tags[...] = snapshot[0]
            cache.dirty[...] = snapshot[1]
            cache.stamp[...] = snapshot[2]
            cache._clock = snapshot[3]
            (cache.stats.hits, cache.stats.misses, cache.stats.evictions,
             cache.stats.dirty_evictions) = snapshot[4]
            if attempt == attempts - 1:
                return None
            # refine: actual hits pin what the attempt proved, the
            # heuristic only extends walks past the proven misses
            first_hit = _np.full(item_total, levels, dtype=_np.int64)
            hit_tree = t_hits.nonzero()[0]
            if hit_tree.size:
                _np.minimum.at(first_hit, tree_item[hit_tree],
                               tree_level[hit_tree])
            fixed = _np.where(first_hit < levels, first_hit + 1, -1)
            depth = guess_depths(vn_hit, fixed, depth)

        # -- assemble positioned events ------------------------------------
        has_wb = writebacks >= 0
        has_fill = ~hits
        slot_mask = _np.empty(2 * total_entries, dtype=bool)
        slot_mask[0::2] = has_wb  # a writeback precedes its fill
        slot_mask[1::2] = has_fill
        ev_slot = _np.flatnonzero(slot_mask)
        ev_entry = ev_slot >> 1
        ev_is_wb = (ev_slot & 1) == 0
        ev_pos = item_pos[entry_item[ev_entry]]
        ev_addr = _np.where(ev_is_wb, writebacks[ev_entry], e_addr[ev_entry])
        ev_write = ev_is_wb.astype(_np.int8)
        wb_kind = _np.where(
            ev_addr < mac_base, VN_CODE,
            _np.where(ev_addr < (tree_bases[0] if tree_bases else 1 << 62),
                      MAC_CODE, TREE_CODE))
        ev_kind = _np.where(ev_is_wb, wb_kind, e_kind[ev_entry])

        out = RequestBatch()
        _scatter_assemble(out, batch, address, size, is_write,
                          ev_pos, ev_addr, ev_write, ev_kind, line_bytes)
        return out

    def _rewrite_batch_runs(self, batch: RequestBatch) -> RequestBatch:
        out = RequestBatch()
        n = len(batch)
        address = _np.frombuffer(batch.address, dtype=_np.int64)
        size = _np.frombuffer(batch.size, dtype=_np.int64)
        is_write = _np.frombuffer(batch.is_write, dtype=_np.int8)
        line_bytes = self.params.line_bytes
        unit = self.params.data_per_vn_line
        per_mac = self.params.data_per_mac_line
        access = self.cache.access
        contains = self.cache.contains
        kind_code_of = self._kind_code_of
        vn_base = self.regions.vn_base
        mac_base = self.regions.mac_base
        tree_bases = self.regions.tree_bases
        arity = self.params.tree_arity

        first_unit = address // unit
        last_unit = (address + size - 1) // unit
        single = first_unit == last_unit
        starts = _run_starts(first_unit, single)
        ends = _np.concatenate((starts[1:], [n]))
        writes_before = _np.concatenate(([0], _np.cumsum(is_write != 0)))
        run_any_write = (writes_before[ends] > writes_before[starts]).tolist()
        # writes among requests s+1..e-1 (the coalesced tail of a run)
        run_rest_write = (writes_before[ends]
                          > writes_before[_np.minimum(starts + 1, n)]).tolist()
        run_first = first_unit[starts].tolist()
        run_last = last_unit[starts].tolist()
        run_single = single[starts].tolist()
        run_write = is_write[starts].tolist()
        run_len = (ends - starts).tolist()
        starts_list = starts.tolist()
        # a fill inserted by this walk can only be evicted by the walk's
        # own later insertions; with <= tree-levels + 1 of those after
        # the VN fill, an 8-way set can never push VN/MAC out before the
        # run's remaining (all-hit) requests replay
        coalesce_safe = len(tree_bases) + 1 < self.cache.ways

        retouch = self.cache.retouch
        # positioned metadata emissions: (after-request-index, address,
        # is_write, kind) as four parallel lists. The interleaved output
        # stream is scatter-assembled once at the end instead of being
        # flushed run by run.
        ev_pos, ev_addr, ev_write, ev_kind = [], [], [], []
        put_pos = ev_pos.append
        put_addr = ev_addr.append
        put_write = ev_write.append
        put_kind = ev_kind.append

        def touch(position: int, meta_address: int, write: int,
                  kind_code: int) -> bool:
            hit, writeback = access(meta_address, write)
            if writeback is not None:
                put_pos(position)
                put_addr(writeback)
                put_write(1)
                put_kind(kind_code_of(writeback))
            if not hit:
                put_pos(position)
                put_addr(meta_address)
                put_write(0)
                put_kind(kind_code)
            return hit

        for k, s in enumerate(starts_list):
            if run_single[k]:
                u = run_first[k]
                addr = u * unit
                vn_line = vn_base + u * line_bytes
                mac_line = mac_base + addr // per_mac * line_bytes
                write = run_write[k]
                # VN and MAC touches inlined (the two per-run constants)
                vn_hit, writeback = access(vn_line, write)
                if writeback is not None:
                    put_pos(s)
                    put_addr(writeback)
                    put_write(1)
                    put_kind(kind_code_of(writeback))
                if not vn_hit:
                    put_pos(s)
                    put_addr(vn_line)
                    put_write(0)
                    put_kind(VN_CODE)
                mac_hit, writeback = access(mac_line, write)
                if writeback is not None:
                    put_pos(s)
                    put_addr(writeback)
                    put_write(1)
                    put_kind(kind_code_of(writeback))
                if not mac_hit:
                    put_pos(s)
                    put_addr(mac_line)
                    put_write(0)
                    put_kind(MAC_CODE)
                if not vn_hit:
                    coverage = unit * arity
                    for level in range(len(tree_bases)):
                        if touch(s, tree_bases[level] + addr // coverage * line_bytes,
                                 write, TREE_CODE):
                            break
                        coverage *= arity
                rest = run_len[k] - 1
                if rest:
                    if coalesce_safe or (contains(vn_line) and contains(mac_line)):
                        # the remaining requests of the run can only hit:
                        # their whole cache effect is one LRU re-touch of
                        # (VN, MAC) and an OR over their write bits
                        rest_write = run_rest_write[k]
                        retouch(vn_line, rest_write, rest)
                        retouch(mac_line, rest_write, rest)
                    else:  # pragma: no cover - needs a tree walk deep
                        # enough to evict the just-filled VN/MAC lines
                        for i in range(s + 1, s + 1 + rest):
                            w_i = int(is_write[i])
                            vn_hit = touch(i, vn_line, w_i, VN_CODE)
                            touch(i, mac_line, w_i, MAC_CODE)
                            if not vn_hit:
                                coverage = unit * arity
                                for level in range(len(tree_bases)):
                                    if touch(i, tree_bases[level]
                                             + addr // coverage * line_bytes,
                                             w_i, TREE_CODE):
                                        break
                                    coverage *= arity
                continue
            # multi-unit request: singleton run through the full walk
            write = run_write[k]
            for u in range(run_first[k], run_last[k] + 1):
                addr = u * unit
                vn_hit = touch(s, vn_base + u * line_bytes, write, VN_CODE)
                touch(s, mac_base + addr // per_mac * line_bytes, write, MAC_CODE)
                if not vn_hit:
                    coverage = unit * arity
                    for level in range(len(tree_bases)):
                        if touch(s, tree_bases[level] + addr // coverage * line_bytes,
                                 write, TREE_CODE):
                            break
                        coverage *= arity
        _scatter_assemble(out, batch, address, size, is_write,
                          ev_pos, ev_addr, ev_write, ev_kind, line_bytes)
        return out

    def _rewrite_batch_loop(self, batch: RequestBatch) -> RequestBatch:
        """Per-request fallback (no numpy, tiny batches, scalar mode)."""
        out = RequestBatch()
        line_bytes = self.params.line_bytes
        unit = self.params.data_per_vn_line
        per_mac = self.params.data_per_mac_line
        access = self.cache.access
        kind_code_of = self._kind_code_of
        vn_base = self.regions.vn_base
        mac_base = self.regions.mac_base
        tree_bases = self.regions.tree_bases
        arity = self.params.tree_arity

        # metadata emissions of the current request, buffered so that
        # all-hit requests (the streaming common case once the cache is
        # warm) pass through as bulk verbatim array copies
        events = []
        emit = events.append

        def touch(meta_address: int, write: int, kind_code: int) -> bool:
            hit, writeback = access(meta_address, write)
            if writeback is not None:
                emit((writeback, 1, kind_code_of(writeback)))
            if not hit:
                emit((meta_address, 0, kind_code))
            return hit

        pending = 0  # start of the verbatim run not yet copied out
        i = 0
        for req_addr, req_size, req_write in zip(
                batch.address, batch.size, batch.is_write):
            first_unit = req_addr // unit
            last_unit = (req_addr + req_size - 1) // unit
            for u in range(first_unit, last_unit + 1):
                addr = u * unit
                vn_hit = touch(vn_base + u * line_bytes, req_write, VN_CODE)
                touch(mac_base + (addr // per_mac) * line_bytes, req_write, MAC_CODE)
                if not vn_hit:
                    coverage = unit * arity
                    for level in range(len(tree_bases)):
                        if touch(tree_bases[level] + (addr // coverage) * line_bytes,
                                 req_write, TREE_CODE):
                            break
                        coverage *= arity
            i += 1
            if events:
                out.address.extend(batch.address[pending:i])
                out.size.extend(batch.size[pending:i])
                out.is_write.extend(batch.is_write[pending:i])
                out.kind.extend(batch.kind[pending:i])
                pending = i
                for meta_address, write, kind_code in events:
                    out.address.append(meta_address)
                    out.size.append(line_bytes)
                    out.is_write.append(write)
                    out.kind.append(kind_code)
                events.clear()
        out.address.extend(batch.address[pending:])
        out.size.extend(batch.size[pending:])
        out.is_write.extend(batch.is_write[pending:])
        out.kind.extend(batch.kind[pending:])
        return out

    def flush_batch(self) -> RequestBatch:
        """Batch counterpart of :meth:`flush`."""
        out = RequestBatch()
        for address in self.cache.flush():
            out.append(address, self.params.line_bytes, True,
                       self._kind_code_of(address))
        return out
