"""Event-driven protection: rewrite a data request stream into the full
protected stream, request by request.

The analytic scheme models in :mod:`repro.protection.mee` /
:mod:`repro.protection.guardnn` compute metadata traffic with closed
forms. This module is the *mechanistic* counterpart: it walks an actual
:class:`~repro.mem.trace.MemoryRequest` stream, runs the baseline's
VN/MAC/tree lookups through a real set-associative cache, and emits the
exact interleaved request sequence a memory-protection engine would put
on the bus. The integration tests cross-validate the two models; the
rewritten traces can also be timed on the event-driven DDR4 controller.

Address map: metadata regions live above ``metadata_base`` —
VN lines, then MAC lines, then tree levels — mirroring how MEE carves
out a protected-metadata range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List

from repro.mem.batch import MAC_CODE, TREE_CODE, VN_CODE, RequestBatch
from repro.mem.cache import SetAssociativeCache
from repro.mem.trace import MemoryRequest, RequestKind
from repro.protection.guardnn import GuardNNParams
from repro.protection.mee import MeeParams


class GuardNNTraceRewriter:
    """GuardNN_C/CI: confidentiality adds nothing to the stream; CI adds
    MAC-line transfers.

    Tags are ``mac_bytes`` each, packed into 64-B DRAM lines (~5 tags
    per line for the 12-B default). The IV engine holds the *active*
    MAC line in a register, so a sequential chunk stream fetches one
    64-B MAC line per ~5 chunks — and, on writes, streams the filled
    line back out when it retires. This is why GuardNN_CI's ~2.3% byte
    overhead translates to a similarly small cycle overhead instead of
    a per-chunk row-conflict penalty.
    """

    LINE_BYTES = 64

    def __init__(self, integrity: bool, params: GuardNNParams = GuardNNParams(),
                 metadata_base: int = 1 << 34):
        self.integrity = integrity
        self.params = params
        self.metadata_base = metadata_base
        self._active_line = None
        self._active_dirty = False

    def _mac_line(self, chunk_index: int) -> int:
        byte_offset = chunk_index * self.params.mac_bytes
        return self.metadata_base + (byte_offset // self.LINE_BYTES) * self.LINE_BYTES

    def _retire_active(self, out: List[MemoryRequest]) -> None:
        if self._active_line is not None and self._active_dirty:
            out.append(MemoryRequest(self._active_line, self.LINE_BYTES, True,
                                     RequestKind.MAC))
        self._active_dirty = False

    def rewrite(self, trace: Iterable[MemoryRequest]) -> List[MemoryRequest]:
        out: List[MemoryRequest] = []
        for req in trace:
            out.append(req)
            if not self.integrity:
                continue
            first = req.address // self.params.chunk_bytes
            last = (req.address + req.size - 1) // self.params.chunk_bytes
            for chunk in range(first, last + 1):
                line = self._mac_line(chunk)
                if line != self._active_line:
                    self._retire_active(out)
                    # reads must fetch the stored tags to verify against;
                    # writes produce fresh tags, so the engine
                    # write-allocates without a fill (streaming writes
                    # never read old MACs)
                    if not req.is_write:
                        out.append(MemoryRequest(line, self.LINE_BYTES, False,
                                                 RequestKind.MAC))
                    self._active_line = line
                if req.is_write:
                    self._active_dirty = True
        return out

    def flush(self) -> List[MemoryRequest]:
        """Retire the active MAC line at end of stream."""
        out: List[MemoryRequest] = []
        self._retire_active(out)
        self._active_line = None
        return out

    # -- structure-of-arrays fast lane ------------------------------------

    def rewrite_batch(self, batch: RequestBatch) -> RequestBatch:
        """Batch counterpart of :meth:`rewrite`: same stream, emitted as
        a :class:`RequestBatch` without per-request object churn. Shares
        the active-MAC-line state with the scalar path.

        Requests that touch only the already-active MAC line (the
        sequential-stream common case: ~5 chunks per 64-B tag line) are
        copied through in bulk array slices between MAC events.
        """
        out = RequestBatch()
        if not self.integrity:
            out.extend(batch)
            return out
        put_address = out.address.append
        put_size = out.size.append
        put_write = out.is_write.append
        put_kind = out.kind.append
        line_bytes = self.LINE_BYTES
        chunk_bytes = self.params.chunk_bytes
        mac_bytes = self.params.mac_bytes
        base = self.metadata_base
        active_line = self._active_line
        active_dirty = self._active_dirty
        pending = 0  # start of the verbatim run not yet copied out
        i = 0
        for req_addr, req_size, req_write in zip(
                batch.address, batch.size, batch.is_write):
            first = req_addr // chunk_bytes
            last = (req_addr + req_size - 1) // chunk_bytes
            if first == last:
                line = base + (first * mac_bytes // line_bytes) * line_bytes
                if line == active_line:
                    if req_write:
                        active_dirty = True
                    i += 1
                    continue
            # a MAC event follows this request: flush the verbatim run
            # (including this request), then emit the event stream
            i += 1
            out.address.extend(batch.address[pending:i])
            out.size.extend(batch.size[pending:i])
            out.is_write.extend(batch.is_write[pending:i])
            out.kind.extend(batch.kind[pending:i])
            pending = i
            for chunk in range(first, last + 1):
                line = base + (chunk * mac_bytes // line_bytes) * line_bytes
                if line != active_line:
                    if active_line is not None and active_dirty:
                        put_address(active_line)
                        put_size(line_bytes)
                        put_write(1)
                        put_kind(MAC_CODE)
                    active_dirty = False
                    if not req_write:
                        put_address(line)
                        put_size(line_bytes)
                        put_write(0)
                        put_kind(MAC_CODE)
                    active_line = line
                if req_write:
                    active_dirty = True
        out.address.extend(batch.address[pending:])
        out.size.extend(batch.size[pending:])
        out.is_write.extend(batch.is_write[pending:])
        out.kind.extend(batch.kind[pending:])
        self._active_line = active_line
        self._active_dirty = active_dirty
        return out

    def flush_batch(self) -> RequestBatch:
        """Batch counterpart of :meth:`flush`."""
        out = RequestBatch()
        if self._active_line is not None and self._active_dirty:
            out.append(self._active_line, self.LINE_BYTES, True, MAC_CODE)
        self._active_dirty = False
        self._active_line = None
        return out


@dataclass
class _MeeRegions:
    """Where each metadata kind lives."""

    vn_base: int
    mac_base: int
    tree_bases: List[int]


class MeeTraceRewriter:
    """Baseline protection, mechanistically: per 64-B data line, find
    the covering VN line and MAC line; on a metadata-cache miss, fetch
    the line (a read request) and walk the counter tree upward until a
    cached level authenticates it; dirty evictions emit writebacks."""

    def __init__(self, params: MeeParams = MeeParams(),
                 protected_bytes: int = 1 << 30, metadata_base: int = 1 << 34):
        self.params = params
        self.cache = SetAssociativeCache(params.cache_bytes, params.line_bytes, ways=8)
        self.metadata_base = metadata_base
        self.regions = self._lay_out(protected_bytes)

    def _lay_out(self, protected_bytes: int) -> _MeeRegions:
        p = self.params
        vn_lines = math.ceil(protected_bytes / p.data_per_vn_line)
        mac_lines = math.ceil(protected_bytes / p.data_per_mac_line)
        vn_base = self.metadata_base
        mac_base = vn_base + vn_lines * p.line_bytes
        tree_bases = []
        level_base = mac_base + mac_lines * p.line_bytes
        coverage = p.data_per_vn_line * p.tree_arity
        while coverage < protected_bytes:
            lines = math.ceil(protected_bytes / coverage)
            tree_bases.append(level_base)
            level_base += lines * p.line_bytes
            coverage *= p.tree_arity
        return _MeeRegions(vn_base, mac_base, tree_bases)

    def _vn_line(self, address: int) -> int:
        return self.regions.vn_base + (address // self.params.data_per_vn_line) * self.params.line_bytes

    def _mac_line(self, address: int) -> int:
        return self.regions.mac_base + (address // self.params.data_per_mac_line) * self.params.line_bytes

    def _tree_line(self, address: int, level: int) -> int:
        coverage = self.params.data_per_vn_line * self.params.tree_arity ** (level + 1)
        return self.regions.tree_bases[level] + (address // coverage) * self.params.line_bytes

    def _kind_of(self, meta_address: int) -> RequestKind:
        if meta_address < self.regions.mac_base:
            return RequestKind.VN
        if not self.regions.tree_bases or meta_address < self.regions.tree_bases[0]:
            return RequestKind.MAC
        return RequestKind.TREE

    def _touch(self, out: List[MemoryRequest], meta_address: int, is_write: bool,
               kind: RequestKind) -> bool:
        """Access one metadata line through the cache; emit fill +
        writeback requests. Returns True on hit."""
        hit, writeback = self.cache.access(meta_address, is_write)
        if writeback is not None:
            out.append(MemoryRequest(writeback, self.params.line_bytes, True,
                                     self._kind_of(writeback)))
        if not hit:
            out.append(MemoryRequest(meta_address, self.params.line_bytes, False, kind))
        return hit

    def rewrite(self, trace: Iterable[MemoryRequest]) -> List[MemoryRequest]:
        out: List[MemoryRequest] = []
        unit = self.params.data_per_vn_line  # one metadata line per unit
        for req in trace:
            out.append(req)
            first_unit = req.address // unit
            last_unit = (req.address + req.size - 1) // unit
            for u in range(first_unit, last_unit + 1):
                addr = u * unit
                # VN line (decrypt pad / increment on write)
                vn_hit = self._touch(out, self._vn_line(addr), req.is_write, RequestKind.VN)
                # MAC line (verify on read, update on write)
                self._touch(out, self._mac_line(addr), req.is_write, RequestKind.MAC)
                if not vn_hit:
                    # authenticate the fetched VN line: walk the tree
                    # upward until a level hits in the cache
                    for level in range(len(self.regions.tree_bases)):
                        if self._touch(out, self._tree_line(addr, level),
                                       req.is_write, RequestKind.TREE):
                            break
        return out

    def flush(self) -> List[MemoryRequest]:
        """Drain dirty metadata at end of run (writebacks)."""
        out = []
        for address in self.cache.flush():
            out.append(MemoryRequest(address, self.params.line_bytes, True,
                                     self._kind_of(address)))
        return out

    # -- structure-of-arrays fast lane ------------------------------------

    def _kind_code_of(self, meta_address: int) -> int:
        if meta_address < self.regions.mac_base:
            return VN_CODE
        if not self.regions.tree_bases or meta_address < self.regions.tree_bases[0]:
            return MAC_CODE
        return TREE_CODE

    def rewrite_batch(self, batch: RequestBatch) -> RequestBatch:
        """Batch counterpart of :meth:`rewrite`: identical request
        sequence (same metadata-cache state machine), emitted straight
        into parallel arrays."""
        out = RequestBatch()
        line_bytes = self.params.line_bytes
        unit = self.params.data_per_vn_line
        per_mac = self.params.data_per_mac_line
        access = self.cache.access
        kind_code_of = self._kind_code_of
        vn_base = self.regions.vn_base
        mac_base = self.regions.mac_base
        tree_bases = self.regions.tree_bases
        arity = self.params.tree_arity

        # metadata emissions of the current request, buffered so that
        # all-hit requests (the streaming common case once the cache is
        # warm) pass through as bulk verbatim array copies
        events = []
        emit = events.append

        def touch(meta_address: int, write: int, kind_code: int) -> bool:
            hit, writeback = access(meta_address, write)
            if writeback is not None:
                emit((writeback, 1, kind_code_of(writeback)))
            if not hit:
                emit((meta_address, 0, kind_code))
            return hit

        pending = 0  # start of the verbatim run not yet copied out
        i = 0
        for req_addr, req_size, req_write in zip(
                batch.address, batch.size, batch.is_write):
            first_unit = req_addr // unit
            last_unit = (req_addr + req_size - 1) // unit
            for u in range(first_unit, last_unit + 1):
                addr = u * unit
                vn_hit = touch(vn_base + u * line_bytes, req_write, VN_CODE)
                touch(mac_base + (addr // per_mac) * line_bytes, req_write, MAC_CODE)
                if not vn_hit:
                    coverage = unit * arity
                    for level in range(len(tree_bases)):
                        if touch(tree_bases[level] + (addr // coverage) * line_bytes,
                                 req_write, TREE_CODE):
                            break
                        coverage *= arity
            i += 1
            if events:
                out.address.extend(batch.address[pending:i])
                out.size.extend(batch.size[pending:i])
                out.is_write.extend(batch.is_write[pending:i])
                out.kind.extend(batch.kind[pending:i])
                pending = i
                for meta_address, write, kind_code in events:
                    out.address.append(meta_address)
                    out.size.append(line_bytes)
                    out.is_write.append(write)
                    out.kind.append(kind_code)
                events.clear()
        out.address.extend(batch.address[pending:])
        out.size.extend(batch.size[pending:])
        out.is_write.extend(batch.is_write[pending:])
        out.kind.extend(batch.kind[pending:])
        return out

    def flush_batch(self) -> RequestBatch:
        """Batch counterpart of :meth:`flush`."""
        out = RequestBatch()
        for address in self.cache.flush():
            out.append(address, self.params.line_bytes, True,
                       self._kind_code_of(address))
        return out
