"""Event-driven protection: rewrite a data request stream into the full
protected stream, request by request.

The analytic scheme models in :mod:`repro.protection.mee` /
:mod:`repro.protection.guardnn` compute metadata traffic with closed
forms. This module is the *mechanistic* counterpart: it walks an actual
:class:`~repro.mem.trace.MemoryRequest` stream, runs the baseline's
VN/MAC/tree lookups through a real set-associative cache, and emits the
exact interleaved request sequence a memory-protection engine would put
on the bus. The integration tests cross-validate the two models; the
rewritten traces can also be timed on the event-driven DDR4 controller.

Address map: metadata regions live above ``metadata_base`` —
VN lines, then MAC lines, then tree levels — mirroring how MEE carves
out a protected-metadata range.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass, field
from typing import Iterable, List

from repro import perf
from repro.mem.batch import MAC_CODE, TREE_CODE, VN_CODE, RequestBatch
from repro.mem.cache import SetAssociativeCache
from repro.mem.trace import MemoryRequest, RequestKind
from repro.protection.guardnn import GuardNNParams
from repro.protection.mee import MeeParams

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


def _run_starts(key, coalescable):
    """Start indices of maximal runs of requests that share a metadata
    key and may be coalesced (single-span requests only); requests with
    ``coalescable`` False become singleton runs. The SoA pre-pass of
    both rewriters: one vectorized sweep replaces the per-request
    Python span/line arithmetic. Returns an ``(n_runs,)`` int index
    array (callers gather per-run attributes from it, so nothing
    per-request ever crosses back into Python)."""
    n = len(key)
    change = _np.empty(n, dtype=bool)
    change[0] = True
    _np.not_equal(key[1:], key[:-1], out=change[1:])
    change[1:] |= ~coalescable[1:] | ~coalescable[:-1]
    return _np.flatnonzero(change)


def _scatter_assemble(out: RequestBatch, batch: RequestBatch, address, size,
                      is_write, ev_pos, ev_addr, ev_write, ev_kind,
                      line_bytes: int) -> None:
    """Interleave the verbatim input stream with positioned metadata
    events (event j rides directly after input request ``ev_pos[j]``)
    in one vectorized scatter instead of per-run array flushes."""
    n = len(address)
    m = len(ev_pos)
    if not m:
        out.extend(batch)
        return
    pos = _np.frombuffer(array("q", ev_pos), dtype=_np.int64)
    total = n + m
    # input i is preceded by i inputs and every event with pos < i;
    # event j by (pos_j + 1) inputs and j events — emission order wins
    # among events that share a position
    prefix = _np.concatenate(([0], _np.cumsum(_np.bincount(pos, minlength=n))[:-1]))
    dest_input = _np.arange(n, dtype=_np.int64) + prefix
    dest_event = pos + 1 + _np.arange(m, dtype=_np.int64)
    merged_address = _np.empty(total, dtype=_np.int64)
    merged_address[dest_input] = address
    merged_address[dest_event] = _np.frombuffer(array("q", ev_addr), dtype=_np.int64)
    merged_size = _np.empty(total, dtype=_np.int64)
    merged_size[dest_input] = size
    merged_size[dest_event] = line_bytes
    merged_write = _np.empty(total, dtype=_np.int8)
    merged_write[dest_input] = is_write
    merged_write[dest_event] = _np.frombuffer(array("b", ev_write), dtype=_np.int8)
    merged_kind = _np.empty(total, dtype=_np.int8)
    merged_kind[dest_input] = _np.frombuffer(batch.kind, dtype=_np.int8)
    merged_kind[dest_event] = _np.frombuffer(array("b", ev_kind), dtype=_np.int8)
    out.address.frombytes(merged_address.tobytes())
    out.size.frombytes(merged_size.tobytes())
    out.is_write.frombytes(merged_write.tobytes())
    out.kind.frombytes(merged_kind.tobytes())


class GuardNNTraceRewriter:
    """GuardNN_C/CI: confidentiality adds nothing to the stream; CI adds
    MAC-line transfers.

    Tags are ``mac_bytes`` each, packed into 64-B DRAM lines (~5 tags
    per line for the 12-B default). The IV engine holds the *active*
    MAC line in a register, so a sequential chunk stream fetches one
    64-B MAC line per ~5 chunks — and, on writes, streams the filled
    line back out when it retires. This is why GuardNN_CI's ~2.3% byte
    overhead translates to a similarly small cycle overhead instead of
    a per-chunk row-conflict penalty.
    """

    LINE_BYTES = 64

    def __init__(self, integrity: bool, params: GuardNNParams = GuardNNParams(),
                 metadata_base: int = 1 << 34):
        self.integrity = integrity
        self.params = params
        self.metadata_base = metadata_base
        self._active_line = None
        self._active_dirty = False

    def _mac_line(self, chunk_index: int) -> int:
        byte_offset = chunk_index * self.params.mac_bytes
        return self.metadata_base + (byte_offset // self.LINE_BYTES) * self.LINE_BYTES

    def _retire_active(self, out: List[MemoryRequest]) -> None:
        if self._active_line is not None and self._active_dirty:
            out.append(MemoryRequest(self._active_line, self.LINE_BYTES, True,
                                     RequestKind.MAC))
        self._active_dirty = False

    def rewrite(self, trace: Iterable[MemoryRequest]) -> List[MemoryRequest]:
        out: List[MemoryRequest] = []
        for req in trace:
            out.append(req)
            if not self.integrity:
                continue
            first = req.address // self.params.chunk_bytes
            last = (req.address + req.size - 1) // self.params.chunk_bytes
            for chunk in range(first, last + 1):
                line = self._mac_line(chunk)
                if line != self._active_line:
                    self._retire_active(out)
                    # reads must fetch the stored tags to verify against;
                    # writes produce fresh tags, so the engine
                    # write-allocates without a fill (streaming writes
                    # never read old MACs)
                    if not req.is_write:
                        out.append(MemoryRequest(line, self.LINE_BYTES, False,
                                                 RequestKind.MAC))
                    self._active_line = line
                if req.is_write:
                    self._active_dirty = True
        return out

    def flush(self) -> List[MemoryRequest]:
        """Retire the active MAC line at end of stream."""
        out: List[MemoryRequest] = []
        self._retire_active(out)
        self._active_line = None
        return out

    # -- structure-of-arrays fast lane ------------------------------------

    def rewrite_batch(self, batch: RequestBatch) -> RequestBatch:
        """Batch counterpart of :meth:`rewrite`: same stream, emitted as
        a :class:`RequestBatch` without per-request object churn. Shares
        the active-MAC-line state with the scalar path.

        Requests that touch only the already-active MAC line (the
        sequential-stream common case: ~5 chunks per 64-B tag line) are
        copied through in bulk array slices between MAC events. With
        numpy, chunk spans and MAC-line addresses are precomputed for
        the whole batch (SoA) and same-line request runs collapse to a
        single state transition each.
        """
        out = RequestBatch()
        if not self.integrity:
            out.extend(batch)
            return out
        if _np is not None and perf.fast_enabled() and len(batch) >= 16:
            return self._rewrite_batch_runs(batch, out)
        return self._rewrite_batch_loop(batch, out)

    def _rewrite_batch_runs(self, batch: RequestBatch, out: RequestBatch) -> RequestBatch:
        """Vectorized pre-pass + per-run state machine. A run is a
        maximal stretch of single-chunk requests whose tags live in one
        MAC line; the scalar machine emits nothing inside such a run,
        so only its first request can produce MAC events and only the
        run's write-OR reaches the dirty bit."""
        n = len(batch)
        address = _np.frombuffer(batch.address, dtype=_np.int64)
        size = _np.frombuffer(batch.size, dtype=_np.int64)
        is_write = _np.frombuffer(batch.is_write, dtype=_np.int8)
        line_bytes = self.LINE_BYTES
        chunk_bytes = self.params.chunk_bytes
        mac_bytes = self.params.mac_bytes
        base = self.metadata_base
        first = address // chunk_bytes
        last = (address + size - 1) // chunk_bytes
        line = base + first * mac_bytes // line_bytes * line_bytes
        single = first == last
        starts = _run_starts(line, single)
        ends = _np.concatenate((starts[1:], [n]))
        # per-run attribute gathers: only run boundaries reach Python
        writes_before = _np.concatenate(([0], _np.cumsum(is_write != 0)))
        run_any_write = (writes_before[ends] > writes_before[starts]).tolist()
        run_line = line[starts].tolist()
        run_single = single[starts].tolist()
        run_first = first[starts].tolist()
        run_last = last[starts].tolist()
        run_write = is_write[starts].tolist()
        starts_list = starts.tolist()

        put_address = out.address.append
        put_size = out.size.append
        put_write = out.is_write.append
        put_kind = out.kind.append
        active_line = self._active_line
        active_dirty = self._active_dirty
        pending = 0  # start of the verbatim run not yet copied out
        for k, s in enumerate(starts_list):
            if run_single[k]:
                this_line = run_line[k]
                if this_line == active_line:
                    if run_any_write[k]:
                        active_dirty = True
                    continue
                # MAC event right after request s; the rest of the run
                # rides the newly active line
                out.address.extend(batch.address[pending:s + 1])
                out.size.extend(batch.size[pending:s + 1])
                out.is_write.extend(batch.is_write[pending:s + 1])
                out.kind.extend(batch.kind[pending:s + 1])
                pending = s + 1
                if active_line is not None and active_dirty:
                    put_address(active_line)
                    put_size(line_bytes)
                    put_write(1)
                    put_kind(MAC_CODE)
                if not run_write[k]:
                    put_address(this_line)
                    put_size(line_bytes)
                    put_write(0)
                    put_kind(MAC_CODE)
                active_line = this_line
                active_dirty = run_any_write[k]
                continue
            # multi-chunk request: singleton run, walk its chunks
            out.address.extend(batch.address[pending:s + 1])
            out.size.extend(batch.size[pending:s + 1])
            out.is_write.extend(batch.is_write[pending:s + 1])
            out.kind.extend(batch.kind[pending:s + 1])
            pending = s + 1
            req_write = run_write[k]
            for chunk in range(run_first[k], run_last[k] + 1):
                chunk_line = base + chunk * mac_bytes // line_bytes * line_bytes
                if chunk_line != active_line:
                    if active_line is not None and active_dirty:
                        put_address(active_line)
                        put_size(line_bytes)
                        put_write(1)
                        put_kind(MAC_CODE)
                    active_dirty = False
                    if not req_write:
                        put_address(chunk_line)
                        put_size(line_bytes)
                        put_write(0)
                        put_kind(MAC_CODE)
                    active_line = chunk_line
                if req_write:
                    active_dirty = True
        out.address.extend(batch.address[pending:])
        out.size.extend(batch.size[pending:])
        out.is_write.extend(batch.is_write[pending:])
        out.kind.extend(batch.kind[pending:])
        self._active_line = active_line
        self._active_dirty = active_dirty
        return out

    def _rewrite_batch_loop(self, batch: RequestBatch, out: RequestBatch) -> RequestBatch:
        """Per-request fallback (no numpy, tiny batches, scalar mode)."""
        put_address = out.address.append
        put_size = out.size.append
        put_write = out.is_write.append
        put_kind = out.kind.append
        line_bytes = self.LINE_BYTES
        chunk_bytes = self.params.chunk_bytes
        mac_bytes = self.params.mac_bytes
        base = self.metadata_base
        active_line = self._active_line
        active_dirty = self._active_dirty
        pending = 0  # start of the verbatim run not yet copied out
        i = 0
        for req_addr, req_size, req_write in zip(
                batch.address, batch.size, batch.is_write):
            first = req_addr // chunk_bytes
            last = (req_addr + req_size - 1) // chunk_bytes
            if first == last:
                line = base + (first * mac_bytes // line_bytes) * line_bytes
                if line == active_line:
                    if req_write:
                        active_dirty = True
                    i += 1
                    continue
            # a MAC event follows this request: flush the verbatim run
            # (including this request), then emit the event stream
            i += 1
            out.address.extend(batch.address[pending:i])
            out.size.extend(batch.size[pending:i])
            out.is_write.extend(batch.is_write[pending:i])
            out.kind.extend(batch.kind[pending:i])
            pending = i
            for chunk in range(first, last + 1):
                line = base + (chunk * mac_bytes // line_bytes) * line_bytes
                if line != active_line:
                    if active_line is not None and active_dirty:
                        put_address(active_line)
                        put_size(line_bytes)
                        put_write(1)
                        put_kind(MAC_CODE)
                    active_dirty = False
                    if not req_write:
                        put_address(line)
                        put_size(line_bytes)
                        put_write(0)
                        put_kind(MAC_CODE)
                    active_line = line
                if req_write:
                    active_dirty = True
        out.address.extend(batch.address[pending:])
        out.size.extend(batch.size[pending:])
        out.is_write.extend(batch.is_write[pending:])
        out.kind.extend(batch.kind[pending:])
        self._active_line = active_line
        self._active_dirty = active_dirty
        return out

    def flush_batch(self) -> RequestBatch:
        """Batch counterpart of :meth:`flush`."""
        out = RequestBatch()
        if self._active_line is not None and self._active_dirty:
            out.append(self._active_line, self.LINE_BYTES, True, MAC_CODE)
        self._active_dirty = False
        self._active_line = None
        return out


@dataclass
class _MeeRegions:
    """Where each metadata kind lives."""

    vn_base: int
    mac_base: int
    tree_bases: List[int]


class MeeTraceRewriter:
    """Baseline protection, mechanistically: per 64-B data line, find
    the covering VN line and MAC line; on a metadata-cache miss, fetch
    the line (a read request) and walk the counter tree upward until a
    cached level authenticates it; dirty evictions emit writebacks."""

    def __init__(self, params: MeeParams = MeeParams(),
                 protected_bytes: int = 1 << 30, metadata_base: int = 1 << 34):
        self.params = params
        self.cache = SetAssociativeCache(params.cache_bytes, params.line_bytes, ways=8)
        self.metadata_base = metadata_base
        self.regions = self._lay_out(protected_bytes)

    def _lay_out(self, protected_bytes: int) -> _MeeRegions:
        p = self.params
        vn_lines = math.ceil(protected_bytes / p.data_per_vn_line)
        mac_lines = math.ceil(protected_bytes / p.data_per_mac_line)
        vn_base = self.metadata_base
        mac_base = vn_base + vn_lines * p.line_bytes
        tree_bases = []
        level_base = mac_base + mac_lines * p.line_bytes
        coverage = p.data_per_vn_line * p.tree_arity
        while coverage < protected_bytes:
            lines = math.ceil(protected_bytes / coverage)
            tree_bases.append(level_base)
            level_base += lines * p.line_bytes
            coverage *= p.tree_arity
        return _MeeRegions(vn_base, mac_base, tree_bases)

    def _vn_line(self, address: int) -> int:
        return self.regions.vn_base + (address // self.params.data_per_vn_line) * self.params.line_bytes

    def _mac_line(self, address: int) -> int:
        return self.regions.mac_base + (address // self.params.data_per_mac_line) * self.params.line_bytes

    def _tree_line(self, address: int, level: int) -> int:
        coverage = self.params.data_per_vn_line * self.params.tree_arity ** (level + 1)
        return self.regions.tree_bases[level] + (address // coverage) * self.params.line_bytes

    def _kind_of(self, meta_address: int) -> RequestKind:
        if meta_address < self.regions.mac_base:
            return RequestKind.VN
        if not self.regions.tree_bases or meta_address < self.regions.tree_bases[0]:
            return RequestKind.MAC
        return RequestKind.TREE

    def _touch(self, out: List[MemoryRequest], meta_address: int, is_write: bool,
               kind: RequestKind) -> bool:
        """Access one metadata line through the cache; emit fill +
        writeback requests. Returns True on hit."""
        hit, writeback = self.cache.access(meta_address, is_write)
        if writeback is not None:
            out.append(MemoryRequest(writeback, self.params.line_bytes, True,
                                     self._kind_of(writeback)))
        if not hit:
            out.append(MemoryRequest(meta_address, self.params.line_bytes, False, kind))
        return hit

    def rewrite(self, trace: Iterable[MemoryRequest]) -> List[MemoryRequest]:
        out: List[MemoryRequest] = []
        unit = self.params.data_per_vn_line  # one metadata line per unit
        for req in trace:
            out.append(req)
            first_unit = req.address // unit
            last_unit = (req.address + req.size - 1) // unit
            for u in range(first_unit, last_unit + 1):
                addr = u * unit
                # VN line (decrypt pad / increment on write)
                vn_hit = self._touch(out, self._vn_line(addr), req.is_write, RequestKind.VN)
                # MAC line (verify on read, update on write)
                self._touch(out, self._mac_line(addr), req.is_write, RequestKind.MAC)
                if not vn_hit:
                    # authenticate the fetched VN line: walk the tree
                    # upward until a level hits in the cache
                    for level in range(len(self.regions.tree_bases)):
                        if self._touch(out, self._tree_line(addr, level),
                                       req.is_write, RequestKind.TREE):
                            break
        return out

    def flush(self) -> List[MemoryRequest]:
        """Drain dirty metadata at end of run (writebacks)."""
        out = []
        for address in self.cache.flush():
            out.append(MemoryRequest(address, self.params.line_bytes, True,
                                     self._kind_of(address)))
        return out

    # -- structure-of-arrays fast lane ------------------------------------

    def _kind_code_of(self, meta_address: int) -> int:
        if meta_address < self.regions.mac_base:
            return VN_CODE
        if not self.regions.tree_bases or meta_address < self.regions.tree_bases[0]:
            return MAC_CODE
        return TREE_CODE

    def rewrite_batch(self, batch: RequestBatch) -> RequestBatch:
        """Batch counterpart of :meth:`rewrite`: identical request
        sequence (same metadata-cache state machine), emitted straight
        into parallel arrays.

        With numpy, VN-unit spans are precomputed for the whole batch
        (SoA) and runs of requests inside one 512-B unit collapse: the
        run's first request drives the cache state machine, the rest
        are provably hits and reduce to one dirty-OR / LRU touch."""
        if _np is not None and perf.fast_enabled() and len(batch) >= 16:
            return self._rewrite_batch_runs(batch)
        return self._rewrite_batch_loop(batch)

    def _rewrite_batch_runs(self, batch: RequestBatch) -> RequestBatch:
        out = RequestBatch()
        n = len(batch)
        address = _np.frombuffer(batch.address, dtype=_np.int64)
        size = _np.frombuffer(batch.size, dtype=_np.int64)
        is_write = _np.frombuffer(batch.is_write, dtype=_np.int8)
        line_bytes = self.params.line_bytes
        unit = self.params.data_per_vn_line
        per_mac = self.params.data_per_mac_line
        access = self.cache.access
        contains = self.cache.contains
        kind_code_of = self._kind_code_of
        vn_base = self.regions.vn_base
        mac_base = self.regions.mac_base
        tree_bases = self.regions.tree_bases
        arity = self.params.tree_arity

        first_unit = address // unit
        last_unit = (address + size - 1) // unit
        single = first_unit == last_unit
        starts = _run_starts(first_unit, single)
        ends = _np.concatenate((starts[1:], [n]))
        writes_before = _np.concatenate(([0], _np.cumsum(is_write != 0)))
        run_any_write = (writes_before[ends] > writes_before[starts]).tolist()
        # writes among requests s+1..e-1 (the coalesced tail of a run)
        run_rest_write = (writes_before[ends]
                          > writes_before[_np.minimum(starts + 1, n)]).tolist()
        run_first = first_unit[starts].tolist()
        run_last = last_unit[starts].tolist()
        run_single = single[starts].tolist()
        run_write = is_write[starts].tolist()
        run_len = (ends - starts).tolist()
        starts_list = starts.tolist()
        # a fill inserted by this walk can only be evicted by the walk's
        # own later insertions; with <= tree-levels + 1 of those after
        # the VN fill, an 8-way set can never push VN/MAC out before the
        # run's remaining (all-hit) requests replay
        coalesce_safe = len(tree_bases) + 1 < self.cache.ways

        retouch = self.cache.retouch
        # positioned metadata emissions: (after-request-index, address,
        # is_write, kind) as four parallel lists. The interleaved output
        # stream is scatter-assembled once at the end instead of being
        # flushed run by run.
        ev_pos, ev_addr, ev_write, ev_kind = [], [], [], []
        put_pos = ev_pos.append
        put_addr = ev_addr.append
        put_write = ev_write.append
        put_kind = ev_kind.append

        def touch(position: int, meta_address: int, write: int,
                  kind_code: int) -> bool:
            hit, writeback = access(meta_address, write)
            if writeback is not None:
                put_pos(position)
                put_addr(writeback)
                put_write(1)
                put_kind(kind_code_of(writeback))
            if not hit:
                put_pos(position)
                put_addr(meta_address)
                put_write(0)
                put_kind(kind_code)
            return hit

        for k, s in enumerate(starts_list):
            if run_single[k]:
                u = run_first[k]
                addr = u * unit
                vn_line = vn_base + u * line_bytes
                mac_line = mac_base + addr // per_mac * line_bytes
                write = run_write[k]
                # VN and MAC touches inlined (the two per-run constants)
                vn_hit, writeback = access(vn_line, write)
                if writeback is not None:
                    put_pos(s)
                    put_addr(writeback)
                    put_write(1)
                    put_kind(kind_code_of(writeback))
                if not vn_hit:
                    put_pos(s)
                    put_addr(vn_line)
                    put_write(0)
                    put_kind(VN_CODE)
                mac_hit, writeback = access(mac_line, write)
                if writeback is not None:
                    put_pos(s)
                    put_addr(writeback)
                    put_write(1)
                    put_kind(kind_code_of(writeback))
                if not mac_hit:
                    put_pos(s)
                    put_addr(mac_line)
                    put_write(0)
                    put_kind(MAC_CODE)
                if not vn_hit:
                    coverage = unit * arity
                    for level in range(len(tree_bases)):
                        if touch(s, tree_bases[level] + addr // coverage * line_bytes,
                                 write, TREE_CODE):
                            break
                        coverage *= arity
                rest = run_len[k] - 1
                if rest:
                    if coalesce_safe or (contains(vn_line) and contains(mac_line)):
                        # the remaining requests of the run can only hit:
                        # their whole cache effect is one LRU re-touch of
                        # (VN, MAC) and an OR over their write bits
                        rest_write = run_rest_write[k]
                        retouch(vn_line, rest_write, rest)
                        retouch(mac_line, rest_write, rest)
                    else:  # pragma: no cover - needs a tree walk deep
                        # enough to evict the just-filled VN/MAC lines
                        for i in range(s + 1, s + 1 + rest):
                            w_i = int(is_write[i])
                            vn_hit = touch(i, vn_line, w_i, VN_CODE)
                            touch(i, mac_line, w_i, MAC_CODE)
                            if not vn_hit:
                                coverage = unit * arity
                                for level in range(len(tree_bases)):
                                    if touch(i, tree_bases[level]
                                             + addr // coverage * line_bytes,
                                             w_i, TREE_CODE):
                                        break
                                    coverage *= arity
                continue
            # multi-unit request: singleton run through the full walk
            write = run_write[k]
            for u in range(run_first[k], run_last[k] + 1):
                addr = u * unit
                vn_hit = touch(s, vn_base + u * line_bytes, write, VN_CODE)
                touch(s, mac_base + addr // per_mac * line_bytes, write, MAC_CODE)
                if not vn_hit:
                    coverage = unit * arity
                    for level in range(len(tree_bases)):
                        if touch(s, tree_bases[level] + addr // coverage * line_bytes,
                                 write, TREE_CODE):
                            break
                        coverage *= arity
        _scatter_assemble(out, batch, address, size, is_write,
                          ev_pos, ev_addr, ev_write, ev_kind, line_bytes)
        return out

    def _rewrite_batch_loop(self, batch: RequestBatch) -> RequestBatch:
        """Per-request fallback (no numpy, tiny batches, scalar mode)."""
        out = RequestBatch()
        line_bytes = self.params.line_bytes
        unit = self.params.data_per_vn_line
        per_mac = self.params.data_per_mac_line
        access = self.cache.access
        kind_code_of = self._kind_code_of
        vn_base = self.regions.vn_base
        mac_base = self.regions.mac_base
        tree_bases = self.regions.tree_bases
        arity = self.params.tree_arity

        # metadata emissions of the current request, buffered so that
        # all-hit requests (the streaming common case once the cache is
        # warm) pass through as bulk verbatim array copies
        events = []
        emit = events.append

        def touch(meta_address: int, write: int, kind_code: int) -> bool:
            hit, writeback = access(meta_address, write)
            if writeback is not None:
                emit((writeback, 1, kind_code_of(writeback)))
            if not hit:
                emit((meta_address, 0, kind_code))
            return hit

        pending = 0  # start of the verbatim run not yet copied out
        i = 0
        for req_addr, req_size, req_write in zip(
                batch.address, batch.size, batch.is_write):
            first_unit = req_addr // unit
            last_unit = (req_addr + req_size - 1) // unit
            for u in range(first_unit, last_unit + 1):
                addr = u * unit
                vn_hit = touch(vn_base + u * line_bytes, req_write, VN_CODE)
                touch(mac_base + (addr // per_mac) * line_bytes, req_write, MAC_CODE)
                if not vn_hit:
                    coverage = unit * arity
                    for level in range(len(tree_bases)):
                        if touch(tree_bases[level] + (addr // coverage) * line_bytes,
                                 req_write, TREE_CODE):
                            break
                        coverage *= arity
            i += 1
            if events:
                out.address.extend(batch.address[pending:i])
                out.size.extend(batch.size[pending:i])
                out.is_write.extend(batch.is_write[pending:i])
                out.kind.extend(batch.kind[pending:i])
                pending = i
                for meta_address, write, kind_code in events:
                    out.address.append(meta_address)
                    out.size.append(line_bytes)
                    out.is_write.append(write)
                    out.kind.append(kind_code)
                events.clear()
        out.address.extend(batch.address[pending:])
        out.size.extend(batch.size[pending:])
        out.is_write.extend(batch.is_write[pending:])
        out.kind.extend(batch.kind[pending:])
        return out

    def flush_batch(self) -> RequestBatch:
        """Batch counterpart of :meth:`flush`."""
        out = RequestBatch()
        for address in self.cache.flush():
            out.append(address, self.params.line_bytes, True,
                       self._kind_code_of(address))
        return out
