"""AES encryption-engine throughput/latency model.

The FPGA prototype pipelines AES-128 engines with a 12-cycle latency and
needs three of them to match the memory bandwidth CHaiDNN uses
(Section III-A/III-B); the ASIC analysis instantiates enough engines to
match TPU-v1's 272 Gbps (Section III-C). One pipelined AES-128 engine
accepts one 16-byte block per cycle once full.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class AesEngineModel:
    """A bank of pipelined AES engines clocked at the accelerator clock."""

    engines: int = 3
    block_bytes: int = 16
    pipeline_latency_cycles: int = 12  # paper: "pipelined with a 12-cycle latency"

    def __post_init__(self):
        if self.engines <= 0:
            raise ValueError("need at least one engine")

    def bytes_per_cycle(self, freq_mhz: float) -> float:
        """Aggregate steady-state throughput in bytes per accelerator
        cycle.

        ``freq_mhz`` is part of the signature because a *cycle* is only
        meaningful relative to a clock: per-cycle throughput happens to
        be frequency-independent (each pipelined engine accepts one
        block per cycle at any clock), while :meth:`throughput_gbps`
        uses the same clock to convert to absolute bandwidth. The
        argument is validated rather than silently ignored.
        """
        if freq_mhz <= 0:
            raise ValueError("freq_mhz must be positive")
        return self.engines * self.block_bytes

    def throughput_gbps(self, freq_mhz: float) -> float:
        if freq_mhz <= 0:
            raise ValueError("freq_mhz must be positive")
        return self.engines * self.block_bytes * freq_mhz * 1e6 / 1e9

    @staticmethod
    def engines_to_match_bandwidth(bandwidth_gbps: float, freq_mhz: float,
                                   block_bytes: int = 16) -> int:
        """How many engines are needed so encryption never throttles the
        memory system (the paper's 344-engine TPU-v1 arithmetic uses the
        same relation with a slower AES core)."""
        per_engine = block_bytes * freq_mhz * 1e6 / 1e9
        return max(1, math.ceil(bandwidth_gbps / per_engine))
