"""No protection (the paper's NP baseline): zero overhead, no engine."""

from __future__ import annotations

from repro.accel.scheduler import LayerTraffic
from repro.protection.scheme import ProtectionOverhead, ProtectionScheme


class NoProtection(ProtectionScheme):
    """Plain accelerator: data in DRAM in plaintext, nothing verified."""

    name = "NP"
    engine = None
    provides_integrity = False
    provides_confidentiality = False

    def layer_overhead(self, traffic: LayerTraffic, op: str, training: bool) -> ProtectionOverhead:
        return ProtectionOverhead()
