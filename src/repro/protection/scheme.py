"""Protection-scheme timing contract.

A scheme turns a layer's *data* traffic into *metadata* traffic (plus any
fixed latency), and optionally carries an AES engine model that bounds
how fast bytes can cross the chip boundary. The accelerator model
(:mod:`repro.accel.accelerator`) consumes this contract; benchmark
harnesses report the per-kind byte breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.accel.scheduler import LayerTraffic
from repro.mem.trace import RequestKind
from repro.protection.engine import AesEngineModel


@dataclass
class ProtectionOverhead:
    """Extra traffic and latency one layer incurs under a scheme."""

    extra_read_bytes: int = 0
    extra_write_bytes: int = 0
    fixed_cycles: int = 0
    breakdown: Dict[RequestKind, int] = field(default_factory=dict)

    def add(self, kind: RequestKind, nbytes: int, is_write: bool) -> None:
        if nbytes < 0:
            raise ValueError("metadata bytes must be non-negative")
        if is_write:
            self.extra_write_bytes += nbytes
        else:
            self.extra_read_bytes += nbytes
        self.breakdown[kind] = self.breakdown.get(kind, 0) + nbytes

    @property
    def total_bytes(self) -> int:
        return self.extra_read_bytes + self.extra_write_bytes


class ProtectionScheme:
    """Base class; concrete schemes override :meth:`layer_overhead`."""

    name = "abstract"
    #: AES engine model, or None when the scheme does no encryption
    engine: Optional[AesEngineModel] = None
    #: whether the scheme detects integrity violations
    provides_integrity = False
    #: whether the scheme encrypts off-chip data
    provides_confidentiality = False

    def layer_overhead(self, traffic: LayerTraffic, op: str, training: bool) -> ProtectionOverhead:
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}>"
