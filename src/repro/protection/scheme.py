"""Protection-scheme timing contract.

A scheme turns a layer's *data* traffic into *metadata* traffic (plus any
fixed latency), and optionally carries an AES engine model that bounds
how fast bytes can cross the chip boundary. The accelerator model
(:mod:`repro.accel.accelerator`) consumes this contract; benchmark
harnesses report the per-kind byte breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.accel.scheduler import LayerTraffic
from repro.mem.trace import RequestKind
from repro.protection.engine import AesEngineModel


@dataclass
class ProtectionOverhead:
    """Extra traffic and latency one layer incurs under a scheme."""

    extra_read_bytes: int = 0
    extra_write_bytes: int = 0
    fixed_cycles: int = 0
    breakdown: Dict[RequestKind, int] = field(default_factory=dict)

    def add(self, kind: RequestKind, nbytes: int, is_write: bool) -> None:
        if nbytes < 0:
            raise ValueError("metadata bytes must be non-negative")
        if is_write:
            self.extra_write_bytes += nbytes
        else:
            self.extra_read_bytes += nbytes
        self.breakdown[kind] = self.breakdown.get(kind, 0) + nbytes

    @property
    def total_bytes(self) -> int:
        return self.extra_read_bytes + self.extra_write_bytes


class ProtectionScheme:
    """Base class; concrete schemes override :meth:`layer_overhead`."""

    name = "abstract"
    #: AES engine model, or None when the scheme does no encryption
    engine: Optional[AesEngineModel] = None
    #: whether the scheme detects integrity violations
    provides_integrity = False
    #: whether the scheme encrypts off-chip data
    provides_confidentiality = False

    def layer_overhead(self, traffic: LayerTraffic, op: str, training: bool) -> ProtectionOverhead:
        raise NotImplementedError

    def layer_overhead_cached(self, traffic: LayerTraffic, op: str,
                              training: bool) -> ProtectionOverhead:
        """Memoized :meth:`layer_overhead`.

        Every scheme in this package computes overhead as a pure
        function of the traffic shape (plus ``op``/``training``), so a
        per-instance memo keyed on the traffic fields is sound — and
        sweeps hit it hard, because networks repeat layer shapes and a
        grid evaluates the same network under several schemes. Returned
        objects are shared; treat them as frozen.
        """
        key = (traffic.weight_reads, traffic.input_reads, traffic.output_writes,
               traffic.weight_size, traffic.input_size, traffic.output_size,
               traffic.input_passes, traffic.output_passes, op, training)
        try:
            memo = self._overhead_memo
        except AttributeError:
            memo = self._overhead_memo = {}
        hit = memo.get(key)
        if hit is None:
            hit = memo[key] = self.layer_overhead(traffic, op, training)
        return hit

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}>"
