"""GuardNN's on-chip counters and version-number construction.

Section II-D2 defines the counters:

* ``CTR_IN`` — incremented per new input (``SetInput``);
* ``CTR_F,W`` — reset on a new input, incremented after each compute
  instruction (``Forward``) that writes output features;
* ``CTR_F,R`` — supplied by the *untrusted host* per address range, used
  only for decryption ("the confidentiality is not broken even if the
  CTR_F,R value is incorrect");
* ``CTR_W`` — incremented per weight update (``SetWeight`` and, during
  training, weight-update steps).

A version number is ``(domain || counter fields)`` packed into 64 bits;
the AES-CTR counter block is ``(block address || VN)``. Confidentiality
requires that (address, VN) never repeats under one key: domains separate
the weight and feature spaces, and within the feature domain
(CTR_IN, CTR_F,W) is strictly increasing per write. The property-based
test suite checks this invariant over arbitrary instruction sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

DOMAIN_FEATURE = 0x01
DOMAIN_WEIGHT = 0x02
DOMAIN_INPUT = 0x03

_CTR_IN_BITS = 24
_CTR_FW_BITS = 32
_CTR_W_BITS = 56


@dataclass(frozen=True, slots=True)
class VersionNumber:
    """A packed 64-bit VN."""

    value: int

    def __post_init__(self):
        if not 0 <= self.value < (1 << 64):
            raise ValueError("VN must fit in 64 bits")

    @staticmethod
    def for_feature(ctr_in: int, ctr_fw: int) -> "VersionNumber":
        if not 0 <= ctr_in < (1 << _CTR_IN_BITS):
            raise ValueError("CTR_IN overflow — session must be re-initialized")
        if not 0 <= ctr_fw < (1 << _CTR_FW_BITS):
            raise ValueError("CTR_F,W overflow — session must be re-initialized")
        value = (DOMAIN_FEATURE << 56) | (ctr_in << _CTR_FW_BITS) | ctr_fw
        return VersionNumber(value)

    @staticmethod
    def for_weight(ctr_w: int) -> "VersionNumber":
        if not 0 <= ctr_w < (1 << _CTR_W_BITS):
            raise ValueError("CTR_W overflow — session must be re-initialized")
        return VersionNumber((DOMAIN_WEIGHT << 56) | ctr_w)

    @staticmethod
    def for_input(ctr_in: int) -> "VersionNumber":
        """VN for the input-import write itself. A separate domain keeps
        the imported input's pad distinct from every Forward output pad,
        even if a hostile host directs a Forward to overwrite the input
        region (same address, but a different VN, so no pad reuse)."""
        if not 0 <= ctr_in < (1 << _CTR_IN_BITS):
            raise ValueError("CTR_IN overflow — session must be re-initialized")
        return VersionNumber((DOMAIN_INPUT << 56) | ctr_in)

    @property
    def domain(self) -> int:
        return self.value >> 56


class CounterState:
    """The accelerator-resident counter file.

    The device consults this for every protected write (authoritative
    VNs) and for weight reads; feature reads use the host-supplied read
    counters (:meth:`set_read_ctr` / :meth:`read_vn_for`), which the host
    reconstructs from the DFG schedule.
    """

    __slots__ = ("ctr_in", "ctr_fw", "ctr_w", "_read_ctrs")

    def __init__(self):
        self.ctr_in = 0
        self.ctr_fw = 0
        self.ctr_w = 0
        # host-set read counters: list of (base, end, ctr_in, ctr_fw) in
        # declaration order; the most recent covering declaration wins
        # (a dict keyed by range would let an older, differently-sized
        # overlapping range shadow a newer one)
        self._read_ctrs: List[Tuple[int, int, int, int]] = []

    # --- instruction-driven transitions (Section II-E) ---

    def on_init_session(self) -> None:
        """InitSession "resets all counters to zero"."""
        self.ctr_in = 0
        self.ctr_fw = 0
        self.ctr_w = 0
        self._read_ctrs.clear()

    def on_set_input(self) -> None:
        """New input: bump CTR_IN, reset CTR_F,W."""
        self.ctr_in += 1
        self.ctr_fw = 0

    def next_forward_vn(self) -> VersionNumber:
        """Bump CTR_F,W and return the VN for the features the current
        Forward writes. Incrementing *before* the write means Forward
        outputs use CTR_F,W >= 1, so they can never collide with the
        input import (which lives in its own VN domain, see
        :meth:`VersionNumber.for_input`) nor with each other: a strictly
        increasing (CTR_IN, CTR_F,W) per feature write is exactly the
        uniqueness invariant counter-mode encryption needs."""
        self.ctr_fw += 1
        return VersionNumber.for_feature(self.ctr_in, self.ctr_fw)

    def on_set_weight(self) -> None:
        self.ctr_w += 1

    # --- checkpointing ---

    def state_dict(self) -> dict:
        return {
            "ctr_in": self.ctr_in,
            "ctr_fw": self.ctr_fw,
            "ctr_w": self.ctr_w,
            "read_ctrs": [list(entry) for entry in self._read_ctrs],
        }

    def load_state(self, state: dict) -> None:
        self.ctr_in = int(state["ctr_in"])
        self.ctr_fw = int(state["ctr_fw"])
        self.ctr_w = int(state["ctr_w"])
        self._read_ctrs = [tuple(int(v) for v in entry)
                           for entry in state["read_ctrs"]]

    # --- VN queries ---

    def feature_write_vn(self) -> VersionNumber:
        """VN the most recent Forward used (current CTR_F,W)."""
        return VersionNumber.for_feature(self.ctr_in, self.ctr_fw)

    def weight_vn(self) -> VersionNumber:
        return VersionNumber.for_weight(self.ctr_w)

    def input_vn(self) -> VersionNumber:
        return VersionNumber.for_input(self.ctr_in)

    def set_read_ctr(self, base: int, size: int, ctr_fw: int, ctr_in: int = None) -> None:
        """SetReadCTR: the host declares which CTR_F,W (and optionally an
        older CTR_IN) to use when decrypting reads in [base, base+size).
        Wrong values yield garbage plaintext, never a leak."""
        if size <= 0:
            raise ValueError("range size must be positive")
        if ctr_fw < 0 or (ctr_in is not None and ctr_in < 0):
            raise ValueError("read counters must be non-negative")
        effective_in = self.ctr_in if ctr_in is None else ctr_in
        self._read_ctrs.append((base, base + size, effective_in, ctr_fw))
        # the table is small on-chip storage: keep only the most recent
        # declarations (a real device would have a fixed-entry CAM)
        if len(self._read_ctrs) > 64:
            del self._read_ctrs[0]

    def read_vn_for(self, address: int) -> VersionNumber:
        """VN used to decrypt a feature read at ``address``: the most
        recently declared covering range, else the current write
        counters."""
        for base, end, ctr_in, ctr_fw in reversed(self._read_ctrs):
            if base <= address < end:
                return VersionNumber.for_feature(ctr_in, ctr_fw)
        return VersionNumber.for_feature(self.ctr_in, self.ctr_fw)
