"""Off-chip memory protection schemes.

The paper evaluates four protection points (Section III-C):

* **NP** — no protection (:class:`repro.protection.none.NoProtection`).
* **BP** — "today's baseline memory protection", an Intel-MEE-style
  engine with off-chip version numbers, per-cacheline MACs, a counter
  tree, and a VN/MAC cache (:class:`repro.protection.mee.BaselineMEE`).
* **GuardNN_C** — confidentiality only: AES-CTR with on-chip-counter
  version numbers, zero metadata traffic
  (:class:`repro.protection.guardnn.GuardNNProtection` with
  ``integrity=False``).
* **GuardNN_CI** — confidentiality + integrity: adds one truncated MAC
  per 512-B data-movement chunk, still no off-chip VNs and no tree.

Each scheme provides the *timing/traffic* contract consumed by
:class:`repro.accel.accelerator.AcceleratorModel`, and the GuardNN
counter machinery (:mod:`repro.protection.counters`) is shared with the
functional device in :mod:`repro.core`.
"""

from repro.protection.scheme import ProtectionOverhead, ProtectionScheme
from repro.protection.engine import AesEngineModel
from repro.protection.none import NoProtection
from repro.protection.mee import BaselineMEE, MeeParams
from repro.protection.guardnn import GuardNNProtection, GuardNNParams
from repro.protection.counters import (
    CounterState,
    VersionNumber,
    DOMAIN_FEATURE,
    DOMAIN_WEIGHT,
    DOMAIN_INPUT,
)
from repro.protection.merkle import MerkleTree
from repro.protection.trace_rewriter import (
    GuardNNTraceRewriter,
    MeeTraceRewriter,
    build_trace_rewriter,
)

#: canonical short names for the paper's four protection points; the
#: CLI, the experiment subsystem, and the property tests all build
#: schemes through this table so a new scheme registers exactly once
SCHEME_FACTORIES = {
    "np": lambda **params: NoProtection(),
    "bp": lambda **params: BaselineMEE(MeeParams(**params)),
    "guardnn-c": lambda **params: GuardNNProtection(False, GuardNNParams(**params)),
    "guardnn-ci": lambda **params: GuardNNProtection(True, GuardNNParams(**params)),
}


def list_schemes():
    """Registered scheme names, in deterministic order."""
    return sorted(SCHEME_FACTORIES)


#: built schemes by (name, params) — schemes in this package are
#: stateless timing models, so sweeps can share one instance per grid
#: point (and with it the per-instance layer-overhead memo)
_SCHEME_MEMO = {}


def build_scheme(name: str, **params) -> ProtectionScheme:
    """Build a protection scheme from its short name.

    ``params`` are forwarded to the scheme's parameter dataclass
    (``MeeParams`` for ``bp``, ``GuardNNParams`` for the GuardNN
    variants); ``np`` accepts none. On the fast path
    (:mod:`repro.perf`) identical (name, params) pairs share one
    instance — sound because the schemes carry no mutable run state.
    """
    try:
        factory = SCHEME_FACTORIES[name]
    except KeyError:
        raise KeyError(f"unknown scheme {name!r}; known: {', '.join(list_schemes())}")
    if name == "np" and params:
        raise ValueError("the NP scheme takes no parameters")
    from repro import perf

    if perf.fast_enabled():
        try:
            key = (name, tuple(sorted(params.items())))
            hit = _SCHEME_MEMO.get(key)
            if hit is None:
                hit = _SCHEME_MEMO[key] = factory(**params)
            return hit
        except TypeError:  # unhashable parameter value
            pass
    return factory(**params)


from repro import perf as _perf  # noqa: E402 — memo registration

_perf.register_cache(_SCHEME_MEMO.clear)


__all__ = [
    "ProtectionOverhead",
    "ProtectionScheme",
    "SCHEME_FACTORIES",
    "build_scheme",
    "list_schemes",
    "AesEngineModel",
    "NoProtection",
    "BaselineMEE",
    "MeeParams",
    "GuardNNProtection",
    "GuardNNParams",
    "CounterState",
    "VersionNumber",
    "DOMAIN_FEATURE",
    "DOMAIN_WEIGHT",
    "DOMAIN_INPUT",
    "MerkleTree",
    "GuardNNTraceRewriter",
    "MeeTraceRewriter",
    "build_trace_rewriter",
]
