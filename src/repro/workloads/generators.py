"""Synthetic memory traces and functional workloads.

Trace generators feed the DRAM microbenchmarks and the event-driven
validation runs; :func:`random_mlp_spec` builds the quantized MLPs the
functional (encrypt -> compute -> decrypt) tests execute.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.host import MlpSpec
from repro.mem.batch import MAC_CODE, VN_CODE, RequestBatch
from repro.mem.trace import MemoryRequest, RequestKind


def streaming_trace(nbytes: int, base: int = 0, write_fraction: float = 0.3,
                    stride: int = 64) -> List[MemoryRequest]:
    """Sequential tensor streaming — a DNN accelerator's dominant
    pattern. Interleaves writes every 1/write_fraction requests."""
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction in [0, 1]")
    every = int(1 / write_fraction) if write_fraction > 0 else 0
    trace = []
    for i in range(nbytes // stride):
        is_write = every > 0 and i % every == 0
        trace.append(MemoryRequest(base + i * stride, stride, is_write))
    return trace


def random_trace(n_requests: int, span_bytes: int, rng: np.random.Generator,
                 write_fraction: float = 0.3, stride: int = 64) -> List[MemoryRequest]:
    """Uniformly random accesses — the DLRM embedding-gather extreme."""
    trace = []
    for _ in range(n_requests):
        addr = int(rng.integers(0, span_bytes // stride)) * stride
        is_write = bool(rng.random() < write_fraction)
        trace.append(MemoryRequest(addr, stride, is_write))
    return trace


def bp_metadata_trace(nbytes: int, base: int = 0,
                      meta_base: int = 1 << 28) -> List[MemoryRequest]:
    """Data stream with a VN and a MAC line fetch every 512 B from two
    distant metadata regions — the baseline-protection access pattern
    that costs DRAM row locality."""
    trace = []
    for i in range(nbytes // 64):
        trace.append(MemoryRequest(base + i * 64, 64, False))
        if i % 8 == 7:
            trace.append(MemoryRequest(meta_base + (i // 8) * 64, 64, False,
                                       RequestKind.VN))
            trace.append(MemoryRequest(meta_base + (1 << 20) + (i // 8) * 64, 64, False,
                                       RequestKind.MAC))
    return trace


def streaming_trace_batch(nbytes: int, base: int = 0, write_fraction: float = 0.3,
                          stride: int = 64) -> RequestBatch:
    """:func:`streaming_trace` emitted straight into a
    :class:`RequestBatch` (same request sequence, no objects)."""
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction in [0, 1]")
    every = int(1 / write_fraction) if write_fraction > 0 else 0
    batch = RequestBatch()
    for i in range(nbytes // stride):
        batch.append(base + i * stride, stride, every > 0 and i % every == 0)
    return batch


def random_trace_batch(n_requests: int, span_bytes: int, rng: np.random.Generator,
                       write_fraction: float = 0.3, stride: int = 64) -> RequestBatch:
    """:func:`random_trace` as a :class:`RequestBatch` — identical
    sequence for the same ``rng`` state (same draw order)."""
    batch = RequestBatch()
    for _ in range(n_requests):
        addr = int(rng.integers(0, span_bytes // stride)) * stride
        is_write = bool(rng.random() < write_fraction)
        batch.append(addr, stride, is_write)
    return batch


def bp_metadata_trace_batch(nbytes: int, base: int = 0,
                            meta_base: int = 1 << 28) -> RequestBatch:
    """:func:`bp_metadata_trace` as a :class:`RequestBatch`."""
    batch = RequestBatch()
    for i in range(nbytes // 64):
        batch.append(base + i * 64, 64, False)
        if i % 8 == 7:
            batch.append(meta_base + (i // 8) * 64, 64, False, VN_CODE)
            batch.append(meta_base + (1 << 20) + (i // 8) * 64, 64, False, MAC_CODE)
    return batch


def strided_trace(n_requests: int, stride: int, base: int = 0,
                  size: int = 64) -> List[MemoryRequest]:
    """Fixed-stride reads (im2col column walks, tiled tensor edges)."""
    return [MemoryRequest(base + i * stride, size, False) for i in range(n_requests)]


def tensor_stream_trace(tensor_bytes: Sequence[int], base: int = 0,
                        writes_last: bool = True) -> List[MemoryRequest]:
    """One layer's movement: stream each input tensor, then write the
    last one (the output). Returns requests tagged as DATA."""
    trace = []
    addr = base
    for index, size in enumerate(tensor_bytes):
        is_write = writes_last and index == len(tensor_bytes) - 1
        for offset in range(0, size, 64):
            chunk = min(64, size - offset)
            trace.append(MemoryRequest(addr + offset, chunk, is_write, RequestKind.DATA))
        addr += size
    return trace


def random_mlp_spec(layer_sizes: Sequence[int], rng: np.random.Generator,
                    shift: int = 7) -> MlpSpec:
    """A random int8 MLP: ``layer_sizes`` like [64, 32, 16] builds two
    GEMM layers (64x32, 32x16) with small weights (to avoid saturating
    everything to the clip rails)."""
    if len(layer_sizes) < 2:
        raise ValueError("need at least input and output sizes")
    weights = [
        rng.integers(-20, 20, size=(layer_sizes[i], layer_sizes[i + 1]), dtype=np.int8)
        for i in range(len(layer_sizes) - 1)
    ]
    return MlpSpec(weights=weights, shift=shift)
