"""Synthetic memory traces and functional workloads.

Trace generators feed the DRAM microbenchmarks, the event-driven
validation runs, and the streaming :class:`~repro.mem.pipeline.TracePipeline`;
:func:`random_mlp_spec` builds the quantized MLPs the functional
(encrypt -> compute -> decrypt) tests execute.

Every generator exists in two forms:

* a **scalar reference** building ``MemoryRequest`` objects one at a
  time (the original list-of-objects code, what ``REPRO_SCALAR=1``
  runs and what the equivalence tests trust);
* a **batch generator** emitting the identical stream straight into a
  structure-of-arrays :class:`~repro.mem.batch.RequestBatch` via numpy
  address arithmetic — no per-request Python, no objects.

The batch generators take an optional ``(start, stop)`` request-index
window, so the streaming pipeline can pull bounded chunks of an
arbitrarily long trace; slicing never changes the stream
(``batch(0, n) == batch(0, k) + batch(k, n)`` for every split, pinned
by the property suite). :class:`TraceSpec` wraps a parameterized
generator into that sliceable form.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro import perf
from repro.core.host import MlpSpec
from repro.mem.batch import MAC_CODE, VN_CODE, RequestBatch
from repro.mem.trace import MemoryRequest, RequestKind


def _check_write_fraction(write_fraction: float) -> None:
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction in [0, 1]")


def _write_flag(i: int, write_fraction: float) -> bool:
    """Exact write cadence: request ``i`` is a write iff the running
    write quota ``floor(i * f)`` advances at ``i`` (request 0 opens the
    stream with a write whenever ``f > 0``). For reciprocal fractions
    ``f = 1/k`` this lands writes at ``i % k == 0`` — the historical
    cadence — and for every other fraction the realized write rate is
    exactly ``f`` instead of ``1 / int(1/f)`` (0.3 used to degrade to
    every-3rd, i.e. 33%)."""
    if write_fraction <= 0.0:
        return False
    if i == 0:
        return True
    return math.floor(i * write_fraction) > math.floor((i - 1) * write_fraction)


def _write_mask(index: np.ndarray, write_fraction: float) -> np.ndarray:
    """Vectorized :func:`_write_flag` (same float64 arithmetic, so the
    two paths agree bit-for-bit on every index)."""
    if write_fraction <= 0.0:
        return np.zeros(len(index), dtype=bool)
    mask = np.floor(index * write_fraction) > np.floor((index - 1) * write_fraction)
    mask[index == 0] = True
    return mask


def streaming_trace(nbytes: int, base: int = 0, write_fraction: float = 0.3,
                    stride: int = 64) -> List[MemoryRequest]:
    """Sequential tensor streaming — a DNN accelerator's dominant
    pattern, with writes interleaved at exactly ``write_fraction``."""
    _check_write_fraction(write_fraction)
    return [
        MemoryRequest(base + i * stride, stride, _write_flag(i, write_fraction))
        for i in range(nbytes // stride)
    ]


def random_trace(n_requests: int, span_bytes: int, rng: np.random.Generator,
                 write_fraction: float = 0.3, stride: int = 64) -> List[MemoryRequest]:
    """Uniformly random accesses — the DLRM embedding-gather extreme.

    The address and write columns come from two whole-array draws (one
    ``integers``, one ``random``), so :func:`random_batch` consumes the
    identical rng stream: same seed, same trace, either path."""
    slots = rng.integers(0, span_bytes // stride, size=n_requests)
    writes = rng.random(n_requests) < write_fraction
    return [
        MemoryRequest(int(slot) * stride, stride, bool(is_write))
        for slot, is_write in zip(slots, writes)
    ]


def bp_metadata_trace(nbytes: int, base: int = 0,
                      meta_base: int = 1 << 28) -> List[MemoryRequest]:
    """Data stream with a VN and a MAC line fetch every 512 B from two
    distant metadata regions — the baseline-protection access pattern
    that costs DRAM row locality."""
    trace = []
    for i in range(nbytes // 64):
        trace.append(MemoryRequest(base + i * 64, 64, False))
        if i % 8 == 7:
            trace.append(MemoryRequest(meta_base + (i // 8) * 64, 64, False,
                                       RequestKind.VN))
            trace.append(MemoryRequest(meta_base + (1 << 20) + (i // 8) * 64, 64, False,
                                       RequestKind.MAC))
    return trace


# -- batch generators (numpy address arithmetic, sliceable) ----------------


def _resolve_window(total: int, start: int, stop: Optional[int]) -> tuple:
    if start < 0:
        raise ValueError("start must be non-negative")
    stop = total if stop is None else min(stop, total)
    return start, max(stop, start)


def streaming_batch(nbytes: int, base: int = 0, write_fraction: float = 0.3,
                    stride: int = 64, start: int = 0,
                    stop: Optional[int] = None) -> RequestBatch:
    """:func:`streaming_trace` emitted straight into a
    :class:`RequestBatch` (same request sequence, no objects); ``start``
    / ``stop`` select a request-index window of the same stream."""
    _check_write_fraction(write_fraction)
    start, stop = _resolve_window(nbytes // stride, start, stop)
    if perf.fast_enabled():
        index = np.arange(start, stop, dtype=np.int64)
        return RequestBatch.from_arrays(
            base + index * stride,
            np.full(len(index), stride, dtype=np.int64),
            _write_mask(index, write_fraction))
    batch = RequestBatch()
    for i in range(start, stop):
        batch.append(base + i * stride, stride, _write_flag(i, write_fraction))
    return batch


def random_batch(n_requests: int, span_bytes: int, rng: np.random.Generator,
                 write_fraction: float = 0.3, stride: int = 64) -> RequestBatch:
    """:func:`random_trace` as a :class:`RequestBatch`: the same two
    whole-array draws, so an equal-seeded ``rng`` yields the identical
    trace (pinned by the seeded equivalence test). For a sliceable,
    chunk-stable random stream use :class:`RandomSpec`."""
    slots = rng.integers(0, span_bytes // stride, size=n_requests)
    writes = rng.random(n_requests) < write_fraction
    if perf.fast_enabled():
        return RequestBatch.from_arrays(
            slots.astype(np.int64) * stride,
            np.full(n_requests, stride, dtype=np.int64), writes)
    batch = RequestBatch()
    for slot, is_write in zip(slots, writes):
        batch.append(int(slot) * stride, stride, bool(is_write))
    return batch


def bp_metadata_batch(nbytes: int, base: int = 0, meta_base: int = 1 << 28,
                      start: int = 0, stop: Optional[int] = None) -> RequestBatch:
    """:func:`bp_metadata_trace` as a :class:`RequestBatch`.

    The request-index space interleaves the metadata: each complete
    group of 8 data lines occupies 10 indices (8 data, then its VN and
    MAC line), trailing data past the last full group follows bare.
    """
    n_data = nbytes // 64
    groups = n_data // 8
    start, stop = _resolve_window(n_data + 2 * groups, start, stop)
    if not perf.fast_enabled():
        batch = RequestBatch()
        for i in range(start, stop):
            if i < groups * 10:
                group, r = divmod(i, 10)
                if r < 8:
                    batch.append(base + (group * 8 + r) * 64, 64, False)
                elif r == 8:
                    batch.append(meta_base + group * 64, 64, False, VN_CODE)
                else:
                    batch.append(meta_base + (1 << 20) + group * 64, 64, False,
                                 MAC_CODE)
            else:
                batch.append(base + (i - 2 * groups) * 64, 64, False)
        return batch
    index = np.arange(start, stop, dtype=np.int64)
    in_pattern = index < groups * 10
    group = index // 10
    r = index - group * 10
    data_index = np.where(in_pattern, group * 8 + r, index - 2 * groups)
    address = base + data_index * 64
    is_vn = in_pattern & (r == 8)
    is_mac = in_pattern & (r == 9)
    address[is_vn] = meta_base + group[is_vn] * 64
    address[is_mac] = meta_base + (1 << 20) + group[is_mac] * 64
    kind = np.zeros(len(index), dtype=np.int8)
    kind[is_vn] = VN_CODE
    kind[is_mac] = MAC_CODE
    return RequestBatch.from_arrays(
        address, np.full(len(index), 64, dtype=np.int64),
        np.zeros(len(index), dtype=np.int8), kind)


#: legacy aliases (pre-streaming names) — same functions
streaming_trace_batch = streaming_batch
random_trace_batch = random_batch
bp_metadata_trace_batch = bp_metadata_batch


def strided_trace(n_requests: int, stride: int, base: int = 0,
                  size: int = 64) -> List[MemoryRequest]:
    """Fixed-stride reads (im2col column walks, tiled tensor edges)."""
    return [MemoryRequest(base + i * stride, size, False) for i in range(n_requests)]


def tensor_stream_trace(tensor_bytes: Sequence[int], base: int = 0,
                        writes_last: bool = True) -> List[MemoryRequest]:
    """One layer's movement: stream each input tensor, then write the
    last one (the output). Returns requests tagged as DATA."""
    trace = []
    addr = base
    for index, size in enumerate(tensor_bytes):
        is_write = writes_last and index == len(tensor_bytes) - 1
        for offset in range(0, size, 64):
            chunk = min(64, size - offset)
            trace.append(MemoryRequest(addr + offset, chunk, is_write, RequestKind.DATA))
        addr += size
    return trace


# -- sliceable trace specs (the pipeline's sources) ------------------------


class TraceSpec:
    """A parameterized trace as a *sliceable description* instead of a
    materialized list: ``total_requests`` requests, any ``[start, stop)``
    window of which :meth:`batch` renders as a :class:`RequestBatch`.

    Slicing is stream-stable — the concatenation of any chunking equals
    the whole batch — which is what lets
    :class:`~repro.mem.pipeline.TracePipeline` run a multi-GB trace in
    O(chunk) memory. :meth:`materialize` renders the whole trace as
    ``MemoryRequest`` objects (the pre-pipeline path; it is the thing
    whose memory footprint the pipeline exists to avoid).
    """

    total_requests: int = 0

    def batch(self, start: int = 0, stop: Optional[int] = None) -> RequestBatch:
        raise NotImplementedError

    def chunks(self, chunk_requests: int) -> Iterator[RequestBatch]:
        """Yield the trace as successive batches of ``chunk_requests``."""
        if chunk_requests <= 0:
            raise ValueError("chunk_requests must be positive")
        for start in range(0, self.total_requests, chunk_requests):
            yield self.batch(start, min(start + chunk_requests, self.total_requests))

    def materialize(self) -> List[MemoryRequest]:
        return self.batch(0, self.total_requests).to_requests()

    def state_dict(self) -> dict:
        """Identity of the trace this spec describes (type + every
        constructor parameter). Specs are stateless — ``batch`` is pure
        — so this is a *fingerprint*, not mutable state: a checkpoint
        stores it and refuses to resume against a different trace."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.total_requests} requests>"


class StreamingSpec(TraceSpec):
    """Sliceable form of :func:`streaming_trace`."""

    def __init__(self, nbytes: int, base: int = 0, write_fraction: float = 0.3,
                 stride: int = 64):
        _check_write_fraction(write_fraction)
        self.nbytes = nbytes
        self.base = base
        self.write_fraction = write_fraction
        self.stride = stride
        self.total_requests = nbytes // stride

    def batch(self, start: int = 0, stop: Optional[int] = None) -> RequestBatch:
        return streaming_batch(self.nbytes, self.base, self.write_fraction,
                               self.stride, start=start, stop=stop)

    def state_dict(self) -> dict:
        return {"type": "streaming", "nbytes": self.nbytes, "base": self.base,
                "write_fraction": self.write_fraction, "stride": self.stride}


class RandomSpec(TraceSpec):
    """Sliceable uniformly-random trace.

    Unlike :func:`random_batch` (which consumes a caller-owned rng
    sequentially), the spec derives randomness per fixed-size *block*
    from ``(seed, block_index)``, so ``batch(start, stop)`` is random
    access and the stream never depends on how the pipeline chunks it.
    """

    BLOCK = 1 << 16

    def __init__(self, n_requests: int, span_bytes: int, seed: int = 0,
                 write_fraction: float = 0.3, stride: int = 64):
        _check_write_fraction(write_fraction)
        if span_bytes < stride:
            raise ValueError("span_bytes must cover at least one stride")
        self.span_bytes = span_bytes
        self.seed = seed
        self.write_fraction = write_fraction
        self.stride = stride
        self.total_requests = n_requests

    def _block_columns(self, block: int):
        length = min((block + 1) * self.BLOCK, self.total_requests) - block * self.BLOCK
        rng = np.random.default_rng((self.seed, block))
        slots = rng.integers(0, self.span_bytes // self.stride, size=length)
        writes = rng.random(length) < self.write_fraction
        return slots, writes

    def batch(self, start: int = 0, stop: Optional[int] = None) -> RequestBatch:
        start, stop = _resolve_window(self.total_requests, start, stop)
        slot_parts, write_parts = [], []
        for block in range(start // self.BLOCK, (stop + self.BLOCK - 1) // self.BLOCK):
            slots, writes = self._block_columns(block)
            lo = block * self.BLOCK
            s, e = max(start - lo, 0), min(stop - lo, len(slots))
            slot_parts.append(slots[s:e])
            write_parts.append(writes[s:e])
        slots = np.concatenate(slot_parts) if slot_parts else np.empty(0, dtype=np.int64)
        writes = np.concatenate(write_parts) if write_parts else np.empty(0, dtype=bool)
        if perf.fast_enabled():
            return RequestBatch.from_arrays(
                slots.astype(np.int64) * self.stride,
                np.full(len(slots), self.stride, dtype=np.int64), writes)
        batch = RequestBatch()
        for slot, is_write in zip(slots, writes):
            batch.append(int(slot) * self.stride, self.stride, bool(is_write))
        return batch

    def state_dict(self) -> dict:
        return {"type": "random", "n_requests": self.total_requests,
                "span_bytes": self.span_bytes, "seed": self.seed,
                "write_fraction": self.write_fraction, "stride": self.stride}


class BpMetadataSpec(TraceSpec):
    """Sliceable form of :func:`bp_metadata_trace`."""

    def __init__(self, nbytes: int, base: int = 0, meta_base: int = 1 << 28):
        self.nbytes = nbytes
        self.base = base
        self.meta_base = meta_base
        n_data = nbytes // 64
        self.total_requests = n_data + 2 * (n_data // 8)

    def batch(self, start: int = 0, stop: Optional[int] = None) -> RequestBatch:
        return bp_metadata_batch(self.nbytes, self.base, self.meta_base,
                                 start=start, stop=stop)

    def state_dict(self) -> dict:
        return {"type": "bp-metadata", "nbytes": self.nbytes,
                "base": self.base, "meta_base": self.meta_base}


def random_mlp_spec(layer_sizes: Sequence[int], rng: np.random.Generator,
                    shift: int = 7) -> MlpSpec:
    """A random int8 MLP: ``layer_sizes`` like [64, 32, 16] builds two
    GEMM layers (64x32, 32x16) with small weights (to avoid saturating
    everything to the clip rails)."""
    if len(layer_sizes) < 2:
        raise ValueError("need at least input and output sizes")
    weights = [
        rng.integers(-20, 20, size=(layer_sizes[i], layer_sizes[i + 1]), dtype=np.int8)
        for i in range(len(layer_sizes) - 1)
    ]
    return MlpSpec(weights=weights, shift=shift)
