"""Workload and trace generators for experiments and tests."""

from repro.workloads.generators import (
    BpMetadataSpec,
    RandomSpec,
    StreamingSpec,
    TraceSpec,
    bp_metadata_batch,
    bp_metadata_trace,
    random_batch,
    random_mlp_spec,
    random_trace,
    streaming_batch,
    streaming_trace,
    strided_trace,
    tensor_stream_trace,
)


def build_trace_spec(workload: str, **params) -> TraceSpec:
    """Resolve a workload name to a sliceable :class:`TraceSpec`.

    ``streaming`` / ``random`` / ``bp-metadata`` build the synthetic
    patterns; any registered LLM geometry name (``gpt2``, ``gpt2-xl``,
    ``llama-7b``) builds its decode trace. ``params`` forward to the
    spec constructor.
    """
    if workload == "streaming":
        return StreamingSpec(**params)
    if workload == "random":
        return RandomSpec(**params)
    if workload == "bp-metadata":
        return BpMetadataSpec(**params)
    from repro.workloads.llm import LLM_GEOMETRIES, llm_decode_spec

    if workload in LLM_GEOMETRIES:
        return llm_decode_spec(workload, **params)
    known = ["streaming", "random", "bp-metadata"] + sorted(LLM_GEOMETRIES)
    raise KeyError(f"unknown workload {workload!r}; known: {', '.join(known)}")


__all__ = [
    "TraceSpec",
    "StreamingSpec",
    "RandomSpec",
    "BpMetadataSpec",
    "build_trace_spec",
    "streaming_trace",
    "streaming_batch",
    "random_trace",
    "random_batch",
    "bp_metadata_trace",
    "bp_metadata_batch",
    "strided_trace",
    "tensor_stream_trace",
    "random_mlp_spec",
]
