"""Workload and trace generators for experiments and tests."""

from repro.workloads.generators import (
    streaming_trace,
    random_trace,
    strided_trace,
    tensor_stream_trace,
    random_mlp_spec,
)

__all__ = [
    "streaming_trace",
    "random_trace",
    "strided_trace",
    "tensor_stream_trace",
    "random_mlp_spec",
]
