"""LLM-scale decode traces: embedding gathers + decoder attention.

Autoregressive decode is the memory-traffic extreme the paper's nine
networks never reach: every generated token re-streams the full weight
set, scans the per-layer KV cache, appends one new KV entry, and opens
with a data-dependent embedding-table gather. A single GPT-2-XL token
is ~1.5 GB of off-chip movement (~24 M cache-line requests) — a trace
that cannot be materialized as ``MemoryRequest`` objects, which is
exactly the workload the streaming :class:`~repro.mem.pipeline.TracePipeline`
exists for.

:class:`LlmDecodeSpec` renders that trace as a sliceable
:class:`~repro.workloads.generators.TraceSpec`: per token —

1. one **embedding gather**: ``d_model`` bytes read from a
   pseudo-random row of the ``vocab x d_model`` table (deterministic
   per-token hash, identical on the scalar and vectorized paths);
2. per decoder layer: the **weight stream** (QKV/proj/MLP matrices,
   read sequentially), the **KV-cache scan** (``2 * context * d_model``
   bytes read), and the **KV append** (one new key/value entry written
   to the token's ring-buffer slot).

Geometries come from :data:`repro.accel.zoo_ext.LLM_GEOMETRIES`, so the
analytic zoo models and the mechanistic decode traces describe the same
networks.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Optional

import numpy as np

from repro import perf
from repro.accel.zoo_ext import LLM_GEOMETRIES, LlmGeometry, llm_geometry
from repro.mem.batch import RequestBatch
from repro.workloads.generators import TraceSpec, _resolve_window

#: per-token row hash multiplier (Fibonacci hashing; any odd constant
#: works — it only needs to be deterministic and well-spread)
_ROW_HASH = 2654435761


def _lines(nbytes: int, stride: int) -> int:
    return -(-nbytes // stride)


class LlmDecodeSpec(TraceSpec):
    """Streaming decode trace for one decoder-only LM geometry.

    ``context`` is the steady-state KV length being scanned (serving at
    a fixed context window; new entries overwrite the ring slot
    ``token % context``), ``tokens`` the number of decode steps.
    ``layers`` optionally truncates the stack (scaled-down sweeps).
    """

    def __init__(self, geometry: LlmGeometry, tokens: int = 1,
                 context: Optional[int] = None, layers: Optional[int] = None,
                 elem_bytes: int = 1, stride: int = 64, seed: int = 1):
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        context = min(geometry.max_seq, 512) if context is None else context
        if context <= 0:
            raise ValueError("context must be positive")
        n_layers = geometry.layers if layers is None else layers
        if not 1 <= n_layers <= geometry.layers:
            raise ValueError(f"layers must be in [1, {geometry.layers}]")
        self.geometry = geometry
        self.tokens = tokens
        self.context = context
        self.layers = n_layers
        self.elem_bytes = elem_bytes
        self.stride = stride
        self.seed = seed

        d, ff = geometry.d_model, geometry.d_ff
        weight_bytes = (4 * d * d + 2 * d * ff) * elem_bytes
        self.emb_lines = _lines(d * elem_bytes, stride)
        self.weight_lines = _lines(weight_bytes, stride)
        self.kv_entry_lines = _lines(2 * d * elem_bytes, stride)
        self.kv_read_lines = _lines(2 * context * d * elem_bytes, stride)
        self.kv_region_lines = context * self.kv_entry_lines

        # address map, in stride-sized line units: embedding table,
        # then the per-layer weights, then the per-layer KV rings
        self.table_lines = geometry.vocab * self.emb_lines
        self.weights_base = self.table_lines
        self.kv_base = self.weights_base + n_layers * self.weight_lines

        # request-index layout of one token: segment s covers
        # [bounds[s], bounds[s+1]) with per-segment base/flags
        sizes = [self.emb_lines]
        base, write, emb, kv_slot = [0], [0], [1], [0]
        for layer in range(n_layers):
            sizes += [self.weight_lines, self.kv_read_lines, self.kv_entry_lines]
            kv = self.kv_base + layer * self.kv_region_lines
            base += [self.weights_base + layer * self.weight_lines, kv, kv]
            write += [0, 0, 1]
            emb += [0, 0, 0]
            kv_slot += [0, 0, 1]
        self._bounds = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
        self._seg_base = np.asarray(base, dtype=np.int64)
        self._seg_write = np.asarray(write, dtype=np.int8)
        self._seg_emb = np.asarray(emb, dtype=np.int64)
        self._seg_kv_slot = np.asarray(kv_slot, dtype=np.int64)
        self.requests_per_token = int(self._bounds[-1])
        self.total_requests = tokens * self.requests_per_token

    def _row_of(self, token) -> "np.ndarray":
        """The embedding row gathered for ``token`` (vectorizes)."""
        return (token * _ROW_HASH + self.seed) % self.geometry.vocab

    def batch(self, start: int = 0, stop: Optional[int] = None) -> RequestBatch:
        start, stop = _resolve_window(self.total_requests, start, stop)
        if not perf.fast_enabled():
            batch = RequestBatch()
            for i in range(start, stop):
                address, is_write = self._request_at(i)
                batch.append(address, self.stride, is_write)
            return batch
        index = np.arange(start, stop, dtype=np.int64)
        token = index // self.requests_per_token
        r = index - token * self.requests_per_token
        seg = np.searchsorted(self._bounds, r, side="right") - 1
        within = r - self._bounds[seg]
        line = self._seg_base[seg] + within
        line += self._seg_emb[seg] * self._row_of(token) * self.emb_lines
        line += self._seg_kv_slot[seg] * (token % self.context) * self.kv_entry_lines
        return RequestBatch.from_arrays(
            line * self.stride,
            np.full(len(index), self.stride, dtype=np.int64),
            self._seg_write[seg])

    def _request_at(self, i: int) -> tuple:
        """Scalar reference for one request index (bit-identical to the
        vectorized mapping; the equivalence suite compares them)."""
        token, r = divmod(i, self.requests_per_token)
        seg = int(np.searchsorted(self._bounds, r, side="right")) - 1
        within = r - int(self._bounds[seg])
        line = int(self._seg_base[seg]) + within
        if self._seg_emb[seg]:
            line += int(self._row_of(token)) * self.emb_lines
        if self._seg_kv_slot[seg]:
            line += (token % self.context) * self.kv_entry_lines
        return line * self.stride, bool(self._seg_write[seg])

    def state_dict(self) -> dict:
        # the full geometry (not just its name) so unregistered
        # geometries — the test suite's tiny models — fingerprint too
        return {"type": "llm-decode", "geometry": asdict(self.geometry),
                "tokens": self.tokens, "context": self.context,
                "layers": self.layers, "elem_bytes": self.elem_bytes,
                "stride": self.stride, "seed": self.seed}

    @property
    def bytes_per_token(self) -> int:
        return self.requests_per_token * self.stride

    def __repr__(self) -> str:
        return (f"<LlmDecodeSpec {self.geometry.name} tokens={self.tokens} "
                f"context={self.context} layers={self.layers} "
                f"requests={self.total_requests}>")


def llm_decode_spec(name: str, tokens: int = 1, context: Optional[int] = None,
                    layers: Optional[int] = None, elem_bytes: int = 1,
                    stride: int = 64, seed: int = 1) -> LlmDecodeSpec:
    """Build the decode trace for a registered LLM geometry
    (``gpt2`` / ``gpt2-xl`` / ``llama-7b``)."""
    return LlmDecodeSpec(llm_geometry(name), tokens=tokens, context=context,
                         layers=layers, elem_bytes=elem_bytes, stride=stride,
                         seed=seed)


def list_llm_workloads():
    """Registered LLM geometry names, in deterministic order."""
    return sorted(LLM_GEOMETRIES)
