"""GF(2^128) arithmetic in the GHASH (NIST SP 800-38D) representation.

Used by the polynomial MAC option of the integrity-verification engine.
GHASH's field uses the reduction polynomial
``x^128 + x^7 + x^2 + x + 1`` with a *reflected* bit ordering: bit 0 of
byte 0 is the coefficient of x^0... NIST instead defines the leftmost bit
as x^0. We follow the NIST convention so our GHASH matches the standard.
"""

from __future__ import annotations

# x^128 reduction: in the NIST bit order the polynomial is represented by
# R = 0xE1 followed by 15 zero bytes.
_R = 0xE1000000000000000000000000000000


def gf128_mul(x: int, y: int) -> int:
    """Multiply two field elements (given as 128-bit ints in NIST/GHASH
    bit order, i.e. the MSB of the integer is the x^0 coefficient)."""
    if not (0 <= x < (1 << 128) and 0 <= y < (1 << 128)):
        raise ValueError("operands must be 128-bit")
    z = 0
    v = y
    for i in range(127, -1, -1):
        if (x >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def gf128_pow(x: int, e: int) -> int:
    """Exponentiation by squaring in GF(2^128)."""
    # The multiplicative identity in GHASH bit order is the element with
    # only the x^0 coefficient set, i.e. MSB of the integer.
    result = 1 << 127
    base = x
    while e:
        if e & 1:
            result = gf128_mul(result, base)
        base = gf128_mul(base, base)
        e >>= 1
    return result


def ghash(h: int, data: bytes) -> bytes:
    """GHASH universal hash of ``data`` under hash key ``h`` (a 128-bit
    int). Data is zero-padded to a multiple of 16 bytes; no length block
    is appended (callers that need GCM framing add it themselves)."""
    if len(data) % 16:
        data = data + bytes(16 - len(data) % 16)
    y = 0
    for i in range(0, len(data), 16):
        block = int.from_bytes(data[i : i + 16], "big")
        y = gf128_mul(y ^ block, h)
    return y.to_bytes(16, "big")
