"""GF(2^128) arithmetic in the GHASH (NIST SP 800-38D) representation.

Used by the polynomial MAC option of the integrity-verification engine.
GHASH's field uses the reduction polynomial
``x^128 + x^7 + x^2 + x + 1`` with a *reflected* bit ordering: bit 0 of
byte 0 is the coefficient of x^0... NIST instead defines the leftmost bit
as x^0. We follow the NIST convention so our GHASH matches the standard.

Two multiply paths exist: the bit-serial :func:`gf128_mul` (128
shift/XOR steps, the auditable reference) and :class:`Gf128Table`, the
Shoup-style per-byte precomputed-multiples table hardware GHASH units
mirror — 16 lookups + 15 XORs per multiply against a fixed hash key H.
:func:`ghash` picks the table path unless :mod:`repro.perf` is in
scalar mode; both are bit-identical (randomized equivalence tests).
"""

from __future__ import annotations

import functools

from repro import perf

# x^128 reduction: in the NIST bit order the polynomial is represented by
# R = 0xE1 followed by 15 zero bytes.
_R = 0xE1000000000000000000000000000000


def gf128_mul(x: int, y: int) -> int:
    """Multiply two field elements (given as 128-bit ints in NIST/GHASH
    bit order, i.e. the MSB of the integer is the x^0 coefficient)."""
    if not (0 <= x < (1 << 128) and 0 <= y < (1 << 128)):
        raise ValueError("operands must be 128-bit")
    z = 0
    v = y
    for i in range(127, -1, -1):
        if (x >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def gf128_pow(x: int, e: int) -> int:
    """Exponentiation by squaring in GF(2^128)."""
    # The multiplicative identity in GHASH bit order is the element with
    # only the x^0 coefficient set, i.e. MSB of the integer.
    result = 1 << 127
    base = x
    while e:
        if e & 1:
            result = gf128_mul(result, base)
        base = gf128_mul(base, base)
        e >>= 1
    return result


class Gf128Table:
    """Precomputed per-byte multiples of one hash key H.

    ``TABLE[j][b]`` holds ``(b placed at byte position j) * H``, so a
    full 128x128 multiply against H collapses to 16 table lookups and
    15 XORs — the software rendering of the parallel GHASH multiplier
    the MEE literature assumes. Built from 128 single shift-reduce
    steps plus XOR combinations; no field multiplies needed.
    """

    __slots__ = ("h", "_tables")

    def __init__(self, h: int):
        if not 0 <= h < (1 << 128):
            raise ValueError("hash key must be 128-bit")
        self.h = h
        # powers[t] = H * x^t, via the same shift-reduce step as the
        # bit-serial reference's inner loop
        powers = []
        v = h
        for _ in range(128):
            powers.append(v)
            v = (v >> 1) ^ _R if v & 1 else v >> 1
        tables = []
        for j in range(16):  # byte position, most significant first
            row = [0] * 256
            for bit in range(8):  # bit m of the byte -> power 8j + 7 - m
                p = powers[8 * j + 7 - bit]
                step = 1 << bit
                for b in range(step, 256, 2 * step):
                    for off in range(step):
                        row[b + off] ^= p
            tables.append(row)
        self._tables = tables

    def mul(self, x: int) -> int:
        """Multiply ``x`` by the fixed key H (fully unrolled: 16
        lookups, 15 XORs)."""
        t = self._tables
        return (
            t[0][(x >> 120) & 0xFF] ^ t[1][(x >> 112) & 0xFF]
            ^ t[2][(x >> 104) & 0xFF] ^ t[3][(x >> 96) & 0xFF]
            ^ t[4][(x >> 88) & 0xFF] ^ t[5][(x >> 80) & 0xFF]
            ^ t[6][(x >> 72) & 0xFF] ^ t[7][(x >> 64) & 0xFF]
            ^ t[8][(x >> 56) & 0xFF] ^ t[9][(x >> 48) & 0xFF]
            ^ t[10][(x >> 40) & 0xFF] ^ t[11][(x >> 32) & 0xFF]
            ^ t[12][(x >> 24) & 0xFF] ^ t[13][(x >> 16) & 0xFF]
            ^ t[14][(x >> 8) & 0xFF] ^ t[15][x & 0xFF]
        )


@functools.lru_cache(maxsize=64)
def table_for(h: int) -> Gf128Table:
    """The (cached) per-key multiplication table for hash key ``h``."""
    return Gf128Table(h)


perf.register_cache(table_for.cache_clear)


def mul_fn(h: int):
    """A multiply-by-``h`` callable honouring the current perf mode:
    the (cached) table's :meth:`Gf128Table.mul` on the fast path, the
    bit-serial :func:`gf128_mul` reference otherwise. GMAC and any
    other GHASH-style consumer should obtain their multiply here so the
    mode dispatch lives in one place."""
    if perf.fast_enabled():
        return table_for(h).mul
    return lambda x: gf128_mul(x, h)


def ghash(h: int, data: bytes) -> bytes:
    """GHASH universal hash of ``data`` under hash key ``h`` (a 128-bit
    int). Data is zero-padded to a multiple of 16 bytes; no length block
    is appended (callers that need GCM framing add it themselves)."""
    if len(data) % 16:
        data = data + bytes(16 - len(data) % 16)
    y = 0
    if perf.fast_enabled():
        # hoist the 16 byte-position tables into locals: the serial
        # GHASH chain leaves no batch parallelism to exploit, so the
        # fast path wins purely by doing 16 lookups instead of 128
        # shift-reduce steps per block — keep its constant factor lean.
        # This is Gf128Table.mul unrolled in place; keep the two in sync.
        (t0, t1, t2, t3, t4, t5, t6, t7,
         t8, t9, t10, t11, t12, t13, t14, t15) = table_for(h)._tables
        for i in range(0, len(data), 16):
            v = y ^ int.from_bytes(data[i : i + 16], "big")
            y = (
                t0[(v >> 120) & 0xFF] ^ t1[(v >> 112) & 0xFF]
                ^ t2[(v >> 104) & 0xFF] ^ t3[(v >> 96) & 0xFF]
                ^ t4[(v >> 88) & 0xFF] ^ t5[(v >> 80) & 0xFF]
                ^ t6[(v >> 72) & 0xFF] ^ t7[(v >> 64) & 0xFF]
                ^ t8[(v >> 56) & 0xFF] ^ t9[(v >> 48) & 0xFF]
                ^ t10[(v >> 40) & 0xFF] ^ t11[(v >> 32) & 0xFF]
                ^ t12[(v >> 24) & 0xFF] ^ t13[(v >> 16) & 0xFF]
                ^ t14[(v >> 8) & 0xFF] ^ t15[v & 0xFF]
            )
        return y.to_bytes(16, "big")
    for i in range(0, len(data), 16):
        block = int.from_bytes(data[i : i + 16], "big")
        y = gf128_mul(y ^ block, h)
    return y.to_bytes(16, "big")
