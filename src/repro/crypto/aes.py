"""AES-128 block cipher (FIPS-197), pure Python.

This models the pipelined AES engines inside GuardNN's memory protection
unit (the paper uses AES-128 engines with a 12-cycle pipeline on the FPGA
prototype). The implementation is a straightforward, table-free rendering
of the FIPS-197 specification: readable, easy to audit, and validated
against the FIPS-197 Appendix C known-answer vector in the test suite.

Only the 128-bit key size is supported because that is the only size the
paper uses.
"""

from __future__ import annotations

import functools

BLOCK_SIZE = 16
ROUNDS = 10
KEY_SIZE = 16


def _build_sbox():
    """Construct the AES S-box from first principles (GF(2^8) inverse
    followed by the affine transform), so no opaque constant tables need
    to be trusted."""
    # Multiplicative inverse in GF(2^8) via exponentiation chains is slow;
    # build log/antilog tables with generator 3 instead.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by generator 0x03 = x * 2 ^ x
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def inv(b):
        return 0 if b == 0 else exp[255 - log[b]]

    sbox = [0] * 256
    for b in range(256):
        i = inv(b)
        # affine transform: bit_j = i_j ^ i_{j+4} ^ i_{j+5} ^ i_{j+6} ^ i_{j+7} ^ c_j
        res = 0
        for bit in range(8):
            v = (
                (i >> bit)
                ^ (i >> ((bit + 4) % 8))
                ^ (i >> ((bit + 5) % 8))
                ^ (i >> ((bit + 6) % 8))
                ^ (i >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            res |= v << bit
        sbox[b] = res
    return sbox, exp, log


_SBOX, _EXP, _LOG = _build_sbox()
_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(b):
    """Multiply by x (i.e. 2) in GF(2^8)."""
    b <<= 1
    if b & 0x100:
        b ^= 0x11B
    return b & 0xFF


def _gmul(a, b):
    """GF(2^8) multiplication via log tables."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


class AES128:
    """AES-128 with encrypt and decrypt of single 16-byte blocks.

    >>> key = bytes(range(16))
    >>> aes = AES128(key)
    >>> block = bytes(16)
    >>> aes.decrypt_block(aes.encrypt_block(block)) == block
    True
    """

    def __init__(self, key: bytes):
        if len(key) != KEY_SIZE:
            raise ValueError(f"AES-128 requires a {KEY_SIZE}-byte key, got {len(key)}")
        self._key = key
        self._round_keys = self._expand_key(key)

    @staticmethod
    @functools.lru_cache(maxsize=256)
    def _expand_key(key: bytes):
        """FIPS-197 key schedule producing 11 round keys of 16 bytes.

        Cached per key: CTR/CMAC/GMAC construct fresh cipher objects for
        the same session keys over and over, and the schedule is pure.
        Round keys are immutable tuples so cache sharing is safe.
        """
        words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
        for i in range(4, 4 * (ROUNDS + 1)):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [_SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([words[i - 4][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for r in range(ROUNDS + 1):
            rk = []
            for w in words[4 * r : 4 * r + 4]:
                rk.extend(w)
            round_keys.append(tuple(rk))
        return tuple(round_keys)

    # --- state helpers: state is a flat list of 16 bytes, column-major
    #     per FIPS-197 (state[r + 4c]) ---

    @staticmethod
    def _add_round_key(state, rk):
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state):
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state):
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state):
        # bytes are laid out column-major: index = 4*col + row in our flat
        # input ordering (FIPS-197 loads input bytes down columns).
        s = state
        s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
        s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
        s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]

    @staticmethod
    def _inv_shift_rows(state):
        s = state
        s[5], s[9], s[13], s[1] = s[1], s[5], s[9], s[13]
        s[10], s[14], s[2], s[6] = s[2], s[6], s[10], s[14]
        s[15], s[3], s[7], s[11] = s[3], s[7], s[11], s[15]

    @staticmethod
    def _mix_columns(state):
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i : i + 4]
            state[i + 0] = _xtime(a0) ^ (_xtime(a1) ^ a1) ^ a2 ^ a3
            state[i + 1] = a0 ^ _xtime(a1) ^ (_xtime(a2) ^ a2) ^ a3
            state[i + 2] = a0 ^ a1 ^ _xtime(a2) ^ (_xtime(a3) ^ a3)
            state[i + 3] = (_xtime(a0) ^ a0) ^ a1 ^ a2 ^ _xtime(a3)

    @staticmethod
    def _inv_mix_columns(state):
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i : i + 4]
            state[i + 0] = _gmul(a0, 14) ^ _gmul(a1, 11) ^ _gmul(a2, 13) ^ _gmul(a3, 9)
            state[i + 1] = _gmul(a0, 9) ^ _gmul(a1, 14) ^ _gmul(a2, 11) ^ _gmul(a3, 13)
            state[i + 2] = _gmul(a0, 13) ^ _gmul(a1, 9) ^ _gmul(a2, 14) ^ _gmul(a3, 11)
            state[i + 3] = _gmul(a0, 11) ^ _gmul(a1, 13) ^ _gmul(a2, 9) ^ _gmul(a3, 14)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for r in range(1, ROUNDS):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[r])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[ROUNDS])
        return bytes(state)

    def encrypt_blocks(self, data: bytes) -> bytes:
        """Encrypt a multiple of 16 bytes in ECB (the batch primitive of
        the pipelined-engine model). Dispatches to the table-driven
        batched kernel unless :mod:`repro.perf` is in scalar mode; both
        paths are bit-identical."""
        if len(data) % BLOCK_SIZE:
            raise ValueError("data must be a multiple of 16 bytes")
        from repro import perf

        if perf.fast_enabled():
            from repro.crypto import aes_fast

            return aes_fast.encrypt_blocks(self._key, data)
        return b"".join(
            self.encrypt_block(data[i : i + BLOCK_SIZE])
            for i in range(0, len(data), BLOCK_SIZE)
        )

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[ROUNDS])
        for r in range(ROUNDS - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[r])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
