"""Cryptographic substrate for the GuardNN reproduction.

Everything a real GuardNN device would implement in hardware or
microcontroller firmware is implemented here from scratch in pure Python:

* :mod:`repro.crypto.aes` — AES-128 block cipher (FIPS-197).
* :mod:`repro.crypto.ctr` — AES counter mode (SP 800-38A) used by the
  off-chip memory encryption engine.
* :mod:`repro.crypto.gf128` — GF(2^128) arithmetic for GHASH-style MACs.
* :mod:`repro.crypto.cmac` — AES-CMAC (RFC 4493) used for memory MACs.
* :mod:`repro.crypto.sha256` — SHA-256 (FIPS 180-4) for attestation hashes.
* :mod:`repro.crypto.hmac` — HMAC (RFC 2104).
* :mod:`repro.crypto.kdf` — HKDF (RFC 5869) for session-key derivation.
* :mod:`repro.crypto.rng` — HMAC-DRBG (SP 800-90A) seeded by a simulated TRNG.
* :mod:`repro.crypto.ec` — NIST P-256 elliptic-curve arithmetic.
* :mod:`repro.crypto.ecdsa` / :mod:`repro.crypto.ecdh` — signatures and
  ephemeral key agreement (the paper's ECDHE–ECDSA exchange).
* :mod:`repro.crypto.keys` / :mod:`repro.crypto.pki` — device keys,
  manufacturer certificates, and the certificate chain a remote user
  verifies before trusting an accelerator.

These are *reference* implementations: correct (validated against published
test vectors in the test suite) and readable, not constant-time or fast.
The performance-simulation path never bulk-encrypts through them; only the
functional-security path does.
"""

from repro.crypto.aes import AES128
from repro.crypto.ctr import AesCtr, ctr_keystream
from repro.crypto.cmac import AesCmac, cmac
from repro.crypto.gmac import AesGmac
from repro.crypto.sha256 import sha256, Sha256
from repro.crypto.hmac import hmac_sha256
from repro.crypto.kdf import hkdf_extract, hkdf_expand, hkdf
from repro.crypto.rng import HmacDrbg, SimulatedTrng
from repro.crypto.ec import P256, ECPoint
from repro.crypto.ecdsa import ecdsa_sign, ecdsa_verify, EcdsaKeyPair
from repro.crypto.ecdh import ecdh_shared_secret, EcdheExchange
from repro.crypto.keys import DeviceKeys, SessionKeys
from repro.crypto.pki import ManufacturerCA, DeviceCertificate

__all__ = [
    "AES128",
    "AesCtr",
    "ctr_keystream",
    "AesCmac",
    "cmac",
    "AesGmac",
    "sha256",
    "Sha256",
    "hmac_sha256",
    "hkdf_extract",
    "hkdf_expand",
    "hkdf",
    "HmacDrbg",
    "SimulatedTrng",
    "P256",
    "ECPoint",
    "ecdsa_sign",
    "ecdsa_verify",
    "EcdsaKeyPair",
    "ecdh_shared_secret",
    "EcdheExchange",
    "DeviceKeys",
    "SessionKeys",
    "ManufacturerCA",
    "DeviceCertificate",
]
