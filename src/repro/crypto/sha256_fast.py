"""Lane-parallel SHA-256 (the fast path for batched hashing).

The scalar :class:`repro.crypto.sha256.Sha256` renders FIPS 180-4 round
by round over Python ints — the trusted reference, but ~100 us per
64-byte block. GuardNN's hardware hash/MAC engines are *throughput*
machines: the paper's pipeline absorbs a block per cycle per engine, so
a batch of independent messages (a dirty Merkle level, a tile's worth
of per-chunk MACs) finishes in the depth of the pipeline, not the sum
of its inputs.

This module is the software analogue: the classic SIMD *multi-buffer*
trick. One numpy uint32 lane per message — ``a..h`` and the message
schedule live in ``(n_lanes,)`` vectors, and each of the 64 rounds is a
handful of whole-batch array operations. This is deliberately **not**
single-message SIMD (which would need the SHA-NI-style within-block
dependency tricks and wins little in numpy); hashing *independent*
messages in parallel is embarrassingly vectorizable and is exactly the
shape of every hot hashing site in the simulator (tree levels, MAC
batches, HMAC fan-out).

Ragged batches are supported the way multi-buffer hardware does it:
every message is padded to its own FIPS 180-4 length, lanes whose
message is exhausted simply stop committing state (an ``active`` mask
per block step), and the whole batch runs for ``max(blocks)`` steps.

Bit-exactness against the scalar reference is asserted by the NIST
known-answer suite and the randomized equivalence tests; the scalar
path remains the implementation of record under ``REPRO_SCALAR=1``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro import perf
from repro.crypto.sha256 import _H0, _K, sha256

try:  # numpy accelerates the lane kernel but is not required
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

_BLOCK = 64

if _np is not None:
    _NP_K = _np.array(_K, dtype=_np.uint32)
    _NP_H0 = _np.array(_H0, dtype=_np.uint32)


def _rotr(x, r: int):
    """Rotate each uint32 lane right by ``r`` (numpy wraps shifts)."""
    return (x >> r) | (x << (32 - r))


def _compress_lanes(state, wblock):
    """Run all lanes through the 64 rounds of one block step.

    ``state`` is a list of 8 ``(n,)`` uint32 arrays; ``wblock`` is the
    ``(n, 16)`` uint32 message-schedule seed for this block. Returns
    the 8 working variables after round 63 (caller adds them into the
    state for active lanes). The schedule uses the standard 16-entry
    ring so only 16 lane vectors are live at a time.
    """
    w = [_np.ascontiguousarray(wblock[:, t]) for t in range(16)]
    a, b, c, d, e, f, g, h = state
    for t in range(64):
        if t < 16:
            wt = w[t]
        else:
            w15 = w[(t - 15) % 16]
            w2 = w[(t - 2) % 16]
            s0 = _rotr(w15, 7) ^ _rotr(w15, 18) ^ (w15 >> 3)
            s1 = _rotr(w2, 17) ^ _rotr(w2, 19) ^ (w2 >> 10)
            wt = w[t % 16] + s0 + w[(t - 7) % 16] + s1
            w[t % 16] = wt
        t1 = h + (_rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)) \
            + ((e & f) ^ (~e & g)) + _NP_K[t] + wt
        t2 = (_rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)) \
            + ((a & b) ^ (a & c) ^ (b & c))
        h, g, f, e, d, c, b, a = g, f, e, d + t1, c, b, a, t1 + t2
    return [a, b, c, d, e, f, g, h]


def _pad_lanes(messages: Sequence[bytes]):
    """FIPS 180-4 pad every message into one ``(n, max_blocks, 16)``
    uint32 schedule array plus the per-lane block counts."""
    n = len(messages)
    blocks = [(len(m) + 9 + 63) // _BLOCK for m in messages]
    max_blocks = max(blocks)
    buf = _np.zeros((n, max_blocks * _BLOCK), dtype=_np.uint8)
    for i, message in enumerate(messages):
        length = len(message)
        if length:
            buf[i, :length] = _np.frombuffer(message, dtype=_np.uint8)
        buf[i, length] = 0x80
        tail = blocks[i] * _BLOCK - 8
        buf[i, tail:tail + 8] = _np.frombuffer(
            (length * 8).to_bytes(8, "big"), dtype=_np.uint8)
    words = buf.view(">u4").astype(_np.uint32).reshape(n, max_blocks, 16)
    return words, _np.array(blocks, dtype=_np.int64)


def _sha256_lanes(messages: Sequence[bytes]) -> List[bytes]:
    """All messages through the lane-parallel kernel at once."""
    n = len(messages)
    words, blocks = _pad_lanes(messages)
    state = [_np.full(n, h0, dtype=_np.uint32) for h0 in _NP_H0]
    uniform = bool((blocks == blocks[0]).all())
    for b in range(words.shape[1]):
        compressed = _compress_lanes(state, words[:, b, :])
        if uniform:
            state = [s + v for s, v in zip(state, compressed)]
        else:
            active = blocks > b
            state = [_np.where(active, s + v, s)
                     for s, v in zip(state, compressed)]
    packed = _np.stack(state, axis=1).astype(">u4").tobytes()
    return [packed[32 * i:32 * i + 32] for i in range(n)]


def sha256_many(messages: Iterable[bytes]) -> List[bytes]:
    """SHA-256 of N independent messages — one lane per message.

    The batch entry point every hot hashing site goes through: on the
    fast path all lanes advance together through numpy uint32 rounds;
    in scalar mode (or without numpy, or for trivial batches) it is a
    plain loop over the reference :func:`~repro.crypto.sha256.sha256`.
    Outputs are bit-identical either way.
    """
    messages = list(messages)
    if perf.fast_enabled() and _np is not None and len(messages) > 1:
        return _sha256_lanes(messages)
    return [sha256(m) for m in messages]


def hmac_sha256_many(key: bytes, messages: Iterable[bytes]) -> List[bytes]:
    """HMAC-SHA256 of N messages under one key (the MAC-engine form:
    one keyed engine, a tile's worth of chunks).

    Both HMAC passes ride :func:`sha256_many`, so a batch costs two
    lane-parallel kernel calls instead of 4N scalar compressions. The
    key block is processed once, exactly as RFC 2104 specifies.
    """
    messages = list(messages)
    if len(key) > _BLOCK:
        key = sha256(key)
    key = key + bytes(_BLOCK - len(key))
    ipad = bytes(b ^ 0x36 for b in key)
    opad = bytes(b ^ 0x5C for b in key)
    inner = sha256_many([ipad + message for message in messages])
    return sha256_many([opad + digest for digest in inner])
