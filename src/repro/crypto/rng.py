"""Random number generation: HMAC-DRBG (SP 800-90A) + simulated TRNG.

The paper's device contains a true random number generator (Table I, "Key
Generation"). Real silicon feeds TRNG entropy into a DRBG; we reproduce
that structure with a deterministic, *seedable* entropy source so that
tests and experiments are reproducible, while the DRBG layer is the same
construction a real device would use.
"""

from __future__ import annotations

from repro.crypto.hmac import hmac_sha256
from repro.crypto.sha256 import sha256


class SimulatedTrng:
    """Deterministic stand-in for a hardware true RNG.

    Produces an entropy stream by iterating SHA-256 over a seed; distinct
    seeds model distinct physical devices. This is a *simulation
    substitution* (documented in DESIGN.md): the downstream DRBG and all
    protocol logic are unchanged relative to a real TRNG.
    """

    def __init__(self, seed: bytes):
        if not seed:
            raise ValueError("TRNG seed must be non-empty")
        self._state = sha256(b"guardnn-trng" + seed)
        self._counter = 0

    def read(self, nbytes: int) -> bytes:
        out = bytearray()
        while len(out) < nbytes:
            block = sha256(self._state + self._counter.to_bytes(8, "big"))
            out.extend(block)
            self._counter += 1
        # ratchet state forward so earlier outputs cannot be recomputed
        self._state = sha256(self._state + b"ratchet")
        return bytes(out[:nbytes])


class HmacDrbg:
    """HMAC_DRBG per NIST SP 800-90A (SHA-256 variant).

    Supports instantiate (constructor), reseed, and generate with
    optional additional input. No reseed-counter enforcement is needed for
    our workloads but the counter is tracked for completeness.
    """

    RESEED_INTERVAL = 1 << 48

    def __init__(self, entropy: bytes, personalization: bytes = b""):
        self._k = bytes(32)
        self._v = bytes([0x01] * 32)
        self._update(entropy + personalization)
        self.reseed_counter = 1

    def _update(self, provided: bytes) -> None:
        self._k = hmac_sha256(self._k, self._v + b"\x00" + provided)
        self._v = hmac_sha256(self._k, self._v)
        if provided:
            self._k = hmac_sha256(self._k, self._v + b"\x01" + provided)
            self._v = hmac_sha256(self._k, self._v)

    def reseed(self, entropy: bytes, additional: bytes = b"") -> None:
        self._update(entropy + additional)
        self.reseed_counter = 1

    def generate(self, nbytes: int, additional: bytes = b"") -> bytes:
        if self.reseed_counter > self.RESEED_INTERVAL:
            raise RuntimeError("DRBG requires reseed")
        if additional:
            self._update(additional)
        out = bytearray()
        while len(out) < nbytes:
            self._v = hmac_sha256(self._k, self._v)
            out.extend(self._v)
        self._update(additional)
        self.reseed_counter += 1
        return bytes(out[:nbytes])

    def random_int_below(self, bound: int) -> int:
        """Uniform integer in [0, bound) by rejection sampling; used for
        nonce/key generation in the EC layer."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        nbytes = (bound.bit_length() + 7) // 8
        while True:
            candidate = int.from_bytes(self.generate(nbytes), "big")
            if candidate < bound:
                return candidate


def device_drbg(seed: bytes, personalization: bytes = b"guardnn-device") -> HmacDrbg:
    """Build the DRBG a device instantiates at power-on from its TRNG."""
    trng = SimulatedTrng(seed)
    return HmacDrbg(trng.read(48), personalization)
