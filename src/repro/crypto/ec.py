"""NIST P-256 (secp256r1) elliptic-curve arithmetic.

The paper's prototype runs an ECDHE–ECDSA key exchange on the device's
microcontroller (Section III-B: "the ECDHE–ECDSA key-exchange takes
23.1 ms" on a MicroBlaze). This module implements the curve group from
scratch: affine points, Jacobian-coordinate scalar multiplication, and
the operation counting hooks the microcontroller latency model uses.

Fast path (:mod:`repro.perf`): ``scalar_mult`` recodes the scalar in
width-5 wNAF (half the additions of plain double-and-add), and
``base_mult`` walks an ``lru_cache``-d fixed-base window table for the
curve generator (no doublings at all). Both produce bit-identical
points to the reference ladder — same exact integer arithmetic, fewer
group operations. The microcontroller latency model calibrates against
the reference ladder under ``perf.scalar_mode()``: the modeled firmware
runs plain double-and-add regardless of how fast the host simulates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro import perf


class CurveParams:
    """Short-Weierstrass curve y^2 = x^3 + ax + b over GF(p)."""

    def __init__(self, name, p, a, b, gx, gy, n, h=1):
        self.name = name
        self.p = p
        self.a = a
        self.b = b
        self.gx = gx
        self.gy = gy
        self.n = n
        self.h = h

    def __repr__(self):
        return f"CurveParams({self.name})"


P256 = CurveParams(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFC,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)


class OperationCounter:
    """Counts field multiplications so the microcontroller model can turn
    one key exchange into a cycle estimate. Attached globally because the
    group law helpers are module functions."""

    def __init__(self):
        self.field_mults = 0

    def reset(self):
        self.field_mults = 0


op_counter = OperationCounter()


@dataclass(frozen=True)
class ECPoint:
    """Affine point; ``infinity=True`` is the group identity."""

    x: int
    y: int
    infinity: bool = False

    @staticmethod
    def identity() -> "ECPoint":
        return ECPoint(0, 0, infinity=True)

    def encode(self) -> bytes:
        """Uncompressed SEC1 encoding (0x04 || X || Y), 65 bytes."""
        if self.infinity:
            return b"\x00"
        return b"\x04" + self.x.to_bytes(32, "big") + self.y.to_bytes(32, "big")

    @staticmethod
    def decode(data: bytes) -> "ECPoint":
        if data == b"\x00":
            return ECPoint.identity()
        if len(data) != 65 or data[0] != 0x04:
            raise ValueError("expected 65-byte uncompressed SEC1 point")
        x = int.from_bytes(data[1:33], "big")
        y = int.from_bytes(data[33:65], "big")
        point = ECPoint(x, y)
        if not is_on_curve(point, P256):
            raise ValueError("decoded point is not on P-256")
        return point


def is_on_curve(point: ECPoint, curve: CurveParams = P256) -> bool:
    """Check the curve equation; the identity is on the curve."""
    if point.infinity:
        return True
    p = curve.p
    return (point.y * point.y - (point.x**3 + curve.a * point.x + curve.b)) % p == 0


def _inv_mod(a: int, m: int) -> int:
    """Modular inverse (extended Euclid via Python's pow)."""
    return pow(a, -1, m)


def point_add(p1: ECPoint, p2: ECPoint, curve: CurveParams = P256) -> ECPoint:
    """Affine group addition (reference implementation used in tests to
    cross-check the Jacobian ladder)."""
    if p1.infinity:
        return p2
    if p2.infinity:
        return p1
    p = curve.p
    if p1.x == p2.x:
        if (p1.y + p2.y) % p == 0:
            return ECPoint.identity()
        return point_double(p1, curve)
    op_counter.field_mults += 3
    lam = (p2.y - p1.y) * _inv_mod(p2.x - p1.x, p) % p
    x3 = (lam * lam - p1.x - p2.x) % p
    y3 = (lam * (p1.x - x3) - p1.y) % p
    return ECPoint(x3, y3)


def point_double(p1: ECPoint, curve: CurveParams = P256) -> ECPoint:
    """Affine point doubling."""
    if p1.infinity or p1.y == 0:
        return ECPoint.identity()
    p = curve.p
    op_counter.field_mults += 4
    lam = (3 * p1.x * p1.x + curve.a) * _inv_mod(2 * p1.y, p) % p
    x3 = (lam * lam - 2 * p1.x) % p
    y3 = (lam * (p1.x - x3) - p1.y) % p
    return ECPoint(x3, y3)


def _jacobian_double(x, y, z, p, a):
    if not y:
        return 0, 0, 0
    op_counter.field_mults += 8
    ysq = y * y % p
    s = 4 * x * ysq % p
    m = (3 * x * x + a * z**4) % p
    nx = (m * m - 2 * s) % p
    ny = (m * (s - nx) - 8 * ysq * ysq) % p
    nz = 2 * y * z % p
    return nx, ny, nz


def _jacobian_add(x1, y1, z1, x2, y2, z2, p, a):
    if not y1:
        return x2, y2, z2
    if not y2:
        return x1, y1, z1
    op_counter.field_mults += 12
    u1 = x1 * z2 * z2 % p
    u2 = x2 * z1 * z1 % p
    s1 = y1 * z2**3 % p
    s2 = y2 * z1**3 % p
    if u1 == u2:
        if s1 != s2:
            return 0, 0, 1
        return _jacobian_double(x1, y1, z1, p, a)
    h = u2 - u1
    r = s2 - s1
    h2 = h * h % p
    h3 = h * h2 % p
    u1h2 = u1 * h2 % p
    nx = (r * r - h3 - 2 * u1h2) % p
    ny = (r * (u1h2 - nx) - s1 * h3) % p
    nz = h * z1 * z2 % p
    return nx, ny, nz


def _to_affine(rx, ry, rz, p) -> ECPoint:
    if not ry or not rz:
        return ECPoint.identity()
    zinv = _inv_mod(rz, p)
    zinv2 = zinv * zinv % p
    return ECPoint(rx * zinv2 % p, ry * zinv2 * zinv % p)


def scalar_mult_reference(k: int, point: ECPoint,
                          curve: CurveParams = P256) -> ECPoint:
    """The reference ladder: Jacobian double-and-add, always — what the
    modeled microcontroller firmware executes. Callable directly (the
    latency model calibrates its op count against this path without
    toggling the process-wide perf mode)."""
    if point.infinity or k % curve.n == 0:
        return ECPoint.identity()
    k %= curve.n
    p, a = curve.p, curve.a
    rx, ry, rz = 0, 0, 1  # identity in Jacobian form (y == 0)
    qx, qy, qz = point.x, point.y, 1
    while k:
        if k & 1:
            rx, ry, rz = _jacobian_add(rx, ry, rz, qx, qy, qz, p, a)
        qx, qy, qz = _jacobian_double(qx, qy, qz, p, a)
        k >>= 1
    return _to_affine(rx, ry, rz, p)


def scalar_mult(k: int, point: ECPoint, curve: CurveParams = P256) -> ECPoint:
    """Scalar multiplication k*P: the reference ladder, or width-5 wNAF
    on the fast path."""
    if point.infinity or k % curve.n == 0:
        return ECPoint.identity()
    if perf.fast_enabled():
        return _scalar_mult_wnaf(k % curve.n, point, curve)
    return scalar_mult_reference(k, point, curve)


_WNAF_WIDTH = 5


def _wnaf(k: int, width: int = _WNAF_WIDTH):
    """Width-w non-adjacent form: digits in ±{1, 3, .., 2^(w-1) - 1}
    with at least w - 1 zeros between nonzero digits, so a 256-bit
    scalar needs ~256/(w+1) additions instead of ~128."""
    digits = []
    while k:
        if k & 1:
            digit = k & ((1 << width) - 1)
            if digit >= 1 << (width - 1):
                digit -= 1 << width
            k -= digit
        else:
            digit = 0
        digits.append(digit)
        k >>= 1
    return digits


def _scalar_mult_wnaf(k: int, point: ECPoint, curve: CurveParams) -> ECPoint:
    p, a = curve.p, curve.a
    # odd multiples P, 3P, .., (2^(w-1) - 1)P in Jacobian form
    table = [(point.x, point.y, 1)]
    twice = _jacobian_double(point.x, point.y, 1, p, a)
    for _ in range((1 << (_WNAF_WIDTH - 2)) - 1):
        last = table[-1]
        table.append(_jacobian_add(*last, *twice, p, a))
    rx, ry, rz = 0, 0, 0  # identity (z == 0)
    for digit in reversed(_wnaf(k)):
        if rz:
            rx, ry, rz = _jacobian_double(rx, ry, rz, p, a)
        if digit:
            qx, qy, qz = table[abs(digit) >> 1]
            if digit < 0:
                qy = p - qy
            if rz:
                rx, ry, rz = _jacobian_add(rx, ry, rz, qx, qy, qz, p, a)
            else:
                rx, ry, rz = qx, qy, qz
    return _to_affine(rx, ry, rz, p)


_FIXED_WINDOW = 4


@lru_cache(maxsize=4)
def _fixed_base_table(curve: CurveParams):
    """Window table for the generator: entry [j][d - 1] holds
    ``d * 2**(w*j) * G`` (Jacobian), covering every w-bit window of a
    256-bit scalar, so ``base_mult`` needs only ~64 additions and no
    doublings. Derived once per curve from the curve parameters."""
    p, a = curve.p, curve.a
    table = []
    window_base = (curve.gx, curve.gy, 1)
    span = 1 << _FIXED_WINDOW
    for _ in range((curve.n.bit_length() + _FIXED_WINDOW - 1) // _FIXED_WINDOW):
        row = [window_base]
        for _ in range(span - 2):
            row.append(_jacobian_add(*row[-1], *window_base, p, a))
        table.append(row)
        window_base = row[-1]  # (span - 1) * base
        window_base = _jacobian_add(*window_base, *row[0], p, a)  # span * base
    return table


perf.register_cache(_fixed_base_table.cache_clear)


def base_mult(k: int, curve: CurveParams = P256) -> ECPoint:
    """k * G for the curve generator (fixed-base table on the fast
    path)."""
    if not perf.fast_enabled():
        return scalar_mult(k, ECPoint(curve.gx, curve.gy), curve)
    k %= curve.n
    if k == 0:
        return ECPoint.identity()
    p = curve.p
    table = _fixed_base_table(curve)
    rx, ry, rz = 0, 0, 0
    window = 0
    while k:
        digit = k & ((1 << _FIXED_WINDOW) - 1)
        if digit:
            qx, qy, qz = table[window][digit - 1]
            if rz:
                rx, ry, rz = _jacobian_add(rx, ry, rz, qx, qy, qz, p, curve.a)
            else:
                rx, ry, rz = qx, qy, qz
        k >>= _FIXED_WINDOW
        window += 1
    return _to_affine(rx, ry, rz, p)
