"""HMAC-SHA256 (RFC 2104 / FIPS 198-1).

Used by the key-derivation (HKDF) and DRBG constructions, and available
as the session-transport MAC for user<->accelerator messages.
"""

from __future__ import annotations

from repro.crypto.sha256 import Sha256, sha256

_BLOCK = 64


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Compute HMAC-SHA256(key, message)."""
    if len(key) > _BLOCK:
        key = sha256(key)
    key = key + bytes(_BLOCK - len(key))
    ipad = bytes(b ^ 0x36 for b in key)
    opad = bytes(b ^ 0x5C for b in key)
    inner = Sha256(ipad).update(message).digest()
    return Sha256(opad).update(inner).digest()


def hmac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time-ish tag comparison (full scan regardless of
    mismatch position)."""
    expected = hmac_sha256(key, message)
    if len(tag) != len(expected):
        return False
    diff = 0
    for x, y in zip(expected, tag):
        diff |= x ^ y
    return diff == 0
