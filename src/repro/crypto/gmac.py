"""GMAC: the Carter-Wegman MAC of AES-GCM (NIST SP 800-38D).

Intel's MEE uses a Carter-Wegman-style MAC because the GHASH multiply
is cheap in hardware relative to a full AES pass per block. We provide
GMAC as an alternative to CMAC for the IV engine so the two MAC design
points the literature uses are both available (CMAC: one primitive,
serial; GMAC: parallelizable polynomial hash + one AES call per tag).

The implementation is standard GCM tag computation: ``H = AES_K(0)``;
``tag = GHASH_H(AAD || ciphertext || lengths) XOR AES_K(J0)`` with the
96-bit nonce form ``J0 = IV || 0^31 || 1``. Validated against the NIST
GCM known-answer vectors in the test suite.
"""

from __future__ import annotations

from repro.crypto.aes import AES128
from repro.crypto.gf128 import mul_fn


def _ghash_blocks(h: int, data: bytes) -> int:
    y = 0
    if len(data) % 16:
        data = data + bytes(16 - len(data) % 16)
    mul = mul_fn(h)
    for i in range(0, len(data), 16):
        y = mul(y ^ int.from_bytes(data[i : i + 16], "big"))
    return y


class AesGmac:
    """GMAC under one AES-128 key; fresh 96-bit IV per message."""

    def __init__(self, key: bytes):
        self._aes = AES128(key)
        self._h = int.from_bytes(self._aes.encrypt_block(bytes(16)), "big")

    def mac(self, iv: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Compute the 16-byte GMAC tag of ``data`` (treated as GCM
        ciphertext) with additional authenticated data ``aad``."""
        if len(iv) != 12:
            raise ValueError("GMAC requires a 96-bit IV")
        # GHASH over zero-padded AAD, then zero-padded data, then the
        # 64-bit bit-lengths block (SP 800-38D section 6.4). The
        # multiply against H goes through the per-key table on the fast
        # path, the bit-serial reference otherwise — same tags either
        # way (the table is derived from gf128_mul's own shift-reduce).
        mul = mul_fn(self._h)
        y = 0
        for chunk in (aad, data):
            if chunk:
                padded = chunk + bytes(-len(chunk) % 16)
                for i in range(0, len(padded), 16):
                    y = mul(y ^ int.from_bytes(padded[i : i + 16], "big"))
        lengths = (len(aad) * 8).to_bytes(8, "big") + (len(data) * 8).to_bytes(8, "big")
        y = mul(y ^ int.from_bytes(lengths, "big"))
        j0 = iv + b"\x00\x00\x00\x01"
        pad = self._aes.encrypt_block(j0)
        return bytes(a ^ b for a, b in zip(y.to_bytes(16, "big"), pad))

    def verify(self, iv: bytes, data: bytes, tag: bytes, aad: bytes = b"") -> bool:
        expected = self.mac(iv, data, aad)
        if len(tag) != len(expected):
            return False
        diff = 0
        for x, y in zip(expected, tag):
            diff |= x ^ y
        return diff == 0
