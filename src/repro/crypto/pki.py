"""Minimal public-key infrastructure for device authentication.

Threat model (Section II-A): "The DNN accelerator is trusted and
authenticated by the remote user using a unique private key ... The
manufacturer also needs to securely embed a private key specific to each
accelerator instance, and provide a certificate." ``GetPK`` returns the
public key and that certificate.

We model a single manufacturer CA signing per-device certificates — the
same trust shape as SGX/TPM endorsement without the ASN.1 baggage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ec import ECPoint
from repro.crypto.ecdsa import (
    EcdsaKeyPair,
    ecdsa_sign,
    ecdsa_verify,
    encode_signature,
    decode_signature,
)
from repro.crypto.rng import HmacDrbg
from repro.crypto.sha256 import sha256

_CERT_CONTEXT = b"guardnn-device-cert-v1"


@dataclass(frozen=True)
class DeviceCertificate:
    """A manufacturer-signed binding of (device_id, device public key,
    security_version)."""

    device_id: bytes
    device_public: ECPoint
    security_version: int
    signature: bytes

    def tbs(self) -> bytes:
        """The to-be-signed byte string."""
        return (
            _CERT_CONTEXT
            + len(self.device_id).to_bytes(2, "big")
            + self.device_id
            + self.device_public.encode()
            + self.security_version.to_bytes(4, "big")
        )

    def fingerprint(self) -> bytes:
        return sha256(self.tbs() + self.signature)


class ManufacturerCA:
    """The trusted manufacturer root that provisions devices.

    A remote user is assumed to know ``root_public`` out of band (the
    "public key infrastructure as in Intel SGX or TPMs" of Section II-C).
    """

    def __init__(self, drbg: HmacDrbg):
        self._root = EcdsaKeyPair.generate(drbg)
        self._issued = {}

    @property
    def root_public(self) -> ECPoint:
        return self._root.public

    def issue(self, device_id: bytes, device_public: ECPoint,
              security_version: int = 1) -> DeviceCertificate:
        """Sign a certificate for a freshly provisioned device."""
        if not device_id:
            raise ValueError("device_id must be non-empty")
        unsigned = DeviceCertificate(device_id, device_public, security_version, b"")
        sig = encode_signature(ecdsa_sign(self._root.private, unsigned.tbs()))
        cert = DeviceCertificate(device_id, device_public, security_version, sig)
        self._issued[bytes(device_id)] = cert
        return cert


def verify_certificate(cert: DeviceCertificate, root_public: ECPoint) -> bool:
    """Verify a device certificate against the manufacturer root. This is
    what the remote user does with the output of ``GetPK`` before sending
    any secret."""
    try:
        signature = decode_signature(cert.signature)
    except ValueError:
        return False
    return ecdsa_verify(root_public, cert.tbs(), signature)
