"""AES-CMAC (RFC 4493 / NIST SP 800-38B).

GuardNN's integrity-verification (IV) engine stores one MAC per
data-movement chunk (512 B in the prototype) computed over
``value || address || VN`` (Section II-D1). We use AES-CMAC as that MAC:
it needs no second primitive beyond the AES core the Enc engine already
has, matching how a small hardware IV engine would be built.
"""

from __future__ import annotations

from repro.crypto.aes import AES128, BLOCK_SIZE


def _left_shift_one(block: int) -> int:
    return (block << 1) & ((1 << 128) - 1)


def _generate_subkeys(aes: AES128):
    """RFC 4493 subkey generation (K1 for full final block, K2 for
    padded final block)."""
    const_rb = 0x87
    l = int.from_bytes(aes.encrypt_block(bytes(16)), "big")
    k1 = _left_shift_one(l)
    if l >> 127:
        k1 ^= const_rb
    k2 = _left_shift_one(k1)
    if k1 >> 127:
        k2 ^= const_rb
    return k1.to_bytes(16, "big"), k2.to_bytes(16, "big")


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class AesCmac:
    """CMAC under a fixed AES-128 key; reusable across many messages, as
    the IV engine reuses one integrity key for a whole session."""

    def __init__(self, key: bytes):
        self._aes = AES128(key)
        self._k1, self._k2 = _generate_subkeys(self._aes)

    def mac(self, message: bytes) -> bytes:
        """Compute the 16-byte CMAC tag of ``message``."""
        n = (len(message) + BLOCK_SIZE - 1) // BLOCK_SIZE
        if n == 0:
            n = 1
            complete = False
        else:
            complete = len(message) % BLOCK_SIZE == 0
        if complete:
            last = _xor(message[(n - 1) * 16 : n * 16], self._k1)
        else:
            tail = message[(n - 1) * 16 :]
            padded = tail + b"\x80" + bytes(15 - len(tail))
            last = _xor(padded, self._k2)
        x = bytes(16)
        for i in range(n - 1):
            x = self._aes.encrypt_block(_xor(x, message[i * 16 : (i + 1) * 16]))
        return self._aes.encrypt_block(_xor(x, last))

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Check a tag; returns False rather than raising so the IV engine
        can count/flag integrity violations."""
        return self.mac(message) == tag


def cmac(key: bytes, message: bytes) -> bytes:
    """One-shot convenience wrapper around :class:`AesCmac`."""
    return AesCmac(key).mac(message)
