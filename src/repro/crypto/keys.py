"""Key material containers for devices and sessions.

Section II-C: "a GuardNN accelerator includes a unique private key
(SK_Accel), a true random number generator, and a microcontroller", and
``InitSession`` "sets a new memory encryption key (K_MEnc)". This module
defines those key bundles and the HKDF labels used to derive the working
keys from an ECDHE shared secret.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.ec import ECPoint
from repro.crypto.ecdsa import EcdsaKeyPair
from repro.crypto.kdf import hkdf_expand, hkdf_extract
from repro.crypto.rng import HmacDrbg

LABEL_SESSION = b"guardnn/k-session"
LABEL_MEM_ENC = b"guardnn/k-menc"
LABEL_MEM_MAC = b"guardnn/k-mmac"
LABEL_TRANSPORT_MAC = b"guardnn/k-tmac"


@dataclass
class DeviceKeys:
    """The long-term identity of one accelerator instance.

    ``identity`` is SK_Accel / PK_Accel; the manufacturer certifies
    ``identity.public`` at provisioning (see :mod:`repro.crypto.pki`).
    """

    identity: EcdsaKeyPair

    @staticmethod
    def provision(drbg: HmacDrbg) -> "DeviceKeys":
        """Generate fresh device keys, as the trusted manufacturer does
        once per accelerator instance."""
        return DeviceKeys(identity=EcdsaKeyPair.generate(drbg))

    @property
    def public(self) -> ECPoint:
        return self.identity.public


@dataclass
class SessionKeys:
    """Working keys for one user<->accelerator session.

    * ``k_session`` — transport encryption key for user data in flight
      (weights/inputs/outputs on SetWeight/SetInput/ExportOutput).
    * ``k_transport_mac`` — MAC key for transport messages.
    * ``k_mem_enc`` — K_MEnc, the off-chip memory encryption key; *never*
      leaves the device (the user side leaves it unset).
    * ``k_mem_mac`` — integrity key for off-chip MACs; device-only too.
    """

    k_session: bytes
    k_transport_mac: bytes
    k_mem_enc: bytes = field(default=b"", repr=False)
    k_mem_mac: bytes = field(default=b"", repr=False)

    @staticmethod
    def derive_user_side(shared_secret: bytes) -> "SessionKeys":
        """The remote user derives only the transport keys."""
        prk = hkdf_extract(b"guardnn-session-v1", shared_secret)
        return SessionKeys(
            k_session=hkdf_expand(prk, LABEL_SESSION, 16),
            k_transport_mac=hkdf_expand(prk, LABEL_TRANSPORT_MAC, 32),
        )

    @staticmethod
    def derive_device_side(shared_secret: bytes, drbg: HmacDrbg) -> "SessionKeys":
        """The device derives transport keys from the shared secret and
        draws *fresh random* memory keys from its DRBG. Memory keys are
        deliberately not derived from the shared secret: the user has no
        business knowing them, and a fresh K_MEnc per session is what
        resets the VN space safely (InitSession resets all counters)."""
        user_side = SessionKeys.derive_user_side(shared_secret)
        return SessionKeys(
            k_session=user_side.k_session,
            k_transport_mac=user_side.k_transport_mac,
            k_mem_enc=drbg.generate(16),
            k_mem_mac=drbg.generate(16),
        )
