"""Ephemeral ECDH over P-256 — the key-exchange half of ``InitSession``.

The paper (Table I) lists "DHE key-exchange protocol" as the mechanism
against an untrusted host/network; the prototype implements ECDHE–ECDSA.
:class:`EcdheExchange` packages one side of that handshake: generate an
ephemeral key, sign the ephemeral public key with a long-term identity
key, verify the peer's signature, and derive the shared secret.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ec import ECPoint, base_mult, scalar_mult
from repro.crypto.ecdsa import EcdsaKeyPair, ecdsa_sign, ecdsa_verify, encode_signature, decode_signature
from repro.crypto.kdf import hkdf
from repro.crypto.rng import HmacDrbg


def ecdh_shared_secret(private: int, peer_public: ECPoint) -> bytes:
    """Raw ECDH: x-coordinate of private * peer_public."""
    if peer_public.infinity:
        raise ValueError("peer public key is the identity")
    shared = scalar_mult(private, peer_public)
    if shared.infinity:
        raise ValueError("derived shared point is the identity")
    return shared.x.to_bytes(32, "big")


@dataclass
class SignedEphemeral:
    """An ephemeral public key signed by a long-term identity key — the
    wire message each side of the ECDHE exchange sends."""

    ephemeral_public: ECPoint
    signature: bytes

    def encode(self) -> bytes:
        return self.ephemeral_public.encode() + self.signature


class EcdheExchange:
    """One participant in a mutually-authenticated ECDHE handshake.

    Usage::

        alice = EcdheExchange(alice_identity, drbg_a)
        bob = EcdheExchange(bob_identity, drbg_b)
        ka = alice.derive(bob.offer(), bob_identity.public)
        kb = bob.derive(alice.offer(), alice_identity.public)
        assert ka == kb
    """

    CONTEXT = b"guardnn-ecdhe-v1"

    def __init__(self, identity: EcdsaKeyPair, drbg: HmacDrbg):
        self._identity = identity
        self._ephemeral = EcdsaKeyPair.generate(drbg)
        self._offer_msg = None

    def offer(self) -> SignedEphemeral:
        """Produce this side's signed ephemeral key (idempotent)."""
        if self._offer_msg is None:
            payload = self.CONTEXT + self._ephemeral.public.encode()
            sig = encode_signature(ecdsa_sign(self._identity.private, payload))
            self._offer_msg = SignedEphemeral(self._ephemeral.public, sig)
        return self._offer_msg

    def derive(self, peer_offer: SignedEphemeral, peer_identity_public: ECPoint,
               key_length: int = 32, info: bytes = b"guardnn-session") -> bytes:
        """Verify the peer's signature and derive the session secret.

        Raises ``ValueError`` if the peer's offer is not signed by
        ``peer_identity_public`` — the MITM-rejection the tests exercise.
        """
        payload = self.CONTEXT + peer_offer.ephemeral_public.encode()
        if not ecdsa_verify(peer_identity_public, payload, decode_signature(peer_offer.signature)):
            raise ValueError("peer ephemeral key signature verification failed")
        raw = ecdh_shared_secret(self._ephemeral.private, peer_offer.ephemeral_public)
        # Salt with both ephemeral publics (sorted for symmetry) so the
        # derived key binds the whole handshake transcript.
        mine = self.offer().ephemeral_public.encode()
        theirs = peer_offer.ephemeral_public.encode()
        salt = min(mine, theirs) + max(mine, theirs)
        return hkdf(raw, salt, info, key_length)
