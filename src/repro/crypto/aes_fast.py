"""Table-driven, batched AES-128 encryption (the fast path).

The scalar :class:`repro.crypto.aes.AES128` renders FIPS-197 operation
by operation — readable and auditable, but it pays ~300 Python-level
byte operations per block.  Hardware AES engines (the paper's pipelined
FPGA/ASIC cores) instead accept a block per cycle; this module is the
software analogue: the classic 32-bit T-table formulation, evaluated
over *many blocks at once* with numpy gathers when numpy is available
(one fancy-indexing pass per table per round services the whole batch)
and with a tight per-block loop otherwise.

Auditability is preserved: the T-tables are derived **at import time
from the first-principles S-box** in :mod:`repro.crypto.aes` (itself
built from the GF(2^8) inverse + affine transform), so no opaque
constants enter the TCB.  Bit-exactness against the scalar reference is
asserted by the NIST known-answer suite and the randomized equivalence
tests.

Only encryption is provided — CTR and GMAC (the memory-protection hot
paths) never run the inverse cipher.
"""

from __future__ import annotations

import functools
from typing import List, Tuple

from repro.crypto.aes import _SBOX, _RCON, _xtime, BLOCK_SIZE, KEY_SIZE, ROUNDS

try:  # numpy accelerates the batch kernel but is not required
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


def _build_t_tables() -> Tuple[List[int], ...]:
    """Derive the four encryption T-tables from the first-principles
    S-box: ``T0[x]`` is the MixColumns column (02,01,01,03)*S[x] packed
    big-endian; T1..T3 are its byte rotations."""
    t0, t1, t2, t3 = [], [], [], []
    for x in range(256):
        s = _SBOX[x]
        s2 = _xtime(s)
        s3 = s2 ^ s
        w = (s2 << 24) | (s << 16) | (s << 8) | s3
        t0.append(w)
        t1.append(((w >> 8) | (w << 24)) & 0xFFFFFFFF)
        t2.append(((w >> 16) | (w << 16)) & 0xFFFFFFFF)
        t3.append(((w >> 24) | (w << 8)) & 0xFFFFFFFF)
    return t0, t1, t2, t3


_T0, _T1, _T2, _T3 = _build_t_tables()

if _np is not None:
    _NP_T0 = _np.array(_T0, dtype=_np.uint32)
    _NP_T1 = _np.array(_T1, dtype=_np.uint32)
    _NP_T2 = _np.array(_T2, dtype=_np.uint32)
    _NP_T3 = _np.array(_T3, dtype=_np.uint32)
    _NP_SBOX = _np.array(_SBOX, dtype=_np.uint32)


@functools.lru_cache(maxsize=256)
def expand_key_words(key: bytes) -> Tuple[int, ...]:
    """FIPS-197 key schedule as 44 big-endian 32-bit words, cached per
    key so CTR/GMAC over many blocks never re-expands the same key."""
    if len(key) != KEY_SIZE:
        raise ValueError(f"AES-128 requires a {KEY_SIZE}-byte key, got {len(key)}")
    words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(4)]
    for i in range(4, 4 * (ROUNDS + 1)):
        temp = words[i - 1]
        if i % 4 == 0:
            temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
            temp = (  # SubWord
                (_SBOX[(temp >> 24) & 0xFF] << 24)
                | (_SBOX[(temp >> 16) & 0xFF] << 16)
                | (_SBOX[(temp >> 8) & 0xFF] << 8)
                | _SBOX[temp & 0xFF]
            )
            temp ^= _RCON[i // 4 - 1] << 24
        words.append(words[i - 4] ^ temp)
    return tuple(words)


def _encrypt_words_scalar(rk: Tuple[int, ...], w0: int, w1: int, w2: int, w3: int):
    """One block through the T-table rounds (pure-Python fallback)."""
    w0 ^= rk[0]
    w1 ^= rk[1]
    w2 ^= rk[2]
    w3 ^= rk[3]
    for r in range(1, ROUNDS):
        k = 4 * r
        e0 = (_T0[(w0 >> 24) & 0xFF] ^ _T1[(w1 >> 16) & 0xFF]
              ^ _T2[(w2 >> 8) & 0xFF] ^ _T3[w3 & 0xFF] ^ rk[k])
        e1 = (_T0[(w1 >> 24) & 0xFF] ^ _T1[(w2 >> 16) & 0xFF]
              ^ _T2[(w3 >> 8) & 0xFF] ^ _T3[w0 & 0xFF] ^ rk[k + 1])
        e2 = (_T0[(w2 >> 24) & 0xFF] ^ _T1[(w3 >> 16) & 0xFF]
              ^ _T2[(w0 >> 8) & 0xFF] ^ _T3[w1 & 0xFF] ^ rk[k + 2])
        e3 = (_T0[(w3 >> 24) & 0xFF] ^ _T1[(w0 >> 16) & 0xFF]
              ^ _T2[(w1 >> 8) & 0xFF] ^ _T3[w2 & 0xFF] ^ rk[k + 3])
        w0, w1, w2, w3 = e0, e1, e2, e3
    k = 4 * ROUNDS
    s = _SBOX
    e0 = ((s[(w0 >> 24) & 0xFF] << 24) | (s[(w1 >> 16) & 0xFF] << 16)
          | (s[(w2 >> 8) & 0xFF] << 8) | s[w3 & 0xFF]) ^ rk[k]
    e1 = ((s[(w1 >> 24) & 0xFF] << 24) | (s[(w2 >> 16) & 0xFF] << 16)
          | (s[(w3 >> 8) & 0xFF] << 8) | s[w0 & 0xFF]) ^ rk[k + 1]
    e2 = ((s[(w2 >> 24) & 0xFF] << 24) | (s[(w3 >> 16) & 0xFF] << 16)
          | (s[(w0 >> 8) & 0xFF] << 8) | s[w1 & 0xFF]) ^ rk[k + 2]
    e3 = ((s[(w3 >> 24) & 0xFF] << 24) | (s[(w0 >> 16) & 0xFF] << 16)
          | (s[(w1 >> 8) & 0xFF] << 8) | s[w2 & 0xFF]) ^ rk[k + 3]
    return e0, e1, e2, e3


def _encrypt_batch_numpy(rk: Tuple[int, ...], words):
    """All blocks through the rounds at once: ``words`` is an (n, 4)
    uint32 array of column words; each round is 16 table gathers over
    the whole batch."""
    keys = _np.array(rk, dtype=_np.uint32).reshape(ROUNDS + 1, 4)
    w = words ^ keys[0]
    c0, c1, c2, c3 = w[:, 0], w[:, 1], w[:, 2], w[:, 3]
    for r in range(1, ROUNDS):
        k = keys[r]
        e0 = (_NP_T0[(c0 >> 24) & 0xFF] ^ _NP_T1[(c1 >> 16) & 0xFF]
              ^ _NP_T2[(c2 >> 8) & 0xFF] ^ _NP_T3[c3 & 0xFF] ^ k[0])
        e1 = (_NP_T0[(c1 >> 24) & 0xFF] ^ _NP_T1[(c2 >> 16) & 0xFF]
              ^ _NP_T2[(c3 >> 8) & 0xFF] ^ _NP_T3[c0 & 0xFF] ^ k[1])
        e2 = (_NP_T0[(c2 >> 24) & 0xFF] ^ _NP_T1[(c3 >> 16) & 0xFF]
              ^ _NP_T2[(c0 >> 8) & 0xFF] ^ _NP_T3[c1 & 0xFF] ^ k[2])
        e3 = (_NP_T0[(c3 >> 24) & 0xFF] ^ _NP_T1[(c0 >> 16) & 0xFF]
              ^ _NP_T2[(c1 >> 8) & 0xFF] ^ _NP_T3[c2 & 0xFF] ^ k[3])
        c0, c1, c2, c3 = e0, e1, e2, e3
    k = keys[ROUNDS]
    e0 = ((_NP_SBOX[(c0 >> 24) & 0xFF] << 24) | (_NP_SBOX[(c1 >> 16) & 0xFF] << 16)
          | (_NP_SBOX[(c2 >> 8) & 0xFF] << 8) | _NP_SBOX[c3 & 0xFF]) ^ k[0]
    e1 = ((_NP_SBOX[(c1 >> 24) & 0xFF] << 24) | (_NP_SBOX[(c2 >> 16) & 0xFF] << 16)
          | (_NP_SBOX[(c3 >> 8) & 0xFF] << 8) | _NP_SBOX[c0 & 0xFF]) ^ k[1]
    e2 = ((_NP_SBOX[(c2 >> 24) & 0xFF] << 24) | (_NP_SBOX[(c3 >> 16) & 0xFF] << 16)
          | (_NP_SBOX[(c0 >> 8) & 0xFF] << 8) | _NP_SBOX[c1 & 0xFF]) ^ k[2]
    e3 = ((_NP_SBOX[(c3 >> 24) & 0xFF] << 24) | (_NP_SBOX[(c0 >> 16) & 0xFF] << 16)
          | (_NP_SBOX[(c1 >> 8) & 0xFF] << 8) | _NP_SBOX[c2 & 0xFF]) ^ k[3]
    return _np.stack([e0, e1, e2, e3], axis=1)


def encrypt_blocks(key: bytes, data: bytes) -> bytes:
    """ECB-encrypt a multiple of 16 bytes under ``key``; the multi-block
    primitive every batched mode builds on."""
    if len(data) % BLOCK_SIZE:
        raise ValueError("data must be a multiple of 16 bytes")
    rk = expand_key_words(key)
    n = len(data) // BLOCK_SIZE
    if _np is not None and n > 1:
        words = _np.frombuffer(data, dtype=">u4").astype(_np.uint32).reshape(n, 4)
        return _encrypt_batch_numpy(rk, words).astype(">u4").tobytes()
    out = bytearray()
    for i in range(0, len(data), BLOCK_SIZE):
        w = [int.from_bytes(data[i + 4 * j : i + 4 * j + 4], "big") for j in range(4)]
        for e in _encrypt_words_scalar(rk, *w):
            out.extend(e.to_bytes(4, "big"))
    return bytes(out)


def encrypt_block_fast(key: bytes, block: bytes) -> bytes:
    """Single-block T-table encryption (used by GMAC's two AES calls)."""
    if len(block) != BLOCK_SIZE:
        raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
    rk = expand_key_words(key)
    w = [int.from_bytes(block[4 * j : 4 * j + 4], "big") for j in range(4)]
    return b"".join(e.to_bytes(4, "big") for e in _encrypt_words_scalar(rk, *w))


def _counter_words(counters):
    """(n,) iterable of 128-bit ints -> (n, 4) uint32 column words."""
    n = len(counters)
    words = _np.empty((n, 4), dtype=_np.uint32)
    for j in range(4):
        shift = 96 - 32 * j
        words[:, j] = _np.fromiter(
            ((c >> shift) & 0xFFFFFFFF for c in counters), dtype=_np.uint32, count=n
        )
    return words


def keystream(key: bytes, initial_counter_int: int, nblocks: int) -> bytes:
    """CTR keystream: encrypt ``nblocks`` consecutive big-endian counter
    values starting at ``initial_counter_int`` (mod 2^128)."""
    rk = expand_key_words(key)
    if _np is not None and nblocks > 1:
        hi = (initial_counter_int >> 64) & 0xFFFFFFFFFFFFFFFF
        lo = initial_counter_int & 0xFFFFFFFFFFFFFFFF
        idx = _np.arange(nblocks, dtype=_np.uint64)
        lo_arr = _np.uint64(lo) + idx  # wraps mod 2^64, matching CTR
        carry = (lo_arr < _np.uint64(lo)).astype(_np.uint64)
        hi_arr = _np.uint64(hi) + carry
        words = _np.empty((nblocks, 4), dtype=_np.uint32)
        words[:, 0] = (hi_arr >> _np.uint64(32)).astype(_np.uint32)
        words[:, 1] = (hi_arr & _np.uint64(0xFFFFFFFF)).astype(_np.uint32)
        words[:, 2] = (lo_arr >> _np.uint64(32)).astype(_np.uint32)
        words[:, 3] = (lo_arr & _np.uint64(0xFFFFFFFF)).astype(_np.uint32)
        return _encrypt_batch_numpy(rk, words).astype(">u4").tobytes()
    out = bytearray()
    counter = initial_counter_int
    for _ in range(nblocks):
        w0 = (counter >> 96) & 0xFFFFFFFF
        w1 = (counter >> 64) & 0xFFFFFFFF
        w2 = (counter >> 32) & 0xFFFFFFFF
        w3 = counter & 0xFFFFFFFF
        for e in _encrypt_words_scalar(rk, w0, w1, w2, w3):
            out.extend(e.to_bytes(4, "big"))
        counter = (counter + 1) % (1 << 128)
    return bytes(out)


def keystream_for_region(key: bytes, base_address: int, version_number: int,
                         nblocks: int) -> bytes:
    """GuardNN ``(address || VN)`` pads for a contiguous region.

    The memory-protection hot path: every 16-byte block at
    ``base_address + i`` is padded with the counter block
    ``(base_address + i) << 64 | VN``. The counter-block words are
    formed directly as numpy columns (structure-of-arrays) — no
    per-block 128-bit Python ints are ever materialized, unlike the
    generic :func:`keystream_for_counters` entry point."""
    rk = expand_key_words(key)
    if _np is not None and nblocks > 1:
        hi = _np.uint64(base_address) + _np.arange(nblocks, dtype=_np.uint64)
        words = _np.empty((nblocks, 4), dtype=_np.uint32)
        words[:, 0] = (hi >> _np.uint64(32)).astype(_np.uint32)
        words[:, 1] = (hi & _np.uint64(0xFFFFFFFF)).astype(_np.uint32)
        words[:, 2] = (version_number >> 32) & 0xFFFFFFFF
        words[:, 3] = version_number & 0xFFFFFFFF
        return _encrypt_batch_numpy(rk, words).astype(">u4").tobytes()
    return keystream_for_counters(
        key, (((base_address + i) << 64) | version_number for i in range(nblocks)))


def keystream_for_counters(key: bytes, counters) -> bytes:
    """Encrypt an explicit sequence of 128-bit counter-block ints (the
    GuardNN ``(address || VN)`` form, one per 16-byte memory block)."""
    rk = expand_key_words(key)
    counters = list(counters)
    if _np is not None and len(counters) > 1:
        return _encrypt_batch_numpy(rk, _counter_words(counters)).astype(">u4").tobytes()
    out = bytearray()
    for c in counters:
        w0 = (c >> 96) & 0xFFFFFFFF
        w1 = (c >> 64) & 0xFFFFFFFF
        w2 = (c >> 32) & 0xFFFFFFFF
        w3 = c & 0xFFFFFFFF
        for e in _encrypt_words_scalar(rk, w0, w1, w2, w3):
            out.extend(e.to_bytes(4, "big"))
    return bytes(out)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings (vectorized when possible)."""
    if len(a) != len(b):
        raise ValueError("xor operands must have equal length")
    if _np is not None and len(a) >= 64:
        return (
            _np.frombuffer(a, dtype=_np.uint8) ^ _np.frombuffer(b, dtype=_np.uint8)
        ).tobytes()
    return bytes(x ^ y for x, y in zip(a, b))
