"""AES counter mode (NIST SP 800-38A) — GuardNN's memory encryption mode.

GuardNN (Section II-D) encrypts off-chip memory with AES-CTR where each
128-bit counter block is ``(physical_address || version_number)``. Counter
blocks must never repeat under one key; the GuardNN counter scheme in
:mod:`repro.protection.counters` is responsible for that invariant, which
the property tests check.

Two interfaces are provided:

* :func:`ctr_keystream` / :class:`AesCtr` — generic SP 800-38A CTR with a
  big-endian incrementing counter, validated against NIST vectors.
* :meth:`AesCtr.crypt_block_with_counter` — the memory-protection form
  where the caller supplies the *entire* counter block explicitly (address
  and VN), exactly how the Enc engine in the paper forms its pad.
"""

from __future__ import annotations

from repro import perf
from repro.crypto import aes_fast
from repro.crypto.aes import AES128, BLOCK_SIZE


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    if perf.fast_enabled() and len(a) == len(b):
        return aes_fast.xor_bytes(a, b)
    return bytes(x ^ y for x, y in zip(a, b))


def make_counter_block(address: int, version_number: int) -> bytes:
    """Form a GuardNN counter block from a 64-bit block address and a
    64-bit version number (Section II-D: "each counter value ... includes
    the address of the 128-bit memory block ... and a 64-bit VN").
    """
    if not 0 <= address < (1 << 64):
        raise ValueError("address must fit in 64 bits")
    if not 0 <= version_number < (1 << 64):
        raise ValueError("version number must fit in 64 bits")
    return address.to_bytes(8, "big") + version_number.to_bytes(8, "big")


def ctr_keystream(aes: AES128, initial_counter: bytes, nbytes: int) -> bytes:
    """Generate ``nbytes`` of CTR keystream starting from a 16-byte
    counter block, incrementing the counter big-endian per block.

    On the fast path the whole run of counter blocks goes through the
    batched table-driven kernel in one call — the software mirror of a
    pipelined AES engine accepting a block per cycle."""
    if len(initial_counter) != BLOCK_SIZE:
        raise ValueError("initial counter must be 16 bytes")
    counter = int.from_bytes(initial_counter, "big")
    blocks = (nbytes + BLOCK_SIZE - 1) // BLOCK_SIZE
    if perf.fast_enabled():
        return aes_fast.keystream(aes._key, counter, blocks)[:nbytes]
    out = bytearray()
    for _ in range(blocks):
        out.extend(aes.encrypt_block(counter.to_bytes(BLOCK_SIZE, "big")))
        counter = (counter + 1) % (1 << 128)
    return bytes(out[:nbytes])


class AesCtr:
    """AES-128 in counter mode.

    CTR is an involution: encryption and decryption are the same XOR with
    the keystream, so a single :meth:`crypt` method serves both.
    """

    def __init__(self, key: bytes):
        self._aes = AES128(key)

    def crypt(self, initial_counter: bytes, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` with the keystream starting at
        ``initial_counter`` (incrementing across blocks)."""
        stream = ctr_keystream(self._aes, initial_counter, len(data))
        return _xor_bytes(data, stream)

    def crypt_block_with_counter(self, address: int, version_number: int, data: bytes) -> bytes:
        """Encrypt/decrypt one 16-byte memory block using the GuardNN
        counter block ``(address || VN)``. This is the unit operation of
        the memory encryption engine."""
        if len(data) != BLOCK_SIZE:
            raise ValueError("memory encryption operates on 16-byte blocks")
        pad = self._aes.encrypt_block(make_counter_block(address, version_number))
        return _xor_bytes(data, pad)

    def crypt_region(self, base_address: int, version_number: int, data: bytes) -> bytes:
        """Encrypt/decrypt a contiguous region block-by-block. Each
        16-byte block at ``base_address + i`` gets its own counter block
        ``(base_address + i || VN)`` so identical plaintext blocks at
        different addresses produce unrelated ciphertext.

        Fast path: all the per-block ``(address || VN)`` pads are
        produced by one batched kernel call and XORed vectorized."""
        if len(data) % BLOCK_SIZE != 0:
            raise ValueError("region length must be a multiple of 16 bytes")
        nblocks = len(data) // BLOCK_SIZE
        if perf.fast_enabled() and nblocks > 1:
            if not (0 <= base_address and base_address + nblocks - 1 < (1 << 64)):
                raise ValueError("address must fit in 64 bits")
            if not 0 <= version_number < (1 << 64):
                raise ValueError("version number must fit in 64 bits")
            # counter-block columns are formed SoA inside the kernel —
            # no per-block (address || VN) Python ints
            pads = aes_fast.keystream_for_region(
                self._aes._key, base_address, version_number, nblocks)
            return aes_fast.xor_bytes(data, pads)
        out = bytearray()
        for i in range(0, len(data), BLOCK_SIZE):
            block_addr = base_address + i // BLOCK_SIZE
            out.extend(
                self.crypt_block_with_counter(block_addr, version_number, data[i : i + BLOCK_SIZE])
            )
        return bytes(out)
