"""HKDF (RFC 5869) over HMAC-SHA256.

``InitSession`` derives the working keys — the session transport key
(K_Session), the memory-encryption key (K_MEnc), and the integrity key —
from the ECDHE shared secret. Deriving all of them through HKDF with
distinct ``info`` labels gives key separation: compromising one derived
key says nothing about the others.
"""

from __future__ import annotations

from repro.crypto.hmac import hmac_sha256

_HASH_LEN = 32


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """Extract step: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = bytes(_HASH_LEN)
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """Expand step producing ``length`` bytes of output key material."""
    if length > 255 * _HASH_LEN:
        raise ValueError("HKDF output too long")
    okm = b""
    t = b""
    counter = 1
    while len(okm) < length:
        t = hmac_sha256(prk, t + info + bytes([counter]))
        okm += t
        counter += 1
    return okm[:length]


def hkdf(ikm: bytes, salt: bytes, info: bytes, length: int) -> bytes:
    """Extract-then-expand in one call."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
