"""ECDSA over P-256 with SHA-256 (FIPS 186-4).

Signing backs two paper mechanisms: the manufacturer certificate over the
device public key, and the ``SignOutput`` instruction that signs the
attestation hashes with the device private key SK_Accel.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro import perf
from repro.crypto.ec import P256, ECPoint, base_mult, scalar_mult, point_add, is_on_curve
from repro.crypto.rng import HmacDrbg
from repro.crypto.sha256 import sha256
from repro.crypto.hmac import hmac_sha256


@dataclass
class EcdsaKeyPair:
    """A P-256 key pair. ``private`` is an int in [1, n-1]; ``public`` the
    corresponding curve point."""

    private: int
    public: ECPoint

    @staticmethod
    def generate(drbg: HmacDrbg) -> "EcdsaKeyPair":
        d = 0
        while d == 0:
            d = drbg.random_int_below(P256.n)
        return EcdsaKeyPair(private=d, public=base_mult(d))


def _hash_to_int(message: bytes) -> int:
    digest = sha256(message)
    return int.from_bytes(digest, "big") % P256.n


@lru_cache(maxsize=256)
def _rfc6979_nonce_cached(private: int, message_hash: bytes) -> int:
    return _rfc6979_nonce_uncached(private, message_hash)


perf.register_cache(_rfc6979_nonce_cached.cache_clear)


def _rfc6979_nonce(private: int, message_hash: bytes) -> int:
    """Deterministic nonce (RFC 6979): a pure function of the key and
    message hash, so the fast path may serve it from an ``lru_cache``
    exactly like the AES key schedules — re-signing the same payload
    (attestation re-issue, benchmark repeats) skips the HMAC ratchet.
    ``perf.scalar_mode()`` bypasses and drops the cache."""
    if perf.fast_enabled():
        return _rfc6979_nonce_cached(private, message_hash)
    return _rfc6979_nonce_uncached(private, message_hash)


def _rfc6979_nonce_uncached(private: int, message_hash: bytes) -> int:
    """The full HMAC-DRBG loop with the standard K/V ratchet.
    Deterministic nonces remove the catastrophic nonce-reuse failure
    mode and make tests reproducible."""
    n = P256.n
    holen = 32
    x = private.to_bytes(32, "big")
    h1 = message_hash
    v = b"\x01" * holen
    k = b"\x00" * holen
    k = hmac_sha256(k, v + b"\x00" + x + h1)
    v = hmac_sha256(k, v)
    k = hmac_sha256(k, v + b"\x01" + x + h1)
    v = hmac_sha256(k, v)
    while True:
        v = hmac_sha256(k, v)
        candidate = int.from_bytes(v, "big")
        if 1 <= candidate < n:
            return candidate
        k = hmac_sha256(k, v + b"\x00")
        v = hmac_sha256(k, v)


def ecdsa_sign(private: int, message: bytes) -> Tuple[int, int]:
    """Sign ``message`` (hashed internally with SHA-256); returns (r, s)."""
    n = P256.n
    e = _hash_to_int(message)
    h1 = sha256(message)
    while True:
        k = _rfc6979_nonce(private, h1)
        point = base_mult(k)
        r = point.x % n
        if r == 0:
            h1 = sha256(h1)  # perturb and retry (never happens in practice)
            continue
        s = pow(k, -1, n) * (e + r * private) % n
        if s == 0:
            h1 = sha256(h1)
            continue
        return r, s


def ecdsa_verify(public: ECPoint, message: bytes, signature: Tuple[int, int]) -> bool:
    """Verify an (r, s) signature; returns False on any malformation."""
    n = P256.n
    r, s = signature
    if not (1 <= r < n and 1 <= s < n):
        return False
    if public.infinity or not is_on_curve(public):
        return False
    e = _hash_to_int(message)
    w = pow(s, -1, n)
    u1 = e * w % n
    u2 = r * w % n
    point = point_add(base_mult(u1), scalar_mult(u2, public))
    if point.infinity:
        return False
    return point.x % n == r


def encode_signature(signature: Tuple[int, int]) -> bytes:
    """Fixed-width 64-byte encoding (r || s)."""
    r, s = signature
    return r.to_bytes(32, "big") + s.to_bytes(32, "big")


def decode_signature(data: bytes) -> Tuple[int, int]:
    if len(data) != 64:
        raise ValueError("signature must be 64 bytes")
    return int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big")
