"""Streaming trace pipeline: generate → protect → time, in O(chunk) memory.

Before this module, an end-to-end mechanistic run materialized the whole
trace up front (a Python list or one giant :class:`RequestBatch`),
rewrote it, and only then timed it — peak memory O(trace), which caps
workloads far below LLM scale (one GPT-2-XL decode token is ~24 M
requests). :class:`TracePipeline` fuses the three stages per chunk:

* the **source** is a sliceable :class:`~repro.workloads.generators.TraceSpec`
  rendering any ``[start, stop)`` request window as a ``RequestBatch``
  via numpy address arithmetic;
* the **rewriters** (:func:`~repro.protection.trace_rewriter.build_trace_rewriter`)
  already carry their state — GuardNN's active MAC line, MEE's metadata
  cache — across ``rewrite_batch`` calls, so chunked rewriting is the
  monolithic rewrite by construction;
* the **controller** runs as a :class:`~repro.mem.controller.ControllerSession`,
  which pauses/resumes the FR-FCFS window across chunk seams
  bit-exactly.

The chunked run is therefore *bit-identical* to the monolithic one —
cycles, bursts, per-kind traffic, DRAM stats, cache state — for every
chunk size (pinned by ``tests/property/test_pipeline_equivalence.py``),
while peak memory stays bounded by the chunk size.

**Multi-scheme shared pass**: the paper's comparison figures time the
same data stream under several protection points. ``TracePipeline``
accepts a tuple of scheme names and forks each generated chunk through
every scheme's rewriter + controller in one pass, amortizing trace
generation across the whole comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
    seal_envelope,
)
from repro.mem.controller import ControllerResult, MemoryController
from repro.testing import faults


class PipelineCancelled(RuntimeError):
    """A streaming run was cooperatively cancelled at a chunk boundary
    (see :meth:`TracePipeline.run`'s ``should_stop``). The pipeline's
    rewriter/DRAM state is consumed — build a fresh one to retry."""


class PipelineCheckpointed(RuntimeError):
    """A streaming run parked itself at a chunk seam because
    ``checkpoint_request()`` asked it to (the graceful-drain path): the
    full mid-stream state is on disk at :attr:`path` and the run can be
    resumed bit-exactly by a fresh pipeline with ``resume_from=path``."""

    def __init__(self, path: str, chunks: int, requests_done: int):
        super().__init__(
            f"checkpointed to {path} after {chunks} chunks "
            f"({requests_done} requests)")
        self.path = path
        self.chunks = chunks
        self.requests_done = requests_done


def _build_trace_rewriter(name: str, **params):
    # deferred: repro.protection pulls in the analytic scheme stack,
    # which imports repro.mem — a module-level import would cycle
    from repro.protection.trace_rewriter import build_trace_rewriter

    return build_trace_rewriter(name, **params)

#: default requests per chunk: big enough to amortize the vectorized
#: kernels, small enough that a chunk (plus its rewritten form and the
#: controller's burst arrays) stays a few MB
DEFAULT_CHUNK_REQUESTS = 1 << 16


@dataclass
class PipelineResult:
    """One scheme's outcome of a streaming run."""

    scheme: str
    result: ControllerResult
    source_requests: int
    chunks: int
    chunk_requests: int

    @property
    def cycles(self) -> int:
        return self.result.cycles

    def slowdown_vs(self, baseline: "PipelineResult") -> float:
        """Cycles relative to ``baseline``. A zero-cycle baseline (an
        empty trace) has no meaningful slowdown: the ratio is undefined,
        and returning ``0.0`` would silently report "no slowdown" — so
        this returns ``float("nan")``, which survives JSON/NaN-aware
        aggregation and fails loudly in comparisons."""
        if baseline.result.cycles == 0:
            return float("nan")
        return self.result.cycles / baseline.result.cycles


class TracePipeline:
    """Fused generate → rewrite → time over a :class:`TraceSpec`.

    ``schemes`` are protection short names (``np`` / ``guardnn-c`` /
    ``guardnn-ci`` / ``bp``); each gets its own rewriter and DDR4
    controller, all fed from one generation pass. ``scheme_params``
    optionally maps a scheme name to rewriter parameters.
    """

    def __init__(self, source, schemes: Sequence[str] = ("np",),
                 chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
                 scheme_params: Optional[Dict[str, dict]] = None,
                 controller_factory=MemoryController):
        if chunk_requests <= 0:
            raise ValueError("chunk_requests must be positive")
        if len(set(schemes)) != len(schemes):
            raise ValueError("duplicate scheme names")
        if not schemes:
            raise ValueError("need at least one scheme")
        self.source = source
        self.schemes: Tuple[str, ...] = tuple(schemes)
        self.chunk_requests = chunk_requests
        params = scheme_params or {}
        self.scheme_params = {name: dict(params.get(name, {}))
                              for name in self.schemes}
        self.rewriters = {
            name: _build_trace_rewriter(name, **self.scheme_params[name])
            for name in self.schemes
        }
        self.controllers = {name: controller_factory() for name in self.schemes}
        self._ran = False

    # -- checkpointing -----------------------------------------------------

    def fingerprint(self) -> dict:
        """Identity of this computation: the trace spec plus the scheme
        configuration and chunk size (the chunk grid determines the
        seams a cursor may land on, so it is part of identity)."""
        return {
            "spec": self.source.state_dict(),
            "schemes": list(self.schemes),
            "scheme_params": self.scheme_params,
            "chunk_requests": self.chunk_requests,
        }

    def _capture(self, sessions, chunks: int, requests_done: int,
                 meta) -> dict:
        state = {
            "kind": "trace-pipeline",
            "fingerprint": self.fingerprint(),
            "cursor": requests_done,
            "chunks": chunks,
            "schemes": {
                name: {
                    "rewriter": (None if self.rewriters[name] is None
                                 else self.rewriters[name].state_dict()),
                    "session": sessions[name].state_dict(),
                } for name in self.schemes
            },
        }
        if meta is not None:
            state["meta"] = meta
        return state

    def _restore(self, sessions, resume_from) -> Tuple[int, int]:
        state = (resume_from if isinstance(resume_from, dict)
                 else load_checkpoint(resume_from, kind="trace-pipeline"))
        if state.get("kind") != "trace-pipeline":
            raise CheckpointError(
                f"not a trace-pipeline checkpoint: {state.get('kind')!r}")
        if "version" in state and state["version"] != CHECKPOINT_VERSION:
            # dict-form envelopes (a checkpoint migrated over the wire)
            # carry the version too; a file went through load_checkpoint
            raise CheckpointError(
                f"checkpoint has version {state['version']!r}; this build "
                f"reads version {CHECKPOINT_VERSION}")
        fingerprint = self.fingerprint()
        if state.get("fingerprint") != fingerprint:
            raise CheckpointError(
                "checkpoint fingerprint mismatch — it belongs to a "
                f"different computation.\n  checkpoint: {state.get('fingerprint')}"
                f"\n  this run:   {fingerprint}")
        cursor = int(state["cursor"])
        total = self.source.total_requests
        if not (0 <= cursor <= total and
                (cursor % self.chunk_requests == 0 or cursor == total)):
            raise CheckpointError(
                f"checkpoint cursor {cursor} is not a chunk seam of "
                f"{total} requests at chunk size {self.chunk_requests}")
        for name in self.schemes:
            scheme_state = state["schemes"][name]
            if self.rewriters[name] is not None:
                self.rewriters[name].load_state(scheme_state["rewriter"])
            sessions[name].load_state(scheme_state["session"])
        return int(state["chunks"]), cursor

    def run(self, on_chunk=None, should_stop=None, checkpoint_path=None,
            checkpoint_every: int = 0, checkpoint_request=None,
            resume_from=None, on_checkpoint=None,
            checkpoint_meta=None,
            on_checkpoint_state=None) -> Dict[str, PipelineResult]:
        """Stream the whole source through every scheme; one generation
        pass, per-scheme results keyed by scheme name (input order).

        ``on_chunk(chunk_index, requests_done, total_requests)`` is
        called after each chunk has been rewritten and fed through every
        scheme (1-based chunk index) — the progress hook the service
        streams to clients. ``should_stop()`` is polled at every chunk
        boundary *before* the chunk is generated; returning true raises
        :class:`PipelineCancelled`, the cooperative-cancellation seam (a
        chunk is the unit of work, so cancellation latency is one chunk).

        **Checkpointing** (all off by default, zero overhead when off):
        with ``checkpoint_path`` set, the full mid-stream state is
        written atomically every ``checkpoint_every`` chunks (0 = only
        on request); ``checkpoint_request()`` polled truthy at a seam
        writes a final checkpoint and raises
        :class:`PipelineCheckpointed` (the graceful-drain path);
        ``resume_from`` (a path or a loaded state dict) restores a
        checkpoint into this pipeline's rewriters/sessions and continues
        from its cursor — the resumed run is bit-identical to the
        uninterrupted one (cycles, bursts, stats, cache state; pinned by
        ``tests/property/test_checkpoint_equivalence.py``).
        ``on_checkpoint(path, chunks, requests_done)`` fires after every
        successful write; ``checkpoint_meta`` (JSON-able) rides along in
        the envelope, letting a daemon store the originating job.
        ``on_checkpoint_state(envelope, chunks, requests_done)`` receives
        the *sealed envelope dict itself* (version-stamped, exactly what
        ``save_checkpoint`` would persist) at every checkpoint event —
        the migration hook: a distributed worker ships the envelope to
        its coordinator instead of (or as well as) a local file, so
        checkpointing works with ``checkpoint_path=None`` as long as
        this hook is given.

        One-shot: the rewriters' metadata state and the controllers'
        DRAM state are consumed by the run, so a second call would
        silently time a different (warm-state) machine — build a fresh
        pipeline instead."""
        if self._ran:
            raise RuntimeError("pipeline already ran; rewriter and DRAM "
                               "state are consumed — build a new TracePipeline")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if ((checkpoint_every or checkpoint_request)
                and checkpoint_path is None and on_checkpoint_state is None):
            raise ValueError("checkpointing requested without a "
                             "checkpoint_path or on_checkpoint_state hook")
        self._ran = True
        sessions = {name: self.controllers[name].session()
                    for name in self.schemes}
        chunks = 0
        requests_done = 0
        total = self.source.total_requests
        if resume_from is not None:
            chunks, requests_done = self._restore(sessions, resume_from)

        def write_checkpoint() -> None:
            state = self._capture(sessions, chunks, requests_done,
                                  checkpoint_meta)
            if checkpoint_path is not None:
                save_checkpoint(checkpoint_path, state)
            if on_checkpoint_state is not None:
                on_checkpoint_state(seal_envelope(state), chunks,
                                    requests_done)
            if on_checkpoint is not None:
                on_checkpoint(checkpoint_path, chunks, requests_done)

        for start in range(requests_done, total, self.chunk_requests):
            if should_stop is not None and should_stop():
                raise PipelineCancelled(
                    f"cancelled after {chunks} of "
                    f"{-(-total // self.chunk_requests)} chunks")
            if checkpoint_request is not None and checkpoint_request():
                write_checkpoint()
                raise PipelineCheckpointed(checkpoint_path, chunks,
                                           requests_done)
            if faults.enabled():
                faults.fire("pipeline.chunk", chunks)
            batch = self.source.batch(
                start, min(start + self.chunk_requests, total))
            chunks += 1
            requests_done += len(batch)
            for name in self.schemes:
                rewriter = self.rewriters[name]
                sessions[name].feed(
                    rewriter.rewrite_batch(batch) if rewriter is not None
                    else batch)
            if on_chunk is not None:
                on_chunk(chunks, requests_done, total)
            if (checkpoint_every and chunks % checkpoint_every == 0
                    and requests_done < total):
                write_checkpoint()
        if should_stop is not None and should_stop():
            raise PipelineCancelled(f"cancelled after {chunks} chunks")
        results = {}
        for name in self.schemes:
            rewriter = self.rewriters[name]
            if rewriter is not None:
                sessions[name].feed(rewriter.flush_batch())
            results[name] = PipelineResult(
                scheme=name, result=sessions[name].finish(),
                source_requests=self.source.total_requests,
                chunks=chunks, chunk_requests=self.chunk_requests)
        return results

    def run_single(self, scheme: Optional[str] = None) -> PipelineResult:
        """Run and return one scheme's result (the only scheme by
        default)."""
        if scheme is None:
            if len(self.schemes) != 1:
                raise ValueError("several schemes configured; name one")
            scheme = self.schemes[0]
        return self.run()[scheme]


def run_materialized(source, scheme: str = "np",
                     controller_factory=MemoryController) -> ControllerResult:
    """The pre-pipeline path, kept as the reference and benchmark
    baseline: materialize the whole trace as ``MemoryRequest`` objects,
    rewrite it in one piece, time it in one piece. Peak memory O(trace)
    — this is the function whose footprint the pipeline removes."""
    trace = source.materialize()
    rewriter = _build_trace_rewriter(scheme)
    if rewriter is not None:
        trace = rewriter.rewrite(trace) + rewriter.flush()
    return controller_factory().run_trace(trace)
