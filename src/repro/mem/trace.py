"""Memory request and trace-statistics types.

Every layer of the stack speaks in these terms: the accelerator model
emits *data* requests; a protection scheme rewrites the stream, adding
*metadata* requests (version numbers, MACs, integrity-tree nodes); the
DRAM model times the combined stream. Tagging each request with a
:class:`RequestKind` lets experiments report exactly where the extra
traffic of each scheme comes from (the paper's "memory traffic increase"
metric, Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class RequestKind(Enum):
    """What a memory request carries."""

    DATA = "data"  # features / weights / gradients
    VN = "vn"  # version-number (counter) metadata — baseline only
    MAC = "mac"  # integrity MACs
    TREE = "tree"  # integrity-tree (Merkle) nodes — baseline only

    def is_metadata(self) -> bool:
        return self is not RequestKind.DATA


@dataclass(frozen=True, slots=True)
class MemoryRequest:
    """One off-chip access.

    ``address`` is a byte address; ``size`` a byte count (the DRAM model
    splits anything larger than one burst into multiple column accesses).

    Slotted: traces materialize millions of these, and the per-instance
    ``__dict__`` would double their footprint. The structure-of-arrays
    fast lane (:class:`repro.mem.batch.RequestBatch`) avoids the objects
    entirely.
    """

    address: int
    size: int
    is_write: bool
    kind: RequestKind = RequestKind.DATA

    def __post_init__(self):
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.size <= 0:
            raise ValueError("size must be positive")


@dataclass(slots=True)
class TraceStats:
    """Byte counts per request kind, split by direction."""

    read_bytes: dict = field(default_factory=dict)
    write_bytes: dict = field(default_factory=dict)

    def add(self, request: MemoryRequest) -> None:
        bucket = self.write_bytes if request.is_write else self.read_bytes
        bucket[request.kind] = bucket.get(request.kind, 0) + request.size

    def add_bytes(self, kind: RequestKind, nbytes: int, is_write: bool) -> None:
        """Account traffic without materializing request objects (the
        analytical path uses this)."""
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        bucket = self.write_bytes if is_write else self.read_bytes
        bucket[kind] = bucket.get(kind, 0) + nbytes

    def merge(self, other: "TraceStats") -> None:
        for kind, nbytes in other.read_bytes.items():
            self.read_bytes[kind] = self.read_bytes.get(kind, 0) + nbytes
        for kind, nbytes in other.write_bytes.items():
            self.write_bytes[kind] = self.write_bytes.get(kind, 0) + nbytes

    @property
    def total_bytes(self) -> int:
        return sum(self.read_bytes.values()) + sum(self.write_bytes.values())

    @property
    def data_bytes(self) -> int:
        return self.read_bytes.get(RequestKind.DATA, 0) + self.write_bytes.get(
            RequestKind.DATA, 0
        )

    @property
    def metadata_bytes(self) -> int:
        return self.total_bytes - self.data_bytes

    def traffic_increase(self) -> float:
        """The paper's metric: (protected traffic / unprotected traffic) - 1.

        For the unprotected baseline this is 0 by construction.
        """
        if self.data_bytes == 0:
            return 0.0
        return self.metadata_bytes / self.data_bytes

    def kind_bytes(self, kind: RequestKind) -> int:
        return self.read_bytes.get(kind, 0) + self.write_bytes.get(kind, 0)

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe form: kinds by enum value string."""
        return {
            "read_bytes": {kind.value: n for kind, n in self.read_bytes.items()},
            "write_bytes": {kind.value: n for kind, n in self.write_bytes.items()},
        }

    def load_state(self, state: dict) -> None:
        self.read_bytes = {RequestKind(value): int(n)
                           for value, n in state["read_bytes"].items()}
        self.write_bytes = {RequestKind(value): int(n)
                            for value, n in state["write_bytes"].items()}
