"""Off-chip memory substrate.

The paper simulates memory with Ramulator (16 GB DDR4). We rebuild the
pieces the evaluation needs:

* :mod:`repro.mem.trace` — memory request / trace-statistics types shared
  by the accelerator, protection schemes, and DRAM model.
* :mod:`repro.mem.layout` — physical address mapping (channel/bank/row/
  column interleaving).
* :mod:`repro.mem.dram` — DDR4 bank-state timing model.
* :mod:`repro.mem.controller` — FR-FCFS memory controller that schedules
  a request trace onto the DRAM model and reports cycles/bandwidth.
* :mod:`repro.mem.cache` — set-associative write-back cache used for the
  baseline protection's VN/MAC metadata cache.
* :mod:`repro.mem.batch` — structure-of-arrays request batches, the
  allocation-free fast lane of the trace pipeline.
* :mod:`repro.mem.pipeline` — the streaming generate → protect → time
  pipeline (bounded memory, multi-scheme shared pass).
"""

from repro.mem.batch import RequestBatch
from repro.mem.trace import MemoryRequest, RequestKind, TraceStats
from repro.mem.layout import AddressLayout
from repro.mem.dram import DramTiming, DramChip, DDR4_2400
from repro.mem.controller import ControllerSession, MemoryController
from repro.mem.cache import SetAssociativeCache, CacheStats
from repro.mem.pipeline import PipelineResult, TracePipeline, run_materialized

__all__ = [
    "RequestBatch",
    "ControllerSession",
    "TracePipeline",
    "PipelineResult",
    "run_materialized",
    "MemoryRequest",
    "RequestKind",
    "TraceStats",
    "AddressLayout",
    "DramTiming",
    "DramChip",
    "DDR4_2400",
    "MemoryController",
    "SetAssociativeCache",
    "CacheStats",
]
