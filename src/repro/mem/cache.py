"""Set-associative write-back cache with LRU replacement.

This is the VN/MAC metadata cache of the baseline memory-protection
engine (Intel-MEE-style). The paper attributes BP's traffic increase to
"more frequent cache evictions in the VN/MAC cache" (Section III-C); this
model is what produces that behaviour in our baseline scheme.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """Cache of fixed-size lines addressed by byte address.

    ``access`` returns ``(hit, evicted_dirty_line_address)`` so the caller
    can generate the fill read and writeback traffic itself — the cache
    model stays purely about state, the protection scheme owns traffic
    accounting.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 8):
        if size_bytes % (line_bytes * ways) != 0:
            raise ValueError("size must be a multiple of line_bytes * ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        if self.num_sets == 0:
            raise ValueError("cache too small for requested associativity")
        # each set: OrderedDict tag -> dirty flag; order = LRU (oldest first)
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _locate(self, address: int):
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int, is_write: bool):
        """Touch the line containing ``address``.

        Returns ``(hit, writeback_address)`` where ``writeback_address``
        is the byte address of a dirty line evicted to make room, or
        ``None``.
        """
        set_idx, tag = self._locate(address)
        cache_set = self._sets[set_idx]
        writeback = None
        if tag in cache_set:
            self.stats.hits += 1
            cache_set.move_to_end(tag)
            if is_write:
                cache_set[tag] = True
            return True, None

        self.stats.misses += 1
        if len(cache_set) >= self.ways:
            evicted_tag, dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.dirty_evictions += 1
                evicted_line = evicted_tag * self.num_sets + set_idx
                writeback = evicted_line * self.line_bytes
        cache_set[tag] = is_write
        return False, writeback

    def retouch(self, address: int, is_write: bool, accesses: int) -> None:
        """Replay ``accesses`` guaranteed-hit touches of a resident line
        in one step: a hit run's entire cache effect is one LRU move
        plus an OR into the dirty bit. Used by the batch rewriters to
        coalesce same-line request runs; the caller must know the line
        is resident (it just filled it)."""
        set_idx, tag = self._locate(address)
        cache_set = self._sets[set_idx]
        cache_set.move_to_end(tag)
        if is_write:
            cache_set[tag] = True
        self.stats.hits += accesses

    def contains(self, address: int) -> bool:
        set_idx, tag = self._locate(address)
        return tag in self._sets[set_idx]

    def flush(self):
        """Drop everything; returns addresses of dirty lines (for
        writeback accounting)."""
        dirty_addresses = []
        for set_idx, cache_set in enumerate(self._sets):
            for tag, dirty in cache_set.items():
                if dirty:
                    line = tag * self.num_sets + set_idx
                    dirty_addresses.append(line * self.line_bytes)
            cache_set.clear()
        return dirty_addresses

    # -- checkpointing -----------------------------------------------------
    #
    # The canonical serialized form is implementation-neutral: per set, a
    # list of ``[tag, dirty]`` pairs in LRU order (oldest first), plus the
    # stats counters. Only the *relative* recency order within a set is
    # observable (victim choice and flush order), so this round-trips into
    # either the OrderedDict reference or the stamp-array fast engine with
    # bit-identical future behaviour.

    def state_dict(self) -> dict:
        return {
            "line_bytes": self.line_bytes,
            "ways": self.ways,
            "num_sets": self.num_sets,
            "sets": [[[int(tag), bool(dirty)] for tag, dirty in cache_set.items()]
                     for cache_set in self._sets],
            "stats": {"hits": self.stats.hits, "misses": self.stats.misses,
                      "evictions": self.stats.evictions,
                      "dirty_evictions": self.stats.dirty_evictions},
        }

    def _check_geometry(self, state: dict) -> None:
        for key in ("line_bytes", "ways", "num_sets"):
            if state[key] != getattr(self, key):
                raise ValueError(
                    f"cache geometry mismatch: checkpoint {key}={state[key]}, "
                    f"cache has {getattr(self, key)}")

    def load_state(self, state: dict) -> None:
        self._check_geometry(state)
        for cache_set, entries in zip(self._sets, state["sets"]):
            cache_set.clear()
            for tag, dirty in entries:
                cache_set[int(tag)] = bool(dirty)
        stats = state["stats"]
        self.stats = CacheStats(hits=stats["hits"], misses=stats["misses"],
                                evictions=stats["evictions"],
                                dirty_evictions=stats["dirty_evictions"])
