"""Vectorized set-associative cache engine — the fast lane of
:class:`~repro.mem.cache.SetAssociativeCache`.

The scalar reference keeps each set as an ``OrderedDict`` and pays a
Python dict operation per metadata touch; on the MEE trace-rewriter hot
path that is the last per-request pure-Python loop in the simulator.
This engine keeps the whole cache as three dense ``(num_sets, ways)``
numpy arrays:

* ``tags``  — the stored line tag per way (int64; ``-1`` = free, which
  no real tag can equal, so tag comparison needs no validity mask);
* ``dirty`` — write-back state (bool);
* ``stamp`` — last-touch time (int64, strictly increasing): the way
  with the smallest stamp *is* the replacement victim, so the
  ``OrderedDict`` LRU ordering is replaced by an argmin. Free ways hold
  ``way_index - 2**62``, below every real timestamp and ordered by way,
  so one argmin yields "first free way, else LRU victim" directly (and
  ``stamp >= 0`` doubles as the occupancy mask).

``access`` / ``retouch`` / ``contains`` / ``flush`` keep the scalar
API (drop-in for the reference), and :meth:`access_many` is the batched
kernel: it resolves same-set dependency chains by *segmenting the
batch on set-index collisions* — collision rank ``r`` of every set is
processed in one numpy pass (accesses to distinct sets commute), so a
batch with at most ``k`` touches of any single set costs ``k``
vectorized waves instead of ``n`` Python iterations.

Bit-identical contract (asserted by
``tests/property/test_cache_equivalence.py``): stats, hit/miss
sequence, eviction order, writeback addresses, residency, dirty state
and ``retouch`` semantics all match the ``OrderedDict`` reference for
any access stream.
"""

from __future__ import annotations

import numpy as np

from repro.mem.cache import CacheStats

#: stamp floor for free ways: ``way - _FREE_BASE`` sorts every free way
#: below every real (non-negative) timestamp, lowest way first
_FREE_BASE = 1 << 62


class FastSetAssociativeCache:
    """Numpy twin of :class:`~repro.mem.cache.SetAssociativeCache`.

    State lives in dense arrays; single-access calls pay a small numpy
    toll (they exist so the sequential fallback paths and the tests can
    drive the same object), while :meth:`access_many` amortizes the
    whole batch.
    """

    __slots__ = ("line_bytes", "ways", "num_sets", "tags", "dirty",
                 "stamp", "stats", "_clock")

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 8):
        if size_bytes % (line_bytes * ways) != 0:
            raise ValueError("size must be a multiple of line_bytes * ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        if self.num_sets == 0:
            raise ValueError("cache too small for requested associativity")
        self.tags = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self.dirty = np.zeros((self.num_sets, ways), dtype=bool)
        self.stamp = np.broadcast_to(
            np.arange(ways, dtype=np.int64) - _FREE_BASE,
            (self.num_sets, ways)).copy()
        self.stats = CacheStats()
        self._clock = 0

    # -- scalar-compatible API --------------------------------------------

    def _locate(self, address: int):
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int, is_write: bool):
        """Touch one line; same returns as the scalar reference:
        ``(hit, writeback_address_or_None)``."""
        set_idx, tag = self._locate(address)
        row_tags = self.tags[set_idx]
        match = row_tags == tag
        way = int(match.argmax())
        if match[way]:
            self.stats.hits += 1
            self.stamp[set_idx, way] = self._clock
            self._clock += 1
            if is_write:
                self.dirty[set_idx, way] = True
            return True, None

        self.stats.misses += 1
        writeback = None
        victim = int(self.stamp[set_idx].argmin())
        if self.stamp[set_idx, victim] >= 0:  # occupied: a real eviction
            self.stats.evictions += 1
            if self.dirty[set_idx, victim]:
                self.stats.dirty_evictions += 1
                evicted_line = int(row_tags[victim]) * self.num_sets + set_idx
                writeback = evicted_line * self.line_bytes
        self.tags[set_idx, victim] = tag
        self.dirty[set_idx, victim] = bool(is_write)
        self.stamp[set_idx, victim] = self._clock
        self._clock += 1
        return False, writeback

    def retouch(self, address: int, is_write: bool, accesses: int) -> None:
        """Replay ``accesses`` guaranteed-hit touches of a resident line
        in one step (one LRU move + a dirty OR), mirroring the scalar
        reference's :meth:`~repro.mem.cache.SetAssociativeCache.retouch`."""
        set_idx, tag = self._locate(address)
        way = int((self.tags[set_idx] == tag).argmax())
        self.stamp[set_idx, way] = self._clock
        self._clock += 1
        if is_write:
            self.dirty[set_idx, way] = True
        self.stats.hits += accesses

    def contains(self, address: int) -> bool:
        set_idx, tag = self._locate(address)
        return bool((self.tags[set_idx] == tag).any())

    def any_resident(self) -> bool:
        """True when at least one line is cached (cheap cold check)."""
        return bool((self.stamp >= 0).any())

    def flush(self):
        """Drop everything; returns dirty line addresses in the scalar
        reference's order: sets ascending, LRU (oldest) first within a
        set."""
        sets, ways = np.nonzero(self.dirty)
        addresses = []
        if sets.size:
            stamps = self.stamp[sets, ways]
            order = np.lexsort((stamps, sets))
            lines = self.tags[sets, ways][order] * self.num_sets + sets[order]
            addresses = (lines * self.line_bytes).tolist()
        self.tags.fill(-1)
        self.dirty.fill(False)
        self.stamp[...] = np.arange(self.ways, dtype=np.int64) - _FREE_BASE
        return addresses

    # -- batched kernel ----------------------------------------------------

    def contains_many(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized residency probe (no state change, no stats)."""
        line = addresses // self.line_bytes
        sets = line % self.num_sets
        tags = line // self.num_sets
        return (self.tags[sets] == tags[:, None]).any(axis=1)

    def access_many(self, addresses, is_write):
        """Batched :meth:`access`: one call touches every address in
        stream order. Returns ``(hits, writebacks)`` — a bool array and
        an int64 array where ``-1`` means no dirty eviction, otherwise
        the byte address of the line written back by that access
        (identical, access for access, to a scalar ``access`` loop)."""
        addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        n = len(addresses)
        hits = np.empty(n, dtype=bool)
        writebacks = np.full(n, -1, dtype=np.int64)
        if n:
            stamps = self._clock + np.arange(n, dtype=np.int64)
            self.simulate(addresses, is_write, stamps, hits, writebacks)
            self._clock += n
        return hits, writebacks

    def simulate(self, addresses, is_write, stamps, hits, writebacks) -> None:
        """The wave kernel behind :meth:`access_many`.

        ``stamps`` assigns each access its LRU timestamp explicitly so
        callers (the MEE rewriter) can fold guaranteed-hit ``retouch``
        replays into the original touch by *inflating* its stamp to the
        replay's stream position; stamps must be unique non-negative
        values starting at :attr:`_clock` (the caller advances the
        clock past its slot range on commit) and preserve per-set
        victim ordering (see the trace rewriter's coalescing argument).
        ``writebacks`` must come in filled with ``-1``; it and ``hits``
        are filled in place.

        Segmentation: accesses are grouped by set index; wave ``r``
        applies the ``r``-th access of every set in one vectorized pass.
        Within a wave all sets are distinct, so the accesses commute and
        dense-array updates are exact.
        """
        n = len(addresses)
        line = addresses // self.line_bytes
        sets = line % self.num_sets
        tag = line // self.num_sets

        by_set = np.argsort(sets, kind="stable")  # per-set chronological
        sets_sorted = sets[by_set]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        np.not_equal(sets_sorted[1:], sets_sorted[:-1], out=boundary[1:])
        group_start = np.flatnonzero(boundary)
        group_len = np.diff(np.append(group_start, n))
        # collision rank of every access within its set; a stable sort
        # by rank lays each wave out as one contiguous slice
        rank = np.arange(n) - np.repeat(group_start, group_len)
        sel_all = by_set[np.argsort(rank, kind="stable")]
        wave_len = np.bincount(rank)

        s_all = sets[sel_all]
        t_all = tag[sel_all]
        w_all = is_write[sel_all]
        stamp_in = stamps[sel_all]

        tags_a, dirty_a, stamp_a = self.tags, self.dirty, self.stamp
        num_sets, line_bytes = self.num_sets, self.line_bytes
        free_before = int((stamp_a < 0).sum())

        lo = 0
        for count in wave_len:
            hi = lo + count
            sel = sel_all[lo:hi]
            s = s_all[lo:hi]
            t = t_all[lo:hi]
            match = tags_a[s] == t[:, None]  # free ways hold tag -1
            is_hit = match.any(axis=1)
            # free ways stamp below all timestamps, lowest way first,
            # so one argmin is "first free way, else LRU victim"
            way = np.where(is_hit, match.argmax(axis=1),
                           stamp_a[s].argmin(axis=1))
            old_dirty = dirty_a[s, way]
            hits[sel] = is_hit
            dirty_ev = ~is_hit & old_dirty
            if dirty_ev.any():
                ev_sets = s[dirty_ev]
                ev_tags = tags_a[ev_sets, way[dirty_ev]]
                writebacks[sel[dirty_ev]] = (
                    ev_tags * num_sets + ev_sets) * line_bytes
            tags_a[s, way] = t
            dirty_a[s, way] = (old_dirty & is_hit) | w_all[lo:hi]
            stamp_a[s, way] = stamp_in[lo:hi]
            lo = hi

        hit_total = int(hits[:n].sum())
        miss_total = n - hit_total
        self.stats.hits += hit_total
        self.stats.misses += miss_total
        # every miss either claims a free way or evicts a resident line
        self.stats.evictions += miss_total - (
            free_before - int((stamp_a < 0).sum()))
        self.stats.dirty_evictions += int((writebacks[:n] >= 0).sum())

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Canonical implementation-neutral state (same format as the
        scalar reference): per set, ``[tag, dirty]`` pairs in LRU order
        (oldest first). Stamps are not serialized — only their relative
        order is observable, and :meth:`load_state` reassigns a fresh
        monotone clock that preserves it."""
        sets_out = []
        for set_idx in range(self.num_sets):
            occupied = np.flatnonzero(self.stamp[set_idx] >= 0)
            order = occupied[np.argsort(self.stamp[set_idx, occupied])]
            sets_out.append([[int(self.tags[set_idx, way]),
                              bool(self.dirty[set_idx, way])] for way in order])
        return {
            "line_bytes": self.line_bytes,
            "ways": self.ways,
            "num_sets": self.num_sets,
            "sets": sets_out,
            "stats": {"hits": self.stats.hits, "misses": self.stats.misses,
                      "evictions": self.stats.evictions,
                      "dirty_evictions": self.stats.dirty_evictions},
        }

    def load_state(self, state: dict) -> None:
        for key in ("line_bytes", "ways", "num_sets"):
            if state[key] != getattr(self, key):
                raise ValueError(
                    f"cache geometry mismatch: checkpoint {key}={state[key]}, "
                    f"cache has {getattr(self, key)}")
        self.tags.fill(-1)
        self.dirty.fill(False)
        self.stamp[...] = np.arange(self.ways, dtype=np.int64) - _FREE_BASE
        clock = 0
        for set_idx, entries in enumerate(state["sets"]):
            # occupied entries take ways 0..k-1 with ascending stamps:
            # free ways (k..) still sort below and in way order, victims
            # follow LRU order, flush lexsort follows LRU order — every
            # observable behaviour matches the pre-checkpoint cache
            for way, (tag, dirty) in enumerate(entries):
                self.tags[set_idx, way] = int(tag)
                self.dirty[set_idx, way] = bool(dirty)
                self.stamp[set_idx, way] = clock
                clock += 1
        self._clock = clock
        stats = state["stats"]
        self.stats = CacheStats(hits=stats["hits"], misses=stats["misses"],
                                evictions=stats["evictions"],
                                dirty_evictions=stats["dirty_evictions"])

    # -- bookkeeping for callers that pre-assign stamps --------------------

    def credit_hits(self, count: int) -> None:
        """Account ``count`` guaranteed hits that were folded into
        already-simulated touches (the batched ``retouch`` bookkeeping:
        a hit run's replay adds hits without new accesses)."""
        self.stats.hits += count
