"""DDR4 bank-state timing model (Ramulator-style, simplified).

The paper times memory with Ramulator configured as 16 GB DDR4. We model
the subset of DDR4 state that determines DNN-accelerator memory behaviour:

* per-bank open row (row-buffer hits vs. conflicts),
* the core timing constraints tRCD / tRP / tCL / tCWL / tBL / tCCD /
  tRAS / tRC / tWR,
* data-bus occupancy (one burst per max(tBL, tCCD)), with column commands
  pipelined the way a real device overlaps CAS latency with transfers,
* periodic refresh (tREFI / tRFC) as a bandwidth tax.

Omitted: tFAW/tRRD rank-level constraints, read-write turnaround bubbles,
power-down modes — negligible for the streaming access patterns at issue,
and their omission shifts absolute cycles only, not the ratios between
protection schemes (see DESIGN.md fidelity notes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.layout import AddressLayout


@dataclass(frozen=True)
class DramTiming:
    """Timing parameters in memory-clock cycles, plus clock frequency."""

    name: str
    freq_mhz: float  # I/O bus clock in MHz (data rate is 2x, DDR)
    tCL: int  # CAS latency (read)
    tCWL: int  # CAS write latency
    tRCD: int  # activate to column command
    tRP: int  # precharge latency
    tRAS: int  # activate to precharge minimum
    tBL: int  # burst length in bus cycles (BL8 -> 4 clock cycles)
    tCCD: int  # column-to-column minimum
    tWR: int  # write recovery
    tRTP: int  # read to precharge
    tREFI: int  # refresh interval
    tRFC: int  # refresh cycle time

    @property
    def tRC(self) -> int:
        return self.tRAS + self.tRP

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak data-bus bandwidth in GB/s for a 64-bit channel."""
        return self.freq_mhz * 2 * 8 / 1000.0


#: how far (in cycles) the command pointer may run ahead of the data bus
#: before back-pressure couples them (see :meth:`DramChip.access_decomposed`);
#: the batch controller's closed-form run servicing derives from the same
#: constant, so the two stay cycle-exact by construction
CMD_DATA_COUPLING = 32

#: DDR4-2400, 64-bit channel: the class of device the paper's 16 GB DDR4
#: Ramulator config represents. Timings are standard -CL17 values.
DDR4_2400 = DramTiming(
    name="DDR4-2400",
    freq_mhz=1200.0,
    tCL=17,
    tCWL=12,
    tRCD=17,
    tRP=17,
    tRAS=39,
    tBL=4,
    tCCD=4,
    tWR=18,
    tRTP=9,
    tREFI=9360,
    tRFC=420,
)


class _BankState:
    __slots__ = ("open_row", "activated_at", "last_data_end", "last_was_write")

    def __init__(self):
        self.open_row = None
        self.activated_at = -(10**9)
        self.last_data_end = 0
        self.last_was_write = False


class DramChip:
    """One DRAM channel with per-bank row state.

    :meth:`access` issues one burst access at/after command cycle
    ``cycle`` and returns ``(next_command_cycle, data_end_cycle)``.
    Column commands pipeline: consecutive row hits are spaced by the data
    bus (max(tBL, tCCD)), not by full CAS latency, which is how a real
    controller sustains near-peak streaming bandwidth.
    """

    def __init__(self, timing: DramTiming = DDR4_2400, layout: AddressLayout = None):
        self.timing = timing
        self.layout = layout or AddressLayout()
        self._banks = [_BankState() for _ in range(self.layout.banks)]
        self._bus_free_at = 0
        self._next_refresh = timing.tREFI
        self.stats = {"row_hits": 0, "row_misses": 0, "row_conflicts": 0, "refreshes": 0}

    def _refresh_if_due(self, cycle: int) -> int:
        """All-bank refresh: close all rows and stall for tRFC."""
        while cycle >= self._next_refresh:
            end = self._next_refresh + self.timing.tRFC
            for bank in self._banks:
                bank.open_row = None
                bank.last_data_end = max(bank.last_data_end, end)
            self._bus_free_at = max(self._bus_free_at, end)
            self._next_refresh += self.timing.tREFI
            self.stats["refreshes"] += 1
            cycle = max(cycle, end)
        return cycle

    def access(self, address: int, is_write: bool, cycle: int):
        """Time one burst access; returns (next_command_cycle, data_end)."""
        bank_idx, row, _col = self.layout.decompose(address)
        return self.access_decomposed(bank_idx, row, is_write, cycle)

    def access_decomposed(self, bank_idx: int, row: int, is_write: bool, cycle: int):
        """Time one burst access given pre-decomposed (bank, row)
        coordinates — the batch pipeline decomposes whole traces up
        front (vectorized) instead of per access. Identical timing to
        :meth:`access`."""
        t = self.timing
        cycle = self._refresh_if_due(cycle)
        bank = self._banks[bank_idx]

        if bank.open_row == row:
            self.stats["row_hits"] += 1
            col_issue = max(cycle, bank.activated_at + t.tRCD)
        else:
            if bank.open_row is None:
                self.stats["row_misses"] += 1
                activate_at = max(cycle, bank.activated_at + t.tRC)
            else:
                self.stats["row_conflicts"] += 1
                recovery = t.tWR if bank.last_was_write else t.tRTP
                precharge_at = max(
                    cycle,
                    bank.activated_at + t.tRAS,
                    bank.last_data_end + recovery - t.tBL,
                )
                activate_at = max(precharge_at + t.tRP, bank.activated_at + t.tRC)
            bank.activated_at = activate_at
            bank.open_row = row
            col_issue = activate_at + t.tRCD

        cas = t.tCWL if is_write else t.tCL
        data_start = max(col_issue + cas, self._bus_free_at)
        data_end = data_start + t.tBL
        self._bus_free_at = data_start + max(t.tBL, t.tCCD)

        bank.last_data_end = data_end
        bank.last_was_write = is_write

        # The command bus can issue the next command one cycle later.
        # Keep the command pointer loosely coupled to the data bus so the
        # model cannot run unboundedly ahead of the transfers it scheduled
        # (a real controller's queue provides the same back-pressure).
        next_command = max(cycle + 1, data_start - CMD_DATA_COUPLING)
        return next_command, data_end

    def open_row_of(self, bank_index: int):
        return self._banks[bank_index].open_row

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Full timing state: per-bank row/activation/data columns plus
        bus, refresh horizon, and stats — everything a resumed run needs
        for cycle-exact continuation."""
        return {
            "banks": [[bank.open_row, bank.activated_at, bank.last_data_end,
                       bool(bank.last_was_write)] for bank in self._banks],
            "bus_free_at": self._bus_free_at,
            "next_refresh": self._next_refresh,
            "stats": dict(self.stats),
        }

    def load_state(self, state: dict) -> None:
        if len(state["banks"]) != len(self._banks):
            raise ValueError(
                f"bank count mismatch: checkpoint has {len(state['banks'])}, "
                f"chip has {len(self._banks)}")
        for bank, (open_row, activated_at, last_data_end, last_was_write) in zip(
                self._banks, state["banks"]):
            bank.open_row = None if open_row is None else int(open_row)
            bank.activated_at = int(activated_at)
            bank.last_data_end = int(last_data_end)
            bank.last_was_write = bool(last_was_write)
        self._bus_free_at = int(state["bus_free_at"])
        self._next_refresh = int(state["next_refresh"])
        self.stats = {key: int(value) for key, value in state["stats"].items()}
