"""Structure-of-arrays request batches — the trace pipeline's fast lane.

A protected trace for one layer can run to hundreds of thousands of
requests; materializing each as a :class:`~repro.mem.trace.MemoryRequest`
dataclass costs an allocation, a ``__post_init__`` validation, and four
attribute lookups per consumer touch. :class:`RequestBatch` keeps the
same stream as four parallel primitive arrays (``address``, ``size``,
``is_write``, ``kind``), which the trace rewriters emit directly and the
DRAM controller consumes without ever constructing request objects.

The scalar object path remains fully supported: batches convert to and
from ``MemoryRequest`` lists, and iteration yields ``MemoryRequest``
objects, so a batch can stand in anywhere a trace list is accepted.
Accounting (:meth:`stats`) reproduces :class:`~repro.mem.trace.TraceStats`
per-kind byte bookkeeping bit-exactly — asserted by the equivalence
suite.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List

from repro.mem.trace import MemoryRequest, RequestKind, TraceStats

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

#: fixed kind <-> small-int code mapping used inside batches
KINDS = (RequestKind.DATA, RequestKind.VN, RequestKind.MAC, RequestKind.TREE)
KIND_CODE = {kind: code for code, kind in enumerate(KINDS)}

DATA_CODE = KIND_CODE[RequestKind.DATA]
VN_CODE = KIND_CODE[RequestKind.VN]
MAC_CODE = KIND_CODE[RequestKind.MAC]
TREE_CODE = KIND_CODE[RequestKind.TREE]


class RequestBatch:
    """A memory-request stream as four parallel arrays.

    ``address``/``size`` are signed 64-bit (``array('q')``);
    ``is_write``/``kind`` are signed bytes. Order is the request order —
    a batch is a trace, not a set.
    """

    __slots__ = ("address", "size", "is_write", "kind")

    def __init__(self):
        self.address = array("q")
        self.size = array("q")
        self.is_write = array("b")
        self.kind = array("b")

    # -- construction ------------------------------------------------------

    def append(self, address: int, size: int, is_write: bool,
               kind_code: int = DATA_CODE) -> None:
        """Append one request (same validation as ``MemoryRequest``)."""
        if address < 0:
            raise ValueError("address must be non-negative")
        if size <= 0:
            raise ValueError("size must be positive")
        self.address.append(address)
        self.size.append(size)
        self.is_write.append(1 if is_write else 0)
        self.kind.append(kind_code)

    def append_request(self, request: MemoryRequest) -> None:
        # already validated by MemoryRequest.__post_init__
        self.address.append(request.address)
        self.size.append(request.size)
        self.is_write.append(1 if request.is_write else 0)
        self.kind.append(KIND_CODE[request.kind])

    @classmethod
    def from_requests(cls, requests: Iterable[MemoryRequest]) -> "RequestBatch":
        batch = cls()
        address = batch.address
        size = batch.size
        is_write = batch.is_write
        kind = batch.kind
        code = KIND_CODE
        for req in requests:
            address.append(req.address)
            size.append(req.size)
            is_write.append(1 if req.is_write else 0)
            kind.append(code[req.kind])
        return batch

    @classmethod
    def from_arrays(cls, address, size, is_write, kind=None) -> "RequestBatch":
        """Build a batch straight from numpy columns — the vectorized
        generators' zero-copy-ish entry point (one ``tobytes`` per
        column instead of one ``append`` per request).

        ``address``/``size`` are any integer arrays, ``is_write`` a
        bool/int array, ``kind`` an int8 kind-code array (``None`` for
        all-DATA). Validation matches :meth:`append` (and with it
        ``MemoryRequest.__post_init__``), applied batch-wide.
        """
        address = _np.ascontiguousarray(address, dtype=_np.int64)
        size = _np.ascontiguousarray(size, dtype=_np.int64)
        if address.size and int(address.min()) < 0:
            raise ValueError("address must be non-negative")
        if size.size and int(size.min()) <= 0:
            raise ValueError("size must be positive")
        batch = cls()
        batch.address.frombytes(address.tobytes())
        batch.size.frombytes(size.tobytes())
        batch.is_write.frombytes(
            _np.ascontiguousarray(is_write, dtype=_np.int8).tobytes())
        if kind is None:
            batch.kind.frombytes(bytes(len(address)))  # DATA_CODE == 0
        else:
            batch.kind.frombytes(
                _np.ascontiguousarray(kind, dtype=_np.int8).tobytes())
        return batch

    def extend(self, other: "RequestBatch") -> None:
        self.address.extend(other.address)
        self.size.extend(other.size)
        self.is_write.extend(other.is_write)
        self.kind.extend(other.kind)

    # -- conversion / inspection ------------------------------------------

    def __len__(self) -> int:
        return len(self.address)

    def request(self, i: int) -> MemoryRequest:
        return MemoryRequest(self.address[i], self.size[i],
                             bool(self.is_write[i]), KINDS[self.kind[i]])

    def __iter__(self) -> Iterator[MemoryRequest]:
        for i in range(len(self.address)):
            yield self.request(i)

    def to_requests(self) -> List[MemoryRequest]:
        return [self.request(i) for i in range(len(self.address))]

    def __eq__(self, other) -> bool:
        if not isinstance(other, RequestBatch):
            return NotImplemented
        return (self.address == other.address and self.size == other.size
                and self.is_write == other.is_write and self.kind == other.kind)

    def __repr__(self) -> str:
        return f"<RequestBatch {len(self)} requests>"

    # -- accounting --------------------------------------------------------

    def stats(self) -> TraceStats:
        """Per-kind byte counts, identical to feeding every request
        through :meth:`TraceStats.add`. One ``bincount`` over
        (kind, direction) buckets instead of a per-request loop — the
        streaming pipeline calls this once per chunk per scheme."""
        if _np is not None and len(self.size) >= 64:
            size = _np.frombuffer(self.size, dtype=_np.int64)
            is_write = _np.frombuffer(self.is_write, dtype=_np.int8)
            kind = _np.frombuffer(self.kind, dtype=_np.int8)
            buckets = _np.bincount(kind + 4 * (is_write != 0),
                                   weights=size, minlength=8)
            read_totals = [int(b) for b in buckets[:4]]
            write_totals = [int(b) for b in buckets[4:]]
        else:
            read_totals = [0, 0, 0, 0]
            write_totals = [0, 0, 0, 0]
            for size, is_write, kind in zip(self.size, self.is_write, self.kind):
                if is_write:
                    write_totals[kind] += size
                else:
                    read_totals[kind] += size
        stats = TraceStats()
        for code, kind in enumerate(KINDS):
            if read_totals[code]:
                stats.read_bytes[kind] = read_totals[code]
            if write_totals[code]:
                stats.write_bytes[kind] = write_totals[code]
        return stats
