"""Physical address layout: how byte addresses map to DRAM coordinates.

We use the common row-interleaved mapping
``row : bank : column : offset`` (high to low), which maximizes row-buffer
locality for streaming accesses — appropriate because DNN accelerators
stream large contiguous tensors (the very property GuardNN's protection
exploits).
"""

from __future__ import annotations

from dataclasses import dataclass


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class AddressLayout:
    """Bit-sliced address decomposition.

    Defaults model one channel of a 16 GB DDR4 device: 16 banks,
    8 KB rows, 64-byte bursts.
    """

    burst_bytes: int = 64
    columns_per_row: int = 128  # 128 bursts x 64 B = 8 KB row
    banks: int = 16

    def __post_init__(self):
        for name in ("burst_bytes", "columns_per_row", "banks"):
            if not _is_pow2(getattr(self, name)):
                raise ValueError(f"{name} must be a power of two")

    @property
    def row_bytes(self) -> int:
        return self.burst_bytes * self.columns_per_row

    def decompose(self, address: int):
        """Return (bank, row, column) for a byte address."""
        burst_index = address // self.burst_bytes
        column = burst_index % self.columns_per_row
        rest = burst_index // self.columns_per_row
        bank = rest % self.banks
        row = rest // self.banks
        return bank, row, column

    def compose(self, bank: int, row: int, column: int) -> int:
        """Inverse of :meth:`decompose` (byte address of the burst)."""
        if not 0 <= bank < self.banks:
            raise ValueError("bank out of range")
        if not 0 <= column < self.columns_per_row:
            raise ValueError("column out of range")
        burst_index = (row * self.banks + bank) * self.columns_per_row + column
        return burst_index * self.burst_bytes
