"""FR-FCFS memory controller.

Schedules a request stream onto :class:`repro.mem.dram.DramChip` with the
classic First-Ready, First-Come-First-Served policy: among queued
requests, prefer row-buffer hits; break ties by age. Requests larger than
one burst are split into per-burst sub-requests.

The controller is used two ways:

* **event-driven**: :meth:`run_trace` times an explicit request list —
  used by tests, microbenches, and bandwidth characterization;
* **characterization**: :meth:`effective_bandwidth_gbps` measures
  sustainable bandwidth for a synthetic streaming mix, which the
  analytical layer-performance model uses as its bandwidth input
  (see :mod:`repro.accel.accelerator`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Union

from repro import perf
from repro.mem.batch import RequestBatch
from repro.mem.dram import DramChip, DDR4_2400, DramTiming
from repro.mem.layout import AddressLayout
from repro.mem.trace import MemoryRequest, TraceStats

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


@dataclass
class ControllerResult:
    """Outcome of timing one trace."""

    cycles: int
    requests: int
    bursts: int
    stats: TraceStats

    def bandwidth_gbps(self, freq_mhz: float, burst_bytes: int = 64) -> float:
        if self.cycles == 0:
            return 0.0
        bytes_moved = self.bursts * burst_bytes
        seconds = self.cycles / (freq_mhz * 1e6)
        return bytes_moved / seconds / 1e9


class MemoryController:
    """FR-FCFS over a single channel."""

    def __init__(self, timing: DramTiming = DDR4_2400, layout: AddressLayout = None,
                 queue_depth: int = 32):
        self.layout = layout or AddressLayout()
        self.dram = DramChip(timing, self.layout)
        self.queue_depth = queue_depth

    def _split_bursts(self, request: MemoryRequest) -> Iterable[tuple]:
        """Yield (address, is_write) per burst covering the request."""
        burst = self.layout.burst_bytes
        start = (request.address // burst) * burst
        end = request.address + request.size
        addr = start
        while addr < end:
            yield (addr, request.is_write)
            addr += burst

    def run_trace(self, trace: Union[List[MemoryRequest], RequestBatch]) -> ControllerResult:
        """Time an entire trace; returns total cycles and statistics.

        Accepts either a ``MemoryRequest`` list (the scalar reference
        path below) or a :class:`RequestBatch` (routed to
        :meth:`run_batch`); both produce identical results.
        """
        if isinstance(trace, RequestBatch):
            return self.run_batch(trace)
        stats = TraceStats()
        pending = deque()
        for req in trace:
            stats.add(req)
            for burst in self._split_bursts(req):
                pending.append(burst)

        cycle = 0
        last_data_end = 0
        bursts = 0
        window = deque()
        while pending or window:
            while pending and len(window) < self.queue_depth:
                window.append(pending.popleft())
            # FR-FCFS: first row hit in the window, else the oldest
            chosen = None
            for i, (addr, _w) in enumerate(window):
                bank, row, _col = self.layout.decompose(addr)
                if self.dram.open_row_of(bank) == row:
                    chosen = i
                    break
            if chosen is None:
                chosen = 0
            addr, is_write = window[chosen]
            del window[chosen]
            cycle, data_end = self.dram.access(addr, is_write, cycle)
            last_data_end = max(last_data_end, data_end)
            bursts += 1
        total = max(cycle, last_data_end)
        return ControllerResult(cycles=total, requests=len(trace), bursts=bursts, stats=stats)

    def _expand_bursts_soa(self, batch: RequestBatch):
        """Per-burst (address, is_write, bank, row) lists for a batch,
        decomposed up front — vectorized when numpy is available."""
        burst = self.layout.burst_bytes
        cpr = self.layout.columns_per_row
        banks = self.layout.banks
        if _np is not None and len(batch):
            addr = _np.frombuffer(batch.address, dtype=_np.int64)
            size = _np.frombuffer(batch.size, dtype=_np.int64)
            start_burst = addr // burst
            counts = (addr + size - 1) // burst - start_burst + 1
            total = int(counts.sum())
            starts = _np.repeat(start_burst, counts)
            ends = _np.cumsum(counts)
            ramp = _np.arange(total, dtype=_np.int64) - _np.repeat(ends - counts, counts)
            burst_index = starts + ramp
            rest = burst_index // cpr
            bank_arr = rest % banks
            row_arr = rest // banks
            write_arr = _np.repeat(
                _np.frombuffer(batch.is_write, dtype=_np.int8), counts
            )
            return ((burst_index * burst).tolist(), write_arr.tolist(),
                    bank_arr.tolist(), row_arr.tolist())
        addresses, writes, bank_list, row_list = [], [], [], []
        decompose = self.layout.decompose
        for address, size, is_write in zip(batch.address, batch.size, batch.is_write):
            first = (address // burst) * burst
            end = address + size
            a = first
            while a < end:
                bank, row, _col = decompose(a)
                addresses.append(a)
                writes.append(is_write)
                bank_list.append(bank)
                row_list.append(row)
                a += burst
        return addresses, writes, bank_list, row_list

    def run_batch(self, batch: RequestBatch) -> ControllerResult:
        """Time a :class:`RequestBatch` — same FR-FCFS schedule and
        cycle accounting as :meth:`run_trace`, but burst expansion and
        address decomposition happen once, vectorized, and the schedule
        loop runs on primitive arrays instead of request objects."""
        stats = batch.stats()
        addresses, writes, bank_list, row_list = self._expand_bursts_soa(batch)
        n = len(addresses)

        dram_banks = self.dram._banks  # the scan needs raw open-row state
        access = self.dram.access_decomposed
        depth = self.queue_depth
        cycle = 0
        last_data_end = 0
        bursts = 0
        window = deque()
        head = 0
        while head < n or window:
            while head < n and len(window) < depth:
                window.append(head)
                head += 1
            # FR-FCFS: first row hit in the window, else the oldest
            chosen_pos = None
            for pos, j in enumerate(window):
                if dram_banks[bank_list[j]].open_row == row_list[j]:
                    chosen_pos = pos
                    break
            if chosen_pos is None:
                chosen_pos = 0
            j = window[chosen_pos]
            del window[chosen_pos]
            cycle, data_end = access(bank_list[j], row_list[j], bool(writes[j]), cycle)
            if data_end > last_data_end:
                last_data_end = data_end
            bursts += 1
        total = max(cycle, last_data_end)
        return ControllerResult(cycles=total, requests=len(batch), bursts=bursts, stats=stats)

    def effective_bandwidth_gbps(self, nbytes: int = 1 << 20, write_fraction: float = 0.3,
                                 stride: int = 64) -> float:
        """Measure sustainable bandwidth with a streaming read/write mix
        (the access shape of a DNN accelerator fetching tiles)."""
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        writes_every = int(1 / write_fraction) if write_fraction > 0 else 0
        n = nbytes // stride
        if perf.fast_enabled():
            trace = RequestBatch()
            for i in range(n):
                is_write = writes_every > 0 and (i % writes_every == 0)
                trace.append(i * stride, stride, is_write)
        else:
            trace = []
            for i in range(n):
                is_write = writes_every > 0 and (i % writes_every == 0)
                trace.append(MemoryRequest(address=i * stride, size=stride, is_write=is_write))
        result = self.run_trace(trace)
        return result.bandwidth_gbps(self.dram.timing.freq_mhz, self.layout.burst_bytes)
