"""FR-FCFS memory controller.

Schedules a request stream onto :class:`repro.mem.dram.DramChip` with the
classic First-Ready, First-Come-First-Served policy: among queued
requests, prefer row-buffer hits; break ties by age. Requests larger than
one burst are split into per-burst sub-requests.

The controller is used two ways:

* **event-driven**: :meth:`run_trace` times an explicit request list —
  used by tests, microbenches, and bandwidth characterization;
* **characterization**: :meth:`effective_bandwidth_gbps` measures
  sustainable bandwidth for a synthetic streaming mix, which the
  analytical layer-performance model uses as its bandwidth input
  (see :mod:`repro.accel.accelerator`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Union

from repro import perf
from repro.mem.batch import RequestBatch
from repro.mem.dram import CMD_DATA_COUPLING, DramChip, DDR4_2400, DramTiming
from repro.mem.layout import AddressLayout
from repro.mem.trace import MemoryRequest, TraceStats

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


@dataclass
class ControllerResult:
    """Outcome of timing one trace."""

    cycles: int
    requests: int
    bursts: int
    stats: TraceStats

    def bandwidth_gbps(self, freq_mhz: float, burst_bytes: int = 64) -> float:
        if self.cycles == 0:
            return 0.0
        bytes_moved = self.bursts * burst_bytes
        seconds = self.cycles / (freq_mhz * 1e6)
        return bytes_moved / seconds / 1e9


class MemoryController:
    """FR-FCFS over a single channel."""

    def __init__(self, timing: DramTiming = DDR4_2400, layout: AddressLayout = None,
                 queue_depth: int = 32):
        self.layout = layout or AddressLayout()
        self.dram = DramChip(timing, self.layout)
        self.queue_depth = queue_depth

    def _split_bursts(self, request: MemoryRequest) -> Iterable[tuple]:
        """Yield (address, is_write) per burst covering the request."""
        burst = self.layout.burst_bytes
        start = (request.address // burst) * burst
        end = request.address + request.size
        addr = start
        while addr < end:
            yield (addr, request.is_write)
            addr += burst

    def run_trace(self, trace: Union[List[MemoryRequest], RequestBatch]) -> ControllerResult:
        """Time an entire trace; returns total cycles and statistics.

        Accepts either a ``MemoryRequest`` list (the scalar reference
        path below) or a :class:`RequestBatch` (routed to
        :meth:`run_batch`); both produce identical results.
        """
        if isinstance(trace, RequestBatch):
            return self.run_batch(trace)
        stats = TraceStats()
        pending = deque()
        for req in trace:
            stats.add(req)
            for burst in self._split_bursts(req):
                pending.append(burst)

        cycle = 0
        last_data_end = 0
        bursts = 0
        window = deque()
        while pending or window:
            while pending and len(window) < self.queue_depth:
                window.append(pending.popleft())
            # FR-FCFS: first row hit in the window, else the oldest
            chosen = None
            for i, (addr, _w) in enumerate(window):
                bank, row, _col = self.layout.decompose(addr)
                if self.dram.open_row_of(bank) == row:
                    chosen = i
                    break
            if chosen is None:
                chosen = 0
            addr, is_write = window[chosen]
            del window[chosen]
            cycle, data_end = self.dram.access(addr, is_write, cycle)
            last_data_end = max(last_data_end, data_end)
            bursts += 1
        total = max(cycle, last_data_end)
        return ControllerResult(cycles=total, requests=len(trace), bursts=bursts, stats=stats)

    def _expand_bursts_soa(self, batch: RequestBatch):
        """Per-burst (is_write, bank, row, run_end) lists for a batch,
        decomposed up front — vectorized when numpy is available.
        ``run_end[i]`` is the exclusive end of the maximal stretch of
        consecutive bursts sharing burst ``i``'s (bank, row): the
        schedule loop services whole row-hit runs from it without
        rescanning the window per burst (``None`` without numpy)."""
        burst = self.layout.burst_bytes
        cpr = self.layout.columns_per_row
        banks = self.layout.banks
        if _np is not None and len(batch):
            addr = _np.frombuffer(batch.address, dtype=_np.int64)
            size = _np.frombuffer(batch.size, dtype=_np.int64)
            start_burst = addr // burst
            counts = (addr + size - 1) // burst - start_burst + 1
            total = int(counts.sum())
            starts = _np.repeat(start_burst, counts)
            ends = _np.cumsum(counts)
            ramp = _np.arange(total, dtype=_np.int64) - _np.repeat(ends - counts, counts)
            burst_index = starts + ramp
            rest = burst_index // cpr
            bank_arr = rest % banks
            row_arr = rest // banks
            write_arr = _np.repeat(
                _np.frombuffer(batch.is_write, dtype=_np.int8), counts
            )
            boundary = _np.empty(total, dtype=bool)
            boundary[-1] = True
            boundary[:-1] = (bank_arr[1:] != bank_arr[:-1]) | (row_arr[1:] != row_arr[:-1])
            run_ends = _np.flatnonzero(boundary) + 1
            run_end = _np.repeat(
                run_ends, _np.diff(_np.concatenate(([0], run_ends))))
            return (write_arr.tolist(), bank_arr.tolist(), row_arr.tolist(),
                    run_end.tolist())
        writes, bank_list, row_list = [], [], []
        decompose = self.layout.decompose
        for address, size, is_write in zip(batch.address, batch.size, batch.is_write):
            first = (address // burst) * burst
            end = address + size
            a = first
            while a < end:
                bank, row, _col = decompose(a)
                writes.append(is_write)
                bank_list.append(bank)
                row_list.append(row)
                a += burst
        return writes, bank_list, row_list, None

    def run_batch(self, batch: RequestBatch) -> ControllerResult:
        """Time a :class:`RequestBatch` — same FR-FCFS schedule and
        cycle accounting as :meth:`run_trace`, but burst expansion and
        address decomposition happen once, vectorized, and the schedule
        loop services whole row-hit runs at a time (see
        :class:`ControllerSession`, which owns the loop; this method is
        the one-shot feed + finish)."""
        session = ControllerSession(self)
        session.feed(batch)
        return session.finish()

    def session(self) -> "ControllerSession":
        """Open a streaming run over this controller's DRAM state."""
        return ControllerSession(self)

    def effective_bandwidth_gbps(self, nbytes: int = 1 << 20, write_fraction: float = 0.3,
                                 stride: int = 64) -> float:
        """Measure sustainable bandwidth with a streaming read/write mix
        (the access shape of a DNN accelerator fetching tiles)."""
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        # deliberately keeps the historical int(1/f) cadence (33% writes
        # for f=0.3) rather than the generators' exact write mask: this
        # mix calibrates the analytic bandwidth model, and changing it
        # would move the pinned Figure-3 goldens
        writes_every = int(1 / write_fraction) if write_fraction > 0 else 0
        n = nbytes // stride
        if perf.fast_enabled():
            trace = RequestBatch()
            for i in range(n):
                is_write = writes_every > 0 and (i % writes_every == 0)
                trace.append(i * stride, stride, is_write)
        else:
            trace = []
            for i in range(n):
                is_write = writes_every > 0 and (i % writes_every == 0)
                trace.append(MemoryRequest(address=i * stride, size=stride, is_write=is_write))
        result = self.run_trace(trace)
        return result.bandwidth_gbps(self.dram.timing.freq_mhz, self.layout.burst_bytes)


class ControllerSession:
    """A resumable FR-FCFS run: feed successive :class:`RequestBatch`
    chunks, get the **bit-identical** schedule of one monolithic
    :meth:`MemoryController.run_batch` over their concatenation.

    The monolithic loop's only cross-request state is the DRAM timing
    state (owned by the controller, which persists anyway) plus the
    scheduling window. The session therefore schedules only while the
    window can be held at full depth; once a chunk cannot refill it,
    the un-issued window residue — out-of-order leftovers first, then
    the FIFO tail, i.e. exactly the window in age order — is carried
    as burst descriptors and replayed ahead of the next chunk's bursts.
    Every scheduling decision is thus taken with the same window
    contents in the same order as the monolithic run, so cycles,
    bursts, per-bank state, and DRAM stats all match exactly (the
    pipeline-equivalence property suite asserts this across chunk
    sizes, including chunk seams that split a row-hit run).

    Within a chunk the loop is the one :meth:`run_batch` always ran:
    row-hit runs serviced wholesale with a closed-form bus-bound jump
    between refreshes on the fast path, the plain windowed reference
    loop under ``REPRO_SCALAR=1``.
    """

    def __init__(self, controller: MemoryController):
        self.controller = controller
        self._stats = TraceStats()
        self._requests = 0
        self._bursts = 0
        self._cycle = 0
        self._last_data_end = 0
        self._run_hits = 0
        # window residue carried across chunks (burst descriptors in
        # window/age order: leftovers first, then the FIFO tail)
        self._carry_write: List[int] = []
        self._carry_bank: List[int] = []
        self._carry_row: List[int] = []
        self._leftover_hit_possible = True
        self._result = None

    def feed(self, batch: RequestBatch) -> None:
        """Append one chunk to the stream and schedule as far as the
        window allows."""
        if self._result is not None:
            raise RuntimeError("session already finished")
        if not len(batch):
            return
        self._stats.merge(batch.stats())
        self._requests += len(batch)
        writes, banks, rows, run_end = self.controller._expand_bursts_soa(batch)
        self._schedule(writes, banks, rows, run_end, final=False)

    def finish(self) -> ControllerResult:
        """Drain the window and return the whole stream's result."""
        if self._result is None:
            self._schedule([], [], [], None, final=True)
            self.controller.dram.stats["row_hits"] += self._run_hits
            self._run_hits = 0
            self._result = ControllerResult(
                cycles=max(self._cycle, self._last_data_end),
                requests=self._requests, bursts=self._bursts, stats=self._stats)
        return self._result

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """The session's complete mid-stream state, including the DRAM
        chip it schedules onto. Captured only at chunk seams, where the
        carried window residue is < queue_depth burst descriptors — a
        checkpoint stays a few KB regardless of trace length."""
        if self._result is not None:
            raise RuntimeError("session already finished")
        return {
            "stats": self._stats.state_dict(),
            "requests": self._requests,
            "bursts": self._bursts,
            "cycle": self._cycle,
            "last_data_end": self._last_data_end,
            "run_hits": self._run_hits,
            "carry_write": list(self._carry_write),
            "carry_bank": list(self._carry_bank),
            "carry_row": list(self._carry_row),
            "leftover_hit_possible": self._leftover_hit_possible,
            "dram": self.controller.dram.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._stats = TraceStats()
        self._stats.load_state(state["stats"])
        self._requests = int(state["requests"])
        self._bursts = int(state["bursts"])
        self._cycle = int(state["cycle"])
        self._last_data_end = int(state["last_data_end"])
        self._run_hits = int(state["run_hits"])
        self._carry_write = [int(v) for v in state["carry_write"]]
        self._carry_bank = [int(v) for v in state["carry_bank"]]
        self._carry_row = [int(v) for v in state["carry_row"]]
        self._leftover_hit_possible = bool(state["leftover_hit_possible"])
        self._result = None
        self.controller.dram.load_state(state["dram"])

    @staticmethod
    def _run_ends(bank_list, row_list):
        """Recompute row-hit run ends over carried + fresh bursts (the
        seam may fuse a split run back together)."""
        bank_arr = _np.asarray(bank_list, dtype=_np.int64)
        row_arr = _np.asarray(row_list, dtype=_np.int64)
        boundary = _np.empty(len(bank_arr), dtype=bool)
        boundary[-1] = True
        boundary[:-1] = (bank_arr[1:] != bank_arr[:-1]) | (row_arr[1:] != row_arr[:-1])
        run_ends = _np.flatnonzero(boundary) + 1
        return _np.repeat(run_ends,
                          _np.diff(_np.concatenate(([0], run_ends)))).tolist()

    def _schedule(self, writes, bank_list, row_list, run_end, final: bool) -> None:
        ctrl = self.controller
        if self._carry_write:
            writes = self._carry_write + writes
            bank_list = self._carry_bank + bank_list
            row_list = self._carry_row + row_list
            run_end = None  # recomputed below: the seam may fuse runs
            self._carry_write, self._carry_bank, self._carry_row = [], [], []
        n = len(writes)
        if not n:
            return
        depth = ctrl.queue_depth
        if not final and n < depth:
            # the window cannot fill yet: every burst carries forward
            self._carry_write = list(writes)
            self._carry_bank = list(bank_list)
            self._carry_row = list(row_list)
            return
        dram = ctrl.dram
        dram_banks = dram._banks  # the scan needs raw open-row state
        access = dram.access_decomposed
        cycle = self._cycle
        last_data_end = self._last_data_end
        bursts = 0

        # REPRO_SCALAR drops even the batch entry point to the plain
        # windowed reference loop (the escape hatch for bisecting a
        # suspected run-servicing bug)
        if run_end is None and _np is not None and perf.fast_enabled():
            run_end = self._run_ends(bank_list, row_list)
        if run_end is None or not perf.fast_enabled():
            window = deque()
            head = 0
            while head < n or window:
                while head < n and len(window) < depth:
                    window.append(head)
                    head += 1
                if not final and len(window) < depth:
                    break  # refill exhausted: pause until the next chunk
                chosen_pos = None
                for pos, j in enumerate(window):
                    if dram_banks[bank_list[j]].open_row == row_list[j]:
                        chosen_pos = pos
                        break
                if chosen_pos is None:
                    chosen_pos = 0
                j = window[chosen_pos]
                del window[chosen_pos]
                cycle, data_end = access(bank_list[j], row_list[j],
                                         bool(writes[j]), cycle)
                if data_end > last_data_end:
                    last_data_end = data_end
                bursts += 1
            residue = list(window)
            self._save(writes, bank_list, row_list, residue, cycle,
                       last_data_end, bursts)
            return

        t = dram.timing
        tRCD = t.tRCD
        tCL = t.tCL
        tCWL = t.tCWL
        tBL = t.tBL
        slot = max(t.tBL, t.tCCD)  # data-bus spacing between bursts
        couple = CMD_DATA_COUPLING
        # the closed form needs CAS to hide inside the command/data
        # coupling window (true for every DDR4-class timing)
        jumpable = tCL <= couple + slot and tCWL <= couple + slot
        run_hits = 0
        leftovers: List[int] = []  # out-of-order window residue, ascending
        # open rows change only on miss/conflict accesses and refreshes,
        # so once a scan proves no leftover hits, the result stands until
        # one of those happens — the scan is skipped in between
        leftover_hit_possible = self._leftover_hit_possible
        tail_lo = 0  # contiguous FIFO tail [tail_lo, tail_hi)
        while leftovers or tail_lo < n:
            if not final and len(leftovers) + (n - tail_lo) < depth:
                break  # the window can no longer fill: pause here
            # FR-FCFS: the first row hit in window order wins, and
            # leftovers precede the FIFO tail
            j = -1
            pre_hit = True
            if leftovers and leftover_hit_possible:
                for pos, candidate in enumerate(leftovers):
                    if dram_banks[bank_list[candidate]].open_row == row_list[candidate]:
                        j = candidate
                        del leftovers[pos]
                        break
                else:
                    leftover_hit_possible = False
            if j < 0 and tail_lo < n:
                j0 = tail_lo
                bank = dram_banks[bank_list[j0]]
                if bank.open_row == row_list[j0]:
                    # service the whole row-hit run from the FIFO head
                    stop = run_end[j0]
                    next_refresh = dram._next_refresh
                    bus_free = dram._bus_free_at
                    act_rcd = bank.activated_at + tRCD
                    data_end = 0
                    i = tail_lo
                    while i < stop:
                        if cycle >= next_refresh:
                            break  # generic step replays this burst
                        col_issue = cycle if cycle > act_rcd else act_rcd
                        ready = col_issue + (tCWL if writes[i] else tCL)
                        data_start = ready if ready > bus_free else bus_free
                        data_end = data_start + tBL
                        bus_free = data_start + slot
                        stall = data_start - couple
                        nc = cycle + 1
                        cycle = nc if nc > stall else stall
                        i += 1
                        if (i < stop and jumpable and cycle == stall
                                and cycle >= act_rcd):
                            # bus-bound steady state: every further hit
                            # adds one bus slot; jump to the refresh
                            # horizon in O(1)
                            horizon = (next_refresh + couple - 1
                                       - data_start) // slot + 1
                            m = stop - i
                            if horizon < m:
                                m = horizon
                            if m > 0:
                                data_start += m * slot
                                data_end = data_start + tBL
                                bus_free = data_start + slot
                                cycle = data_start - couple
                                i += m
                    serviced = i - tail_lo
                    if serviced:
                        run_hits += serviced
                        bursts += serviced
                        bank.last_data_end = data_end
                        bank.last_was_write = bool(writes[i - 1])
                        dram._bus_free_at = bus_free
                        if data_end > last_data_end:
                            last_data_end = data_end
                        tail_lo = i
                        continue
                    # refresh due before the first hit: service the head
                    # burst through the full model (it is still the first
                    # hit in window order — no leftover hits exist here)
                    j = j0
                    tail_lo += 1
            if j < 0:
                # no leftover hit and the head is not a hit: scan the
                # FIFO tail for the first hit, else take the oldest
                tail_hi = tail_lo + depth - len(leftovers)
                if tail_hi > n:
                    tail_hi = n
                for candidate in range(tail_lo, tail_hi):
                    if dram_banks[bank_list[candidate]].open_row == row_list[candidate]:
                        j = candidate
                        leftovers.extend(range(tail_lo, candidate))
                        tail_lo = candidate + 1
                        break
                if j < 0:
                    pre_hit = False  # no hit anywhere: oldest, row opens
                    if leftovers:
                        j = leftovers.pop(0)
                    else:
                        j = tail_lo
                        tail_lo += 1
            refresh_mark = dram._next_refresh
            cycle, data_end = access(bank_list[j], row_list[j], bool(writes[j]), cycle)
            if not pre_hit or dram._next_refresh != refresh_mark:
                leftover_hit_possible = True
            if data_end > last_data_end:
                last_data_end = data_end
            bursts += 1
        self._run_hits += run_hits
        self._leftover_hit_possible = leftover_hit_possible
        residue = leftovers + list(range(tail_lo, n))
        self._save(writes, bank_list, row_list, residue, cycle,
                   last_data_end, bursts)

    def _save(self, writes, bank_list, row_list, residue, cycle,
              last_data_end, bursts) -> None:
        """Persist loop state; ``residue`` lists the un-issued burst
        indices in window/age order (empty on a final drain)."""
        self._carry_write = [writes[j] for j in residue]
        self._carry_bank = [bank_list[j] for j in residue]
        self._carry_row = [row_list[j] for j in residue]
        self._cycle = cycle
        self._last_data_end = last_data_end
        self._bursts += bursts
