"""Distributed sweep execution: coordinator/worker lease protocol.

See :mod:`repro.distributed.protocol` for the wire contract,
:mod:`repro.distributed.coordinator` for the lease/commit state
machine and the ``repro sweep --distributed`` driver, and
:mod:`repro.distributed.worker` for the ``repro work`` loop.
"""

from .client import Backoff, CoordinatorClient, CoordinatorUnreachable
from .coordinator import (
    LOCAL_WORKER,
    CoordinatorServer,
    CoordinatorState,
    SweepCoordinator,
    default_unit_jobs,
)
from .protocol import WIRE_VERSION, rows_digest, unit_key
from .worker import Worker, WorkerConfig

__all__ = [
    "Backoff",
    "CoordinatorClient",
    "CoordinatorUnreachable",
    "CoordinatorServer",
    "CoordinatorState",
    "SweepCoordinator",
    "LOCAL_WORKER",
    "default_unit_jobs",
    "WIRE_VERSION",
    "rows_digest",
    "unit_key",
    "Worker",
    "WorkerConfig",
]
