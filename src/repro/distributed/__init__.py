"""Distributed sweep and pipeline execution: coordinator/worker lease
protocol with checkpoint migration and a coordinator-served result
cache.

See :mod:`repro.distributed.protocol` for the wire contract,
:mod:`repro.distributed.coordinator` for the lease/commit state
machine (including ``/v1/checkpoint`` envelope migration) and the
``repro sweep --distributed`` / ``repro pipeline --distributed``
driver, and :mod:`repro.distributed.worker` for the ``repro work``
loop (pipeline units, local-cache provenance, graceful drain).
"""

from .client import Backoff, CoordinatorClient, CoordinatorUnreachable
from .coordinator import (
    DEFAULT_CHECKPOINT_EVERY,
    LOCAL_WORKER,
    PIPELINE_EXECUTOR,
    CoordinatorServer,
    CoordinatorState,
    SweepCoordinator,
    default_unit_jobs,
)
from .protocol import WIRE_VERSION, rows_digest, unit_key
from .worker import Worker, WorkerConfig

__all__ = [
    "Backoff",
    "CoordinatorClient",
    "CoordinatorUnreachable",
    "CoordinatorServer",
    "CoordinatorState",
    "SweepCoordinator",
    "LOCAL_WORKER",
    "PIPELINE_EXECUTOR",
    "DEFAULT_CHECKPOINT_EVERY",
    "default_unit_jobs",
    "WIRE_VERSION",
    "rows_digest",
    "unit_key",
    "Worker",
    "WorkerConfig",
]
