"""Distributed sweep and pipeline execution: coordinator/worker lease
protocol with checkpoint migration, a coordinator-served result cache,
and a crash-recoverable control plane (write-ahead journal + epoch-
fenced worker re-registration).

See :mod:`repro.distributed.protocol` for the wire contract,
:mod:`repro.distributed.coordinator` for the lease/commit state
machine (including ``/v1/checkpoint`` envelope migration) and the
``repro sweep --distributed`` / ``repro pipeline --distributed``
driver, :mod:`repro.distributed.journal` for the coordinator's
durable write-ahead journal (``--journal``), and
:mod:`repro.distributed.worker` for the ``repro work`` loop (pipeline
units, local-cache provenance, graceful drain, 409-driven
re-registration across coordinator restarts).
"""

from .client import (
    Backoff,
    CoordinatorClient,
    CoordinatorUnreachable,
    WorkerRejected,
)
from .coordinator import (
    DEFAULT_CHECKPOINT_EVERY,
    LOCAL_WORKER,
    PIPELINE_EXECUTOR,
    CoordinatorServer,
    CoordinatorState,
    StaleWorkerError,
    SweepCoordinator,
    default_unit_jobs,
)
from .journal import JOURNAL_VERSION, Journal, JournalError, journal_meta, replay
from .protocol import WIRE_VERSION, rows_digest, unit_key
from .worker import Worker, WorkerConfig

__all__ = [
    "Backoff",
    "CoordinatorClient",
    "CoordinatorUnreachable",
    "WorkerRejected",
    "CoordinatorServer",
    "CoordinatorState",
    "StaleWorkerError",
    "SweepCoordinator",
    "LOCAL_WORKER",
    "PIPELINE_EXECUTOR",
    "DEFAULT_CHECKPOINT_EVERY",
    "default_unit_jobs",
    "JOURNAL_VERSION",
    "Journal",
    "JournalError",
    "journal_meta",
    "replay",
    "WIRE_VERSION",
    "rows_digest",
    "unit_key",
    "Worker",
    "WorkerConfig",
]
