"""The sweep coordinator: lease/heartbeat/idempotent-commit state machine.

Three layers, separable for testing:

* :class:`CoordinatorState` — the pure protocol state machine (no
  sockets, injectable clock). Every correctness property lives here:
  lease expiry and re-dispatch, at-least-once commits made idempotent
  by digest comparison, EWMA straggler duplicate-dispatch, epoch-fenced
  rejection of workers the coordinator does not know.
* :class:`CoordinatorServer` — a ThreadingHTTPServer skin mapping the
  ``/v1/*`` endpoints onto the state machine with the service tier's
  NDJSON framing.
* :class:`SweepCoordinator` — the driver ``repro sweep --distributed``
  and ``repro pipeline --distributed`` use: shards the job list into
  content-addressed units (pipeline jobs become singleton units so a
  checkpoint envelope maps 1:1 to a unit), serves them to workers, and
  **falls back to the local pool** through the identical lease/commit
  path when no live remote worker exists — a coordinator with zero
  workers degrades to exactly `Runner.run`, it never strands the sweep.

Two robustness layers ride on the lease machinery:

* **Checkpoint migration** — a worker running a pipeline unit uploads
  each chunk-seam envelope (``/v1/checkpoint``); the envelope is
  validated (version, kind, fingerprint) and the latest one rides
  along on the unit's next lease grant, so the successor of a
  SIGKILLed worker resumes mid-unit via ``resume_from=`` instead of
  recomputing — bit-identical by the pipeline's checkpoint contract.
  A rejected (corrupt/stale) upload stores nothing: the successor
  falls back to unit start, never wrong rows.
* **Coordinator-served result cache** — before dispatching a unit the
  coordinator probes its own two-level result cache (once per unit);
  a whole-unit hit is committed internally and never leased, so a
  restarted sweep or a second fleet member re-pays nothing the fleet
  already computed (``cache_served_units`` on ``/metrics``).
* **Write-ahead journal + epochs** — with ``journal_path`` set, every
  durable transition (unit commit, accepted envelope, cache-served
  unit) is fsync'd to an append-only journal *before* the reply that
  acknowledges it (:mod:`repro.distributed.journal`). A restarted
  coordinator replays the journal — refusing a fingerprint or
  unit-key mismatch — marks journaled units done, restores the latest
  envelope per pending unit so successors still resume mid-unit, and
  bumps an **epoch** stamped on every reply. Workers from the previous
  epoch are unknown to the new incarnation: their first message is
  answered with HTTP 409 ``{"error": "unknown_worker", "epoch": N}``
  (:class:`StaleWorkerError`), which tells them to re-register rather
  than guess — implicit adoption would silently resurrect leases the
  recovery just voided.

Correctness argument (the reason distribution is unobservable in the
output): units are pure functions of their job list — the same
contract that makes the runner's chunk re-dispatch safe. A lease can
expire and the unit run twice, a result can arrive after its lease
died, a worker can answer a request the coordinator already forgot —
in every interleaving the *first structurally valid* result is
committed and all later ones are verified byte-equal (``rows_digest``)
and dropped. Rows are committed per job through
:func:`repro.experiments.runner.remember_rows`, the single cache
commit path, and reassembled in job order, so the resulting table is
bit-identical to a local run.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.checkpoint import CheckpointError, save_checkpoint, validate_envelope
from repro.experiments.cache import ResultCache, code_fingerprint
from repro.experiments.jobs import Job, canonical_json
from repro.experiments.runner import (
    JobExecutionError,
    Runner,
    recall_rows,
    remember_rows,
)
from repro.service.metrics import StreamingHistogram

from . import protocol
from .journal import Journal
from .protocol import ProtocolError, encode_event, unit_key

#: checkpoint kind pipeline units migrate (see repro.mem.pipeline)
PIPELINE_CHECKPOINT_KIND = "trace-pipeline"

#: executor whose jobs become singleton, checkpoint-migratable units
PIPELINE_EXECUTOR = "pipeline_run"

#: default chunk interval between checkpoint uploads for pipeline units
DEFAULT_CHECKPOINT_EVERY = 4

#: sentinel worker id for the coordinator's own local-pool fallback —
#: it leases and commits through the same state machine as any remote
#: worker, but never counts as "live" for degradation decisions
LOCAL_WORKER = "local"


class StaleWorkerError(ProtocolError):
    """A lease/heartbeat/commit/checkpoint arrived under a worker id
    this coordinator incarnation does not know — typically a worker
    from before a crash/restart. Carries the current epoch so the HTTP
    skin can answer the structured 409 that tells the worker to
    re-register instead of dying."""

    def __init__(self, worker: str, epoch: int):
        super().__init__(f"unknown worker {worker!r} (epoch {epoch})")
        self.worker = worker
        self.epoch = epoch


class _Unit:
    __slots__ = ("index", "key", "jobs", "rows", "digest", "leases",
                 "dispatches", "first_dispatch", "fingerprint",
                 "checkpoint", "checkpoint_cursor", "cache_probed")

    def __init__(self, index: int, key: str, jobs: List[Job],
                 fingerprint: Optional[dict] = None):
        self.index = index
        self.key = key
        self.jobs = jobs
        self.rows: Optional[List[List[dict]]] = None
        self.digest: Optional[str] = None
        #: lease_id -> (worker, deadline)
        self.leases: Dict[str, Tuple[str, float]] = {}
        self.dispatches = 0
        self.first_dispatch: Optional[float] = None
        #: expected pipeline fingerprint; None ⇒ not a pipeline unit
        self.fingerprint = fingerprint
        #: latest validated migrated envelope (cleared on commit)
        self.checkpoint: Optional[dict] = None
        self.checkpoint_cursor = -1
        self.cache_probed = False

    @property
    def done(self) -> bool:
        return self.rows is not None

    @property
    def pipeline(self) -> bool:
        return self.fingerprint is not None


class CoordinatorState:
    """Thread-safe lease/commit state machine over a fixed unit list.

    ``clock`` is injectable (monotonic seconds) so expiry tests run in
    virtual time; ``on_commit(unit_index, jobs, rows_per_job)`` fires
    exactly once per unit, under no lock contention hazards (called
    inside the state lock — keep it cheap; the SweepCoordinator uses it
    to write the result cache).
    """

    def __init__(self, units_jobs: Sequence[Sequence[Job]],
                 fingerprint: str = "",
                 lease_seconds: float = 10.0,
                 straggler_factor: Optional[float] = None,
                 poll: float = 0.5,
                 clock: Callable[[], float] = time.monotonic,
                 on_commit: Optional[Callable[[int, List[Job], List[List[dict]]], None]] = None,
                 unit_fingerprints: Optional[Sequence[Optional[dict]]] = None,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 checkpoint_dir: Optional[str] = None,
                 cache_lookup: Optional[Callable[[int], Optional[List[List[dict]]]]] = None,
                 cache_counters: Optional[Callable[[], Dict[str, int]]] = None,
                 journal_path: Optional[str] = None,
                 journal_meta: Optional[dict] = None):
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self.lease_seconds = float(lease_seconds)
        self.straggler_factor = straggler_factor
        self.poll = float(poll)
        self.clock = clock
        self.on_commit = on_commit
        self.fingerprint = fingerprint
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_dir = checkpoint_dir
        self.cache_lookup = cache_lookup
        self.cache_counters = cache_counters
        self._lock = threading.Lock()
        if unit_fingerprints is None:
            unit_fingerprints = [None] * len(units_jobs)
        if len(unit_fingerprints) != len(units_jobs):
            raise ValueError("unit_fingerprints must parallel units_jobs")
        self._units = [
            _Unit(i, unit_key(jobs, fingerprint), list(jobs), fp)
            for i, (jobs, fp) in enumerate(zip(units_jobs, unit_fingerprints))
        ]
        #: worker id -> last_seen clock reading
        self._workers: Dict[str, float] = {}
        #: worker id -> cumulative heartbeat failures it has reported
        self._heartbeat_failures: Dict[str, int] = {}
        self._remaining = len(self._units)
        self.failure: Optional[dict] = None
        self.unit_seconds = StreamingHistogram(floor=1e-3)
        self._ewma: Optional[float] = None
        self.counters: Dict[str, int] = {
            "workers_registered": 0,
            "workers_deregistered": 0,
            "lease_requests_total": 0,
            "leases_granted": 0,
            "lease_renewals": 0,
            "lease_expirations": 0,
            "leases_released": 0,
            "heartbeats_total": 0,
            "results_total": 0,
            "units_completed": 0,
            "units_local": 0,
            "duplicate_results_dropped": 0,
            "duplicate_result_mismatches": 0,
            "invalid_results": 0,
            "expired_lease_commits": 0,
            "straggler_duplicates": 0,
            "unit_failures": 0,
            "checkpoints_total": 0,
            "checkpoints_migrated": 0,
            "checkpoint_rejects": 0,
            "resumed_units": 0,
            "cache_served_units": 0,
            "worker_cache_commits": 0,
            "stale_worker_rejects": 0,
            "journal_truncated": 0,
            "journal_replayed_units": 0,
        }
        self.epoch = 0
        self._journal: Optional[Journal] = None
        if journal_path is not None:
            self._recover(journal_path, journal_meta)

    def _recover(self, journal_path: str,
                 journal_meta: Optional[dict]) -> None:
        """Open (or replay) the write-ahead journal. Journaled commits
        become done units — their workers were already acknowledged, so
        ``on_commit`` is *not* re-fired (the cache write it performs
        already happened in the previous incarnation; replaying it
        would only amplify I/O). Journaled envelopes are restored so
        the next lease grant still resumes mid-unit. In-flight leases
        are implicitly voided: this incarnation knows no workers until
        they re-register under the bumped epoch."""
        self._journal, replayed = Journal.recover(
            journal_path, fingerprint=self.fingerprint,
            unit_keys=[u.key for u in self._units],
            meta=journal_meta)
        self.epoch = self._journal.epoch
        for key in ("journal_truncated", "journal_replayed_units"):
            self.counters[key] = self._journal.counters[key]
        if replayed is None:
            return
        for index, commit in replayed.commits.items():
            unit = self._units[index]
            unit.rows = protocol.rows_from_wire(commit["rows"])
            unit.digest = commit["digest"]
            unit.cache_probed = True
            self._remaining -= 1
        for index, envelope in replayed.checkpoints.items():
            unit = self._units[index]
            if unit.done:
                continue
            cursor = envelope.get("cursor")
            unit.checkpoint = dict(envelope)
            unit.checkpoint_cursor = cursor if isinstance(cursor, int) else -1

    # -- bookkeeping (call with lock held) ---------------------------------

    def _touch(self, worker: str, now: float) -> None:
        self._workers[worker] = now

    def _require_known(self, worker: str) -> None:
        """Epoch fence: only ids minted by *this* incarnation (plus the
        local-fallback sentinel) may lease, renew, commit, or upload.
        A stale id gets a structured rejection telling it the current
        epoch — re-registering is the worker's move, adoption is not
        ours: the recovery voided its leases on purpose."""
        if worker != LOCAL_WORKER and worker not in self._workers:
            self.counters["stale_worker_rejects"] += 1
            raise StaleWorkerError(worker, self.epoch)

    def _stamp(self, reply: dict) -> dict:
        reply["epoch"] = self.epoch
        return reply

    def _expire(self, now: float) -> None:
        """Lazily reap expired leases — no timer thread; expiry is
        observed at the next state transition, which is the only time
        it can matter."""
        for unit in self._units:
            if unit.done or not unit.leases:
                continue
            dead = [lid for lid, (_, deadline) in unit.leases.items()
                    if deadline <= now]
            for lid in dead:
                del unit.leases[lid]
                self.counters["lease_expirations"] += 1

    def _grant(self, unit: _Unit, worker: str, now: float) -> dict:
        lease_id = uuid.uuid4().hex
        unit.leases[lease_id] = (worker, now + self.lease_seconds)
        unit.dispatches += 1
        if unit.first_dispatch is None:
            unit.first_dispatch = now
        self.counters["leases_granted"] += 1
        reply = {
            "event": "lease",
            "unit": unit.index,
            "key": unit.key,
            "jobs": protocol.jobs_to_wire(unit.jobs),
            "lease": lease_id,
            "lease_seconds": self.lease_seconds,
        }
        if unit.pipeline:
            reply["pipeline"] = True
            reply["checkpoint_every"] = self.checkpoint_every
            if unit.checkpoint is not None:
                # mid-unit failover: the grant carries the latest
                # migrated envelope; the holder resumes via resume_from=
                reply["checkpoint"] = unit.checkpoint
                self.counters["resumed_units"] += 1
        return reply

    def _serve_cached_locked(self) -> None:
        """Answer whole-unit cache hits before dispatching anything:
        each unprobed unit is looked up once through the coordinator's
        result cache hook and, on a hit, committed internally — it is
        never leased, so a warm restart re-pays nothing."""
        if self.cache_lookup is None:
            return
        for unit in self._units:
            if unit.done or unit.cache_probed:
                continue
            unit.cache_probed = True
            rows_per_job = self.cache_lookup(unit.index)
            if rows_per_job is None or len(rows_per_job) != len(unit.jobs):
                continue
            self._complete_locked(unit, "cache",
                                  [list(rows) for rows in rows_per_job],
                                  protocol.rows_digest(rows_per_job),
                                  self.clock(), cached=True)

    # -- protocol verbs ----------------------------------------------------

    def register(self, name: str = "", workers: int = 1) -> dict:
        now = self.clock()
        with self._lock:
            worker_id = f"{name or 'worker'}-{uuid.uuid4().hex[:8]}"
            self.counters["workers_registered"] += 1
            self._touch(worker_id, now)
            return self._stamp({"event": "registered", "worker": worker_id,
                                "lease_seconds": self.lease_seconds,
                                "poll": self.poll})

    def lease(self, worker: str) -> dict:
        now = self.clock()
        with self._lock:
            self.counters["lease_requests_total"] += 1
            self._require_known(worker)
            self._touch(worker, now)
            self._expire(now)
            self._serve_cached_locked()
            if self.failure is not None or self._remaining == 0:
                return self._stamp({"event": "done"})
            for unit in self._units:
                if not unit.done and not unit.leases:
                    return self._stamp(self._grant(unit, worker, now))
            straggler = self._pick_straggler(worker, now)
            if straggler is not None:
                self.counters["straggler_duplicates"] += 1
                return self._stamp(self._grant(straggler, worker, now))
            return self._stamp({"event": "wait", "poll": self.poll})

    def _pick_straggler(self, worker: str, now: float) -> Optional[_Unit]:
        """The cross-machine analogue of the runner's straggler
        duplicates: when everything is leased but a unit has been
        outstanding longer than ``factor ×`` the EWMA of completed-unit
        durations, dispatch a second copy (never to the current holder,
        never more than two leases). First result wins; the loser is a
        verified duplicate."""
        if self.straggler_factor is None or self._ewma is None:
            return None
        candidate: Optional[_Unit] = None
        candidate_age = 0.0
        for unit in self._units:
            if unit.done or len(unit.leases) != 1:
                continue
            if any(holder == worker for holder, _ in unit.leases.values()):
                continue
            first = unit.first_dispatch if unit.first_dispatch is not None else now
            age = now - first
            if age > self.straggler_factor * self._ewma and age > candidate_age:
                candidate, candidate_age = unit, age
        return candidate

    def heartbeat(self, worker: str, lease_ids: Sequence[str],
                  failures: int = 0) -> dict:
        now = self.clock()
        with self._lock:
            self.counters["heartbeats_total"] += 1
            self._require_known(worker)
            self._touch(worker, now)
            if failures:
                # the worker self-reports its cumulative heartbeat-thread
                # error count; surfaced per worker in snapshot() so a
                # flaky link is visible from the coordinator side too
                self._heartbeat_failures[worker] = int(failures)
            self._expire(now)
            renewed, lost = [], []
            wanted = set(lease_ids)
            for unit in self._units:
                if unit.done:
                    continue
                for lid in list(unit.leases):
                    if lid in wanted:
                        holder, _ = unit.leases[lid]
                        unit.leases[lid] = (holder, now + self.lease_seconds)
                        renewed.append(lid)
                        wanted.discard(lid)
            lost = sorted(wanted)  # expired (and possibly re-dispatched)
            self.counters["lease_renewals"] += len(renewed)
            return self._stamp({"event": "heartbeat", "renewed": renewed,
                                "lost": lost})

    def _complete_locked(self, unit: _Unit, worker: str,
                         rows_per_job: List[List[dict]], digest: str,
                         now: float, cached: bool = False) -> None:
        """The single unit-completion path (call with lock held): set
        the rows, clear leases and any migrated envelope, and account.
        Cache-served completions skip the EWMA (no dispatch happened)
        and the ``on_commit`` hook (the rows came *from* the cache —
        rewriting them would be pure amplification).

        With a journal configured the commit record is fsync'd *before*
        any in-memory state flips: once the caller's reply leaves this
        machine the commit is guaranteed to survive a coordinator
        restart — write-ahead, not write-behind."""
        if self._journal is not None:
            self._journal.append_commit(
                unit.index, protocol.rows_to_wire(rows_per_job), digest,
                worker, cached=cached)
        unit.rows = rows_per_job
        unit.digest = digest
        unit.leases.clear()
        unit.checkpoint = None
        self._remaining -= 1
        self.counters["units_completed"] += 1
        if worker == LOCAL_WORKER:
            self.counters["units_local"] += 1
        if cached:
            self.counters["cache_served_units"] += 1
            return
        if unit.first_dispatch is not None:
            elapsed = max(1e-6, now - unit.first_dispatch)
            self.unit_seconds.observe(elapsed)
            self._ewma = (elapsed if self._ewma is None
                          else 0.7 * self._ewma + 0.3 * elapsed)
        if self.on_commit is not None:
            self.on_commit(unit.index, unit.jobs, rows_per_job)

    def commit(self, worker: str, unit_index: int, key: str,
               lease_id: Optional[str],
               rows_per_job: List[List[dict]],
               provenance: str = "computed") -> dict:
        now = self.clock()
        with self._lock:
            self.counters["results_total"] += 1
            self._require_known(worker)
            self._touch(worker, now)
            self._expire(now)
            if not 0 <= unit_index < len(self._units):
                self.counters["invalid_results"] += 1
                raise ProtocolError(f"unknown unit index {unit_index}")
            unit = self._units[unit_index]
            if key != unit.key:
                # a worker computed against different code/jobs — its
                # rows are not this unit's rows, whatever it believes
                self.counters["invalid_results"] += 1
                raise ProtocolError(
                    f"unit {unit_index} key mismatch (stale worker?)")
            if len(rows_per_job) != len(unit.jobs):
                self.counters["invalid_results"] += 1
                raise ProtocolError(
                    f"unit {unit_index} expects {len(unit.jobs)} row lists, "
                    f"got {len(rows_per_job)}")
            digest = protocol.rows_digest(rows_per_job)
            if unit.done:
                # at-least-once made safe: the unit is a pure function
                # of its (content-addressed) jobs, so a second result is
                # either byte-identical — dropped — or evidence of a
                # broken worker, counted and *still* dropped (first
                # valid result won)
                if digest == unit.digest:
                    self.counters["duplicate_results_dropped"] += 1
                else:
                    self.counters["duplicate_result_mismatches"] += 1
                return self._stamp({"event": "duplicate",
                                    "unit": unit_index})
            if lease_id is None or lease_id not in unit.leases:
                # the lease expired (or the commit raced expiry) but the
                # rows are valid for this key — committing them is
                # strictly better than recomputing
                self.counters["expired_lease_commits"] += 1
            if provenance == "cache_hit":
                self.counters["worker_cache_commits"] += 1
            self._complete_locked(unit, worker, rows_per_job, digest, now)
            return self._stamp({"event": "committed", "unit": unit_index})

    def checkpoint(self, worker: str, unit_index: int, key: str,
                   lease_id: str, state: dict) -> dict:
        """Migrate a pipeline unit's chunk-seam envelope. The envelope
        must validate (version, kind, fingerprint-vs-unit, integer
        cursor) before it is stored — a corrupt upload is rejected with
        a :class:`ProtocolError` and stores *nothing*, so a successor
        falls back to unit start rather than resuming poison. Stored
        envelopes advance monotonically by cursor (a straggler's older
        seam never overwrites a fresher one) and an accepted upload
        renews the uploading lease: the upload itself proves liveness."""
        now = self.clock()
        with self._lock:
            self.counters["checkpoints_total"] += 1
            self._require_known(worker)
            self._touch(worker, now)
            self._expire(now)
            if not 0 <= unit_index < len(self._units):
                self.counters["checkpoint_rejects"] += 1
                raise ProtocolError(f"unknown unit index {unit_index}")
            unit = self._units[unit_index]
            if key != unit.key:
                self.counters["checkpoint_rejects"] += 1
                raise ProtocolError(
                    f"unit {unit_index} key mismatch (stale worker?)")
            if unit.done:
                # the unit already committed; the envelope is useless
                return self._stamp({"event": "stale", "unit": unit_index})
            if not unit.pipeline:
                self.counters["checkpoint_rejects"] += 1
                raise ProtocolError(
                    f"unit {unit_index} is not a pipeline unit")
            try:
                validate_envelope(state, kind=PIPELINE_CHECKPOINT_KIND,
                                  source="migrated checkpoint")
            except CheckpointError as exc:
                self.counters["checkpoint_rejects"] += 1
                raise ProtocolError(str(exc)) from None
            if canonical_json(state.get("fingerprint")) != canonical_json(unit.fingerprint):
                self.counters["checkpoint_rejects"] += 1
                raise ProtocolError(
                    f"migrated checkpoint fingerprint does not match "
                    f"unit {unit_index}")
            cursor = state.get("cursor")
            if not isinstance(cursor, int) or cursor < 0:
                self.counters["checkpoint_rejects"] += 1
                raise ProtocolError(
                    "migrated checkpoint has no usable cursor")
            if cursor <= unit.checkpoint_cursor:
                return self._stamp({"event": "stale", "unit": unit_index,
                                    "cursor": unit.checkpoint_cursor})
            if self._journal is not None:
                # durable before accepted: a restart re-offers this unit
                # with this envelope riding the re-grant, so the chunks
                # behind the seam are never recomputed
                self._journal.append_checkpoint(unit_index, cursor,
                                                dict(state))
            unit.checkpoint = dict(state)
            unit.checkpoint_cursor = cursor
            self.counters["checkpoints_migrated"] += 1
            if self.checkpoint_dir is not None:
                # crash-atomic persistence: a coordinator restart can
                # hand the envelope to tooling (same discipline as the
                # pipeline's own on-disk checkpoints)
                save_checkpoint(
                    os.path.join(self.checkpoint_dir,
                                 f"unit-{unit_index:05d}.json"), state)
            if lease_id in unit.leases:
                holder, _ = unit.leases[lease_id]
                unit.leases[lease_id] = (holder, now + self.lease_seconds)
            return self._stamp({"event": "checkpointed", "unit": unit_index,
                                "cursor": cursor})

    def deregister(self, worker: str) -> dict:
        """Graceful drain: release every lease the worker still holds
        (immediate re-dispatch, no waiting out the term) and forget its
        heartbeat, so ``live_remote_workers`` drops right away."""
        with self._lock:
            released = 0
            for unit in self._units:
                if unit.done:
                    continue
                held = [lid for lid, (holder, _) in unit.leases.items()
                        if holder == worker]
                for lid in held:
                    del unit.leases[lid]
                    released += 1
            self.counters["leases_released"] += released
            self.counters["workers_deregistered"] += 1
            self._workers.pop(worker, None)
            return self._stamp({"event": "deregistered", "worker": worker,
                                "released": released})

    def fail(self, worker: str, unit_index: int, key: str,
             error: dict) -> dict:
        """A worker reports a *deterministic* job failure (the job
        itself raised — not a worker death). Re-dispatching would fail
        identically, so the sweep fails fast, exactly as a local run
        would."""
        now = self.clock()
        with self._lock:
            self.counters["results_total"] += 1
            self.counters["unit_failures"] += 1
            self._touch(worker, now)
            if self.failure is None:
                self.failure = dict(error)
            return self._stamp({"event": "failed", "unit": unit_index})

    # -- observation -------------------------------------------------------

    @property
    def done(self) -> bool:
        with self._lock:
            return self._remaining == 0 or self.failure is not None

    def live_remote_workers(self, now: Optional[float] = None) -> int:
        """Workers seen recently enough to plausibly still hold the
        coordinator in view — within two lease terms (floor 3 s so
        sub-second test leases don't flap). The local fallback sentinel
        never counts: it must not suppress itself."""
        if now is None:
            now = self.clock()
        horizon = max(2.0 * self.lease_seconds, 3.0)
        with self._lock:
            return sum(1 for worker, seen in self._workers.items()
                       if worker != LOCAL_WORKER and now - seen <= horizon)

    def results(self) -> List[List[List[dict]]]:
        """Per-unit rows-per-job, in unit order; raises if incomplete."""
        with self._lock:
            missing = [u.index for u in self._units if not u.done]
            if missing:
                raise RuntimeError(f"units not complete: {missing}")
            return [u.rows for u in self._units]  # type: ignore[misc]

    def snapshot(self) -> dict:
        now = self.clock()
        live = self.live_remote_workers(now)
        with self._lock:
            outstanding = sum(len(u.leases) for u in self._units)
            held: Dict[str, int] = {}
            for unit in self._units:
                for holder, _ in unit.leases.values():
                    held[holder] = held.get(holder, 0) + 1
            snap = {
                "counters": dict(self.counters),
                "epoch": self.epoch,
                "units_total": len(self._units),
                "units_remaining": self._remaining,
                "leases_outstanding": outstanding,
                "live_workers": live,
                # per-worker health: a partitioned worker shows a large
                # heartbeat age *while still holding leases*; an idle
                # one shows a small age and zero leases
                "workers": [
                    {"worker": worker,
                     "last_seen_age_seconds": round(max(0.0, now - seen), 3),
                     "held_leases": held.get(worker, 0),
                     "heartbeat_failures":
                         self._heartbeat_failures.get(worker, 0)}
                    for worker, seen in sorted(self._workers.items())
                ],
                "redispatches": max(
                    0, self.counters["leases_granted"] - len(self._units)),
                "unit_seconds": {
                    "count": self.unit_seconds.count,
                    "p50": self.unit_seconds.percentile(0.5),
                    "p99": self.unit_seconds.percentile(0.99),
                    "max": self.unit_seconds.max,
                },
                "failed": self.failure is not None,
            }
            if self.cache_counters is not None:
                snap["cache"] = dict(self.cache_counters())
        return snap

    def close(self) -> None:
        """Release the journal handle (final fsync included). The file
        itself is left in place — deleting it is the *caller's* call,
        made only after the results have actually been delivered."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None


# -- HTTP skin -------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-coordinator/1"

    def log_message(self, *args):  # noqa: D102 — silence per-request lines
        pass

    def _reply(self, status: int, event: dict) -> None:
        body = encode_event(event)
        self.send_response(status)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        return protocol.decode_event(raw)

    def do_GET(self):  # noqa: N802 — http.server API
        state: CoordinatorState = self.server.state  # type: ignore[attr-defined]
        if self.path == "/metrics":
            self._reply(200, {"event": "metrics", **state.snapshot()})
        elif self.path == "/healthz":
            self._reply(200, {"event": "ok", "done": state.done})
        else:
            self._reply(404, {"event": "error", "error": "unknown path"})

    def do_POST(self):  # noqa: N802 — http.server API
        state: CoordinatorState = self.server.state  # type: ignore[attr-defined]
        try:
            body = self._read_body()
            if self.path == "/v1/register":
                req = protocol.parse_register(body)
                self._reply(200, state.register(req["name"], req["workers"]))
            elif self.path == "/v1/lease":
                worker = protocol.parse_lease_request(body)
                self._reply(200, state.lease(worker))
            elif self.path == "/v1/heartbeat":
                worker, leases, failures = protocol.parse_heartbeat(body)
                self._reply(200, state.heartbeat(worker, leases, failures))
            elif self.path == "/v1/result":
                req = protocol.parse_result(body)
                if req["error"] is not None:
                    self._reply(200, state.fail(
                        req["worker"], req["unit"], req["key"], req["error"]))
                else:
                    self._reply(200, state.commit(
                        req["worker"], req["unit"], req["key"],
                        req["lease"], req["rows"], req["provenance"]))
            elif self.path == "/v1/checkpoint":
                req = protocol.parse_checkpoint(body)
                self._reply(200, state.checkpoint(
                    req["worker"], req["unit"], req["key"],
                    req["lease"], req["state"]))
            elif self.path == "/v1/deregister":
                worker = protocol.parse_deregister(body)
                self._reply(200, state.deregister(worker))
            else:
                self._reply(404, {"event": "error", "error": "unknown path"})
        except StaleWorkerError as exc:
            # structured, machine-actionable: 409 + the current epoch
            # tells a worker from a previous incarnation to re-register
            # rather than die on an opaque protocol error
            self._reply(409, {"event": "error", "error": "unknown_worker",
                              "worker": exc.worker, "epoch": exc.epoch})
        except ProtocolError as exc:
            self._reply(400, {"event": "error", "error": str(exc)})
        except Exception as exc:  # pragma: no cover — defensive
            self._reply(500, {"event": "error", "error": str(exc)})


class CoordinatorServer:
    """A :class:`CoordinatorState` behind a threaded HTTP listener."""

    def __init__(self, state: CoordinatorState, host: str = "127.0.0.1",
                 port: int = 0):
        self.state = state
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.state = state  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-coordinator", daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "CoordinatorServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- the sweep driver ------------------------------------------------------


def default_unit_jobs(n_jobs: int) -> int:
    """Unit granularity: aim for ~32 units (enough slices that losing a
    worker loses little work and stragglers can be duplicated), but
    never fewer than 1 job or more than 16 per unit."""
    if n_jobs <= 0:
        return 1
    return max(1, min(16, -(-n_jobs // 32)))


class SweepCoordinator:
    """Drives one sweep's job list to completion over remote workers,
    with the local pool as the degradation floor.

    The flow mirrors :meth:`Runner.run` exactly: every job is sharded
    into a content-addressed unit (``pipeline_run`` jobs as singleton,
    checkpoint-migratable units); whole-unit cache hits are answered by
    the coordinator at lease time through the same two-level lookup a
    local run uses and never dispatched; every committed row goes
    through :func:`remember_rows` (both cache levels); the final
    rows-per-job list is assembled in job order. Distribution is
    unobservable in the output by construction.
    """

    def __init__(self, jobs: Sequence[Job],
                 cache: Optional[ResultCache] = None,
                 local_workers: Optional[int] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 unit_jobs: Optional[int] = None,
                 lease_seconds: float = 10.0,
                 straggler_factor: Optional[float] = None,
                 wait_workers: float = 0.0,
                 poll: float = 0.2,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 checkpoint_dir: Optional[str] = None,
                 journal_path: Optional[str] = None,
                 journal_meta: Optional[dict] = None,
                 pool_manager=None):
        self.jobs = list(jobs)
        self.journal_path = journal_path
        self.cache = cache
        self.local_workers = local_workers
        #: borrowed WorkerPoolManager for the local-fallback runner (the
        #: service lends its shared, fd-safe pool; Runner.close leaves
        #: borrowed managers untouched)
        self.pool_manager = pool_manager
        self.wait_workers = float(wait_workers)
        self.poll = float(poll)

        self._hit_rows: Dict[int, List[dict]] = {}

        fingerprint = cache.fingerprint if cache is not None else code_fingerprint()
        size = unit_jobs or default_unit_jobs(len(self.jobs))
        # shard in job order; a pipeline job always gets its own unit so
        # a checkpoint envelope (one pipeline per envelope) maps 1:1
        self._unit_indices: List[List[int]] = []
        batch: List[int] = []
        for i, job in enumerate(self.jobs):
            if job.executor == PIPELINE_EXECUTOR:
                if batch:
                    self._unit_indices.append(batch)
                    batch = []
                self._unit_indices.append([i])
            else:
                batch.append(i)
                if len(batch) >= size:
                    self._unit_indices.append(batch)
                    batch = []
        if batch:
            self._unit_indices.append(batch)

        units = [[self.jobs[i] for i in chunk] for chunk in self._unit_indices]
        unit_fingerprints = [
            self._pipeline_unit_fingerprint(unit) for unit in units]
        self.state = CoordinatorState(
            units, fingerprint=fingerprint, lease_seconds=lease_seconds,
            straggler_factor=straggler_factor, poll=poll,
            on_commit=self._on_commit,
            unit_fingerprints=unit_fingerprints,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            cache_lookup=self._recall_unit,
            cache_counters=(lambda: cache.counters) if cache is not None else None,
            journal_path=journal_path,
            journal_meta=journal_meta)
        self.server: Optional[CoordinatorServer] = None
        if units:
            self.server = CoordinatorServer(self.state, host=host, port=port)

    @staticmethod
    def _pipeline_unit_fingerprint(unit_jobs: List[Job]) -> Optional[dict]:
        if len(unit_jobs) != 1 or unit_jobs[0].executor != PIPELINE_EXECUTOR:
            return None
        from repro.experiments.executors import pipeline_fingerprint

        return pipeline_fingerprint(unit_jobs[0].params)

    def _recall_unit(self, unit_index: int) -> Optional[List[List[dict]]]:
        """All-or-nothing unit recall through the two-level cache; any
        per-job miss means the unit must be dispatched (workers still
        get per-job hits from their own caches)."""
        rows_per_job = []
        for i in self._unit_indices[unit_index]:
            rows = recall_rows(self.jobs[i], self.cache)
            if rows is None:
                return None
            rows_per_job.append(rows)
        return rows_per_job

    def _on_commit(self, unit_index: int, jobs: List[Job],
                   rows_per_job: List[List[dict]]) -> None:
        for job, rows in zip(jobs, rows_per_job):
            remember_rows(job, rows, self.cache)

    @property
    def url(self) -> Optional[str]:
        return self.server.url if self.server is not None else None

    def run(self) -> List[List[dict]]:
        """Block until every unit is committed; returns rows per job in
        job order. Raises :class:`JobExecutionError` if any job failed
        deterministically (mirroring the local runner)."""
        try:
            if self._unit_indices:
                self._drive()
        finally:
            self.close()
        if self.state.failure is not None:
            err = self.state.failure
            raise JobExecutionError(err.get("executor", "?"),
                                    err.get("params", "{}"),
                                    err.get("cause", "remote job failed"))
        if self._unit_indices:
            per_unit = self.state.results()
            for chunk, unit_rows in zip(self._unit_indices, per_unit):
                for job_index, rows in zip(chunk, unit_rows):
                    self._hit_rows[job_index] = rows
        return [self._hit_rows[i] for i in range(len(self.jobs))]

    def _drive(self) -> None:
        """The degradation loop: while remote workers are live, just
        wait for commits; when none are (and the ``wait_workers`` grace
        has passed), lease units to the local pool through the very
        same state machine — first valid result wins either way, so a
        worker that reappears mid-fallback is harmless."""
        start = time.monotonic()
        runner: Optional[Runner] = None
        try:
            while not self.state.done:
                grace_over = time.monotonic() - start >= self.wait_workers
                if self.state.live_remote_workers() > 0 or not grace_over:
                    time.sleep(self.poll)
                    continue
                reply = self.state.lease(LOCAL_WORKER)
                if reply["event"] == "done":
                    break
                if reply["event"] != "lease":
                    time.sleep(self.poll)
                    continue
                if runner is None:
                    # the local pool shares the coordinator's cache so a
                    # partially-cached unit only recomputes its misses
                    runner = Runner(workers=self.local_workers, cache=self.cache,
                                    pool_manager=self.pool_manager)
                unit_jobs = protocol.jobs_from_wire(reply["jobs"])
                try:
                    rows = runner.compute_rows(unit_jobs)
                except JobExecutionError as exc:
                    self.state.fail(LOCAL_WORKER, reply["unit"], reply["key"],
                                    {"executor": exc.job.executor,
                                     "params": exc.job.params_json,
                                     "cause": exc.cause})
                    break
                self.state.commit(LOCAL_WORKER, reply["unit"], reply["key"],
                                  reply["lease"], rows)
        finally:
            if runner is not None:
                runner.close()

    def close(self) -> None:
        if self.server is not None:
            self.server.close()
            self.server = None
        self.state.close()

    def discard_journal(self) -> None:
        """Delete the journal after the results have been delivered —
        the sweep is over, so durable re-offerable state would only
        confuse (or mis-resume) an unrelated future run at this path."""
        self.state.close()
        if self.journal_path is not None:
            try:
                os.unlink(self.journal_path)
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SweepCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
