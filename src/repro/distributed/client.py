"""Worker-side HTTP client for the sweep coordinator.

Plain ``http.client`` over a fresh connection per request — worker
traffic is a handful of small messages per lease term, so connection
reuse buys nothing and a fresh socket makes every request independently
retryable (no half-dead keepalive state to reason about).

Every POST passes through the fault harness before and after the send
(:func:`repro.testing.faults.check` on the ``dist.*`` sites), giving
chaos tests message-level control of the network without a proxy:

* ``drop``  — the request is never delivered (raise before sending);
* ``sever`` — the request *is* delivered but the response is lost
  (send, then raise) — the lost-ack case that forces at-least-once
  delivery and makes the coordinator's duplicate detection observable;
* ``delay`` — delivered late (sleep ``fault_delay`` before sending);
* ``duplicate`` — delivered twice back-to-back;
* ``corrupt`` — delivered *damaged*: the payload is mutated in flight
  (only on sites that declare a corruptor, e.g. ``dist.checkpoint``
  scrambles the envelope) — exercising the coordinator's validate-
  before-store rejection path.

Sites are checked under the worker-scoped alias ``<site>@<name>``
first, then the bare site, so one plan can partition a single worker
among several sharing the process.

Reconnect policy is decorrelated jitter (``sleep = min(cap,
uniform(base, prev * 3))``): a fleet of workers that all lost the same
coordinator comes back spread out instead of in lockstep.
"""

from __future__ import annotations

import http.client
import random
import time
from typing import Callable, Dict, List, Optional
from urllib.parse import urlsplit

from repro.testing import faults

from .protocol import ProtocolError, decode_event, encode_event, rows_to_wire


class CoordinatorUnreachable(RuntimeError):
    """A request to the coordinator could not be delivered, or its
    response never arrived (includes injected drop/sever faults)."""


class WorkerRejected(RuntimeError):
    """The coordinator answered — it is alive — but refused this worker
    id (HTTP 409 ``unknown_worker``): a restarted coordinator does not
    know ids minted by its previous incarnation. Deliberately *not* a
    :class:`CoordinatorUnreachable`: retrying the same request verbatim
    can never succeed; the remedy is to re-register and resume under
    the new id/epoch."""

    def __init__(self, message: str, epoch: int = 0):
        super().__init__(message)
        self.epoch = epoch


class Backoff:
    """Decorrelated-jitter backoff (the AWS "decorrelated" variant):
    each sleep is drawn uniformly from ``[base, prev * 3]``, capped.
    Successive failures spread a reconnecting fleet apart instead of
    synchronizing it the way pure exponential doubling does."""

    def __init__(self, base: float = 0.1, cap: float = 5.0,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.base = base
        self.cap = cap
        self._rng = rng or random.Random()
        self._sleep = sleep
        self._prev = base

    def reset(self) -> None:
        self._prev = self.base

    def next_delay(self) -> float:
        self._prev = min(self.cap,
                         self._rng.uniform(self.base, self._prev * 3))
        return self._prev

    def wait(self) -> float:
        delay = self.next_delay()
        self._sleep(delay)
        return delay


def _fault_site(site: str, name: Optional[str],
                counters: Dict[str, int]) -> Optional[str]:
    """Consult the fault plan for this message: scoped alias first so a
    plan can single out one named worker, then the generic site. Each
    site keeps its own message index."""
    if not faults.enabled():
        return None
    index = counters.get(site, 0)
    counters[site] = index + 1
    action = None
    if name:
        action = faults.check(f"{site}@{name}", index)
    if action is None:
        action = faults.check(site, index)
    return action


class CoordinatorClient:
    """Typed wrapper over the coordinator's POST endpoints.

    ``name`` scopes fault-site lookups (``dist.lease@<name>`` …);
    ``fault_delay`` is how long an injected ``delay`` action holds a
    message — tests tune it against the coordinator's lease term.
    """

    def __init__(self, url: str, name: Optional[str] = None,
                 timeout: float = 10.0, fault_delay: float = 0.1):
        if "//" not in url:
            url = "http://" + url
        parts = urlsplit(url)
        if not parts.hostname or not parts.port:
            raise ValueError(f"coordinator URL needs host:port, got {url!r}")
        self.host = parts.hostname
        self.port = parts.port
        self.name = name
        self.timeout = timeout
        self.fault_delay = fault_delay
        self._site_counters: Dict[str, int] = {}

    # -- transport ---------------------------------------------------------

    def _send(self, path: str, payload: dict) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = encode_event(payload)
            conn.request("POST", path, body=body,
                         headers={"Content-Type": "application/x-ndjson",
                                  "Content-Length": str(len(body))})
            response = conn.getresponse()
            data = response.read()
            if response.status == 409:
                event: dict = {}
                try:
                    event = decode_event(data)
                except ProtocolError:
                    pass
                if event.get("error") == "unknown_worker":
                    epoch = event.get("epoch")
                    raise WorkerRejected(
                        f"coordinator (epoch {epoch}) does not know this "
                        f"worker id — re-register",
                        epoch=epoch if isinstance(epoch, int) else 0)
            if response.status != 200:
                raise CoordinatorUnreachable(
                    f"coordinator returned HTTP {response.status} for {path}: "
                    f"{data[:200].decode(errors='replace')}")
            return decode_event(data)
        except (OSError, http.client.HTTPException) as exc:
            raise CoordinatorUnreachable(
                f"coordinator at {self.host}:{self.port} unreachable "
                f"({path}): {exc}") from exc
        finally:
            conn.close()

    def _post(self, site: str, path: str, payload: dict,
              corruptor: Optional[Callable[[dict], dict]] = None) -> dict:
        action = _fault_site(site, self.name, self._site_counters)
        if action == "drop":
            raise CoordinatorUnreachable(
                f"injected network fault: {site} request dropped")
        if action == "delay":
            time.sleep(self.fault_delay)
        if action == "corrupt" and corruptor is not None:
            payload = corruptor(dict(payload))
        result = self._send(path, payload)
        if action == "duplicate":
            result = self._send(path, payload)
        if action == "sever":
            # delivered, response lost — the caller sees a network error
            # even though the coordinator processed the message
            raise CoordinatorUnreachable(
                f"injected network fault: {site} response severed")
        return result

    # -- endpoints ---------------------------------------------------------

    def register(self, name: str = "", workers: int = 1) -> dict:
        return self._send("/v1/register", {"event": "register", "name": name,
                                           "workers": workers})

    def lease(self, worker: str) -> dict:
        reply = self._post("dist.lease", "/v1/lease",
                           {"event": "lease", "worker": worker})
        if reply.get("event") not in ("lease", "wait", "done", "error"):
            raise ProtocolError(f"unexpected lease reply {reply!r}")
        return reply

    def heartbeat(self, worker: str, leases: List[str],
                  failures: int = 0) -> dict:
        return self._post("dist.heartbeat", "/v1/heartbeat",
                          {"event": "heartbeat", "worker": worker,
                           "leases": list(leases),
                           "failures": int(failures)})

    def result(self, worker: str, unit: int, key: str, lease: Optional[str],
               rows: Optional[List[List[dict]]] = None,
               error: Optional[dict] = None,
               provenance: str = "computed") -> dict:
        payload: dict = {"event": "result", "worker": worker, "unit": unit,
                         "key": key, "lease": lease, "provenance": provenance}
        if error is not None:
            payload["error"] = error
        else:
            payload["rows"] = rows_to_wire(rows if rows is not None else [])
        return self._post("dist.result", "/v1/result", payload)

    @staticmethod
    def _corrupt_envelope(payload: dict) -> dict:
        # in-flight bit rot for the fault harness: the envelope arrives
        # but no longer validates (version scrambled, cursor poisoned)
        state = dict(payload.get("state") or {})
        state["version"] = "\x00garbage\x00"
        state["cursor"] = -1
        payload["state"] = state
        return payload

    def checkpoint(self, worker: str, unit: int, key: str, lease: str,
                   state: dict) -> dict:
        return self._post("dist.checkpoint", "/v1/checkpoint",
                          {"event": "checkpoint", "worker": worker,
                           "unit": unit, "key": key, "lease": lease,
                           "state": state},
                          corruptor=self._corrupt_envelope)

    def deregister(self, worker: str) -> dict:
        return self._post("dist.deregister", "/v1/deregister",
                          {"event": "deregister", "worker": worker})

    def metrics(self) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            return decode_event(response.read())
        except (OSError, http.client.HTTPException) as exc:
            raise CoordinatorUnreachable(
                f"coordinator metrics unreachable: {exc}") from exc
        finally:
            conn.close()
