"""The distributed sweep worker: ``repro work`` points one of these at
a coordinator URL and the machine joins the sweep.

Loop shape::

    register -> (lease -> heartbeat || execute -> submit)* -> done

* the worker executes a leased unit on its **local process pool** via
  :meth:`Runner.compute_rows` — the full PR-7 recovery machinery
  (chunk timeouts, pool rebuilds, straggler duplicates) runs *inside*
  each unit, so a worker surviving its own child's death is invisible
  to the coordinator;
* a **pipeline unit** (``"pipeline": true`` on the lease) runs inline
  through :func:`repro.experiments.executors.pipeline_rows` with
  ``checkpoint_every=`` wired to an upload hook: every chunk-seam
  envelope migrates to the coordinator (``/v1/checkpoint``,
  best-effort — an upload failure costs recovery granularity, never
  correctness). A lease that arrives carrying an envelope resumes
  from it (``resume_from=``); an envelope this build cannot validate
  falls back to unit start — wrong rows are impossible either way;
* with a local result cache configured the worker consults it before
  computing: a whole-unit hit is submitted with ``cache_hit``
  provenance, and computed pipeline rows are remembered so *this*
  machine never re-pays them;
* **graceful drain** (SIGTERM via :meth:`Worker.drain`): a running
  pipeline unit parks at the next chunk seam (final envelope
  uploaded), the worker deregisters — releasing its leases for
  immediate re-dispatch — and exits 0;
* while a unit runs, a daemon heartbeat thread renews the lease every
  ``lease_seconds / 3`` — three misses before expiry, so one dropped
  heartbeat never loses a lease. Heartbeat errors never interrupt the
  unit (a partition is indistinguishable from a slow network, and the
  *lease* mechanism — not the heartbeat — decides the worker is gone)
  but they are **counted**: ``heartbeat_failures`` rides on every
  heartbeat, shows in the coordinator's per-worker ``snapshot()``
  block, and is printed in the worker's exit line, so a flaky link is
  diagnosable instead of silent;
* result submission is **at-least-once**: a network error after the
  coordinator processed the commit (the lost-ack case) just means the
  retry is answered with ``duplicate`` — which the worker treats as
  success, because it is;
* a **coordinator restart** is survivable: a recovered coordinator
  answers the old worker id with HTTP 409 ``unknown_worker`` (plus its
  new epoch), which the worker treats as "alive but amnesiac" — it
  re-registers under the same decorrelated-jitter backoff and, if it
  was holding a finished result across the outage, re-submits it under
  the new id (safe: commits are idempotent first-write-wins);
* every coordinator failure backs off with decorrelated jitter and
  counts against a rolling ``reconnect_timeout`` budget — the budget
  is per attempt-chain, reset by any successful (or even rejected-
  but-answered) exchange. A coordinator that stays dark past the
  budget means the worker exits 1 rather than spinning forever;
  ``reconnect_timeout=0`` disables the budget entirely — wait forever,
  the right setting for a fleet parked against a service daemon that
  only periodically runs flights.

Fault sites fire here and in the client: ``dist.unit`` (``raise``
models the worker dying mid-lease), ``dist.lease`` / ``dist.heartbeat``
/ ``dist.result`` / ``dist.checkpoint`` / ``dist.deregister`` (network
message faults, worker-scopable as ``<site>@<name>``; ``kill`` on
``dist.checkpoint`` models a worker dying at a chunk seam *after* some
envelopes migrated, ``corrupt`` damages the envelope in flight).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional

from repro.checkpoint import CheckpointError
from repro.experiments.cache import ResultCache
from repro.experiments.jobs import Job
from repro.experiments.runner import (
    JobExecutionError,
    Runner,
    recall_rows,
    remember_rows,
)
from repro.mem.pipeline import PipelineCheckpointed
from repro.testing import faults

from .client import (
    Backoff,
    CoordinatorClient,
    CoordinatorUnreachable,
    WorkerRejected,
)
from .protocol import ProtocolError, jobs_from_wire


@dataclass
class WorkerConfig:
    url: str
    name: str = ""
    workers: Optional[int] = None
    chunk_timeout: Optional[float] = None
    chunk_retries: int = 2
    #: seconds the coordinator may stay dark before the worker exits 1;
    #: reset by every answered exchange. 0 = no budget, wait forever.
    reconnect_timeout: float = 30.0
    fault_delay: float = 0.1
    log: bool = True
    #: directory for the worker's local result cache (None = no disk
    #: cache; the in-process memory level still applies)
    cache_dir: Optional[str] = None


class Worker:
    """One machine's membership in a distributed sweep."""

    def __init__(self, config: WorkerConfig):
        self.config = config
        self.client = CoordinatorClient(config.url, name=config.name or None,
                                        fault_delay=config.fault_delay)
        self.worker_id: Optional[str] = None
        self.units_done = 0
        self.units_resumed = 0
        self.reregistrations = 0
        #: cumulative heartbeat-thread errors — never fatal, always
        #: counted (satellite of the silent-swallow policy: the lease
        #: decides liveness, but the operator deserves the number)
        self.heartbeat_failures = 0
        self._unit_index = 0  # fault-site index for dist.unit
        self._runner: Optional[Runner] = None
        self._cache = ResultCache(config.cache_dir) if config.cache_dir else None
        self._drain = threading.Event()

    def drain(self) -> None:
        """Request a graceful exit (signal-safe): the current lease is
        finished — a pipeline unit parks at its next chunk seam and
        uploads a final envelope — then the worker deregisters and
        :meth:`run` returns 0."""
        self._drain.set()

    def _log(self, message: str) -> None:
        if self.config.log:
            print(f"[repro-work] {message}", flush=True)

    def _register(self) -> None:
        if self.worker_id is not None:
            self.reregistrations += 1
        reply = self.client.register(self.config.name,
                                     self.config.workers or 1)
        self.worker_id = reply["worker"]
        self.lease_seconds = float(reply.get("lease_seconds", 10.0))
        self.poll = float(reply.get("poll", 0.5))
        epoch = reply.get("epoch", 0)
        self._log(f"registered as {self.worker_id} "
                  f"(lease {self.lease_seconds:g}s, epoch {epoch})")

    def _budget_deadline(self) -> Optional[float]:
        """Start (or restart) the reconnect budget: ``None`` when the
        budget is disabled (``reconnect_timeout=0`` — wait forever)."""
        import time as _time

        if self.config.reconnect_timeout <= 0:
            return None
        return _time.monotonic() + self.config.reconnect_timeout

    @staticmethod
    def _budget_spent(deadline: Optional[float]) -> bool:
        import time as _time

        return deadline is not None and _time.monotonic() >= deadline

    def _heartbeat_loop(self, lease_id: str, stop: threading.Event) -> None:
        interval = max(0.05, self.lease_seconds / 3.0)
        while not stop.wait(interval):
            try:
                self.client.heartbeat(self.worker_id, [lease_id],
                                      failures=self.heartbeat_failures)
            except (CoordinatorUnreachable, WorkerRejected,
                    ProtocolError):
                # never fatal — the lease term decides liveness, not any
                # single heartbeat; a 409 here just means the main loop
                # is about to discover the restart itself — but counted,
                # so a flaky link shows up in the exit line and in the
                # coordinator's per-worker snapshot
                self.heartbeat_failures += 1

    def _fire_unit_fault(self) -> None:
        index = self._unit_index
        self._unit_index += 1
        if not faults.enabled():
            return
        if self.config.name:
            faults.fire(f"dist.unit@{self.config.name}", index)
        faults.fire("dist.unit", index)

    def _recall_unit(self, jobs: List[Job]) -> Optional[List[List[dict]]]:
        """All-or-nothing local-cache recall: every job of the unit must
        hit (two-level — memory, then this worker's disk cache) for the
        unit to be answered without compute."""
        rows_per_job = []
        for job in jobs:
            rows = recall_rows(job, self._cache)
            if rows is None:
                return None
            rows_per_job.append(rows)
        return rows_per_job

    def _run_unit(self, lease: dict) -> None:
        # the fault fires *before* the heartbeat thread starts, so a
        # "raise" here models a worker that died holding a fresh lease —
        # nothing renews it and it expires on schedule
        self._fire_unit_fault()
        jobs = jobs_from_wire(lease["jobs"])
        cached = self._recall_unit(jobs)
        if cached is not None:
            self._log(f"unit {lease['unit']}: local cache hit")
            self._submit(lease, cached, None, provenance="cache_hit")
            return
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(lease["lease"], stop),
            name="repro-work-heartbeat", daemon=True)
        beat.start()
        drained = False
        try:
            error = None
            rows = None
            if lease.get("pipeline"):
                rows, error, drained = self._run_pipeline(lease, jobs)
            else:
                if self._runner is None:
                    self._runner = Runner(workers=self.config.workers,
                                          cache=self._cache,
                                          chunk_timeout=self.config.chunk_timeout,
                                          chunk_retries=self.config.chunk_retries)
                try:
                    rows = self._runner.compute_rows(jobs)
                except JobExecutionError as exc:
                    error = {"executor": exc.job.executor,
                             "params": exc.job.params_json,
                             "cause": exc.cause}
        finally:
            stop.set()
        beat.join(timeout=2.0)
        if drained:
            # the final envelope is migrated; the lease is released by
            # the deregister that follows in run() — nothing to submit
            return
        self._submit(lease, rows, error)

    def _run_pipeline(self, lease: dict, jobs: List[Job]):
        """Execute a singleton pipeline unit inline, migrating every
        chunk-seam envelope to the coordinator and resuming from the
        envelope the lease carried (if any). Returns
        ``(rows, error, drained)``."""
        from repro.experiments.executors import pipeline_rows

        job = jobs[0]
        checkpoint_every = int(lease.get("checkpoint_every", 0))
        resume_state = lease.get("checkpoint")

        def upload(state: dict, chunks: int, requests_done: int) -> None:
            # best-effort: a lost/rejected upload only means a successor
            # resumes from an older seam (or unit start), never bad rows
            try:
                self.client.checkpoint(self.worker_id, lease["unit"],
                                       lease["key"], lease["lease"], state)
            except WorkerRejected as exc:
                # coordinator restarted mid-unit: re-register and retry
                # once so the seam still migrates under the new epoch
                # (the old lease id is gone — the commit path tolerates
                # that; the envelope is what matters here)
                self._log(f"checkpoint upload rejected (epoch "
                          f"{exc.epoch}); re-registering")
                try:
                    self._register()
                    self.client.checkpoint(self.worker_id, lease["unit"],
                                           lease["key"], lease["lease"],
                                           state)
                except (CoordinatorUnreachable, WorkerRejected,
                        ProtocolError) as retry_exc:
                    self._log(f"checkpoint upload failed after "
                              f"re-register ({retry_exc}); continuing")
            except (CoordinatorUnreachable, ProtocolError) as exc:
                self._log(f"checkpoint upload failed ({exc}); continuing")

        def attempt(resume_from):
            return pipeline_rows(
                job.params,
                checkpoint_every=checkpoint_every,
                resume_from=resume_from,
                on_checkpoint_state=upload,
                checkpoint_request=self._drain.is_set)

        try:
            try:
                if resume_state is not None:
                    self._log(f"unit {lease['unit']}: resuming from "
                              f"migrated checkpoint "
                              f"(cursor {resume_state.get('cursor')})")
                    rows = attempt(dict(resume_state))
                    self.units_resumed += 1
                else:
                    rows = attempt(None)
            except CheckpointError as exc:
                # the migrated envelope does not validate against this
                # build/unit — recompute from unit start instead
                self._log(f"migrated checkpoint rejected ({exc}); "
                          f"restarting unit {lease['unit']} from scratch")
                rows = attempt(None)
        except PipelineCheckpointed as exc:
            self._log(f"unit {lease['unit']}: drained at chunk seam "
                      f"({exc.requests_done} requests done)")
            return None, None, True
        except Exception as exc:  # deterministic executor failure
            return None, {"executor": job.executor,
                          "params": job.params_json,
                          "cause": f"{type(exc).__name__}: {exc}"}, False
        remember_rows(job, rows, self._cache)
        return [rows], None, False

    def _submit(self, lease: dict, rows, error,
                provenance: str = "computed") -> None:
        """At-least-once result delivery: retry until the coordinator
        acknowledges or stays dark past the reconnect budget.
        ``duplicate`` is an acknowledgement — the rows landed (possibly
        via our own severed first attempt, possibly from another
        worker; either way the unit is committed). A 409 rejection
        mid-retry means the coordinator restarted while we held the
        result: re-register and submit under the new id — the journal
        replay marked nothing for this unit, so these rows are exactly
        what the recovered sweep is waiting for (and if another worker
        beat us to it, idempotency answers ``duplicate``)."""
        backoff = Backoff()
        deadline = self._budget_deadline()
        while True:
            try:
                reply = self.client.result(
                    self.worker_id, lease["unit"], lease["key"],
                    lease["lease"], rows=rows, error=error,
                    provenance=provenance)
            except WorkerRejected as exc:
                self._log(f"result for unit {lease['unit']} rejected "
                          f"(coordinator epoch {exc.epoch}); "
                          f"re-registering to re-submit")
                deadline = self._budget_deadline()  # answered = alive
                try:
                    self._register()
                except (CoordinatorUnreachable, ProtocolError):
                    backoff.wait()
                continue
            except CoordinatorUnreachable as exc:
                if self._budget_spent(deadline):
                    raise
                self._log(f"result submit failed ({exc}); retrying")
                backoff.wait()
                continue
            event = reply.get("event")
            if event in ("committed", "duplicate", "failed"):
                if event != "failed":
                    self.units_done += 1
                self._log(f"unit {lease['unit']}: {event}")
                return
            raise ProtocolError(f"unexpected result reply {reply!r}")

    def _exit_stats(self) -> str:
        return (f"{self.units_done} unit(s) here, "
                f"{self.heartbeat_failures} heartbeat failure(s), "
                f"{self.reregistrations} re-registration(s)")

    def run(self) -> int:
        """Work until the coordinator says ``done`` (exit 0), a drain is
        requested (finish/park the current lease, deregister, exit 0),
        or the coordinator stays unreachable past ``reconnect_timeout``
        (exit 1; a zero timeout waits forever). A coordinator that
        *restarted* — 409 ``unknown_worker`` — is not an outage: the
        worker re-registers under the new epoch and keeps working."""
        backoff = Backoff()
        deadline = self._budget_deadline()
        while True:
            if self._drain.is_set():
                self._log(f"drain requested; deregistering "
                          f"({self._exit_stats()})")
                self._deregister()
                self._close_runner()
                return 0
            try:
                if self.worker_id is None:
                    self._register()
                reply = self.client.lease(self.worker_id)
            except WorkerRejected as exc:
                # the coordinator is alive but restarted: our id (and
                # every lease it anchored) died with the old epoch.
                # Re-register — through the same backoff'd loop — and
                # reset the budget: an answer is proof of liveness
                self._log(f"worker id rejected (coordinator epoch "
                          f"{exc.epoch}); re-registering")
                self.worker_id = None
                deadline = self._budget_deadline()
                continue
            except (CoordinatorUnreachable, ProtocolError) as exc:
                if self._budget_spent(deadline):
                    self._log(f"coordinator unreachable past "
                              f"{self.config.reconnect_timeout:g}s budget "
                              f"({exc}); giving up ({self._exit_stats()})")
                    self._close_runner()
                    return 1
                backoff.wait()
                continue
            backoff.reset()
            deadline = self._budget_deadline()
            event = reply.get("event")
            if event == "done":
                self._log(f"sweep complete ({self._exit_stats()})")
                self._close_runner()
                return 0
            if event == "wait":
                # interruptible by drain: wait() returns early when set
                self._drain.wait(float(reply.get("poll", 0.5)))
                continue
            if event == "error":
                # the coordinator rejected us (likely restarted and
                # forgot our id) — re-register and carry on
                self.worker_id = None
                continue
            if event == "lease":
                self._run_unit(reply)
                continue
            raise ProtocolError(f"unexpected lease reply {reply!r}")

    def _deregister(self) -> None:
        """Best-effort: a deregister that never arrives just means the
        coordinator waits out the lease term, exactly as for a crash."""
        if self.worker_id is None:
            return
        try:
            self.client.deregister(self.worker_id)
        except WorkerRejected:
            pass  # a restarted coordinator already forgot us — done
        except (CoordinatorUnreachable, ProtocolError) as exc:
            self._log(f"deregister failed ({exc}); leases will expire")

    def _close_runner(self) -> None:
        if self._runner is not None:
            self._runner.close()
            self._runner = None
