"""The distributed sweep worker: ``repro work`` points one of these at
a coordinator URL and the machine joins the sweep.

Loop shape::

    register -> (lease -> heartbeat || execute -> submit)* -> done

* the worker executes a leased unit on its **local process pool** via
  :meth:`Runner.compute_rows` — the full PR-7 recovery machinery
  (chunk timeouts, pool rebuilds, straggler duplicates) runs *inside*
  each unit, so a worker surviving its own child's death is invisible
  to the coordinator;
* while a unit runs, a daemon heartbeat thread renews the lease every
  ``lease_seconds / 3`` — three misses before expiry, so one dropped
  heartbeat never loses a lease. Heartbeat errors are swallowed: a
  partition is indistinguishable from a slow network, and the *lease*
  mechanism (not the heartbeat) is what decides the worker is gone;
* result submission is **at-least-once**: a network error after the
  coordinator processed the commit (the lost-ack case) just means the
  retry is answered with ``duplicate`` — which the worker treats as
  success, because it is;
* every coordinator failure backs off with decorrelated jitter and
  counts against a rolling ``reconnect_timeout`` budget (reset by any
  successful exchange); a coordinator that stays dark past the budget
  means the worker exits 1 rather than spinning forever.

Fault sites fire here and in the client: ``dist.unit`` (``raise``
models the worker dying mid-lease), ``dist.lease`` / ``dist.heartbeat``
/ ``dist.result`` (network message faults, worker-scopable as
``<site>@<name>``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.experiments.runner import JobExecutionError, Runner
from repro.testing import faults

from .client import Backoff, CoordinatorClient, CoordinatorUnreachable
from .protocol import ProtocolError, jobs_from_wire


@dataclass
class WorkerConfig:
    url: str
    name: str = ""
    workers: Optional[int] = None
    chunk_timeout: Optional[float] = None
    chunk_retries: int = 2
    reconnect_timeout: float = 30.0
    fault_delay: float = 0.1
    log: bool = True


class Worker:
    """One machine's membership in a distributed sweep."""

    def __init__(self, config: WorkerConfig):
        self.config = config
        self.client = CoordinatorClient(config.url, name=config.name or None,
                                        fault_delay=config.fault_delay)
        self.worker_id: Optional[str] = None
        self.units_done = 0
        self._unit_index = 0  # fault-site index for dist.unit
        self._runner: Optional[Runner] = None

    def _log(self, message: str) -> None:
        if self.config.log:
            print(f"[repro-work] {message}", flush=True)

    def _register(self) -> None:
        reply = self.client.register(self.config.name,
                                     self.config.workers or 1)
        self.worker_id = reply["worker"]
        self.lease_seconds = float(reply.get("lease_seconds", 10.0))
        self.poll = float(reply.get("poll", 0.5))
        self._log(f"registered as {self.worker_id} "
                  f"(lease {self.lease_seconds:g}s)")

    def _heartbeat_loop(self, lease_id: str, stop: threading.Event) -> None:
        interval = max(0.05, self.lease_seconds / 3.0)
        while not stop.wait(interval):
            try:
                self.client.heartbeat(self.worker_id, [lease_id])
            except (CoordinatorUnreachable, ProtocolError):
                # swallowed by design: the lease term decides liveness,
                # not any single heartbeat — see module docstring
                pass

    def _fire_unit_fault(self) -> None:
        index = self._unit_index
        self._unit_index += 1
        if not faults.enabled():
            return
        if self.config.name:
            faults.fire(f"dist.unit@{self.config.name}", index)
        faults.fire("dist.unit", index)

    def _run_unit(self, lease: dict) -> None:
        # the fault fires *before* the heartbeat thread starts, so a
        # "raise" here models a worker that died holding a fresh lease —
        # nothing renews it and it expires on schedule
        self._fire_unit_fault()
        jobs = jobs_from_wire(lease["jobs"])
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(lease["lease"], stop),
            name="repro-work-heartbeat", daemon=True)
        beat.start()
        try:
            if self._runner is None:
                self._runner = Runner(workers=self.config.workers,
                                      cache=None,
                                      chunk_timeout=self.config.chunk_timeout,
                                      chunk_retries=self.config.chunk_retries)
            error = None
            rows = None
            try:
                rows = self._runner.compute_rows(jobs)
            except JobExecutionError as exc:
                error = {"executor": exc.job.executor,
                         "params": exc.job.params_json,
                         "cause": exc.cause}
        finally:
            stop.set()
        beat.join(timeout=2.0)
        self._submit(lease, rows, error)

    def _submit(self, lease: dict, rows, error) -> None:
        """At-least-once result delivery: retry until the coordinator
        acknowledges or stays dark past the reconnect budget.
        ``duplicate`` is an acknowledgement — the rows landed (possibly
        via our own severed first attempt, possibly from another
        worker; either way the unit is committed)."""
        import time as _time

        backoff = Backoff()
        deadline = _time.monotonic() + self.config.reconnect_timeout
        while True:
            try:
                reply = self.client.result(
                    self.worker_id, lease["unit"], lease["key"],
                    lease["lease"], rows=rows, error=error)
            except CoordinatorUnreachable as exc:
                if _time.monotonic() >= deadline:
                    raise
                self._log(f"result submit failed ({exc}); retrying")
                backoff.wait()
                continue
            event = reply.get("event")
            if event in ("committed", "duplicate", "failed"):
                if event != "failed":
                    self.units_done += 1
                self._log(f"unit {lease['unit']}: {event}")
                return
            raise ProtocolError(f"unexpected result reply {reply!r}")

    def run(self) -> int:
        """Work until the coordinator says ``done`` (exit 0) or stays
        unreachable past ``reconnect_timeout`` (exit 1)."""
        import time as _time

        backoff = Backoff()
        deadline = _time.monotonic() + self.config.reconnect_timeout
        while True:
            try:
                if self.worker_id is None:
                    self._register()
                reply = self.client.lease(self.worker_id)
            except (CoordinatorUnreachable, ProtocolError) as exc:
                if _time.monotonic() >= deadline:
                    self._log(f"coordinator unreachable past "
                              f"{self.config.reconnect_timeout:g}s budget "
                              f"({exc}); giving up")
                    self._close_runner()
                    return 1
                backoff.wait()
                continue
            backoff.reset()
            deadline = _time.monotonic() + self.config.reconnect_timeout
            event = reply.get("event")
            if event == "done":
                self._log(f"sweep complete ({self.units_done} unit(s) here)")
                self._close_runner()
                return 0
            if event == "wait":
                _time.sleep(float(reply.get("poll", 0.5)))
                continue
            if event == "error":
                # the coordinator rejected us (likely restarted and
                # forgot our id) — re-register and carry on
                self.worker_id = None
                continue
            if event == "lease":
                self._run_unit(reply)
                continue
            raise ProtocolError(f"unexpected lease reply {reply!r}")

    def _close_runner(self) -> None:
        if self._runner is not None:
            self._runner.close()
            self._runner = None
