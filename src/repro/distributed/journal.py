"""Write-ahead journal for the sweep coordinator's durable state.

The coordinator's lease table is deliberately soft state — leases are
re-offered after a crash — but three transitions are *durable facts*
that must survive the coordinator process: a unit committed (with its
rows and ``rows_digest``), a pipeline unit's latest accepted checkpoint
envelope, and a unit answered from the result cache. This module
records exactly those, append-only, one self-delimiting JSON line per
record, fsync'd before the coordinator acknowledges anything built on
them — so a reply the fleet observed is never forgotten by a restart.

File layout::

    {"type": "header", "journal": 1, "fingerprint": ..., "epoch": N,
     "unit_keys": [...], "meta": {...}}
    {"type": "commit", "unit": 3, "digest": ..., "rows": <wire>,
     "worker": ..., "cached": false}
    {"type": "checkpoint", "unit": 7, "cursor": 655360, "state": {...}}
    ...

The header pins *what* the journal is about: the code fingerprint and
the content-addressed key of every unit. Recovery refuses a journal
whose header does not match the sweep being restarted — replaying rows
into a different job list or a different build would be silent
corruption, the exact failure the result cache's fingerprint already
guards against. ``meta`` is an opaque caller payload (``repro serve``
stores the originating job request there so a restarted daemon can
rebuild the flight from the journal alone).

Crash semantics:

* **Torn tail** — a crash mid-append leaves a final line without its
  newline (or with half its bytes). That line was never acknowledged,
  so it is truncated off and counted (``journal_truncated``), never
  trusted, never fatal.
* **Mid-file corruption** — a record that is neither the final line
  nor internally consistent (a commit whose rows don't hash to its
  digest) means the file itself is damaged; recovery refuses with
  :class:`JournalError` rather than resume from a lie.
* **Compaction** — recovery rewrites the journal as a fresh snapshot
  (header with a bumped epoch + one commit per done unit + the latest
  envelope per pending unit) via the checkpoint tier's temp + fsync +
  rename discipline, so replay cost stays proportional to state, not
  history, and the epoch bump is itself durable before any worker can
  observe it.

Fault site: ``dist.journal`` fires once per append, *before* the
record's bytes reach the file — an exec action (``kill``) there models
a coordinator dying after acknowledging record N-1 but before durable
record N; the ``truncate`` data action writes half the record then
kills the process, manufacturing a torn tail exactly as a real
mid-``write(2)`` crash would.
"""

from __future__ import annotations

import json
import os
import signal
from typing import Dict, List, Optional, Tuple

from repro.checkpoint import atomic_write_text, fsync_directory
from repro.testing import faults

from .protocol import rows_digest, rows_from_wire

#: bump when the journal record layout changes
JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal cannot be used: unreadable, mid-file corrupt, or it
    describes a different sweep/build than the one being recovered."""


class JournalState:
    """Everything replay recovers: header identity plus the durable
    per-unit facts (latest-wins for checkpoints, first-wins for
    commits — matching the coordinator's own idempotency rule)."""

    __slots__ = ("fingerprint", "unit_keys", "epoch", "meta",
                 "commits", "checkpoints", "truncated")

    def __init__(self, fingerprint: str, unit_keys: List[str], epoch: int,
                 meta: dict):
        self.fingerprint = fingerprint
        self.unit_keys = unit_keys
        self.epoch = epoch
        self.meta = meta
        #: unit index -> {"rows": wire, "digest": ..., "worker": ..., "cached": ...}
        self.commits: Dict[int, dict] = {}
        #: unit index -> latest envelope (cursor-monotonic)
        self.checkpoints: Dict[int, dict] = {}
        #: torn-tail lines truncated while loading
        self.truncated = 0


def _encode_record(record: dict) -> bytes:
    return (json.dumps(record, separators=(",", ":"),
                       sort_keys=True) + "\n").encode()


def _validate_commit(record: dict, n_units: int) -> None:
    unit = record.get("unit")
    if not (isinstance(unit, int) and 0 <= unit < n_units):
        raise JournalError(f"journal commit names unknown unit {unit!r}")
    digest = record.get("digest")
    rows = rows_from_wire(record.get("rows"))
    if rows_digest(rows) != digest:
        # rows that no longer hash to their recorded digest are damage
        # *inside* the file, not a torn tail — refuse, don't guess
        raise JournalError(
            f"journal commit for unit {unit} fails its rows_digest "
            f"(mid-file corruption)")


def _validate_checkpoint(record: dict, n_units: int) -> None:
    unit = record.get("unit")
    if not (isinstance(unit, int) and 0 <= unit < n_units):
        raise JournalError(f"journal checkpoint names unknown unit {unit!r}")
    cursor = record.get("cursor")
    if not isinstance(cursor, int) or cursor < 0:
        raise JournalError(f"journal checkpoint for unit {unit} has no "
                           f"usable cursor")
    if not isinstance(record.get("state"), dict):
        raise JournalError(f"journal checkpoint for unit {unit} carries no "
                           f"envelope")


def replay(path: str) -> Optional[JournalState]:
    """Load a journal into a :class:`JournalState`.

    Returns ``None`` when the file is absent or effectively empty (zero
    bytes, or nothing but a torn first line — a crash before the header
    ever became durable means there is nothing to recover; the file is
    truncated so a fresh header can be written). A torn *final* line is
    truncated off and counted. Anything structurally wrong earlier than
    the final line raises :class:`JournalError`.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from None

    keep = len(raw)
    truncated = 0
    # a torn tail is the suffix after the last newline; drop it first
    if raw and not raw.endswith(b"\n"):
        keep = raw.rfind(b"\n") + 1
        truncated += 1

    lines = raw[:keep].split(b"\n")[:-1] if keep else []
    records: List[dict] = []
    offset = 0
    for i, line in enumerate(lines):
        try:
            record = json.loads(line)
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError("not a journal record")
        except ValueError:
            if i == len(lines) - 1:
                # a complete-looking but unparseable *final* line is the
                # same torn-tail case (e.g. a crash mid-write that
                # happened to land on a '\n' byte): truncate, count
                keep = offset
                truncated += 1
                break
            raise JournalError(
                f"journal {path} is corrupt at line {i + 1} "
                f"(mid-file damage, not a torn tail)") from None
        records.append(record)
        offset += len(line) + 1

    if truncated and keep < len(raw):
        with open(path, "r+b") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())

    if not records:
        return None

    header = records[0]
    if header.get("type") != "header":
        raise JournalError(f"journal {path} does not start with a header")
    if header.get("journal") != JOURNAL_VERSION:
        raise JournalError(
            f"journal {path} has version {header.get('journal')!r}; this "
            f"build reads version {JOURNAL_VERSION}")
    unit_keys = header.get("unit_keys")
    epoch = header.get("epoch")
    if (not isinstance(unit_keys, list)
            or not all(isinstance(k, str) for k in unit_keys)
            or not isinstance(epoch, int) or epoch < 0):
        raise JournalError(f"journal {path} header is malformed")
    state = JournalState(str(header.get("fingerprint", "")),
                         list(unit_keys), epoch,
                         dict(header.get("meta") or {}))
    state.truncated = truncated

    for record in records[1:]:
        kind = record.get("type")
        if kind == "commit":
            _validate_commit(record, len(unit_keys))
            # first-write-wins, like the live coordinator: a duplicate
            # journal entry (possible if an append raced a crash and the
            # commit re-ran after recovery) never flips rows
            state.commits.setdefault(record["unit"], {
                "rows": record["rows"], "digest": record["digest"],
                "worker": record.get("worker", ""),
                "cached": bool(record.get("cached", False))})
        elif kind == "checkpoint":
            _validate_checkpoint(record, len(unit_keys))
            unit = record["unit"]
            prev = state.checkpoints.get(unit)
            if prev is None or record["cursor"] > prev.get("cursor", -1):
                state.checkpoints[unit] = dict(record["state"])
        elif kind == "header":
            raise JournalError(f"journal {path} has a second header")
        else:
            raise JournalError(f"journal {path} has an unknown record "
                               f"type {kind!r}")
    return state


class Journal:
    """An open, append-mode journal. Construct through
    :meth:`Journal.recover` (the only entry the coordinator uses): it
    replays what exists, validates identity, compacts with a bumped
    epoch, and leaves the file open for appends.
    """

    def __init__(self, path: str, epoch: int):
        self.path = path
        self.epoch = epoch
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "ab")
        self._append_index = 0
        self.counters: Dict[str, int] = {
            "journal_appends": 0,
            "journal_truncated": 0,
            "journal_replayed_units": 0,
        }

    # -- construction ------------------------------------------------------

    @classmethod
    def recover(cls, path: str, fingerprint: str,
                unit_keys: List[str],
                meta: Optional[dict] = None) -> Tuple["Journal", Optional[JournalState]]:
        """Open ``path`` for a sweep with the given identity.

        Missing/empty file → a fresh epoch-0 journal (header written
        durably before return). Existing file → replay, refuse a
        fingerprint or unit-key mismatch, compact to a snapshot with
        ``epoch + 1``, and return the replayed state so the coordinator
        can mark journaled units done and restore envelopes.
        """
        state = replay(path)
        if state is None:
            journal = cls(path, epoch=0)
            journal._write_header(fingerprint, unit_keys, 0, meta or {})
            return journal, None
        if state.fingerprint != fingerprint:
            raise JournalError(
                f"journal {path} was written by fingerprint "
                f"{state.fingerprint[:12]}…, this run is "
                f"{fingerprint[:12]}… — refusing to replay rows across "
                f"builds (delete the journal to start over)")
        if state.unit_keys != list(unit_keys):
            raise JournalError(
                f"journal {path} describes {len(state.unit_keys)} unit(s) "
                f"that do not match this sweep's {len(unit_keys)} — the job "
                f"list changed; refusing to replay (delete the journal to "
                f"start over)")
        epoch = state.epoch + 1
        compacted = [_encode_record({
            "type": "header", "journal": JOURNAL_VERSION,
            "fingerprint": fingerprint, "epoch": epoch,
            "unit_keys": list(unit_keys), "meta": state.meta or (meta or {}),
        })]
        for unit in sorted(state.commits):
            commit = state.commits[unit]
            compacted.append(_encode_record({
                "type": "commit", "unit": unit, "digest": commit["digest"],
                "rows": commit["rows"], "worker": commit["worker"],
                "cached": commit["cached"]}))
        for unit in sorted(state.checkpoints):
            if unit in state.commits:
                continue  # a committed unit's envelope is dead weight
            envelope = state.checkpoints[unit]
            compacted.append(_encode_record({
                "type": "checkpoint", "unit": unit,
                "cursor": envelope.get("cursor"), "state": envelope}))
        atomic_write_text(path, b"".join(compacted).decode())
        journal = cls(path, epoch=epoch)
        journal.counters["journal_truncated"] = state.truncated
        journal.counters["journal_replayed_units"] = len(state.commits)
        state.epoch = epoch
        return journal, state

    # -- appends -----------------------------------------------------------

    def _write_header(self, fingerprint: str, unit_keys: List[str],
                      epoch: int, meta: dict) -> None:
        self._append({"type": "header", "journal": JOURNAL_VERSION,
                      "fingerprint": fingerprint, "epoch": epoch,
                      "unit_keys": list(unit_keys), "meta": meta})

    def append_commit(self, unit: int, rows_wire: list, digest: str,
                      worker: str, cached: bool = False) -> None:
        self._append({"type": "commit", "unit": unit, "digest": digest,
                      "rows": rows_wire, "worker": worker, "cached": cached})

    def append_checkpoint(self, unit: int, cursor: int, state: dict) -> None:
        self._append({"type": "checkpoint", "unit": unit, "cursor": cursor,
                      "state": state})

    def _append(self, record: dict) -> None:
        data = _encode_record(record)
        self._fire_fault(data)
        self._handle.write(data)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.counters["journal_appends"] += 1

    def _fire_fault(self, data: bytes) -> None:
        """``dist.journal`` hook: exec actions (``kill``) crash before
        the record lands — acknowledged-at-N-1, dead-before-N; the
        ``truncate`` data action writes half the record, makes the torn
        bytes durable, then SIGKILLs — a crash mid-``write``."""
        if not faults.enabled():
            return
        index = self._append_index
        self._append_index += 1
        action = faults.check("dist.journal", index)
        if action == "truncate":
            self._handle.write(data[:max(1, len(data) // 2)])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            os.kill(os.getpid(), signal.SIGKILL)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
            self._handle.close()
            self._handle = None
            fsync_directory(os.path.dirname(os.path.abspath(self.path)))

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def journal_meta(path: str) -> dict:
    """Read just the header ``meta`` payload (``repro serve`` uses this
    to rebuild a flight's job request from its journal on restart).
    Raises :class:`JournalError` when the journal is unusable or has no
    header."""
    state = replay(path)
    if state is None:
        raise JournalError(f"journal {path} has no durable header")
    return state.meta


__all__ = ["JOURNAL_VERSION", "Journal", "JournalError", "JournalState",
           "journal_meta", "replay"]
