"""Coordinator/worker wire protocol for distributed sweep execution.

The distributed tier speaks the same dialect as ``repro serve``: JSON
request bodies over HTTP/1.1, one NDJSON line per response — the
framing is literally :func:`repro.service.protocol.encode_event` /
:func:`~repro.service.protocol.decode_event`, so a worker needs nothing
but a socket and ``json.loads`` (the stdlib-only contract, extended
across machines).

Endpoints (coordinator side)
----------------------------

* ``POST /v1/register`` — ``{"name": ..., "workers": n}`` → a
  server-assigned worker id plus the lease term;
* ``POST /v1/lease`` — ``{"worker": id}`` → a work unit
  (``{"event": "lease", "unit": i, "key": ..., "jobs": [[executor,
  params_json], ...], "lease": id, "lease_seconds": s}``), or
  ``{"event": "wait", "poll": s}`` (nothing dispatchable right now),
  or ``{"event": "done"}`` (sweep finished — disperse);
* ``POST /v1/heartbeat`` — ``{"worker": id, "leases": [...]}`` renews
  the named leases; the response lists which renewed and which were
  already ``lost`` (expired and re-dispatched); an optional
  ``"failures"`` integer self-reports the worker's cumulative
  heartbeat-thread error count so the coordinator's ``snapshot()``
  can surface a flaky link per worker;
* ``POST /v1/result`` — ``{"worker": id, "unit": i, "key": ...,
  "lease": id, "rows": <rows_to_wire(...)>}`` commits a unit
  (idempotent — see below; rows use the order-preserving schema-table
  encoding of :func:`rows_to_wire`), or carries ``"error"`` instead of
  ``"rows"`` to report a deterministic job failure; an optional
  ``"provenance"`` field records whether the rows were ``computed`` or
  answered from the worker's local result cache (``cache_hit``);
* ``POST /v1/checkpoint`` — ``{"worker": id, "unit": i, "key": ...,
  "lease": id, "state": <envelope>}`` migrates a pipeline unit's
  chunk-seam checkpoint envelope to the coordinator; the envelope is
  validated (version, kind, fingerprint) before it is stored, and the
  latest stored envelope rides along on the unit's next lease grant so
  a successor resumes mid-unit;
* ``POST /v1/deregister`` — ``{"worker": id}`` announces a graceful
  drain: held leases are released for immediate re-dispatch and the
  worker stops counting as live;
* ``GET /metrics`` / ``GET /healthz`` — the same observability surface
  every other daemon in this repo exposes.

Every coordinator reply carries an ``"epoch"`` integer — the journal
incarnation counter (0 for a never-restarted coordinator, +1 per
recovery). A lease/heartbeat/result/checkpoint from a worker id the
current incarnation never minted is answered ``HTTP 409`` with
``{"event": "error", "error": "unknown_worker", "epoch": N}``: the
structured signal that the worker must re-register (its old leases
were voided by recovery) rather than treat the coordinator as down.

Work-unit identity
------------------

A unit is a contiguous slice of the sweep's job list, content-addressed
exactly like the result cache: :func:`unit_key` hashes the ordered
(executor, canonical params) pairs together with the code fingerprint.
A commit must present the key the coordinator computed — a worker
running different code (different fingerprint baked into its lease)
cannot silently contribute rows. Idempotency rides on the same
currency: :func:`rows_digest` hashes a result payload canonically, so
the coordinator can prove a duplicate commit (a lease that expired,
was re-dispatched, and then *both* workers answered) carries identical
bytes before dropping it.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.jobs import Job, canonical_json
from repro.service.protocol import (  # noqa: F401 — re-exported framing
    ProtocolError,
    decode_event,
    encode_event,
)

WIRE_VERSION = 1

#: actions a lease response can carry
LEASE_EVENTS = ("lease", "wait", "done")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def jobs_to_wire(jobs: Sequence[Job]) -> List[List[str]]:
    """A unit's job list as JSON-able (executor, params_json) pairs."""
    return [[job.executor, job.params_json] for job in jobs]


def jobs_from_wire(payload: object) -> List[Job]:
    _require(isinstance(payload, list) and payload, "'jobs' must be a non-empty list")
    jobs = []
    for entry in payload:
        _require(isinstance(entry, (list, tuple)) and len(entry) == 2
                 and all(isinstance(part, str) for part in entry),
                 "each job must be an [executor, params_json] pair")
        jobs.append(Job(entry[0], entry[1]))
    return jobs


def rows_to_wire(rows_per_job: Sequence[List[dict]]) -> List[list]:
    """Order-preserving row encoding. The NDJSON framing canonicalizes
    JSON objects (sorted keys), which would silently reorder row dicts
    and break the bit-identical contract — ResultTable infers column
    order from row insertion order. So rows cross the wire as the same
    schema-table encoding the runner's chunk payloads use: per job,
    ``[schemas, [[schema_index, [values...]], ...]]`` where each schema
    is the ordered key list. Lists survive canonicalization intact."""
    wire = []
    for rows in rows_per_job:
        schemas: List[List[str]] = []
        index: Dict[tuple, int] = {}
        encoded = []
        for row in rows:
            keys = tuple(row.keys())
            si = index.get(keys)
            if si is None:
                si = index[keys] = len(schemas)
                schemas.append(list(keys))
            encoded.append([si, [row[k] for k in keys]])
        wire.append([schemas, encoded])
    return wire


def rows_from_wire(payload: object) -> List[List[dict]]:
    """Decode :func:`rows_to_wire`, validating shape (raises
    :class:`ProtocolError` on malformed payloads)."""
    _require(isinstance(payload, list), "'rows' must be a list of units")
    rows_per_job: List[List[dict]] = []
    for entry in payload:
        _require(isinstance(entry, (list, tuple)) and len(entry) == 2,
                 "each job entry must be [schemas, rows]")
        schemas, encoded = entry
        _require(isinstance(schemas, list)
                 and all(isinstance(schema, list)
                         and all(isinstance(k, str) for k in schema)
                         for schema in schemas),
                 "'schemas' must be lists of key strings")
        rows = []
        for item in encoded:
            _require(isinstance(item, (list, tuple)) and len(item) == 2,
                     "each row must be [schema_index, values]")
            si, values = item
            _require(isinstance(si, int) and 0 <= si < len(schemas),
                     "row schema index out of range")
            schema = schemas[si]
            _require(isinstance(values, list) and len(values) == len(schema),
                     "row values must match the schema length")
            rows.append(dict(zip(schema, values)))
        rows_per_job.append(rows)
    return rows_per_job


def unit_key(jobs: Sequence[Job], fingerprint: str = "") -> str:
    """Content-addressed unit identity: SHA-256 over (wire version,
    ordered job identities, code fingerprint) — the ResultCache key
    currency, lifted to a slice of jobs."""
    material = canonical_json({
        "v": WIRE_VERSION,
        "jobs": [[job.executor, job.params_json] for job in jobs],
        "fingerprint": fingerprint,
    })
    return hashlib.sha256(material.encode()).hexdigest()


def rows_digest(rows_per_job: Sequence[List[dict]]) -> str:
    """Canonical digest of a unit result payload, used to verify that
    duplicate commits are byte-equal before dropping them."""
    return hashlib.sha256(
        canonical_json(list(rows_per_job)).encode()).hexdigest()


# -- request validation ----------------------------------------------------


def parse_register(obj: object) -> Dict[str, object]:
    _require(isinstance(obj, dict), "register body must be a JSON object")
    name = obj.get("name", "")
    _require(isinstance(name, str), "'name' must be a string")
    workers = obj.get("workers", 1)
    _require(isinstance(workers, int) and workers >= 1,
             "'workers' must be a positive integer")
    return {"name": name, "workers": workers}


def _worker_id(obj: dict) -> str:
    worker = obj.get("worker")
    _require(isinstance(worker, str) and bool(worker),
             "'worker' must be a non-empty worker id")
    return worker


def parse_lease_request(obj: object) -> str:
    _require(isinstance(obj, dict), "lease body must be a JSON object")
    return _worker_id(obj)


def parse_heartbeat(obj: object) -> Tuple[str, List[str], int]:
    _require(isinstance(obj, dict), "heartbeat body must be a JSON object")
    worker = _worker_id(obj)
    leases = obj.get("leases", [])
    _require(isinstance(leases, list)
             and all(isinstance(entry, str) for entry in leases),
             "'leases' must be a list of lease ids")
    failures = obj.get("failures", 0)
    _require(isinstance(failures, int) and failures >= 0,
             "'failures' must be a non-negative integer")
    return worker, leases, failures


def parse_result(obj: object) -> Dict[str, object]:
    """Validate a result submission; returns worker/unit/key/lease plus
    exactly one of ``rows`` (list of per-job row lists) or ``error``."""
    _require(isinstance(obj, dict), "result body must be a JSON object")
    worker = _worker_id(obj)
    unit = obj.get("unit")
    _require(isinstance(unit, int) and unit >= 0,
             "'unit' must be a non-negative unit index")
    key = obj.get("key")
    _require(isinstance(key, str) and bool(key), "'key' must be the unit key")
    lease = obj.get("lease")
    _require(lease is None or isinstance(lease, str),
             "'lease' must be a lease id when present")
    rows: Optional[List[List[dict]]] = None
    error = obj.get("error")
    if error is None:
        rows = rows_from_wire(obj.get("rows"))
    else:
        _require(isinstance(error, dict)
                 and isinstance(error.get("executor"), str)
                 and isinstance(error.get("params"), str)
                 and isinstance(error.get("cause"), str),
                 "'error' must carry executor/params/cause strings")
    provenance = obj.get("provenance", "computed")
    _require(provenance in ("computed", "cache_hit"),
             "'provenance' must be 'computed' or 'cache_hit'")
    return {"worker": worker, "unit": unit, "key": key, "lease": lease,
            "rows": rows, "error": error, "provenance": provenance}


def parse_checkpoint(obj: object) -> Dict[str, object]:
    """Validate a checkpoint migration; returns worker/unit/key/lease
    plus the (syntactically object-shaped) envelope ``state``. Semantic
    envelope validation — version, kind, fingerprint — is the
    coordinator's job, because it owns the unit's expected fingerprint."""
    _require(isinstance(obj, dict), "checkpoint body must be a JSON object")
    worker = _worker_id(obj)
    unit = obj.get("unit")
    _require(isinstance(unit, int) and unit >= 0,
             "'unit' must be a non-negative unit index")
    key = obj.get("key")
    _require(isinstance(key, str) and bool(key), "'key' must be the unit key")
    lease = obj.get("lease")
    _require(isinstance(lease, str) and bool(lease),
             "'lease' must be the holding lease id")
    state = obj.get("state")
    _require(isinstance(state, dict), "'state' must be a checkpoint envelope")
    return {"worker": worker, "unit": unit, "key": key, "lease": lease,
            "state": state}


def parse_deregister(obj: object) -> str:
    _require(isinstance(obj, dict), "deregister body must be a JSON object")
    return _worker_id(obj)
