"""Tabular results with a stable row schema and multiple emitters.

Every sweep produces a :class:`ResultTable`: an ordered list of
JSON-able row dicts plus an explicit column order. The table is the
single interchange format between the runner, the result cache, the
benchmark harness, and the CLI — markdown for humans, CSV/JSON for
downstream tooling.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Callable, Dict, Iterable, List, Optional, Sequence


def _freeze(value: object) -> object:
    """Hashable stand-in for a row cell (dicts/lists become tuples)."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def _fmt_cell(value: object, float_digits: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


class ResultTable:
    """An ordered collection of result rows with a stable column order.

    Columns are either declared explicitly or inferred as the union of
    row keys in first-seen order, so the same sweep always emits the
    same schema regardless of which rows happen to come first.
    """

    def __init__(self, rows: Optional[Iterable[Dict[str, object]]] = None,
                 columns: Optional[Sequence[str]] = None):
        self.rows: List[Dict[str, object]] = list(rows or [])
        self._declared_columns = list(columns) if columns is not None else None

    # -- construction ------------------------------------------------------

    def append(self, row: Dict[str, object]) -> None:
        self.rows.append(row)

    def extend(self, rows: Iterable[Dict[str, object]]) -> None:
        self.rows.extend(rows)

    # -- schema ------------------------------------------------------------

    @property
    def columns(self) -> List[str]:
        if self._declared_columns is not None:
            return list(self._declared_columns)
        seen: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        return seen

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ResultTable):
            return NotImplemented
        return self.rows == other.rows and self.columns == other.columns

    def column(self, name: str) -> List[object]:
        """All values of one column (missing cells become None)."""
        return [row.get(name) for row in self.rows]

    # -- relational helpers ------------------------------------------------

    def where(self, predicate: Optional[Callable[[Dict[str, object]], bool]] = None,
              **equals: object) -> "ResultTable":
        """Rows matching a predicate and/or column equality filters."""
        def keep(row: Dict[str, object]) -> bool:
            if predicate is not None and not predicate(row):
                return False
            return all(row.get(k) == v for k, v in equals.items())

        return ResultTable([r for r in self.rows if keep(r)], self._declared_columns)

    def sorted_by(self, *keys: str) -> "ResultTable":
        return ResultTable(sorted(self.rows, key=lambda r: tuple(r.get(k) for k in keys)),
                           self._declared_columns)

    def with_normalized(self, value: str = "total_cycles",
                        baseline: Dict[str, object] = None,
                        group_by: Sequence[str] = ("model", "mode", "batch", "config"),
                        out: str = "normalized") -> "ResultTable":
        """Add ``out`` = row[value] / baseline-row[value], where the
        baseline row is the one matching ``baseline`` (default:
        ``scheme == "NP"``) within the same ``group_by`` bucket.

        This is how Figure 3's "normalized execution time" comes out of
        a flat sweep that simply includes the NP scheme in its grid.
        The default grouping includes the accelerator-config identity so
        a design-space sweep normalizes each config against its own NP
        baseline.
        """
        baseline = baseline or {"scheme": "NP"}

        def group_key(row: Dict[str, object]) -> tuple:
            return tuple(_freeze(row.get(g)) for g in group_by)

        base_values: Dict[tuple, float] = {}
        for row in self.rows:
            if all(row.get(k) == v for k, v in baseline.items()):
                base_values[group_key(row)] = float(row[value])
        out_rows = []
        for row in self.rows:
            new = dict(row)
            denom = base_values.get(group_key(row))
            new[out] = float(row[value]) / denom if denom else None
            out_rows.append(new)
        columns = None
        if self._declared_columns is not None:
            columns = self._declared_columns + ([out] if out not in self._declared_columns else [])
        return ResultTable(out_rows, columns)

    # -- emitters ----------------------------------------------------------

    def to_markdown(self, float_digits: int = 4,
                    columns: Optional[Sequence[str]] = None) -> str:
        cols = list(columns) if columns is not None else self.columns
        lines = ["| " + " | ".join(cols) + " |",
                 "|" + "|".join("---" for _ in cols) + "|"]
        for row in self.rows:
            cells = [_fmt_cell(row.get(c, ""), float_digits) for c in cols]
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self.columns, extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return buf.getvalue()

    def to_json(self, indent: int = 2) -> str:
        return json.dumps({"columns": self.columns, "rows": self.rows},
                          indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ResultTable":
        payload = json.loads(text)
        return cls(payload["rows"], payload.get("columns"))


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    """Render header + rows as markdown lines (legacy benchmark format)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return lines


def fmt(value: float, digits: int = 2) -> str:
    """Fixed-point float formatting used throughout the harness."""
    return f"{value:.{digits}f}"
