"""Content-addressed on-disk cache for sweep results.

A job's cache key is the SHA-256 of (executor name, canonical params,
code fingerprint). The fingerprint hashes every ``.py`` source file of
the :mod:`repro` package, so *any* change to the models, schemes, or
analysis code invalidates all cached rows — the cache can serve stale
numbers only if the code that produced them is byte-identical. Entries
are JSON files sharded by key prefix.

Durability: ``put`` publishes atomically (temp file, fsync, rename,
directory fsync), so a host crash leaves either the old entry or the
new one, never a truncated hybrid. ``get`` distinguishes a plain miss
(no file) from a *corrupt* entry: corruption is quarantined — the file
is renamed to ``<key>.json.corrupt`` and counted — so a damaged entry
is recomputed exactly once instead of being re-parsed (and re-missed)
on every future lookup, and the evidence is preserved for inspection.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional

from repro.checkpoint import fsync_directory
from repro.experiments.jobs import Job
from repro.testing import faults

_ENV_DIR = "REPRO_SWEEP_CACHE_DIR"
_fingerprint_memo: Dict[str, str] = {}


def default_cache_dir() -> str:
    env = os.environ.get(_ENV_DIR)
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME", os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "repro", "sweeps")


def code_fingerprint(package_root: Optional[str] = None) -> str:
    """SHA-256 over the sorted (relative path, content hash) pairs of
    every Python source file under the repro package."""
    if package_root is None:
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
    if package_root in _fingerprint_memo:
        return _fingerprint_memo[package_root]
    entries = []
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            with open(path, "rb") as f:
                digest = hashlib.sha256(f.read()).hexdigest()
            entries.append((os.path.relpath(path, package_root), digest))
    payload = json.dumps(entries, separators=(",", ":")).encode()
    fingerprint = hashlib.sha256(payload).hexdigest()
    _fingerprint_memo[package_root] = fingerprint
    return fingerprint


class ResultCache:
    """Maps jobs to previously computed row lists."""

    def __init__(self, directory: Optional[str] = None,
                 fingerprint: Optional[str] = None):
        self.directory = directory or default_cache_dir()
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self._puts = 0

    # -- keys --------------------------------------------------------------

    def key(self, job: Job) -> str:
        material = "\x1f".join((job.executor, job.params_json, self.fingerprint))
        return hashlib.sha256(material.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + ".json")

    # -- lookup / store ----------------------------------------------------

    def get(self, job: Job) -> Optional[List[Dict[str, object]]]:
        path = self._path(self.key(job))
        try:
            with open(path) as f:
                raw = f.read()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw)
            rows = payload["rows"]
            if not isinstance(rows, list) or not all(isinstance(r, dict) for r in rows):
                raise ValueError("malformed rows")
        except (ValueError, KeyError, TypeError):
            # the file exists but does not parse/validate: quarantine it
            # so the next lookup is a clean miss (recompute + rewrite)
            # and the damaged bytes stay inspectable
            self.corrupt += 1
            self.misses += 1
            try:
                os.replace(path, path + ".corrupt")
            except OSError:  # pragma: no cover - racing unlink/replace
                pass
            return None
        self.hits += 1
        return rows

    def put(self, job: Job, rows: List[Dict[str, object]]) -> None:
        path = self._path(self.key(job))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "executor": job.executor,
            "params": job.params,
            "fingerprint": self.fingerprint,
            "rows": rows,
        }
        # atomic + durable publish: flush and fsync before the rename so
        # a host crash can never expose a truncated entry, then fsync
        # the directory so the rename itself survives
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
            fsync_directory(os.path.dirname(path))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        if faults.enabled():
            self._damage(path)
        self._puts += 1

    def _damage(self, path: str) -> None:
        """Fault-injection seam: optionally corrupt or truncate the
        entry just published (simulating torn writes on filesystems
        without the fsync discipline, or bit rot)."""
        action = faults.check("cache.put", self._puts)
        if action == "corrupt":
            with open(path, "r+") as f:
                f.seek(0)
                f.write("\x00garbage\x00")
        elif action == "truncate":
            size = os.path.getsize(path)
            with open(path, "r+") as f:
                f.truncate(max(1, size // 2))

    @property
    def counters(self) -> Dict[str, int]:
        """Machine-readable lookup/store ledger — the distributed
        coordinator re-exports this on ``/metrics`` so operators can see
        how much of a fleet's work the shared cache absorbed."""
        return {"hits": self.hits, "misses": self.misses,
                "corrupt": self.corrupt, "puts": self._puts}

    @property
    def stats(self) -> str:
        return (f"{self.hits} hits, {self.misses} misses, "
                f"{self.corrupt} corrupt ({self.directory})")
