"""Job executors: the functions sweep jobs resolve to.

Each executor takes a JSON-able params dict and returns one row dict (or
a list of them) with JSON-able values only — rows go straight into the
on-disk result cache and across process boundaries. Executors must be
deterministic in their params: same params + same code ⇒ same rows.
That property is what makes the cache sound and lets the runner assert
worker-count independence.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List

from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
from repro.accel.models import build_model
from repro.accel.zoo_ext import build_extended
from repro.experiments.jobs import executor
from repro.mem.trace import RequestKind
from repro.protection import build_scheme

#: accelerator-config fields a sweep may override (the DRAM/bandwidth
#: design space; everything else is the TPU-v1-like fixed point)
_CONFIG_OVERRIDES = ("pe_rows", "pe_cols", "sram_bytes", "freq_mhz",
                     "dram_bandwidth_gbps", "vector_lanes")


def validate_model(name: str, zoo: str = "auto") -> None:
    """Raise KeyError for an unresolvable model name without paying the
    cost of constructing the network (used for CLI pre-validation)."""
    from repro.accel.models import ALIASES, MODEL_ZOO
    from repro.accel.zoo_ext import EXTENDED_ZOO

    key = ALIASES.get(name.lower(), name.lower())
    in_paper = key in MODEL_ZOO
    in_extended = name in EXTENDED_ZOO
    if zoo == "paper" and not in_paper:
        raise KeyError(f"unknown model {name!r} in the paper zoo")
    if zoo == "extended" and not in_extended:
        raise KeyError(f"unknown model {name!r} in the extended zoo")
    if zoo == "auto" and not (in_paper or in_extended):
        raise KeyError(f"model {name!r} in neither zoo")


#: built models by (name, zoo): the zoo builders are deterministic and
#: the accelerator model never mutates a network, so one instance per
#: grid point serves every scheme of a sweep (per worker process)
_MODEL_MEMO: Dict[tuple, tuple] = {}


def resolve_model(name: str, zoo: str = "auto"):
    """Build a network from the paper zoo, the extended zoo, or both.

    Goes through :func:`build_model` so the paper's aliases and case
    normalization apply to sweeps exactly as they do to ``simulate``.
    On the fast path (:mod:`repro.perf`) repeated (name, zoo) pairs
    share one built instance.
    """
    from repro import perf

    if perf.fast_enabled():
        key = (name, zoo)
        hit = _MODEL_MEMO.get(key)
        if hit is None:
            hit = _MODEL_MEMO[key] = _resolve_model_uncached(name, zoo)
        return hit
    return _resolve_model_uncached(name, zoo)


def _resolve_model_uncached(name: str, zoo: str):
    if zoo not in ("paper", "extended", "auto"):
        raise ValueError(f"unknown zoo {zoo!r} (paper | extended | auto)")
    if zoo in ("paper", "auto"):
        try:
            return build_model(name), "paper"
        except KeyError:
            if zoo == "paper":
                raise
    try:
        return build_extended(name), "extended"
    except KeyError:
        if zoo == "extended":
            raise
    raise KeyError(f"model {name!r} in neither zoo")


#: built data-flow graphs per (name, zoo, training, batch, bpe): the
#: graph is a pure function of the (memoized) model and is identical
#: for every protection scheme of a grid point
_DFG_MEMO: Dict[tuple, object] = {}


def _resolve_dfg(name: str, zoo: str, model, training: bool, batch: int,
                 bytes_per_element: int):
    from repro import perf
    from repro.accel.dfg import build_inference_dfg, build_training_dfg

    build = build_training_dfg if training else build_inference_dfg
    if not perf.fast_enabled():
        return build(model, batch, bytes_per_element)
    key = (name, zoo, training, batch, bytes_per_element)
    hit = _DFG_MEMO.get(key)
    if hit is None:
        hit = _DFG_MEMO[key] = build(model, batch, bytes_per_element)
    return hit


#: total-MAC counts per (name, zoo) — walking every layer's GEMM list
#: is pure and repeated once per scheme otherwise
_GMACS_MEMO: Dict[tuple, float] = {}


def _model_gmacs(name: str, zoo: str, model) -> float:
    from repro import perf

    if not perf.fast_enabled():
        return model.macs(1) / 1e9
    key = (name, zoo)
    hit = _GMACS_MEMO.get(key)
    if hit is None:
        hit = _GMACS_MEMO[key] = model.macs(1) / 1e9
    return hit


def _clear_executor_memos() -> None:
    _MODEL_MEMO.clear()
    _DFG_MEMO.clear()
    _GMACS_MEMO.clear()


from repro import perf as _perf  # noqa: E402 — memo registration

_perf.register_cache(_clear_executor_memos)


@executor("accel_run")
def accel_run(params: Dict[str, object]) -> Dict[str, object]:
    """One cycle-level simulation: (model, scheme, batch, mode, config)
    → raw cycles/traffic metrics. Normalization happens at table level
    by joining against the NP row of the same grid point."""
    model, zoo = resolve_model(params["model"], params.get("zoo", "auto"))
    overrides = dict(params.get("config") or {})
    unknown = set(overrides) - set(_CONFIG_OVERRIDES)
    if unknown:
        raise ValueError(f"unsupported config overrides: {sorted(unknown)}")
    config = dataclasses.replace(TPU_V1_CONFIG, **overrides) if overrides else TPU_V1_CONFIG
    scheme = build_scheme(params["scheme"], **dict(params.get("scheme_params") or {}))
    training = bool(params.get("training", False))
    batch = int(params.get("batch", 1))

    dfg = _resolve_dfg(params["model"], params.get("zoo", "auto"), model,
                       training, batch, config.bytes_per_element)
    result = AcceleratorModel(config).run_dfg(model, dfg, scheme, batch)
    breakdown = result.metadata_breakdown
    return {
        "model": params["model"],  # the grid key; model.name may be descriptive
        "network": model.name,
        "zoo": zoo,
        "family": model.family,
        "scheme": result.scheme,
        "scheme_key": params["scheme"],
        "scheme_params": dict(params.get("scheme_params") or {}),
        "mode": "training" if training else "inference",
        "batch": batch,
        "config": overrides,  # accelerator overrides; {} = TPU-v1 fixed point
        "dram_gbps": config.dram_bandwidth_gbps,
        "total_cycles": result.total_cycles,
        "seconds": result.seconds,
        "data_read_bytes": sum(l.data_read_bytes for l in result.layers),
        "data_write_bytes": sum(l.data_write_bytes for l in result.layers),
        "metadata_read_bytes": sum(l.metadata_read_bytes for l in result.layers),
        "metadata_write_bytes": sum(l.metadata_write_bytes for l in result.layers),
        "vn_bytes": breakdown.get(RequestKind.VN, 0),
        "mac_bytes": breakdown.get(RequestKind.MAC, 0),
        "tree_bytes": breakdown.get(RequestKind.TREE, 0),
        "traffic_increase": result.traffic_increase,
        "gmacs": _model_gmacs(params["model"], params.get("zoo", "auto"), model),
    }


@executor("fpga_row")
def fpga_row(params: Dict[str, object]) -> Dict[str, object]:
    """One Table II cell on the CHaiDNN-like FPGA prototype model."""
    from repro.analysis.fpga import FpgaConfig, FpgaPrototypeModel

    engines = int(params.get("engines", 3))
    model = FpgaPrototypeModel(aes_engines=engines)
    config = FpgaConfig(int(params["dsps"]), int(params.get("precision", 8)))
    row = dict(model.table_row(params["network"], config))
    row["engines"] = engines
    return row


@executor("fpga_resources")
def fpga_resources(params: Dict[str, object]) -> List[Dict[str, object]]:
    """Section III-B resource-overhead decomposition."""
    from repro.analysis.fpga import FpgaResourceModel

    model = FpgaResourceModel()
    aes_luts_pct, aes_ffs_pct = model.aes_overhead_pct()
    total = model.total_overhead(aes_engines=int(params.get("aes_engines", 3)))
    return [
        {"resource": "AES core LUTs", "count": model.aes_luts, "pct": aes_luts_pct},
        {"resource": "AES core FFs", "count": model.aes_ffs, "pct": aes_ffs_pct},
        {"resource": "MicroBlaze LUTs", "count": model.mcu_luts,
         "pct": 100.0 * model.mcu_luts / model.base_luts},
        {"resource": "MicroBlaze FFs", "count": model.mcu_ffs,
         "pct": 100.0 * model.mcu_ffs / model.base_ffs},
        {"resource": "MicroBlaze BRAMs", "count": model.mcu_brams, "pct": total["brams_pct"]},
        {"resource": "MicroBlaze DSPs", "count": model.mcu_dsps, "pct": total["dsps_pct"]},
        {"resource": "Total (AES + MCU) LUTs", "count": total["luts"], "pct": total["luts_pct"]},
    ]


@executor("instruction_latency")
def instruction_latency(params: Dict[str, object]) -> List[Dict[str, object]]:
    """Section III-B GuardNN instruction latencies (ms)."""
    from repro.analysis.microcontroller import InstructionLatencyModel

    lat = InstructionLatencyModel()
    report = lat.report(build_model(params.get("network", "vgg16")))
    rows = [
        {"instruction": "GetPK + InitSession", "ms": report["key_exchange_ms"]},
        {"instruction": "SetInput", "ms": report["set_input_ms"]},
        {"instruction": "ExportOutput", "ms": report["export_output_ms"]},
        {"instruction": "SignOutput", "ms": report["sign_output_ms"]},
    ]
    for name in params.get("set_weight_networks", ()):
        rows.append({"instruction": f"SetWeight ({name})",
                     "ms": lat.set_weight_seconds(build_model(name)) * 1e3})
    return rows


@executor("asic_overhead")
def asic_overhead(params: Dict[str, object]) -> Dict[str, object]:
    """Section III-C ASIC area/power overhead at one engine count
    (``engines`` absent ⇒ the bandwidth-matching count)."""
    from repro.analysis.area import AsicAreaModel

    model = AsicAreaModel()
    engines = params.get("engines")
    row = dict(model.overhead(int(engines) if engines is not None else None))
    row["bandwidth_matched"] = engines is None
    return row


@executor("table3_comparison")
def table3_comparison(params: Dict[str, object]) -> List[Dict[str, object]]:
    """Table III: privacy-preserving ML approaches compared."""
    from repro.analysis.comparison import ComparisonTable

    return [dict(row) for row in ComparisonTable().as_dicts()]


@executor("tcb_report")
def tcb_report(params: Dict[str, object]) -> List[Dict[str, object]]:
    """TCB LoC decomposition over this repository's source."""
    from repro.analysis.tcb import measure_tcb

    report = measure_tcb()
    rows = [{"component": label, "loc": loc, "trusted": True}
            for label, loc in sorted(report.categories.items())]
    rows.append({"component": "TCB total", "loc": report.tcb_loc, "trusted": True})
    rows.append({"component": "untrusted / tooling", "loc": report.untrusted_loc,
                 "trusted": False})
    return rows


@executor("dram_characterization")
def dram_characterization(params: Dict[str, object]) -> Dict[str, object]:
    """Effective bandwidth of the event-driven DDR4 model under one
    access pattern (streaming | random | bp-interleaved)."""
    import numpy as np

    from repro import perf
    from repro.mem.controller import MemoryController
    from repro.mem.dram import DDR4_2400
    from repro.workloads import generators as gen

    pattern = params["pattern"]
    nbytes = int(params.get("nbytes", 1 << 18))
    fast = perf.fast_enabled()
    if pattern == "streaming":
        trace = (gen.streaming_trace_batch if fast else gen.streaming_trace)(nbytes)
    elif pattern == "random":
        rng = np.random.default_rng(int(params.get("seed", 3)))
        make = gen.random_trace_batch if fast else gen.random_trace
        trace = make(int(params.get("requests", 4096)), 1 << 28, rng)
    elif pattern == "bp-interleaved":
        trace = (gen.bp_metadata_trace_batch if fast else gen.bp_metadata_trace)(nbytes)
    else:
        raise ValueError(f"unknown pattern {pattern!r}")
    stats = MemoryController().run_trace(trace)
    return {
        "pattern": pattern,
        "requests": len(trace),
        "effective_gbps": stats.bandwidth_gbps(DDR4_2400.freq_mhz),
        "peak_gbps": DDR4_2400.peak_bandwidth_gbps,
    }


@executor("crypto_kernel")
def crypto_kernel(params: Dict[str, object]) -> Dict[str, object]:
    """Deterministic work summary of one functional-crypto kernel: the
    bytes processed and a digest of the output, so any change to the
    primitives shows up as a row change (timing lives in the
    pytest-benchmark harness, not here)."""
    kernel = params["kernel"]
    nbytes = int(params.get("nbytes", 1024))
    key = bytes(range(16))
    data = bytes(i & 0xFF for i in range(nbytes))
    if kernel == "aes-block":
        from repro.crypto.aes import AES128

        out = AES128(key).encrypt_block(data[:16])
        nbytes = 16
    elif kernel == "aes-ctr":
        from repro.crypto.ctr import AesCtr

        out = AesCtr(key).crypt_region(0, 1, data)
    elif kernel == "cmac":
        from repro.crypto.cmac import AesCmac

        out = AesCmac(key).mac(data)
    elif kernel == "gmac":
        from repro.crypto.gmac import AesGmac

        out = AesGmac(key).mac(bytes(12), data)
    elif kernel == "sha256":
        from repro.crypto.sha256 import sha256

        out = sha256(data)
    elif kernel == "hmac-sha256":
        from repro.crypto.hmac import hmac_sha256

        out = hmac_sha256(key, data)
    else:
        raise ValueError(f"unknown kernel {kernel!r}")
    return {
        "kernel": kernel,
        "bytes": nbytes,
        "output_sha256": hashlib.sha256(out).hexdigest(),
    }


@executor("pipeline_run")
def pipeline_run(params: Dict[str, object]) -> List[Dict[str, object]]:
    """End-to-end streaming simulation of one workload through the
    :class:`~repro.mem.pipeline.TracePipeline`: one generation pass,
    every requested protection scheme timed on its own DDR4 controller
    (the multi-scheme shared-pass mode). One row per scheme, with the
    unprotected baseline's cycles joined in as ``slowdown``."""
    return pipeline_rows(params)


def _pipeline_config(params: Dict[str, object]):
    """Resolve a ``pipeline_run`` params dict to (workload, schemes,
    chunk_requests, spec) — the single parse shared by execution and
    fingerprinting, so the two can never disagree about what a job
    means."""
    from repro.mem.pipeline import DEFAULT_CHUNK_REQUESTS
    from repro.workloads import build_trace_spec

    workload = str(params["workload"])
    schemes = tuple(params.get("schemes", ("np", "guardnn-c", "guardnn-ci", "bp")))
    chunk_requests = int(params.get("chunk_requests", DEFAULT_CHUNK_REQUESTS))
    spec_params = {key: value for key, value in params.items()
                   if key not in ("workload", "schemes", "chunk_requests")}
    spec = build_trace_spec(workload, **spec_params)
    return workload, schemes, chunk_requests, spec


def pipeline_fingerprint(params: Dict[str, object]) -> Dict[str, object]:
    """The :meth:`~repro.mem.pipeline.TracePipeline.fingerprint` a
    ``pipeline_run`` job with these params will compute — without
    building rewriters or controllers. The distributed coordinator uses
    it to validate migrated checkpoint envelopes against the unit that
    claims them (``pipeline_run`` never passes rewriter params, so every
    scheme's params entry is ``{}``; pinned against the real pipeline by
    ``tests/distributed/test_pipeline_units.py``)."""
    _, schemes, chunk_requests, spec = _pipeline_config(params)
    return {
        "spec": spec.state_dict(),
        "schemes": list(schemes),
        "scheme_params": {name: {} for name in schemes},
        "chunk_requests": chunk_requests,
    }


def pipeline_rows(params: Dict[str, object], on_chunk=None,
                  should_stop=None, checkpoint_path=None, checkpoint_every=0,
                  checkpoint_request=None, resume_from=None,
                  on_checkpoint=None, checkpoint_meta=None,
                  on_checkpoint_state=None) -> List[Dict[str, object]]:
    """The :func:`pipeline_run` body, with the pipeline's streaming
    hooks exposed: ``repro serve`` calls this directly so one code path
    produces both the cached executor rows and the per-chunk progress
    events (and honours cooperative cancellation), guaranteeing the
    streamed result is bit-identical to the ``pipeline_run`` job. The
    ``checkpoint_*``/``resume_from`` keywords pass straight through to
    :meth:`~repro.mem.pipeline.TracePipeline.run`, so a service flight
    (or the CLI) can checkpoint and resume without a second code path —
    the checkpoint fingerprint is derived from the same params dict that
    keys the result cache."""
    from repro.mem.pipeline import TracePipeline

    workload, schemes, chunk_requests, spec = _pipeline_config(params)
    results = TracePipeline(spec, schemes=schemes,
                            chunk_requests=chunk_requests).run(
                                on_chunk=on_chunk, should_stop=should_stop,
                                checkpoint_path=checkpoint_path,
                                checkpoint_every=checkpoint_every,
                                checkpoint_request=checkpoint_request,
                                resume_from=resume_from,
                                on_checkpoint=on_checkpoint,
                                checkpoint_meta=checkpoint_meta,
                                on_checkpoint_state=on_checkpoint_state)
    baseline = results.get("np")
    rows = []
    for name in schemes:
        outcome = results[name]
        timing = outcome.result
        row = {
            "workload": workload,
            "scheme": name,
            "requests": timing.requests,
            "bursts": timing.bursts,
            "cycles": timing.cycles,
            "data_bytes": timing.stats.data_bytes,
            "metadata_bytes": timing.stats.metadata_bytes,
            "traffic_increase_pct": round(100 * timing.stats.traffic_increase(), 3),
            "chunks": outcome.chunks,
            "chunk_requests": chunk_requests,
        }
        if baseline is not None:
            row["slowdown"] = round(outcome.slowdown_vs(baseline), 4)
        rows.append(row)
    return rows
