"""Registered sweeps for every paper artifact.

One entry per benchmark: the `E*` experiments (Figure 3, Tables II/III,
traffic, ASIC/FPGA overheads), the `A*` ablations, and the `X*`
extensions. Each ``benchmarks/bench_*.py`` file resolves its grid from
here, the CLI exposes the same names as ``repro sweep --preset``, and
``scripts/run_experiments.py`` iterates the registry.
"""

from __future__ import annotations

from typing import List

from repro.accel.zoo_ext import EXTENDED_ZOO
from repro.experiments.jobs import Job
from repro.experiments.registry import register_sweep
from repro.experiments.spec import SweepSpec
from repro.experiments.table import ResultTable

#: Figure 3's network order (the paper's x-axis)
FIG3_INFERENCE_NETWORKS = ("vgg16", "alexnet", "googlenet", "resnet50",
                           "mobilenet", "vit", "bert", "dlrm", "wav2vec2")
#: DLRM is excluded from Figure 3b, as in the paper
FIG3_TRAINING_NETWORKS = tuple(n for n in FIG3_INFERENCE_NETWORKS if n != "dlrm")
FIG3_TRAINING_BATCH = 4

FPGA_NETWORKS = ("alexnet", "googlenet", "resnet50", "vgg16")
TABLE2_DSPS = (128, 256, 512, 1024)
TABLE2_PRECISIONS = (8, 6)
VN_CACHE_SIZES_KB = (16, 64, 256, 1024, 4096)
VN_CACHE_NETWORKS = ("vgg16", "resnet50", "bert")
MAC_CHUNK_BYTES = (64, 128, 256, 512, 1024, 4096)
MAC_GRANULARITY_NETWORKS = ("vgg16", "mobilenet", "bert")
AES_ENGINE_COUNTS = (1, 2, 3, 4, 6)


def _normalize(table: ResultTable) -> ResultTable:
    return table.with_normalized(value="total_cycles", baseline={"scheme": "NP"},
                                 out="normalized")


def _fig3_inference_spec() -> SweepSpec:
    return SweepSpec(models=FIG3_INFERENCE_NETWORKS, zoo="paper")


def _fig3_training_spec() -> SweepSpec:
    return SweepSpec(models=FIG3_TRAINING_NETWORKS, zoo="paper",
                     modes=("training",), batches=(FIG3_TRAINING_BATCH,))


@register_sweep("fig3-inference", title="Figure 3a — normalized inference time",
                post=_normalize)
def fig3_inference() -> SweepSpec:
    return _fig3_inference_spec()


@register_sweep("fig3-training", title="Figure 3b — normalized training time",
                post=_normalize)
def fig3_training() -> SweepSpec:
    return _fig3_training_spec()


@register_sweep("fig3", title="Figure 3 — inference + training, all schemes",
                post=_normalize)
def fig3() -> List[Job]:
    return _fig3_inference_spec().jobs() + _fig3_training_spec().jobs()


@register_sweep("traffic", title="Section III-C memory-traffic increase")
def traffic() -> List[Job]:
    schemes = ("bp", "guardnn-ci")
    inference = SweepSpec(models=FIG3_INFERENCE_NETWORKS, zoo="paper", schemes=schemes)
    training = SweepSpec(models=FIG3_TRAINING_NETWORKS, zoo="paper", schemes=schemes,
                         modes=("training",), batches=(FIG3_TRAINING_BATCH,))
    return inference.jobs() + training.jobs()


@register_sweep("extended-zoo", title="Extended-zoo protection comparison",
                post=_normalize)
def extended_zoo() -> SweepSpec:
    return SweepSpec(models=tuple(sorted(EXTENDED_ZOO)), zoo="extended")


@register_sweep("extended-zoo-full",
                title="Extended zoo × schemes × {inference b1/b8, training b8}",
                post=_normalize)
def extended_zoo_full() -> List[Job]:
    models = tuple(sorted(EXTENDED_ZOO))
    inference = SweepSpec(models=models, zoo="extended", batches=(1, 8))
    training = SweepSpec(models=models, zoo="extended", modes=("training",), batches=(8,))
    return inference.jobs() + training.jobs()


@register_sweep("ablation-vn-cache", title="BP metadata-cache size ablation")
def ablation_vn_cache() -> SweepSpec:
    schemes = tuple(("bp", {"cache_bytes": kb * 1024}) for kb in VN_CACHE_SIZES_KB)
    return SweepSpec(models=VN_CACHE_NETWORKS, zoo="paper",
                     schemes=schemes + ("guardnn-ci",))


@register_sweep("ablation-mac-granularity", title="GuardNN_CI MAC-granularity ablation",
                post=_normalize)
def ablation_mac_granularity() -> SweepSpec:
    schemes = ("np",) + tuple(("guardnn-ci", {"chunk_bytes": c}) for c in MAC_CHUNK_BYTES)
    return SweepSpec(models=MAC_GRANULARITY_NETWORKS, zoo="paper", schemes=schemes)


@register_sweep("ablation-aes-engines",
                title="AES engines vs GuardNN_C FPGA overhead (1024 DSPs, 6-bit)")
def ablation_aes_engines() -> List[Job]:
    return [Job.make("fpga_row", network=net, dsps=1024, precision=6, engines=engines)
            for engines in AES_ENGINE_COUNTS for net in FPGA_NETWORKS]


@register_sweep("table2-fpga", title="Table II — FPGA throughput and overhead")
def table2_fpga() -> List[Job]:
    return [Job.make("fpga_row", network=net, dsps=dsps, precision=bits, engines=3)
            for bits in TABLE2_PRECISIONS for dsps in TABLE2_DSPS
            for net in FPGA_NETWORKS]


@register_sweep("fpga-resources", title="Section III-B FPGA resource overhead")
def fpga_resources() -> List[Job]:
    return [Job.make("fpga_resources", aes_engines=3)]


@register_sweep("instruction-latency", title="Section III-B instruction latencies")
def instruction_latency() -> List[Job]:
    return [Job.make("instruction_latency", network="vgg16",
                     set_weight_networks=list(FPGA_NETWORKS))]


@register_sweep("asic-overhead", title="Section III-C ASIC area/power overhead")
def asic_overhead() -> List[Job]:
    jobs = [Job.make("asic_overhead", engines=e) for e in (86, 172, 275)]
    jobs.append(Job.make("asic_overhead"))  # bandwidth-matching count
    jobs.append(Job.make("asic_overhead", engines=500))
    return jobs


@register_sweep("table3-comparison", title="Table III — approach comparison")
def table3_comparison() -> List[Job]:
    return [Job.make("table3_comparison")]


@register_sweep("tcb", title="TCB size decomposition")
def tcb() -> List[Job]:
    return [Job.make("tcb_report")]


@register_sweep("dram-characterization", title="DDR4 model characterization")
def dram_characterization() -> List[Job]:
    return [
        Job.make("dram_characterization", pattern="streaming", nbytes=1 << 18),
        Job.make("dram_characterization", pattern="random", requests=4096, seed=3),
        Job.make("dram_characterization", pattern="bp-interleaved", nbytes=1 << 18),
    ]


@register_sweep("pipeline-patterns",
                title="Streaming pipeline — synthetic patterns, shared-pass schemes")
def pipeline_patterns() -> List[Job]:
    schemes = ["np", "guardnn-c", "guardnn-ci", "bp"]
    return [
        Job.make("pipeline_run", workload="streaming", nbytes=1 << 18,
                 write_fraction=0.3, schemes=schemes, chunk_requests=1 << 12),
        Job.make("pipeline_run", workload="random", n_requests=4096,
                 span_bytes=1 << 26, seed=3, schemes=schemes,
                 chunk_requests=1 << 12),
        Job.make("pipeline_run", workload="bp-metadata", nbytes=1 << 18,
                 schemes=schemes, chunk_requests=1 << 12),
    ]


@register_sweep("llm-streaming",
                title="LLM decode traffic through the streaming pipeline")
def llm_streaming() -> List[Job]:
    # a truncated GPT-2 stack keeps the grid tier-1-friendly (the full
    # gpt2-xl / llama-7b geometries run through the same executor — see
    # scripts/pipeline_memcheck.py and the README's workload table)
    schemes = ["np", "guardnn-c", "guardnn-ci", "bp"]
    return [
        Job.make("pipeline_run", workload="gpt2", layers=4, tokens=1,
                 context=128, schemes=schemes, chunk_requests=1 << 16),
    ]


@register_sweep("crypto-kernels", title="Functional crypto kernel checksums")
def crypto_kernels() -> List[Job]:
    return [
        Job.make("crypto_kernel", kernel="aes-block"),
        Job.make("crypto_kernel", kernel="aes-ctr", nbytes=1024),
        Job.make("crypto_kernel", kernel="cmac", nbytes=512),
        Job.make("crypto_kernel", kernel="gmac", nbytes=1024),
        Job.make("crypto_kernel", kernel="sha256", nbytes=4096),
        Job.make("crypto_kernel", kernel="hmac-sha256", nbytes=4096),
    ]
