"""Jobs: the unit of work the sweep runner schedules, caches, and fans
out over processes.

A :class:`Job` is (executor name, canonical-JSON params). Executors are
plain module-level functions registered by name, so a job pickles as two
strings and any worker process can resolve and run it. Canonical JSON
(sorted keys, no whitespace) makes the job's identity stable — the same
logical parameters always hash to the same cache key regardless of dict
insertion order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List


def canonical_json(obj: object) -> str:
    """Deterministic JSON: sorted keys, minimal separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True, order=True)
class Job:
    """One schedulable unit: an executor name plus its parameters."""

    executor: str
    params_json: str

    @classmethod
    def make(cls, executor: str, **params: object) -> "Job":
        return cls(executor, canonical_json(params))

    @property
    def params(self) -> Dict[str, object]:
        return json.loads(self.params_json)

    def __repr__(self) -> str:
        return f"Job({self.executor}, {self.params_json})"


#: executor name -> callable(params dict) -> row dict | list of row dicts
_EXECUTORS: Dict[str, Callable[[Dict[str, object]], object]] = {}


def executor(name: str):
    """Register a module-level function as a job executor."""

    def register(fn):
        if name in _EXECUTORS and _EXECUTORS[name] is not fn:
            raise ValueError(f"executor {name!r} already registered")
        _EXECUTORS[name] = fn
        return fn

    return register


def registry_version() -> int:
    """Monotone token for the registry's contents (registrations only
    ever add). Forked worker pools snapshot interpreter state, so the
    runner recreates a pool whose fork predates the latest
    registration."""
    return len(_EXECUTORS)


def get_executor(name: str) -> Callable[[Dict[str, object]], object]:
    try:
        return _EXECUTORS[name]
    except KeyError:
        raise KeyError(f"unknown executor {name!r}; known: {sorted(_EXECUTORS)}")


def list_executors() -> List[str]:
    return sorted(_EXECUTORS)


def execute_job(job: Job) -> List[Dict[str, object]]:
    """Run one job and normalize its result to a list of row dicts."""
    result = get_executor(job.executor)(job.params)
    if isinstance(result, dict):
        return [result]
    return list(result)
