"""Shared worker-pool ownership.

Before ``repro serve``, every :class:`~repro.experiments.runner.Runner`
owned its process pool outright: created on first parallel batch, torn
down with the runner. A long-lived service runs *many* runners (one per
client flight) against *one* machine, so pool ownership moves here — a
:class:`WorkerPoolManager` owns the pools, runners borrow them, and the
service decides their lifetime:

* pools are keyed by worker count and created on demand;
* a pool forked before the latest executor registration is rebuilt (a
  forked worker snapshots the registry, so late registrations would be
  invisible to it — the manager tracks
  :func:`~repro.experiments.jobs.registry_version` per pool);
* :meth:`invalidate` tears one (or every) pool down for rebuild-on-next-
  use — the failure path after a job blows up inside ``pool.map``;
* a runner constructed *without* a manager gets a private one and keeps
  the historical semantics (its ``close()`` kills the pool); a runner
  constructed *with* a borrowed manager never kills shared pools on
  close — only the owner (the service) does, via :meth:`close`.

Thread safety: the service executes concurrent flights on worker
threads, each running a borrowed-pool ``Runner``; creation/rebuild is
serialized under a lock. ``multiprocessing.Pool`` dispatch itself is
fed through a thread-safe task queue, so concurrent ``map`` calls from
different flights interleave safely.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Dict, Optional

from repro.experiments.jobs import registry_version


def _init_worker() -> None:
    # under a spawn start method the child starts with an empty executor
    # registry; importing the package re-populates it
    import repro.experiments  # noqa: F401


def _make_pool(workers: int, context: Optional[str] = None):
    methods = multiprocessing.get_all_start_methods()
    if context is None or context not in methods:
        context = "fork" if "fork" in methods else None
    ctx = multiprocessing.get_context(context)
    return ctx.Pool(workers, initializer=_init_worker)


class WorkerPoolManager:
    """Owns ``multiprocessing`` pools that runners borrow by worker
    count.

    ``context`` picks the start method. ``None`` (the default) prefers
    ``fork`` — the cheapest option for a CLI run, and the registry plus
    loaded model zoo are inherited for free. A long-lived *server* must
    not fork its own process once clients are connected: every live
    connection fd (and the event loop's epoll registrations) would be
    duplicated into the workers, and writes on those connections can be
    lost. ``repro serve`` therefore passes ``forkserver``, which forks
    workers from a clean template process started before the first
    client ever connects — pool rebuilds mid-serve stay safe.
    """

    def __init__(self, context: Optional[str] = None):
        self.context = context
        self._pools: Dict[int, object] = {}
        self._versions: Dict[int, int] = {}
        self._lock = threading.Lock()

    # -- lending -----------------------------------------------------------

    def pool(self, workers: int):
        """The live pool for ``workers``, created or rebuilt on demand."""
        workers = max(1, int(workers))
        with self._lock:
            pool = self._pools.get(workers)
            if pool is not None and self._versions[workers] != registry_version():
                self._terminate_locked(workers)
                pool = None
            if pool is None:
                pool = _make_pool(workers, self.context)
                self._pools[workers] = pool
                self._versions[workers] = registry_version()
            return pool

    def peek(self, workers: int):
        """The pool for ``workers`` if one exists, without creating it."""
        return self._pools.get(max(1, int(workers)))

    # -- lifetime ----------------------------------------------------------

    def _terminate_locked(self, workers: int) -> None:
        pool = self._pools.pop(workers, None)
        self._versions.pop(workers, None)
        if pool is not None:
            pool.terminate()
            pool.join()

    def invalidate(self, workers: Optional[int] = None) -> None:
        """Tear down one pool (or all of them); rebuilt on next use.
        This is the recovery path after a worker failure — a fresh fork
        is cheap insurance against a wedged or state-corrupted pool."""
        with self._lock:
            if workers is not None:
                self._terminate_locked(max(1, int(workers)))
            else:
                for count in list(self._pools):
                    self._terminate_locked(count)

    def close(self) -> None:
        """Terminate every pool. The manager stays usable (pools are
        rebuilt on demand), so this is safe to call between bursts of
        work as well as at shutdown."""
        self.invalidate()

    @property
    def active_pools(self) -> int:
        return len(self._pools)

    @property
    def active_workers(self) -> int:
        """Total worker capacity across live pools (the occupancy half
        of the service capacity model). Pools are keyed by the worker
        count they were built with, so the keys *are* the capacity —
        no reaching into ``multiprocessing.Pool`` internals, and a pool
        that has been invalidated (torn down after a failure) stops
        counting the moment it leaves ``_pools`` instead of lingering
        as phantom capacity."""
        with self._lock:
            return sum(self._pools)

    def __enter__(self) -> "WorkerPoolManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown timing
        try:
            self.close()
        except Exception:
            pass
