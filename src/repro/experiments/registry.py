"""Named-sweep registry.

Benchmarks, the CLI, and the experiment scripts all resolve sweeps by
name here, so every paper artifact has exactly one definition of its
grid. A registered sweep is a builder returning a job list (or a
:class:`SweepSpec`), plus an optional post-processing step applied to
the finished table (e.g. joining in normalized execution time).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.experiments.cache import ResultCache
from repro.experiments.jobs import Job
from repro.experiments.runner import Runner
from repro.experiments.spec import SweepSpec
from repro.experiments.table import ResultTable

BuildResult = Union[SweepSpec, List[Job]]


@dataclass(frozen=True)
class SweepDefinition:
    name: str
    title: str
    build: Callable[[], BuildResult]
    columns: Optional[Sequence[str]] = None
    post: Optional[Callable[[ResultTable], ResultTable]] = None

    def jobs(self) -> List[Job]:
        built = self.build()
        if isinstance(built, SweepSpec):
            return built.jobs()
        return list(built)


_SWEEPS: Dict[str, SweepDefinition] = {}


def register_sweep(name: str, title: str = "",
                   columns: Optional[Sequence[str]] = None,
                   post: Optional[Callable[[ResultTable], ResultTable]] = None):
    """Decorator registering a build function as a named sweep."""

    def register(build: Callable[[], BuildResult]) -> Callable[[], BuildResult]:
        if name in _SWEEPS:
            raise ValueError(f"sweep {name!r} already registered")
        _SWEEPS[name] = SweepDefinition(name=name, title=title or name,
                                        build=build, columns=columns, post=post)
        return build

    return register


def get_sweep(name: str) -> SweepDefinition:
    try:
        return _SWEEPS[name]
    except KeyError:
        raise KeyError(f"unknown sweep {name!r}; known: {', '.join(sorted(_SWEEPS))}")


def list_sweeps() -> List[SweepDefinition]:
    return [_SWEEPS[name] for name in sorted(_SWEEPS)]


_ENV_CACHE = "REPRO_SWEEP_CACHE"
#: process-wide default caches, one per directory, so stats aggregate
#: across every run_sweep() call of a session
_default_caches: Dict[str, ResultCache] = {}


def default_cache() -> ResultCache:
    """The shared default cache (created on first use per directory)."""
    from repro.experiments.cache import default_cache_dir

    directory = default_cache_dir()
    if directory not in _default_caches:
        _default_caches[directory] = ResultCache(directory)
    return _default_caches[directory]


def _resolve_cache(cache: Union[bool, ResultCache, None]) -> Optional[ResultCache]:
    if cache is None:
        # opt in for callers that pass nothing (the bench harnesses) via
        # REPRO_SWEEP_CACHE=1 — e.g. scripts/run_experiments.py --cache.
        # Whitelist truthy spellings so "off"/"OFF" stay disabled.
        if os.environ.get(_ENV_CACHE, "").strip().lower() not in ("1", "true", "yes", "on"):
            return None
        cache = True
    if cache is True:
        return default_cache()
    return cache or None


#: process-wide runners, one per (workers, shared-cache) configuration:
#: the persistent worker pool inside a Runner then serves every sweep of
#: a session instead of being forked per call. Only the process-held
#: cache singletons (None or a ``default_cache()`` instance) are
#: memoized — a caller-supplied ResultCache gets a fresh short-lived
#: Runner, so the table stays bounded and never pins caller objects.
_shared_runners: Dict[tuple, Runner] = {}


def _shared_runner(workers: Optional[int], cache: Optional[ResultCache]) -> Runner:
    from repro.experiments.runner import default_workers

    resolved = default_workers() if workers is None else max(1, int(workers))
    if cache is not None and cache not in _default_caches.values():
        return Runner(workers=resolved, cache=cache)
    key = (resolved, id(cache))
    if key not in _shared_runners:
        _shared_runners[key] = Runner(workers=resolved, cache=cache)
    return _shared_runners[key]


def run_sweep(name: str, workers: Optional[int] = None,
              cache: Union[bool, ResultCache, None] = None,
              runner: Optional[Runner] = None) -> ResultTable:
    """Run a registered sweep to a finished :class:`ResultTable`.

    ``cache`` controls the *on-disk* result cache: False (skip it),
    True (the shared default), a :class:`ResultCache` instance, or None
    (off unless the ``REPRO_SWEEP_CACHE`` env var enables the default).
    On the fast path an in-memory first-level cache in the runner also
    serves repeated jobs within the process; ``repro.perf.scalar_mode``
    bypasses and drops it, keeping scalar benchmark timings honest.
    """
    definition = get_sweep(name)
    if runner is None:
        runner = _shared_runner(workers, _resolve_cache(cache))
    table = runner.run(definition.jobs(), columns=definition.columns)
    if definition.post is not None:
        table = definition.post(table)
    return table
