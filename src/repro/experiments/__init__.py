"""Experiment orchestration: declarative sweeps, a process-parallel
runner, a content-addressed result cache, and tabular results.

The layer that turns the 16 ad-hoc benchmark loops into one engine::

    from repro.experiments import run_sweep

    table = run_sweep("fig3", workers=4, cache=True)
    print(table.to_markdown())

* :class:`SweepSpec` — a grid over {model} × {scheme(+params)} ×
  {batch} × {mode} × {accelerator config};
* :class:`Runner` — fans jobs over ``multiprocessing`` workers with
  deterministic result ordering (worker count never changes output);
* :class:`ResultCache` — on-disk, keyed by (job params, code
  fingerprint): re-runs of an unchanged tree are served from disk;
* :class:`ResultTable` — stable row schema with markdown / CSV / JSON
  emitters and the Figure-3 normalization join;
* the preset registry — one named sweep per paper artifact
  (``fig3``, ``traffic``, ``table2-fpga``, the ablations, ...).
"""

from repro.experiments.cache import ResultCache, code_fingerprint, default_cache_dir
from repro.experiments.jobs import Job, execute_job, executor, list_executors
from repro.experiments.registry import (
    SweepDefinition,
    get_sweep,
    list_sweeps,
    register_sweep,
    run_sweep,
)
from repro.experiments.runner import Runner
from repro.experiments.spec import DEFAULT_SCHEMES, SweepSpec
from repro.experiments.table import ResultTable, fmt, markdown_table

# registering the presets must follow the registry import
import repro.experiments.presets  # noqa: E402,F401

__all__ = [
    "DEFAULT_SCHEMES",
    "Job",
    "ResultCache",
    "ResultTable",
    "Runner",
    "SweepDefinition",
    "SweepSpec",
    "code_fingerprint",
    "default_cache_dir",
    "execute_job",
    "executor",
    "fmt",
    "get_sweep",
    "list_executors",
    "list_sweeps",
    "markdown_table",
    "register_sweep",
    "run_sweep",
]
