"""Declarative sweep specifications.

A :class:`SweepSpec` is the cross product {mode} × {batch} × {config} ×
{model} × {scheme}, expanded to ``accel_run`` jobs in a fixed,
documented order — mode-major, scheme-minor — so a sweep's job list
(and therefore its result-table row order) is identical on every
machine and for every worker count.

Schemes are given by registry short name (``np``, ``bp``,
``guardnn-c``, ``guardnn-ci``), optionally with parameter overrides:
``("bp", {"cache_bytes": 262144})`` sweeps the baseline engine's
metadata cache; ``("guardnn-ci", {"chunk_bytes": 64})`` sweeps MAC
granularity. Accelerator overrides (``configs``) sweep the DRAM/compute
design space, e.g. ``{"dram_bandwidth_gbps": 68.0}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.experiments.jobs import Job
from repro.protection import SCHEME_FACTORIES

SchemeLike = Union[str, Tuple[str, Mapping[str, object]]]

MODES = ("inference", "training")

#: the paper's four protection points, in Figure 3 presentation order
DEFAULT_SCHEMES = ("np", "guardnn-c", "guardnn-ci", "bp")


def _normalize_scheme(entry: SchemeLike) -> Tuple[str, Dict[str, object]]:
    if isinstance(entry, str):
        name, params = entry, {}
    else:
        name, params = entry[0], dict(entry[1])
    if name not in SCHEME_FACTORIES:
        raise KeyError(f"unknown scheme {name!r}; known: {sorted(SCHEME_FACTORIES)}")
    return name, params


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of accelerator simulations."""

    models: Sequence[str]
    schemes: Sequence[SchemeLike] = DEFAULT_SCHEMES
    batches: Sequence[int] = (1,)
    modes: Sequence[str] = ("inference",)
    zoo: str = "auto"  # paper | extended | auto
    configs: Sequence[Mapping[str, object]] = field(default_factory=lambda: ({},))

    def __post_init__(self):
        if not self.models:
            raise ValueError("a sweep needs at least one model")
        for mode in self.modes:
            if mode not in MODES:
                raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
        for batch in self.batches:
            if int(batch) < 1:
                raise ValueError("batch sizes must be >= 1")
        for entry in self.schemes:
            _normalize_scheme(entry)

    @property
    def size(self) -> int:
        return (len(self.models) * len(self.schemes) * len(self.batches)
                * len(self.modes) * len(self.configs))

    def jobs(self) -> List[Job]:
        """Expand the grid, deterministically ordered."""
        out = []
        for mode in self.modes:
            for batch in self.batches:
                for config in self.configs:
                    for model in self.models:
                        for entry in self.schemes:
                            scheme, scheme_params = _normalize_scheme(entry)
                            out.append(Job.make(
                                "accel_run",
                                model=model,
                                zoo=self.zoo,
                                scheme=scheme,
                                scheme_params=scheme_params,
                                batch=int(batch),
                                training=(mode == "training"),
                                config=dict(config),
                            ))
        return out
