"""The sweep runner: two-level cache lookup, a persistent process pool,
and deterministic reassembly.

Execution contract:

* rows come back in *job order*, regardless of worker count or which
  jobs were cache hits — a sweep's ResultTable is bit-identical for
  ``workers=1`` and ``workers=N``;
* only cache *misses* are dispatched to workers; hits are served first
  from the in-memory first-level cache (process-wide, keyed by job,
  fast-path only), then from disk, without touching a process pool;
* the worker pool is created once per :class:`Runner` and reused across
  every ``run()`` / ``_execute_batch`` call — forking a fresh pool per
  batch was the dominant cost of small sweeps. Worker processes are
  forked where the platform allows, so the executor registry and the
  loaded model zoo are inherited rather than re-imported per job;
* jobs cross the process boundary as chunked SoA payloads (executor
  names + params strings in parallel tuples) and rows come back as
  (schema, value-row) pairs instead of per-row dicts, so a chunk is a
  handful of pickles rather than one per row.

``default_workers()`` resolves the worker count: the
``REPRO_SWEEP_WORKERS`` environment variable wins; otherwise it falls
back to ``os.cpu_count()`` capped at 8 (minimum 1). The historical
default of a single hard-coded worker made every multi-core machine run
sweeps serially unless callers remembered to pass ``workers=``.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import repro.experiments.executors  # noqa: F401 — populate the executor registry
from repro import perf
from repro.experiments.cache import ResultCache
from repro.experiments.jobs import Job, execute_job, registry_version
from repro.experiments.spec import SweepSpec
from repro.experiments.table import ResultTable

_ENV_WORKERS = "REPRO_SWEEP_WORKERS"
_MAX_DEFAULT_WORKERS = 8


def default_workers() -> int:
    env = os.environ.get(_ENV_WORKERS)
    if env:
        return max(1, int(env))
    return max(1, min(_MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


def _init_worker() -> None:
    # under a spawn start method the child starts with an empty executor
    # registry; importing the package re-populates it
    import repro.experiments  # noqa: F401


#: in-memory first-level result cache, in front of the on-disk
#: ResultCache: executors are pure functions of their params, so within
#: one process a job's rows never change while the fast path is on.
#: Rows are copied in and out — callers (and table post-processing) may
#: mutate what they receive.
_MEMORY_CACHE: Dict[Job, List[dict]] = {}
_MEMORY_CACHE_LIMIT = 4096

perf.register_cache(_MEMORY_CACHE.clear)


def _copy_rows(rows: List[dict]) -> List[dict]:
    """One-level-deep row copies (row values are JSON scalars, dicts,
    or lists per the executor contract)."""
    return [
        {key: (dict(value) if isinstance(value, dict)
               else list(value) if isinstance(value, list) else value)
         for key, value in row.items()}
        for row in rows
    ]


def _memory_get(job: Job) -> Optional[List[dict]]:
    if not perf.fast_enabled():
        return None
    rows = _MEMORY_CACHE.get(job)
    return None if rows is None else _copy_rows(rows)


def _memory_put(job: Job, rows: List[dict]) -> None:
    if not perf.fast_enabled():
        return
    if len(_MEMORY_CACHE) >= _MEMORY_CACHE_LIMIT:
        _MEMORY_CACHE.clear()
    _MEMORY_CACHE[job] = _copy_rows(rows)


# -- SoA chunk payloads ----------------------------------------------------


def _encode_rows(rows_per_job: List[List[dict]]):
    """Pack a chunk's row dicts as (schemas, per-row (schema, values))
    so repeated keys are pickled once per schema instead of once per
    row; key order per row is preserved exactly."""
    schemas: List[Tuple[str, ...]] = []
    schema_index: Dict[Tuple[str, ...], int] = {}
    encoded = []
    for rows in rows_per_job:
        packed = []
        for row in rows:
            keys = tuple(row)
            index = schema_index.get(keys)
            if index is None:
                index = schema_index[keys] = len(schemas)
                schemas.append(keys)
            packed.append((index, tuple(row.values())))
        encoded.append(packed)
    return schemas, encoded


def _decode_rows(payload) -> List[List[dict]]:
    schemas, encoded = payload
    return [[dict(zip(schemas[index], values)) for index, values in packed]
            for packed in encoded]


def _run_chunk(chunk):
    """Worker entry point: execute a chunk of jobs shipped as parallel
    tuples; the fast/scalar mode travels with the chunk so a pool forked
    in one mode honours the caller's current mode."""
    executors, params, fast = chunk
    if perf.fast_enabled() != fast:
        perf.set_fast(fast)
    rows_per_job = [execute_job(Job(executor, params_json))
                    for executor, params_json in zip(executors, params)]
    return _encode_rows(rows_per_job)


class Runner:
    """Executes job lists (or specs) into result tables."""

    def __init__(self, workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 chunksize: Optional[int] = None):
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self.cache = cache
        self.chunksize = chunksize
        self._pool = None
        self._pool_registry_version = -1

    # -- the persistent pool ----------------------------------------------

    def _ensure_pool(self):
        # a forked pool snapshots the executor registry; an executor
        # registered since the fork would be invisible to the workers,
        # so rebuild (per-batch forking previously made this implicit)
        if (self._pool is not None
                and self._pool_registry_version != registry_version()):
            self.close()
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
            self._pool = ctx.Pool(self.workers, initializer=_init_worker)
            self._pool_registry_version = registry_version()
        return self._pool

    def close(self) -> None:
        """Tear the worker pool down (it is rebuilt on demand)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown timing
        try:
            self.close()
        except Exception:
            pass

    # -- execution ---------------------------------------------------------

    def _execute_batch(self, jobs: Sequence[Job]) -> List[List[dict]]:
        if self.workers <= 1 or len(jobs) <= 1:
            return [execute_job(job) for job in jobs]
        pool = self._ensure_pool()
        chunksize = self.chunksize or max(1, math.ceil(len(jobs) / (self.workers * 2)))
        fast = perf.fast_enabled()
        chunks = [
            (tuple(job.executor for job in jobs[i:i + chunksize]),
             tuple(job.params_json for job in jobs[i:i + chunksize]),
             fast)
            for i in range(0, len(jobs), chunksize)
        ]
        results: List[List[dict]] = []
        for payload in pool.map(_run_chunk, chunks, chunksize=1):
            results.extend(_decode_rows(payload))
        return results

    def run(self, jobs: Union[SweepSpec, Iterable[Job]],
            columns: Optional[Sequence[str]] = None) -> ResultTable:
        if isinstance(jobs, SweepSpec):
            jobs = jobs.jobs()
        jobs = list(jobs)

        rows_by_index: dict = {}
        miss_indices: List[int] = []
        for i, job in enumerate(jobs):
            cached = _memory_get(job)
            if cached is None and self.cache is not None:
                cached = self.cache.get(job)
                if cached is not None:
                    _memory_put(job, cached)
            if cached is None:
                miss_indices.append(i)
            else:
                rows_by_index[i] = cached

        computed = self._execute_batch([jobs[i] for i in miss_indices])
        for i, rows in zip(miss_indices, computed):
            _memory_put(jobs[i], rows)
            if self.cache is not None:
                self.cache.put(jobs[i], rows)
            rows_by_index[i] = rows

        table = ResultTable(columns=columns)
        for i in range(len(jobs)):
            table.extend(rows_by_index[i])
        return table
