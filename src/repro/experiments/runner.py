"""The sweep runner: cache lookup, process-parallel fan-out, and
deterministic reassembly.

Execution contract:

* rows come back in *job order*, regardless of worker count or which
  jobs were cache hits — a sweep's ResultTable is bit-identical for
  ``workers=1`` and ``workers=N``;
* only cache *misses* are dispatched to workers; hits are served from
  disk without touching a process pool;
* worker processes are forked (where the platform allows), so the
  executor registry and the loaded model zoo are inherited rather than
  re-imported per job.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from typing import Iterable, List, Optional, Sequence, Union

import repro.experiments.executors  # noqa: F401 — populate the executor registry
from repro.experiments.cache import ResultCache
from repro.experiments.jobs import Job, execute_job
from repro.experiments.spec import SweepSpec
from repro.experiments.table import ResultTable

_ENV_WORKERS = "REPRO_SWEEP_WORKERS"


def default_workers() -> int:
    env = os.environ.get(_ENV_WORKERS)
    if env:
        return max(1, int(env))
    return 1


def _init_worker() -> None:
    # under a spawn start method the child starts with an empty executor
    # registry; importing the package re-populates it
    import repro.experiments  # noqa: F401


class Runner:
    """Executes job lists (or specs) into result tables."""

    def __init__(self, workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 chunksize: Optional[int] = None):
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self.cache = cache
        self.chunksize = chunksize

    # -- execution ---------------------------------------------------------

    def _execute_batch(self, jobs: Sequence[Job]) -> List[List[dict]]:
        if self.workers <= 1 or len(jobs) <= 1:
            return [execute_job(job) for job in jobs]
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        chunksize = self.chunksize or max(1, math.ceil(len(jobs) / (self.workers * 2)))
        with ctx.Pool(self.workers, initializer=_init_worker) as pool:
            return pool.map(execute_job, list(jobs), chunksize=chunksize)

    def run(self, jobs: Union[SweepSpec, Iterable[Job]],
            columns: Optional[Sequence[str]] = None) -> ResultTable:
        if isinstance(jobs, SweepSpec):
            jobs = jobs.jobs()
        jobs = list(jobs)

        rows_by_index: dict = {}
        miss_indices: List[int] = []
        if self.cache is not None:
            for i, job in enumerate(jobs):
                cached = self.cache.get(job)
                if cached is None:
                    miss_indices.append(i)
                else:
                    rows_by_index[i] = cached
        else:
            miss_indices = list(range(len(jobs)))

        computed = self._execute_batch([jobs[i] for i in miss_indices])
        for i, rows in zip(miss_indices, computed):
            if self.cache is not None:
                self.cache.put(jobs[i], rows)
            rows_by_index[i] = rows

        table = ResultTable(columns=columns)
        for i in range(len(jobs)):
            table.extend(rows_by_index[i])
        return table
