"""The sweep runner: two-level cache lookup, a borrowed persistent
process pool, and deterministic reassembly.

Execution contract:

* rows come back in *job order*, regardless of worker count or which
  jobs were cache hits — a sweep's ResultTable is bit-identical for
  ``workers=1`` and ``workers=N``;
* only cache *misses* are dispatched to workers; hits are served first
  from the in-memory first-level cache (process-wide, keyed by job,
  fast-path only), then from disk, without touching a process pool;
* worker pools are owned by a :class:`~repro.experiments.pool.WorkerPoolManager`
  and borrowed by the runner — a runner built without one gets a
  private manager (historical semantics: ``close()`` kills the pool),
  while ``repro serve`` hands every flight's runner one shared manager
  so the service owns pool lifetime. Worker processes are forked where
  the platform allows, so the executor registry and the loaded model
  zoo are inherited rather than re-imported per job;
* jobs cross the process boundary as chunked SoA payloads (executor
  names + params strings in parallel tuples) and rows come back as
  (schema, value-row) pairs instead of per-row dicts, so a chunk is a
  handful of pickles rather than one per row;
* a job raising inside a batch surfaces as :class:`JobExecutionError`
  naming the failing executor and params; rows of jobs that *did*
  complete in the batch are persisted to both cache levels before the
  error propagates, and the pool is torn down for a clean rebuild;
* a worker that *dies* (SIGKILL, OOM-killer, segfault) or wedges does
  not lose the sweep: chunks are dispatched individually, a chunk that
  exceeds ``chunk_timeout`` triggers a pool rebuild and re-dispatch of
  only the lost chunks (bounded by ``chunk_retries``), and long-tail
  stragglers optionally get a duplicate dispatch (first result wins —
  chunks are pure functions of their payload, so duplicates cannot
  change the result). Recoveries are counted in module-level counters
  (:func:`recovery_counts`) that ``repro serve`` exports as metrics.

``default_workers()`` resolves the worker count: the
``REPRO_SWEEP_WORKERS`` environment variable wins (validated — a
non-numeric or non-positive value is a configuration error, reported as
such rather than a raw traceback or a silent clamp); otherwise it falls
back to ``os.cpu_count()`` capped at 8 (minimum 1).
"""

from __future__ import annotations

import math
import os
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import repro.experiments.executors  # noqa: F401 — populate the executor registry
from repro import perf
from repro.experiments.cache import ResultCache
from repro.experiments.jobs import Job, execute_job
from repro.experiments.pool import WorkerPoolManager, _init_worker  # noqa: F401 — re-exported
from repro.experiments.spec import SweepSpec
from repro.experiments.table import ResultTable
from repro.testing import faults

_ENV_WORKERS = "REPRO_SWEEP_WORKERS"
_MAX_DEFAULT_WORKERS = 8


def default_workers() -> int:
    env = os.environ.get(_ENV_WORKERS)
    if env is not None and env.strip():
        try:
            workers = int(env.strip())
        except ValueError:
            raise ValueError(
                f"{_ENV_WORKERS}={env!r} is not an integer; set it to a "
                f"positive worker count (e.g. {_ENV_WORKERS}=4) or unset "
                "it to use the cpu-count default") from None
        if workers < 1:
            raise ValueError(
                f"{_ENV_WORKERS}={workers} is not a valid worker count "
                "(a sweep needs at least one worker); set it to a "
                "positive integer or unset it to use the cpu-count "
                "default")
        return workers
    return max(1, min(_MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


class JobExecutionError(RuntimeError):
    """A job raised while its batch was executing.

    Carries the failing job's identity (executor name + canonical
    params — enough to reproduce it with ``execute_job``), the original
    cause rendered as a string (tracebacks don't survive the process
    boundary), and the ``(batch position, rows)`` pairs of every job in
    the batch that *did* complete, so the runner can persist them
    before propagating.
    """

    def __init__(self, executor: str, params_json: str, cause: str,
                 completed: Sequence[Tuple[int, List[dict]]] = ()):
        self.job = Job(executor, params_json)
        self.cause = cause
        self.completed: List[Tuple[int, List[dict]]] = list(completed)
        super().__init__(
            f"sweep job failed: executor={executor!r} params={params_json} "
            f"— {cause} ({len(self.completed)} completed job(s) in the "
            "batch preserved)")


# -- recovery accounting ---------------------------------------------------

#: process-wide recovery counters: how many times a pool was torn down
#: and rebuilt after a lost/hung worker, and how many chunks had to be
#: re-dispatched. ``repro serve`` surfaces these on ``/metrics``.
_RECOVERY_LOCK = threading.Lock()
_RECOVERY: Dict[str, int] = {"worker_restarts": 0, "chunk_retries": 0}


def note_recovery(key: str, count: int = 1) -> None:
    with _RECOVERY_LOCK:
        _RECOVERY[key] = _RECOVERY.get(key, 0) + count


def recovery_counts() -> Dict[str, int]:
    """A snapshot of the recovery counters (thread-safe copy)."""
    with _RECOVERY_LOCK:
        return dict(_RECOVERY)


#: in-memory first-level result cache, in front of the on-disk
#: ResultCache: executors are pure functions of their params, so within
#: one process a job's rows never change while the fast path is on.
#: Rows are copied in and out — callers (and table post-processing) may
#: mutate what they receive. Eviction is LRU: lookups re-append their
#: key (dict insertion order is the recency order) and an overflowing
#: put evicts oldest-first, so a hot entry survives a long sweep
#: instead of being wiped with the whole table.
_MEMORY_CACHE: Dict[Job, List[dict]] = {}
_MEMORY_CACHE_LIMIT = 4096

perf.register_cache(_MEMORY_CACHE.clear)


def _copy_rows(rows: List[dict]) -> List[dict]:
    """One-level-deep row copies (row values are JSON scalars, dicts,
    or lists per the executor contract)."""
    return [
        {key: (dict(value) if isinstance(value, dict)
               else list(value) if isinstance(value, list) else value)
         for key, value in row.items()}
        for row in rows
    ]


def _memory_get(job: Job) -> Optional[List[dict]]:
    if not perf.fast_enabled():
        return None
    rows = _MEMORY_CACHE.get(job)
    if rows is None:
        return None
    # LRU touch: move the key to the recent end of the insertion order
    _MEMORY_CACHE[job] = _MEMORY_CACHE.pop(job)
    return _copy_rows(rows)


def _memory_put(job: Job, rows: List[dict]) -> None:
    if not perf.fast_enabled():
        return
    if job in _MEMORY_CACHE:
        _MEMORY_CACHE.pop(job)  # re-insert at the recent end
    else:
        while len(_MEMORY_CACHE) >= _MEMORY_CACHE_LIMIT:
            _MEMORY_CACHE.pop(next(iter(_MEMORY_CACHE)))
    _MEMORY_CACHE[job] = _copy_rows(rows)


def recall_rows(job: Job, cache: Optional[ResultCache] = None) -> Optional[List[dict]]:
    """Two-level cache lookup for one job (memory first, then disk,
    promoting disk hits into memory) — the same path :meth:`Runner.run`
    serves hits from, shared with the distributed coordinator so a
    distributed sweep sees exactly the cache state a local one would."""
    rows = _memory_get(job)
    if rows is None and cache is not None:
        rows = cache.get(job)
        if rows is not None:
            _memory_put(job, rows)
    return rows


def remember_rows(job: Job, rows: List[dict],
                  cache: Optional[ResultCache] = None) -> None:
    """Commit one job's rows through both cache levels (memory always,
    disk when a cache is given) — the single commit path for locally
    computed, recovered, and remotely committed results."""
    _memory_put(job, rows)
    if cache is not None:
        cache.put(job, rows)


# -- SoA chunk payloads ----------------------------------------------------


def _encode_rows(rows_per_job: List[List[dict]]):
    """Pack a chunk's row dicts as (schemas, per-row (schema, values))
    so repeated keys are pickled once per schema instead of once per
    row; key order per row is preserved exactly."""
    schemas: List[Tuple[str, ...]] = []
    schema_index: Dict[Tuple[str, ...], int] = {}
    encoded = []
    for rows in rows_per_job:
        packed = []
        for row in rows:
            keys = tuple(row)
            index = schema_index.get(keys)
            if index is None:
                index = schema_index[keys] = len(schemas)
                schemas.append(keys)
            packed.append((index, tuple(row.values())))
        encoded.append(packed)
    return schemas, encoded


def _decode_rows(payload) -> List[List[dict]]:
    schemas, encoded = payload
    return [[dict(zip(schemas[index], values)) for index, values in packed]
            for packed in encoded]


def _describe_error(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}"


def _run_chunk(chunk):
    """Worker entry point: execute a chunk of jobs shipped as parallel
    tuples; the fast/scalar mode travels with the chunk so a pool forked
    in one mode honours the caller's current mode.

    Returns ``(payload, error)`` — payload encodes the rows of every
    job that completed (in order, stopping at the first failure) and
    ``error`` is ``None`` or ``(offset, executor, params_json, cause)``
    identifying the job that raised. Exceptions are caught per job so a
    failure surfaces as data instead of poisoning ``pool.map`` and
    losing the whole batch.
    """
    index, executors, params, fast = chunk
    if faults.enabled():
        # worker fault site: a plan targeting ``worker.chunk`` should
        # normally carry ``once_file`` — forked workers each inherit
        # their own copy of the in-process fired counter, so only the
        # cross-process marker guarantees exactly-once firing
        faults.fire("worker.chunk", index)
    if perf.fast_enabled() != fast:
        perf.set_fast(fast)
    rows_per_job: List[List[dict]] = []
    error = None
    for offset, (executor, params_json) in enumerate(zip(executors, params)):
        try:
            rows_per_job.append(execute_job(Job(executor, params_json)))
        except Exception as exc:
            error = (offset, executor, params_json, _describe_error(exc))
            break
    return _encode_rows(rows_per_job), error


class Runner:
    """Executes job lists (or specs) into result tables."""

    def __init__(self, workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 chunksize: Optional[int] = None,
                 pool_manager: Optional[WorkerPoolManager] = None,
                 chunk_timeout: Optional[float] = None,
                 chunk_retries: int = 2,
                 straggler_factor: Optional[float] = None):
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self.cache = cache
        self.chunksize = chunksize
        # fault tolerance: a chunk still unfinished after chunk_timeout
        # seconds (wall clock from dispatch, queue wait included) marks
        # the pool as lost — it is rebuilt and only unfinished chunks
        # re-dispatched, up to chunk_retries times. None = wait forever
        # (the historical behaviour; a SIGKILLed worker then hangs the
        # sweep unless straggler duplicates rescue it).
        self.chunk_timeout = None if chunk_timeout is None else float(chunk_timeout)
        self.chunk_retries = max(0, int(chunk_retries))
        # straggler mitigation: once a chunk has run straggler_factor x
        # the EWMA chunk latency, dispatch a duplicate; first result
        # wins. None disables.
        self.straggler_factor = (
            None if straggler_factor is None else float(straggler_factor))
        # borrowed manager: the caller (the service) owns pool lifetime;
        # no manager: a private one is created lazily and close() kills it
        self._manager = pool_manager
        self._owns_manager = pool_manager is None

    # -- the borrowed pool --------------------------------------------------

    @property
    def _pool(self):
        """The live pool for this runner's worker count (or ``None``) —
        introspection only; execution goes through :meth:`_ensure_pool`."""
        return None if self._manager is None else self._manager.peek(self.workers)

    def _ensure_pool(self):
        if self._manager is None:
            self._manager = WorkerPoolManager()
        return self._manager.pool(self.workers)

    def _reset_pool(self) -> None:
        """Tear this runner's pool down after a failure; it is rebuilt
        (freshly forked) on the next parallel batch."""
        if self._manager is not None:
            self._manager.invalidate(self.workers)

    def close(self) -> None:
        """Tear the worker pool down (it is rebuilt on demand). A
        borrowed :class:`WorkerPoolManager` is left untouched — shared
        pools outlive any one runner and are closed by their owner."""
        if self._manager is not None and self._owns_manager:
            self._manager.close()

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown timing
        try:
            self.close()
        except Exception:
            pass

    # -- execution ---------------------------------------------------------

    def _map_with_recovery(self, chunks, chunksize: int):
        """Run every chunk through the pool, surviving lost workers.

        ``pool.map`` has a failure mode a long sweep cannot afford: a
        worker that dies *abruptly* (SIGKILL, OOM-killer, segfault)
        takes its in-flight task with it and the map call blocks
        forever — ``multiprocessing.Pool`` replenishes the worker but
        never re-queues the task. Dispatching per chunk with
        ``apply_async`` keeps every chunk individually observable:

        * a chunk unfinished after ``chunk_timeout`` declares the pool
          lost; the pool is torn down and *only* the unfinished chunks
          are re-dispatched to a fresh one, ``chunk_retries`` times
          before :class:`JobExecutionError` (carrying every completed
          chunk's rows so they are cached, not recomputed);
        * a chunk exceeding ``straggler_factor`` x the EWMA chunk
          latency gets one duplicate dispatch; the first result wins.
          Chunks are pure functions of their payload, so a duplicate
          cannot change the sweep's rows — it only rescues a chunk
          whose worker quietly died under a replenishing pool.
        """
        results: List[object] = [None] * len(chunks)
        done = [False] * len(chunks)
        retries_left = self.chunk_retries
        while True:
            pool = self._ensure_pool()
            lost = self._poll_chunks(pool, chunks, results, done)
            if not lost:
                return results
            # the pool is suspect: at least one dispatched chunk will
            # never come back. Rebuild and re-dispatch the survivors.
            self._reset_pool()
            note_recovery("worker_restarts")
            note_recovery("chunk_retries", len(lost))
            if retries_left <= 0:
                index = lost[0]
                _, executors, params, _ = chunks[index]
                raise JobExecutionError(
                    executors[0], params[0],
                    f"worker lost or timed out; chunk {index} unfinished "
                    f"after {self.chunk_retries} redispatch(es)",
                    completed=self._completed_pairs(results, done, chunksize))
            retries_left -= 1

    def _poll_chunks(self, pool, chunks, results, done) -> List[int]:
        """One dispatch round: submit every unfinished chunk, poll until
        all complete or one is declared lost. Fills ``results``/``done``
        in place; returns the indices of lost chunks (empty on a clean
        round)."""
        pending = {}
        started = {}
        for i, chunk in enumerate(chunks):
            if not done[i]:
                pending[i] = pool.apply_async(_run_chunk, (chunk,))
                started[i] = time.monotonic()
        duplicates: Dict[int, object] = {}
        ewma: Optional[float] = None
        while pending:
            progressed = False
            now = time.monotonic()
            for i in sorted(pending):
                handle = pending[i]
                winner = None
                if handle.ready():
                    winner = handle
                elif i in duplicates and duplicates[i].ready():
                    winner = duplicates[i]
                if winner is not None:
                    try:
                        results[i] = winner.get()
                    except Exception:
                        # the worker raised outside a job (fault
                        # injection, unpicklable return, death during
                        # handoff): treat everything still pending as
                        # lost and let the retry loop decide
                        return sorted(pending)
                    done[i] = True
                    del pending[i]
                    duplicates.pop(i, None)
                    latency = now - started[i]
                    ewma = (latency if ewma is None
                            else 0.8 * ewma + 0.2 * latency)
                    progressed = True
                    continue
                elapsed = now - started[i]
                if self.chunk_timeout is not None and elapsed > self.chunk_timeout:
                    return sorted(pending)
                if (self.straggler_factor is not None and ewma is not None
                        and i not in duplicates
                        and elapsed > self.straggler_factor * ewma):
                    duplicates[i] = pool.apply_async(_run_chunk, (chunks[i],))
            if pending and not progressed:
                time.sleep(0.005)
        return []

    @staticmethod
    def _completed_pairs(results, done, chunksize: int):
        """(batch position, rows) pairs of every completed chunk, for
        the ``completed`` payload of :class:`JobExecutionError`."""
        completed: List[Tuple[int, List[dict]]] = []
        for i, finished in enumerate(done):
            if not finished:
                continue
            payload, _error = results[i]
            for offset, rows in enumerate(_decode_rows(payload)):
                completed.append((i * chunksize + offset, rows))
        return completed

    def _execute_batch(self, jobs: Sequence[Job]) -> List[List[dict]]:
        if self.workers <= 1 or len(jobs) <= 1:
            results: List[List[dict]] = []
            for job in jobs:
                try:
                    results.append(execute_job(job))
                except Exception as exc:
                    raise JobExecutionError(
                        job.executor, job.params_json, _describe_error(exc),
                        completed=list(enumerate(results))) from exc
            return results
        chunksize = self.chunksize or max(1, math.ceil(len(jobs) / (self.workers * 2)))
        fast = perf.fast_enabled()
        chunks = [
            (i // chunksize,
             tuple(job.executor for job in jobs[i:i + chunksize]),
             tuple(job.params_json for job in jobs[i:i + chunksize]),
             fast)
            for i in range(0, len(jobs), chunksize)
        ]
        mapped = self._map_with_recovery(chunks, chunksize)
        completed: List[Tuple[int, List[dict]]] = []
        failure = None
        for chunk_index, (payload, error) in enumerate(mapped):
            base = chunk_index * chunksize
            for offset, rows in enumerate(_decode_rows(payload)):
                completed.append((base + offset, rows))
            if error is not None and failure is None:
                offset, executor, params_json, cause = error
                failure = (executor, params_json, cause)
        if failure is not None:
            self._reset_pool()
            raise JobExecutionError(*failure, completed=completed)
        return [rows for _, rows in completed]

    def compute_rows(self, jobs: Sequence[Job]) -> List[List[dict]]:
        """Execute ``jobs`` (no cache interaction) and return each job's
        rows, in job order. This is the raw execution engine — chunked
        over the worker pool with the full lost-worker recovery
        machinery — exposed for callers that manage caching themselves
        (the distributed worker and the coordinator's local fallback)."""
        return self._execute_batch(list(jobs))

    def run(self, jobs: Union[SweepSpec, Iterable[Job]],
            columns: Optional[Sequence[str]] = None) -> ResultTable:
        if isinstance(jobs, SweepSpec):
            jobs = jobs.jobs()
        jobs = list(jobs)

        rows_by_index: dict = {}
        miss_indices: List[int] = []
        for i, job in enumerate(jobs):
            cached = recall_rows(job, self.cache)
            if cached is None:
                miss_indices.append(i)
            else:
                rows_by_index[i] = cached

        try:
            computed = self._execute_batch([jobs[i] for i in miss_indices])
        except JobExecutionError as error:
            # jobs that completed before the failure are not recomputed
            # on retry: persist them through both cache levels first
            for position, rows in error.completed:
                remember_rows(jobs[miss_indices[position]], rows, self.cache)
            raise
        for i, rows in zip(miss_indices, computed):
            remember_rows(jobs[i], rows, self.cache)
            rows_by_index[i] = rows

        table = ResultTable(columns=columns)
        for i in range(len(jobs)):
            table.extend(rows_by_index[i])
        return table
