"""Analysis models: FPGA prototype, microcontroller latency, ASIC
area/power, energy, and the cross-approach comparison of Table III.

These are the analytic halves of the paper's evaluation — the parts that
in the original were measured on an FPGA board or estimated from
published component numbers (TPU-v1, the 28nm AES core of Shan et al.).
"""

from repro.analysis.fpga import FpgaConfig, FpgaPrototypeModel, FpgaResourceModel, CHAIDNN_PLATFORM
from repro.analysis.microcontroller import MicrocontrollerModel, InstructionLatencyModel
from repro.analysis.area import AsicAreaModel, TPU_V1_AREA, AES_CORE_28NM
from repro.analysis.energy import EnergyModel
from repro.analysis.comparison import ComparisonTable, APPROACHES

__all__ = [
    "FpgaConfig",
    "FpgaPrototypeModel",
    "FpgaResourceModel",
    "CHAIDNN_PLATFORM",
    "MicrocontrollerModel",
    "InstructionLatencyModel",
    "AsicAreaModel",
    "TPU_V1_AREA",
    "AES_CORE_28NM",
    "EnergyModel",
    "ComparisonTable",
    "APPROACHES",
]
