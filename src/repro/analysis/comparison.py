"""Table III: GuardNN vs CPU TEE vs MPC approaches.

The alternatives cannot be run here (DELPHI/CrypTFlow2 are
network-protocol systems; the CPU TEE is a simulated Xeon), so each is
an *analytic throughput model* with the structural parameters the
respective papers report. What matters for reproduction is the relative
ordering and the orders of magnitude: MPC pays ~100-1000x, the CPU TEE
pays ~1.6x over an already-slow CPU, GuardNN pays ~1-5% over an
accelerator that is itself 1000x faster than the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
from repro.accel.models import build_model
from repro.analysis.energy import EnergyModel
from repro.analysis.fpga import FpgaConfig, FpgaPrototypeModel
from repro.protection.guardnn import GuardNNProtection
from repro.protection.none import NoProtection


@dataclass
class ApproachRow:
    """One column of Table III."""

    name: str
    hardware: str
    network: str
    dataset: str
    throughput_gops: float
    overhead_factor: float
    power_w: float
    tcb: str
    tcb_loc: str

    @property
    def efficiency_gops_per_w(self) -> float:
        return self.throughput_gops / self.power_w if self.power_w else 0.0


@dataclass(frozen=True)
class CpuModel:
    """A general-purpose CPU running DNN inference."""

    name: str
    cores: int
    freq_ghz: float
    flops_per_cycle_per_core: float  # effective, incl. vector units
    power_w: float

    def gops(self, efficiency: float = 0.5) -> float:
        return self.cores * self.freq_ghz * self.flops_per_cycle_per_core * efficiency


#: the simulated 1-core 3 GHz CPU TEE host of Table III
CPU_TEE_HOST = CpuModel(name="cpu-1core", cores=1, freq_ghz=3.0,
                        flops_per_cycle_per_core=1.0, power_w=60.0)

#: the 4-core 3.7 GHz Xeon the MPC systems run on
MPC_HOST = CpuModel(name="xeon-4core", cores=4, freq_ghz=3.7,
                    flops_per_cycle_per_core=16.0, power_w=130.0)


def cpu_tee_row(overhead_factor: float = 1.61) -> ApproachRow:
    """Simulated CPU TEE with unlimited protected memory: the CPU's raw
    throughput divided by the TEE's memory-protection overhead (the
    paper reports >60% for VGG)."""
    raw = CPU_TEE_HOST.gops(efficiency=0.44)
    return ApproachRow(
        name="CPU TEE (simulated)",
        hardware=f"CPU {CPU_TEE_HOST.cores} core@{CPU_TEE_HOST.freq_ghz:.1f} GHz",
        network="VGG-16",
        dataset="ImageNet",
        throughput_gops=raw / overhead_factor,
        overhead_factor=overhead_factor,
        power_w=CPU_TEE_HOST.power_w,
        tcb="CPU",
        tcb_loc="Millions",
    )


def mpc_row(name: str, overhead_factor: float, loc: str) -> ApproachRow:
    """An MPC protocol: plaintext CPU throughput divided by the
    protocol's published overhead (~1000x DELPHI, ~100x CrypTFlow2 —
    dominated by communication and garbled-circuit/OT work)."""
    raw = MPC_HOST.gops(efficiency=0.1)
    return ApproachRow(
        name=name,
        hardware=f"Intel Xeon {MPC_HOST.cores} cores@{MPC_HOST.freq_ghz} GHz",
        network="ResNet-32",
        dataset="CIFAR-100",
        throughput_gops=raw / overhead_factor,
        overhead_factor=overhead_factor,
        power_w=MPC_HOST.power_w,
        tcb="MPC protocol",
        tcb_loc=loc,
    )


def guardnn_asic_row() -> ApproachRow:
    """GuardNN_CI on the TPU-v1-like simulated ASIC, measured by actually
    running our simulation pipeline on VGG-16."""
    accel = AcceleratorModel(TPU_V1_CONFIG)
    network = build_model("vgg16")
    base = accel.run(network, NoProtection())
    protected = accel.run(network, GuardNNProtection(integrity=True))
    energy = EnergyModel(accelerator_power_w=40.0)  # paper: "~40 W"
    return ApproachRow(
        name="GuardNN_CI (simulated)",
        hardware="64k PEs / 24 MB @ 0.7 GHz",
        network="VGG-16",
        dataset="ImageNet",
        throughput_gops=energy.throughput_gops(network, protected),
        overhead_factor=protected.normalized_to(base),
        power_w=40.0,
        tcb="Accelerator",
        tcb_loc="10-100s of thousands",
    )


def guardnn_fpga_row() -> ApproachRow:
    """GuardNN_C on the 512-DSP 8-bit FPGA prototype model."""
    model = FpgaPrototypeModel()
    config = FpgaConfig(dsps=512, precision_bits=8)
    row = model.table_row("vgg16", config)
    network = build_model("vgg16")
    ops = 2.0 * network.macs(1)
    return ApproachRow(
        name="GuardNN_C (FPGA)",
        hardware="512 PEs / 3 MB @ 0.2 GHz",
        network="VGG-16",
        dataset="ImageNet",
        throughput_gops=row["guardnn_fps"] * ops / 1e9,
        overhead_factor=1.0 + row["overhead_pct"] / 100.0,
        power_w=15.0,  # paper: "~15 W" board-level estimate
        tcb="Accelerator",
        tcb_loc="21.8k",
    )


APPROACHES = ["cpu_tee", "delphi", "cryptflow2", "guardnn_ci", "guardnn_c"]


class ComparisonTable:
    """Builds all five Table III columns."""

    def rows(self) -> List[ApproachRow]:
        return [
            cpu_tee_row(),
            mpc_row("DELPHI MPC", overhead_factor=1000.0, loc="35.1k"),
            mpc_row("CrypTFLOW2 MPC", overhead_factor=100.0, loc="53.7k"),
            guardnn_asic_row(),
            guardnn_fpga_row(),
        ]

    def as_dicts(self) -> List[Dict[str, object]]:
        return [
            {
                "name": row.name,
                "hardware": row.hardware,
                "network": row.network,
                "dataset": row.dataset,
                "throughput_gops": row.throughput_gops,
                "overhead_factor": row.overhead_factor,
                "power_w": row.power_w,
                "efficiency_gops_per_w": row.efficiency_gops_per_w,
                "tcb": row.tcb,
                "tcb_loc": row.tcb_loc,
            }
            for row in self.rows()
        ]
