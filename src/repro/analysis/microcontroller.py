"""Microcontroller (MicroBlaze) latency model for GuardNN instructions.

Section III-B measures the firmware path: GetPK + InitSession
(ECDHE-ECDSA) take 23.1 ms; SetWeight 2.2-43.3 ms depending on weight
size; SetInput 0.1 ms; ExportOutput 0.01 ms; SignOutput 4.8 ms.

We model these from first principles rather than pasting them:

* public-key latency = (P-256 field multiplications the operation
  actually performs, counted by :mod:`repro.crypto.ec`'s operation
  counter) x (cycles per 256-bit field multiply on a 32-bit soft core)
  / clock;
* bulk-data latency (SetWeight/SetInput/ExportOutput) = bytes moved
  through the decrypt-then-re-encrypt path at the AES engines' effective
  bandwidth, plus a fixed firmware dispatch cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

from repro.accel.models import NetworkModel
from repro.crypto.ec import ECPoint, P256, op_counter, scalar_mult_reference

from repro.crypto.rng import HmacDrbg


@lru_cache(maxsize=1)
def _reference_scalar_mult_ops() -> int:
    """Field multiplications in one reference P-256 scalar mult — a
    process constant (seeded DRBG, fixed ladder), measured once against
    :func:`~repro.crypto.ec.scalar_mult_reference` directly: the
    modeled MicroBlaze firmware runs plain Jacobian double-and-add, so
    the host's wNAF/fixed-base fast path must not leak into the latency
    estimate (and calibration must not toggle the process-wide perf
    mode, which would wipe the fast-path caches as a side effect)."""
    op_counter.reset()
    drbg = HmacDrbg(b"latency-calibration")
    k = drbg.random_int_below(P256.n)
    scalar_mult_reference(k, ECPoint(P256.gx, P256.gy))
    ops = op_counter.field_mults
    op_counter.reset()
    return ops


@dataclass(frozen=True)
class MicrocontrollerModel:
    """A MicroBlaze-class soft core."""

    freq_mhz: float = 100.0
    #: cycles for one 256-bit modular multiplication on a 32-bit core:
    #: 8x8 32-bit word products + Montgomery-style reduction; ~150-200
    #: cycles is typical for tuned C on a soft core without a multiplier
    #: pipeline.
    cycles_per_field_mult: float = 170.0
    fixed_dispatch_us: float = 10.0  # per-instruction firmware overhead

    def _count_scalar_mult_field_ops(self) -> int:
        return _reference_scalar_mult_ops()

    def scalar_mult_seconds(self) -> float:
        ops = self._count_scalar_mult_field_ops()
        return ops * self.cycles_per_field_mult / (self.freq_mhz * 1e6)

    def key_exchange_seconds(self) -> float:
        """GetPK + InitSession: the device performs an ECDHE-ECDSA
        handshake — one ephemeral keygen (1 scalar mult), one ECDSA sign
        (1), one ECDSA verify of the user offer (2), one ECDH (1): four
        scalar multiplications plus hashing (negligible)."""
        return 4 * self.scalar_mult_seconds() + self.fixed_dispatch_us * 1e-6

    def sign_seconds(self) -> float:
        """SignOutput: one ECDSA signature (1 scalar mult + field ops)."""
        return 1 * self.scalar_mult_seconds() + self.fixed_dispatch_us * 1e-6


@dataclass(frozen=True)
class InstructionLatencyModel:
    """Bulk-data instruction latencies on the FPGA prototype."""

    mcu: MicrocontrollerModel = MicrocontrollerModel()
    aes_engines: int = 3
    engine_block_bytes: int = 16
    fabric_freq_mhz: float = 200.0
    #: the import path decrypts (session key) then re-encrypts (memory
    #: key) and makes two DRAM trips; ~3 passes of effective work per byte
    import_pass_factor: float = 3.0

    def _bulk_seconds(self, nbytes: int) -> float:
        engine_bps = self.aes_engines * self.engine_block_bytes * self.fabric_freq_mhz * 1e6
        return (
            nbytes * self.import_pass_factor / engine_bps
            + self.mcu.fixed_dispatch_us * 1e-6
        )

    def set_weight_seconds(self, network: NetworkModel, bytes_per_element: int = 1) -> float:
        return self._bulk_seconds(network.weight_bytes(bytes_per_element))

    def set_input_seconds(self, network: NetworkModel, bytes_per_element: int = 1) -> float:
        return self._bulk_seconds(network.input_elements * bytes_per_element)

    def export_output_seconds(self, network: NetworkModel, bytes_per_element: int = 1) -> float:
        return self._bulk_seconds(network.output_elements * bytes_per_element)

    def report(self, network: NetworkModel) -> Dict[str, float]:
        """All Section III-B instruction latencies, in milliseconds."""
        return {
            "key_exchange_ms": self.mcu.key_exchange_seconds() * 1e3,
            "set_weight_ms": self.set_weight_seconds(network) * 1e3,
            "set_input_ms": self.set_input_seconds(network) * 1e3,
            "export_output_ms": self.export_output_seconds(network) * 1e3,
            "sign_output_ms": self.mcu.sign_seconds() * 1e3,
        }
